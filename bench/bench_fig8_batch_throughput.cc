/**
 * @file
 * Reproduces Fig. 8: computing throughput vs batch size per GPU
 * platform, with the optimal batch size (last-layer Util reaches 1)
 * marked.
 *
 * Expected shape: throughput climbs with batch size and flattens
 * once the GPU saturates; the saturation point differs per platform
 * (different maxBlocks), which is why cross-platform compilation
 * must pick the batch per architecture.
 */

#include <cstdio>

#include "bench_util.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/batch_selector.hh"
#include "pcnn/offline/compiler.hh"

using namespace pcnn;

int
main()
{
    const NetDescriptor net = alexNet();
    const std::size_t batches[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

    std::vector<std::string> header{"GPU"};
    for (std::size_t b : batches)
        header.push_back("b=" + std::to_string(b));
    header.push_back("optimal b");
    TextTable table(header);

    for (const GpuSpec &gpu : allGpus()) {
        const OfflineCompiler compiler(gpu);
        std::vector<std::string> row{gpu.name};
        for (std::size_t b : batches) {
            const CompiledPlan plan = compiler.compileAtBatch(net, b);
            const double imgs_per_s =
                double(b) / plan.latencyS();
            row.push_back(TextTable::num(imgs_per_s, 0));
        }
        const std::size_t opt =
            BatchSelector(gpu).smallestFullUtilBatch(net);
        row.push_back(opt == 0 ? "-" : std::to_string(opt));
        table.addRow(row);
    }

    printSection("Fig. 8 — throughput (img/s) vs batch size",
                 table.render());
    bench::paperNote("throughput saturates at a platform-specific "
                     "optimal batch size (red markers in the paper)");
    return 0;
}
