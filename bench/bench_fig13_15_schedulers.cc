/**
 * @file
 * Reproduces Figs. 13, 14 and 15: the six run-time schedulers on the
 * three evaluation applications (age detection = interactive AlexNet,
 * video surveillance = real-time GoogLeNet @60 FPS, image tagging =
 * background AlexNet) on K20c and TX1.
 *
 * Fig. 13: runtime normalized to the Performance-preferred scheduler
 *          plus SoC_time.
 * Fig. 14: per-image energy normalized to the Energy-efficient
 *          scheduler.
 * Fig. 15: the SoC score; 'x' marks a violated deadline (SoC == 0).
 *
 * Expected shapes: on K20c every time-model scheduler stays
 * imperceptible; energy-efficient misses the real-time deadline;
 * P-CNN matches the least energy and the best SoC short of Ideal.
 * On TX1 only P-CNN and Ideal meet the 60 FPS deadline, via the
 * entropy-guided approximation.
 */

#include <cstdio>

#include "bench_util.hh"
#include "nn/model_zoo.hh"
#include "pcnn/schedulers/scheduler.hh"

using namespace pcnn;

namespace {

struct Workload
{
    AppSpec app;
    NetDescriptor net;
};

void
runGpu(const GpuSpec &gpu)
{
    const Workload workloads[] = {
        {ageDetectionApp(), alexNet()},
        {videoSurveillanceApp(), googleNet()},
        {imageTaggingApp(), alexNet()},
    };

    TextTable fig13({"Task", "Scheduler", "Latency (ms)",
                     "Norm. runtime", "SoC_time"});
    TextTable fig14({"Task", "Scheduler", "Energy/img (J)",
                     "Norm. energy"});
    TextTable fig15({"Task", "Scheduler", "SoC_accuracy", "SoC",
                     "Norm. SoC"});

    for (const Workload &w : workloads) {
        const ScheduleContext ctx = makeContext(w.app, w.net, gpu);
        std::vector<ScheduleOutcome> outs;
        for (const auto &s : allSchedulers())
            outs.push_back(s->run(ctx));

        const double base_runtime = outs[0].latencyS;     // Perf-pref
        const double base_energy = outs[1].energyPerImageJ;// Energy-eff
        double best_soc = 0.0;
        for (const auto &o : outs)
            best_soc = std::max(best_soc, o.socScore);

        for (const auto &o : outs) {
            fig13.addRow({w.app.name, o.scheduler,
                          bench::ms(o.latencyS),
                          TextTable::num(o.latencyS / base_runtime, 2),
                          o.deadlineMet
                              ? TextTable::num(o.socTimeScore, 2)
                              : "x"});
            fig14.addRow(
                {w.app.name, o.scheduler,
                 TextTable::num(o.energyPerImageJ, 4),
                 TextTable::num(o.energyPerImageJ / base_energy, 2)});
            fig15.addRow(
                {w.app.name, o.scheduler,
                 TextTable::num(o.socAccuracyScore, 2),
                 o.socScore > 0.0 ? TextTable::num(o.socScore, 2)
                                  : "x",
                 o.socScore > 0.0
                     ? TextTable::num(o.socScore / best_soc, 2)
                     : "x"});
        }
        fig13.addSeparator();
        fig14.addSeparator();
        fig15.addSeparator();
    }

    printSection("Fig. 13 (" + gpu.name +
                     ") — runtime and SoC_time per scheduler",
                 fig13.render());
    printSection("Fig. 14 (" + gpu.name + ") — normalized energy",
                 fig14.render());
    printSection("Fig. 15 (" + gpu.name + ") — Satisfaction of CNN",
                 fig15.render());
}

} // namespace

int
main()
{
    runGpu(k20c());
    runGpu(jetsonTx1());
    bench::paperNote(
        "K20c: all time-model schedulers imperceptible; "
        "energy-efficient gets 'x' on the real-time task; P-CNN "
        "consumes the least energy (~Ideal) and the best SoC short "
        "of Ideal. TX1: every scheduler except P-CNN/Ideal misses "
        "the 60 FPS deadline ('x' in Fig. 15b)");
    return 0;
}
