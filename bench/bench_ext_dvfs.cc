/**
 * @file
 * Extension bench: DVFS in the imperceptible region.
 *
 * Section II.B.1 recommends "lowering the performance so that
 * runtime is close to T_i" when a task finishes far inside the
 * imperceptible region. This bench sweeps the DVFS levels for the
 * interactive task on every platform and reports, per request period
 * (requests at 1 Hz, the GPU idles at board power in between), the
 * latency, the SoC_time, and the total energy — then shows the
 * planner's pick.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/dvfs.hh"
#include "gpu/sim/gpu_sim.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/dvfs_planner.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/satisfaction.hh"

using namespace pcnn;

int
main()
{
    const NetDescriptor net = alexNet();
    const AppSpec app = ageDetectionApp();
    const UserRequirement req = inferRequirement(app);
    const double period = 1.0 / app.dataRateHz;

    TextTable table({"GPU", "Level", "Latency (ms)", "SoC_time",
                     "Task E (J)", "Period E (J)", "Planner pick"});

    for (const GpuSpec &nominal : allGpus()) {
        const DvfsModel dvfs(nominal);
        const DvfsPlanner planner(nominal);
        const double pick = planner.plan(net, app).level;

        for (double level : DvfsModel::levels()) {
            const GpuSpec gpu = dvfs.at(level);
            const OfflineCompiler compiler(gpu);
            const CompiledPlan plan = compiler.compile(net, app);
            const RuntimeKernelScheduler rt(gpu);
            const SimResult run = rt.execute(plan, pcnnPolicy());
            const GpuSim sim(gpu);
            const double idle =
                run.timeS < period
                    ? sim.fixedInterval(period - run.timeS, 0)
                          .energy.total()
                    : 0.0;
            table.addRow(
                {nominal.name, TextTable::num(level, 2),
                 bench::ms(run.timeS),
                 TextTable::num(socTime(run.timeS, req), 2),
                 TextTable::num(run.energy.total(), 3),
                 TextTable::num(run.energy.total() + idle, 3),
                 level == pick ? "<== chosen" : ""});
        }
        table.addSeparator();
    }

    printSection("Extension — DVFS sweep (interactive AlexNet, "
                 "1 req/s)",
                 table.render());
    bench::paperNote("Fig. 3 guidance: inside the imperceptible "
                     "region, lower the clock until runtime "
                     "approaches T_i; SoC_time stays 1 while period "
                     "energy falls");
    return 0;
}
