/**
 * @file
 * Multi-tenant serving bench (DESIGN.md §5k) -> BENCH_pr10.json.
 *
 * Drives the MultiTenantEngine over the registered mini zoo with a
 * Zipf-weighted three-model mix (MiniAlexNet/full, MiniVgg/full,
 * MiniInception/p50) and the Table II class split:
 *
 *  1. Interactive-only baseline: open-loop Poisson arrivals at an
 *     interactive utilization of ~0.5, establishing the p99 the mixed
 *     run must protect.
 *  2. Isolated per-model runs: each model's full workload (its
 *     interactive share plus its background quota) alone on the
 *     engine, timed wall-to-wall. Run sequentially these are the
 *     "one model per host" deployment the multi-tenant engine
 *     replaces.
 *  3. Mixed run: all three workloads at once through one queue
 *     fabric, with the background flood sized to saturate the spare
 *     capacity the interactive stream leaves. Reports per-class
 *     latency tails, SLO attainment, shed rate, the autoscaler's
 *     replica trajectory, and the steady-state allocation probe.
 *  4. Bitwise probe: the same inputs served under 1 and 2 intra-op
 *     lanes must match the prototype forward bit for bit.
 *
 * Acceptance (read from the JSON): mixed interactive p99 <= 1.25x
 * the interactive-only p99, aggregate mixed throughput >= 0.9x the
 * sequential isolated baseline, bitwise_threads_ok, and
 * steady_allocs == 0 on every row.
 *
 * Usage: bench_multitenant [--quick] [out.json]
 * --quick shrinks the workload for CI smoke runs.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/model_zoo.hh"
#include "serve/multi_engine.hh"
#include "tensor/microkernel.hh"

using namespace pcnn;

namespace {

/** The three traffic-bearing models and their Zipf weights. */
struct TrafficModel
{
    std::size_t index = 0; ///< registry index
    std::string name;
    double weight = 0.0;   ///< normalized Zipf share
    double batch1S = 0.0;  ///< calibrated batch-1 service time
    double lambdaHz = 0.0; ///< interactive arrival rate
    std::size_t nInteractive = 0;
    std::size_t nBackground = 0;
};

double
nowS(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

Tensor
randomInput(Rng &rng, const Shape &in)
{
    Tensor t(Shape{1, in.c, in.h, in.w});
    t.fillUniform(rng, -1.0f, 1.0f);
    return t;
}

/**
 * Median end-to-end service time of singleton requests through a
 * live engine: unlike timing the bare prototype forward, this
 * includes the queue handoff, staging, promise fulfillment and
 * thread wake-ups every real request pays, so the arrival rates
 * derived from it hit the intended utilization instead of
 * accidentally saturating the engine. Doubles as the warm-up that
 * faults in every page before the measured runs.
 */
double
calibrateBatch1S(MultiTenantEngine &engine, Model &model,
                 std::size_t index, std::size_t reps)
{
    Rng rng(404 + index);
    std::vector<double> ts;
    ts.reserve(reps);
    for (std::size_t i = 0; i < reps; ++i) {
        Tensor x = randomInput(rng, model.inputShape());
        const auto t0 = std::chrono::steady_clock::now();
        auto sub =
            engine.submit(index, TaskClass::Interactive, std::move(x));
        if (sub.status != SubmitStatus::Accepted)
            continue;
        (void)sub.result.get();
        ts.push_back(nowS(t0));
    }
    if (ts.empty())
        return 0.0;
    std::sort(ts.begin(), ts.end());
    return ts[ts.size() / 2];
}

MultiEngineConfig
mixConfig()
{
    MultiEngineConfig cfg;
    cfg.workers = 1; // the bench host has one core
    cfg.initialReplicas = 1;
    cfg.fabric.queueCapacity = 48;
    cfg.autoscaleTickS = 0.020;
    // Millisecond-scale nets: let real backlog move the pools so the
    // trajectory in the JSON shows the hysteresis at work.
    cfg.autoscaler.maxReplicas = 2;
    cfg.autoscaler.growBacklogS = 0.002;
    cfg.autoscaler.shrinkBacklogS = 0.0005;
    return cfg;
}

/** One run's outcome. */
struct RunResult
{
    double wallS = 0.0;
    std::uint64_t submitted = 0;
    TenantMetricsSnapshot metrics;
};

/**
 * Drive one engine run: an open-loop Poisson interactive stream over
 * `models` (Zipf-weighted pick per arrival) plus a windowed
 * background flood that keeps `window` requests in flight per model
 * until each model's quota is spent. Either side can be disabled by
 * zero counts. The run ends when every accepted future resolved.
 */
RunResult
driveRun(MultiTenantEngine &engine, ModelRegistry &reg,
         const std::vector<TrafficModel> &models, double lambdaTotHz,
         std::size_t nInteractive, bool withBackground,
         std::size_t window, unsigned seed)
{
    std::vector<std::future<TenantResult>> intFuts;
    std::vector<std::future<TenantResult>> bgFuts;
    intFuts.reserve(nInteractive);
    std::uint64_t submitted = 0;
    const auto t0 = std::chrono::steady_clock::now();

    // Background flood on its own thread: top the in-flight window
    // up whenever it drains, round-robin over models with quota
    // left. The window stays under the queue capacity so the flood
    // itself is never shed; evictions by urgent arrivals (admission
    // control) resolve the future with shed=true and count against
    // the quota — work handed to the engine, not work completed.
    std::thread bg;
    if (withBackground) {
        bg = std::thread([&] {
            Rng inputs(seed + 1);
            std::vector<std::size_t> quota(models.size());
            std::size_t total = 0;
            for (std::size_t i = 0; i < models.size(); ++i)
                total += quota[i] = models[i].nBackground;
            std::deque<std::future<TenantResult>> inflight;
            std::size_t cursor = 0;
            while (total > 0 || !inflight.empty()) {
                if (total > 0 && inflight.size() < window) {
                    while (quota[cursor] == 0)
                        cursor = (cursor + 1) % models.size();
                    auto sub = engine.submit(
                        models[cursor].index, TaskClass::Background,
                        randomInput(inputs,
                                    reg.model(models[cursor].index)
                                        .inputShape()));
                    if (sub.status == SubmitStatus::Accepted) {
                        inflight.push_back(std::move(sub.result));
                        --quota[cursor];
                        --total;
                        cursor = (cursor + 1) % models.size();
                    } else {
                        // transient backpressure: yield, retry
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(200));
                    }
                } else {
                    inflight.front().wait();
                    bgFuts.push_back(std::move(inflight.front()));
                    inflight.pop_front();
                }
            }
        });
    }

    // Interactive open loop: Poisson interarrivals, Zipf model pick.
    if (nInteractive > 0) {
        Rng arrivals(seed);
        Rng inputs(seed + 2);
        auto next = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < nInteractive; ++i) {
            next += std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    -std::log(1.0 - arrivals.uniform()) /
                    lambdaTotHz));
            std::this_thread::sleep_until(next);
            double u = arrivals.uniform();
            std::size_t pick = models.size() - 1;
            for (std::size_t m = 0; m < models.size(); ++m) {
                u -= models[m].weight;
                if (u <= 0.0) {
                    pick = m;
                    break;
                }
            }
            auto sub = engine.submit(
                models[pick].index, TaskClass::Interactive,
                randomInput(inputs,
                            reg.model(models[pick].index)
                                .inputShape()));
            if (sub.status == SubmitStatus::Accepted)
                intFuts.push_back(std::move(sub.result));
        }
    }

    if (bg.joinable())
        bg.join();
    submitted = intFuts.size() + bgFuts.size();
    for (auto &f : intFuts)
        f.get();
    for (auto &f : bgFuts)
        f.get();

    RunResult r;
    r.wallS = nowS(t0);
    r.submitted = submitted;
    r.metrics = engine.metrics();
    return r;
}

const char *
className(std::size_t cls)
{
    switch (static_cast<TaskClass>(cls)) {
      case TaskClass::Interactive: return "interactive";
      case TaskClass::RealTime: return "real_time";
      case TaskClass::Background: return "background";
    }
    return "?";
}

void
jsonClassRow(std::FILE *f, const char *indent,
             const TenantClassStats &s, std::size_t cls, bool last)
{
    std::fprintf(
        f,
        "%s{\"class\": \"%s\", \"completed\": %llu, \"shed\": %llu, "
        "\"slo_attainment\": %.4f, \"p50_ms\": %.4f, "
        "\"p95_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
        "\"mean_queue_ms\": %.4f}%s\n",
        indent, className(cls),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.shed), s.sloAttainment(),
        s.latency.p50S * 1e3, s.latency.p95S * 1e3,
        s.latency.p99S * 1e3, s.latency.p999S * 1e3,
        s.queueWait.meanS * 1e3, last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_pr10.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            out_path = argv[i];
    }

    // ------------------------------------------------ registry
    Rng zoo_rng(42);
    ModelRegistry reg;
    const std::size_t zoo = registerMiniZoo(reg, zoo_rng,
                                            /*max_batch=*/4,
                                            /*max_replicas=*/2);
    std::printf("registered %zu zoo models, reserved arena %zu "
                "bytes\n",
                zoo, reg.totalReservedArenaBytes());

    std::vector<TrafficModel> models(3);
    models[0].name = "MiniAlexNet/full";
    models[1].name = "MiniVgg/full";
    models[2].name = "MiniInception/p50";
    double wsum = 0.0;
    for (std::size_t m = 0; m < models.size(); ++m) {
        models[m].index = reg.indexOf(models[m].name);
        if (models[m].index == reg.size()) {
            std::fprintf(stderr, "model %s not registered\n",
                         models[m].name.c_str());
            return 1;
        }
        models[m].weight = 1.0 / double(m + 1); // Zipf s=1
        wsum += models[m].weight;
    }
    for (TrafficModel &m : models)
        m.weight /= wsum;

    // ------------------------------------------------ calibration
    // Size the interactive stream to utilization ~0.5 and the
    // background quotas to ~1.5x the spare capacity over the span,
    // so background always has work while interactive runs.
    const double spanS = quick ? 0.8 : 4.0;
    const double rhoInteractive = 0.5;
    double mixCostS = 0.0;
    {
        MultiEngineConfig ccfg = mixConfig();
        ccfg.autoscaleTickS = 0.0;
        MultiTenantEngine cal_engine(reg, ccfg);
        for (TrafficModel &m : models) {
            m.batch1S =
                calibrateBatch1S(cal_engine, reg.model(m.index),
                                 m.index, quick ? 21 : 61);
            mixCostS += m.weight * m.batch1S;
        }
        cal_engine.stop();
    }
    const double lambdaTot = rhoInteractive / mixCostS;
    const std::size_t nInteractive =
        static_cast<std::size_t>(lambdaTot * spanS);
    const double bgWorkS = 1.5 * (1.0 - rhoInteractive) * spanS;
    for (TrafficModel &m : models) {
        m.lambdaHz = m.weight * lambdaTot;
        m.nInteractive = static_cast<std::size_t>(
            double(nInteractive) * m.weight);
        m.nBackground = static_cast<std::size_t>(
            std::max(1.0, m.weight * bgWorkS / m.batch1S));
    }

    TextTable cal({"Model", "Zipf share", "batch-1 (ms)",
                   "lambda (req/s)", "N interactive",
                   "N background"});
    for (const TrafficModel &m : models)
        cal.addRow({m.name, TextTable::num(m.weight, 3),
                    bench::ms(m.batch1S),
                    TextTable::num(m.lambdaHz, 0),
                    std::to_string(m.nInteractive),
                    std::to_string(m.nBackground)});
    printSection("Multi-tenant bench — calibrated workload", cal.render());

    const std::size_t window = 24;

    // ------------------------------------------------ 1. baseline
    RunResult base;
    {
        MultiTenantEngine engine(reg, mixConfig());
        base = driveRun(engine, reg, models, lambdaTot, nInteractive,
                        /*withBackground=*/false, window, 1001);
        engine.stop();
    }
    const TenantClassStats &baseInt =
        base.metrics
            .byClass[static_cast<std::size_t>(TaskClass::Interactive)];

    // ------------------------------------------------ 2. isolated
    std::vector<RunResult> isolated;
    double isolatedWallS = 0.0;
    std::uint64_t isolatedCompleted = 0;
    for (const TrafficModel &m : models) {
        std::vector<TrafficModel> solo{m};
        solo[0].weight = 1.0;
        MultiTenantEngine engine(reg, mixConfig());
        RunResult r =
            driveRun(engine, reg, solo, m.lambdaHz, m.nInteractive,
                     /*withBackground=*/true, window, 2002);
        engine.stop();
        isolatedWallS += r.wallS;
        isolatedCompleted += r.metrics.completed;
        isolated.push_back(std::move(r));
    }
    const double isolatedAggRps =
        isolatedWallS > 0.0 ? double(isolatedCompleted) / isolatedWallS
                            : 0.0;

    // ------------------------------------------------ 3. mixed
    RunResult mixed;
    {
        MultiTenantEngine engine(reg, mixConfig());
        mixed = driveRun(engine, reg, models, lambdaTot, nInteractive,
                         /*withBackground=*/true, window, 3003);
        engine.stop();
    }
    const TenantClassStats &mixInt =
        mixed.metrics
            .byClass[static_cast<std::size_t>(TaskClass::Interactive)];
    const double mixedAggRps =
        mixed.wallS > 0.0 ? double(mixed.metrics.completed) / mixed.wallS
                          : 0.0;

    TextTable tails({"Run", "Class", "Completed", "Shed", "SLO",
                     "p50 (ms)", "p99 (ms)", "p99.9 (ms)"});
    auto addTail = [&](const char *run, const TenantClassStats &s,
                       std::size_t cls) {
        if (s.completed == 0 && s.shed == 0)
            return;
        tails.addRow({run, className(cls), std::to_string(s.completed),
                      std::to_string(s.shed),
                      TextTable::num(s.sloAttainment(), 3),
                      bench::ms(s.latency.p50S),
                      bench::ms(s.latency.p99S),
                      bench::ms(s.latency.p999S)});
    };
    for (std::size_t c = 0; c < kTaskClassCount; ++c)
        addTail("interactive-only", base.metrics.byClass[c], c);
    for (std::size_t c = 0; c < kTaskClassCount; ++c)
        addTail("mixed", mixed.metrics.byClass[c], c);
    printSection("Multi-tenant bench — latency tails", tails.render());

    // ------------------------------------------------ 4. bitwise
    // Identical inputs through 1-lane and 2-lane engines, submitted
    // strictly one at a time (singleton batches), must reproduce the
    // prototype forward bit for bit.
    bool bitwise_ok = true;
    {
        const std::size_t probes = quick ? 3 : 6;
        Rng prng(7070);
        std::vector<std::vector<Tensor>> xs(models.size());
        std::vector<std::vector<Tensor>> want(models.size());
        for (std::size_t m = 0; m < models.size(); ++m) {
            Model &model = reg.model(models[m].index);
            for (std::size_t p = 0; p < probes; ++p) {
                xs[m].push_back(
                    randomInput(prng, model.inputShape()));
                Tensor out;
                model.prototype().forwardInto(xs[m].back(), false,
                                              out);
                want[m].push_back(std::move(out));
            }
        }
        for (std::size_t lanes : {1u, 2u}) {
            MultiEngineConfig cfg = mixConfig();
            cfg.lanesPerWorker = lanes;
            cfg.autoscaleTickS = 0.0;
            MultiTenantEngine engine(reg, cfg);
            for (std::size_t m = 0; m < models.size(); ++m) {
                for (std::size_t p = 0; p < probes; ++p) {
                    auto sub = engine.submit(models[m].index,
                                             TaskClass::Interactive,
                                             xs[m][p]);
                    if (sub.status != SubmitStatus::Accepted) {
                        bitwise_ok = false;
                        continue;
                    }
                    const TenantResult r = sub.result.get();
                    if (r.logits.size() != want[m][p].size() ||
                        std::memcmp(r.logits.data(),
                                    want[m][p].data(),
                                    want[m][p].size() *
                                        sizeof(float)) != 0)
                        bitwise_ok = false;
                }
            }
            engine.stop();
        }
    }

    // ------------------------------------------------ acceptance
    const double p99Ratio =
        baseInt.latency.p99S > 0.0
            ? mixInt.latency.p99S / baseInt.latency.p99S
            : 0.0;
    const double rpsRatio =
        isolatedAggRps > 0.0 ? mixedAggRps / isolatedAggRps : 0.0;
    const bool steadyOk = base.metrics.steadyAllocs == 0 &&
                          mixed.metrics.steadyAllocs == 0 &&
                          [&] {
                              for (const RunResult &r : isolated)
                                  if (r.metrics.steadyAllocs != 0)
                                      return false;
                              return true;
                          }();
    const double shedRate =
        mixed.submitted + mixed.metrics.shed > 0
            ? double(mixed.metrics.shed) /
                  double(mixed.submitted + mixed.metrics.shed)
            : 0.0;

    std::printf("interactive p99: baseline %s ms, mixed %s ms "
                "(ratio %.3f, target <= 1.25)\n",
                bench::ms(baseInt.latency.p99S).c_str(),
                bench::ms(mixInt.latency.p99S).c_str(), p99Ratio);
    std::printf("aggregate throughput: mixed %.0f req/s vs isolated "
                "%.0f req/s (ratio %.3f, target >= 0.9)\n",
                mixedAggRps, isolatedAggRps, rpsRatio);
    std::printf("bitwise across lane counts: %s; steady allocs "
                "zero: %s\n",
                bitwise_ok ? "yes" : "NO", steadyOk ? "yes" : "NO");

    // ------------------------------------------------ JSON
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"multitenant\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"alloc_counting\": %s,\n",
                 allocCountingEnabled() ? "true" : "false");
    const CpuFeatures &cpu = cpuFeatures();
    const CacheInfo &ci = cacheInfo();
    std::fprintf(f,
                 "  \"host\": {\"hardware_threads\": %u, "
                 "\"pcnn_threads\": %zu,\n"
                 "    \"cpu_model\": \"%s\", \"cpu_features\": "
                 "\"%s\",\n"
                 "    \"cache_l1d_bytes\": %zu, \"cache_l2_bytes\": "
                 "%zu, \"cache_l3_bytes\": %zu,\n"
                 "    \"kernel_tier\": \"%s\"},\n",
                 std::thread::hardware_concurrency(), threadCount(),
                 cpu.model.c_str(), cpu.str().c_str(), ci.l1d, ci.l2,
                 ci.l3, kernelTierName(activeKernelTier()));
    std::fprintf(f,
                 "  \"registry\": {\"models\": %zu, "
                 "\"reserved_arena_bytes\": %zu},\n",
                 reg.size(), reg.totalReservedArenaBytes());

    std::fprintf(f, "  \"workload\": [\n");
    for (std::size_t m = 0; m < models.size(); ++m) {
        const TrafficModel &tm = models[m];
        std::fprintf(f,
                     "    {\"model\": \"%s\", \"zipf_share\": %.4f, "
                     "\"batch1_ms\": %.4f, \"lambda_hz\": %.1f, "
                     "\"n_interactive\": %zu, \"n_background\": "
                     "%zu}%s\n",
                     tm.name.c_str(), tm.weight, tm.batch1S * 1e3,
                     tm.lambdaHz, tm.nInteractive, tm.nBackground,
                     m + 1 < models.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    auto runJson = [&](const char *key, const RunResult &r,
                       bool trailing_comma) {
        const TenantMetricsSnapshot &m = r.metrics;
        std::fprintf(
            f,
            "  \"%s\": {\"wall_s\": %.4f, \"submitted\": %llu, "
            "\"completed\": %llu, \"shed\": %llu, "
            "\"background_evicted\": %llu, \"throughput_rps\": "
            "%.1f,\n    \"queue_high_water\": %zu, "
            "\"live_arena_bytes\": %zu, \"steady_allocs\": %llu, "
            "\"steady_probed_batches\": %llu,\n    \"by_class\": [\n",
            key, r.wallS, static_cast<unsigned long long>(r.submitted),
            static_cast<unsigned long long>(m.completed),
            static_cast<unsigned long long>(m.shed),
            static_cast<unsigned long long>(m.backgroundEvicted),
            r.wallS > 0.0 ? double(m.completed) / r.wallS : 0.0,
            m.queueHighWater, m.liveArenaBytes,
            static_cast<unsigned long long>(m.steadyAllocs),
            static_cast<unsigned long long>(m.steadyProbedBatches));
        for (std::size_t c = 0; c < kTaskClassCount; ++c)
            jsonClassRow(f, "      ", m.byClass[c], c,
                         c + 1 == kTaskClassCount);
        std::fprintf(f, "    ],\n    \"replica_trajectory\": [");
        for (std::size_t i = 0; i < m.replicaTrajectory.size(); ++i) {
            const ReplicaEvent &e = m.replicaTrajectory[i];
            std::fprintf(f,
                         "%s{\"t_s\": %.4f, \"model\": %zu, "
                         "\"replicas\": %zu}",
                         i == 0 ? "" : ", ", e.tS, e.model,
                         e.replicas);
        }
        std::fprintf(f, "]}%s\n", trailing_comma ? "," : "");
    };

    runJson("interactive_only", base, true);
    std::fprintf(f, "  \"isolated\": [\n");
    for (std::size_t i = 0; i < isolated.size(); ++i) {
        const RunResult &r = isolated[i];
        std::fprintf(
            f,
            "    {\"model\": \"%s\", \"wall_s\": %.4f, "
            "\"completed\": %llu, \"throughput_rps\": %.1f, "
            "\"steady_allocs\": %llu}%s\n",
            models[i].name.c_str(), r.wallS,
            static_cast<unsigned long long>(r.metrics.completed),
            r.wallS > 0.0 ? double(r.metrics.completed) / r.wallS
                          : 0.0,
            static_cast<unsigned long long>(r.metrics.steadyAllocs),
            i + 1 < isolated.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    runJson("mixed", mixed, true);

    std::fprintf(
        f,
        "  \"acceptance\": {\"interactive_p99_baseline_ms\": %.4f, "
        "\"interactive_p99_mixed_ms\": %.4f,\n"
        "    \"interactive_p99_ratio\": %.4f, \"p99_ratio_ok\": %s,\n"
        "    \"mixed_agg_rps\": %.1f, \"isolated_agg_rps\": %.1f, "
        "\"throughput_ratio\": %.4f, \"throughput_ok\": %s,\n"
        "    \"shed_rate\": %.4f, \"bitwise_threads_ok\": %d, "
        "\"steady_allocs_ok\": %s}\n",
        baseInt.latency.p99S * 1e3, mixInt.latency.p99S * 1e3,
        p99Ratio, p99Ratio <= 1.25 ? "true" : "false", mixedAggRps,
        isolatedAggRps, rpsRatio, rpsRatio >= 0.9 ? "true" : "false",
        shedRate, bitwise_ok ? 1 : 0, steadyOk ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    return (bitwise_ok && steadyOk) ? 0 : 1;
}
