/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  1. Kernel selection metric: the paper's S_kernel (Eq. 10) vs
 *     exhaustive time-model minimization vs the stock library
 *     kernels — how much does coordinated tile/register tuning buy,
 *     and does the cheap metric track the expensive search?
 *  2. Register spilling target: spare shared memory first (the
 *     paper's choice) vs spilling straight to global memory.
 *  3. Staircase pruning: candidate count with and without the
 *     Fig. 9 rightmost-point pruning.
 */

#include <cstdio>

#include "bench_util.hh"
#include "libs/dl_library.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/kernel_tuner.hh"

using namespace pcnn;

namespace {

void
selectionAblation()
{
    TextTable table({"GPU", "Layer", "S_kernel pick", "time (ms)",
                     "Time-model pick", "time (ms)", "cuDNN time",
                     "agree?"});
    const NetDescriptor net = alexNet();
    auto cudnn = libraryByName("cuDNN");
    for (const GpuSpec &gpu : {k20c(), jetsonTx1()}) {
        const KernelTuner tuner(gpu);
        for (const ConvSpec &layer : net.convs) {
            const GemmShape g = layer.gemmShape(1);
            const TunedKernel metric =
                tuner.tune(g, TuneObjective::SkernelMetric);
            const TunedKernel best =
                tuner.tune(g, TuneObjective::TimeModel);
            const double t_lib =
                cudnn->layerTime(gpu, layer, 1) /
                double(layer.gemmCount());
            table.addRow(
                {gpu.name, layer.name, metric.config.str(),
                 bench::ms(metric.predictedTimeS),
                 best.config.str(), bench::ms(best.predictedTimeS),
                 bench::ms(t_lib),
                 metric.config.str() == best.config.str() ? "yes"
                                                          : "no"});
        }
        table.addSeparator();
    }
    printSection("Ablation 1 — kernel selection objective",
                 table.render());
}

void
spillAblation()
{
    // Compare the modeled cost of spilling with and without the
    // spare-shared-memory stage, at several register budgets.
    TextTable table({"GPU", "Kernel", "Spilled", "to shm", "to glob",
                     "Eq.7 cost", "glob-only cost"});
    for (const GpuSpec &gpu : {k20c(), titanX()}) {
        const TileConfig tile = tileByName(128, 128);
        for (std::size_t regs : {112, 96, 80, 64, 48}) {
            const SgemmModel m(gpu, {tile, regs});
            const SpillInfo &s = m.spill();
            // Global-only alternative: every spill pays Cost_global.
            SpillInfo glob = s;
            glob.extraLdg += glob.extraLds;
            glob.extraLds = 0.0;
            table.addRow({gpu.name, m.config().str(),
                          TextTable::num(int64_t(s.spilledRegs)),
                          TextTable::num(int64_t(s.toSharedMem)),
                          TextTable::num(int64_t(s.toGlobal)),
                          TextTable::num(s.cost(), 1),
                          TextTable::num(glob.cost(), 1)});
        }
        table.addSeparator();
    }
    printSection("Ablation 2 — spill target (shm-first vs global)",
                 table.render());
}

void
pruningAblation()
{
    TextTable table({"GPU", "Unpruned points", "Staircase points",
                     "Reduction"});
    for (const GpuSpec &gpu : allGpus()) {
        const KernelTuner tuner(gpu);
        std::size_t unpruned = 0;
        for (const TileConfig &tile : tileCatalogue())
            unpruned += tile.naturalRegs -
                        std::min(tuner.minReg(), tile.naturalRegs) + 1;
        const std::size_t pruned = tuner.candidates().size();
        table.addRow(
            {gpu.name, TextTable::num(int64_t(unpruned)),
             TextTable::num(int64_t(pruned)),
             TextTable::num(double(unpruned) / double(pruned), 1) +
                 "x"});
    }
    printSection("Ablation 3 — Fig. 9 staircase pruning",
                 table.render());
}

} // namespace

int
main()
{
    selectionAblation();
    spillAblation();
    pruningAblation();
    bench::paperNote("S_kernel is a cheap proxy: it should usually "
                     "agree with exhaustive time-model search, and "
                     "both beat the stock library kernels");
    return 0;
}
