/**
 * @file
 * Reproduces Fig. 16: entropy-based vs accuracy-based approximation.
 *
 * A MiniNet is trained on the synthetic task, then tuned twice on
 * the same compiled plan: once guided only by output entropy (the
 * paper's unsupervised method) and once guided by labeled accuracy
 * (the supervised comparator). Each iteration's speedup, entropy and
 * accuracy are printed.
 *
 * Expected shapes: speedup rises monotonically along the path;
 * entropy increases track accuracy decreases (dE ~ dA); the
 * entropy-guided path reaches a similar speedup/accuracy operating
 * point as the accuracy-guided one — the paper reports ~1.8x at
 * ~10% accuracy loss.
 */

#include <cstdio>

#include "bench_util.hh"
#include "data/synthetic.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/accuracy_tuner.hh"
#include "tensor/tensor_ops.hh"
#include "train/loss.hh"
#include "train/trainer.hh"

using namespace pcnn;

namespace {

/** Print one tuning path, measuring true accuracy at every level. */
void
printPath(const std::string &title, Network &net,
          const TuningTable &table, const Dataset &labeled)
{
    TextTable t({"Iter", "Adjusted layer", "Speedup", "Entropy",
                 "Accuracy"});
    const auto &convs = net.convLayers();
    const Tensor inputs = labeled.batch(0, labeled.size());
    for (std::size_t level = 0; level < table.levels(); ++level) {
        const TuningEntry &e = table.entry(level);
        // Measure the true accuracy of this level (the green line in
        // Fig. 16), even for the unsupervised path.
        for (std::size_t i = 0; i < convs.size(); ++i)
            convs[i]->setComputedPositions(e.positions[i]);
        const Tensor logits = net.forward(inputs, false);
        const double acc = accuracy(logits, labeled.labels());
        t.addRow({TextTable::num(int64_t(level)),
                  e.adjustedLayer < 0
                      ? "-"
                      : net.convLayers()[std::size_t(
                                             e.adjustedLayer)]
                            ->name(),
                  TextTable::num(e.speedup, 2),
                  TextTable::num(e.entropy, 3),
                  TextTable::num(acc * 100.0, 1) + "%"});
    }
    net.clearPerforation();
    printSection(title, t.render());
}

} // namespace

int
main()
{
    // A moderately hard task, so the trained classifier sits below
    // ceiling and entropy responds smoothly to perforation instead
    // of collapsing all at once.
    SyntheticTaskConfig cfg;
    cfg.difficulty = 1.0;
    cfg.seed = 92;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(2048);
    Dataset labeled = task.generate(512);

    Rng rng(93);
    Network net = makeMiniNet(MiniSize::Large, rng);
    TrainConfig tc;
    tc.epochs = 8;
    Trainer trainer(net, tc);
    trainer.fit(train_set);
    const EvalResult base = trainer.evaluate(labeled);
    std::printf("trained %s: accuracy %.1f%%, entropy %.3f\n",
                net.name().c_str(), base.accuracy * 100.0,
                base.meanEntropy);

    // Compile for TX1 at batch 64 so conv kernels dominate latency.
    const GpuSpec gpu = jetsonTx1();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan =
        compiler.compileAtBatch(describe(net), 64);

    TunerConfig tcfg;
    tcfg.entropyThreshold = base.meanEntropy + 0.15;
    tcfg.maxAccuracyDrop = 0.10;
    tcfg.maxIterations = 24;
    const AccuracyTuner tuner(gpu, tcfg);

    Dataset tune_data = task.generate(256); // unlabeled at run time
    const TuningTable by_entropy = tuner.tuneNetwork(
        net, plan, tune_data.batch(0, tune_data.size()));
    printPath("Fig. 16 — entropy-based approximation", net,
              by_entropy, labeled);

    const TuningTable by_accuracy =
        tuner.tuneNetworkByAccuracy(net, plan, labeled);
    printPath("Fig. 16 — accuracy-based approximation (supervised)",
              net, by_accuracy, labeled);

    // Fig. 11 ablation: nearest-copy vs neighbour-averaging fill at
    // the entropy-selected perforation level.
    {
        const std::size_t lvl =
            by_entropy.selectLevel(tcfg.entropyThreshold);
        const TuningEntry &sel = by_entropy.entry(lvl);
        const auto &convs = net.convLayers();
        const Tensor inputs = labeled.batch(0, labeled.size());
        TextTable interp({"Interpolation", "Accuracy", "Entropy"});
        for (const auto mode : {InterpolationMode::Nearest,
                                InterpolationMode::Average}) {
            for (std::size_t i = 0; i < convs.size(); ++i) {
                convs[i]->setInterpolationMode(mode);
                convs[i]->setComputedPositions(sel.positions[i]);
            }
            const Tensor logits = net.forward(inputs, false);
            interp.addRow(
                {mode == InterpolationMode::Nearest ? "nearest"
                                                    : "average",
                 TextTable::num(
                     accuracy(logits, labeled.labels()) * 100.0, 1) +
                     "%",
                 TextTable::num(batchEntropy(softmax(logits)), 3)});
        }
        net.clearPerforation();
        for (ConvLayer *c : net.convLayers())
            c->setInterpolationMode(InterpolationMode::Nearest);
        printSection(
            "Fig. 11 ablation — interpolation fill at level " +
                std::to_string(lvl),
            interp.render());
    }

    const TuningEntry &e_end =
        by_entropy.entry(by_entropy.levels() - 1);
    const TuningEntry &a_end =
        by_accuracy.entry(by_accuracy.levels() - 1);
    std::printf("entropy-guided endpoint:  %.2fx speedup\n",
                e_end.speedup);
    std::printf("accuracy-guided endpoint: %.2fx speedup at %.1f%% "
                "accuracy\n",
                a_end.speedup, a_end.accuracy * 100.0);
    bench::paperNote("~1.8x speedup within 10% accuracy loss; the "
                     "unsupervised entropy-guided method matches the "
                     "supervised accuracy-guided one");
    return 0;
}
