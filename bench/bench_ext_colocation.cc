/**
 * @file
 * Extension bench: spatial co-location on the SMs P-CNN frees.
 *
 * Fig. 7's point is that Priority-SM packing releases SMs that "can
 * be released to run other kernels or powered off". The power-off
 * half is Figs. 13-15; this bench demonstrates the other half: an
 * AlexNet CONV layer runs on its optSM SMs while a co-runner kernel
 * occupies the released SMs, and the pair finishes far sooner than
 * time-sharing the whole GPU — plus the Section III.D.2 comparison
 * of per-layer optSM vs a static max-Util allocation.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/sim/gpu_sim.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/kernel_scheduler.hh"

using namespace pcnn;

namespace {

/** A generic compute co-runner sized to keep the freed SMs busy. */
KernelDesc
coRunner(std::size_t grid)
{
    KernelDesc k;
    k.name = "co-runner";
    k.gridSize = grid;
    k.ctaWorkFlops = 2e7;
    k.blockSize = 256;
    k.issueDensity = 0.6;
    k.bytesPerFlop = 0.02;
    return k;
}

} // namespace

int
main()
{
    const GpuSpec gpu = k20c();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    const GpuSim sim(gpu);

    // ---- co-location on the freed SMs ------------------------------
    TextTable table({"Layer", "optSM", "Freed SMs", "CNN alone (ms)",
                     "CNN co-located (ms)", "Co-runner (ms)",
                     "Sequential total (ms)", "Co-located total (ms)"});

    for (const LayerSchedule &ls : plan.layers) {
        const SgemmModel model(gpu, ls.kernel.config);
        KernelDesc cnn;
        cnn.name = ls.layer.name;
        cnn.gridSize = model.gridSize(ls.gemm) * ls.layer.gemmCount();
        cnn.ctaWorkFlops = model.ctaWorkFlops(ls.gemm);
        cnn.blockSize = ls.kernel.config.tile.blockSize;
        cnn.issueDensity = model.timingDensity();
        cnn.bytesPerFlop = model.trafficBytesPerFlop();

        const std::size_t opt = ls.kernel.optSM;
        const std::size_t freed = gpu.numSMs - opt;
        if (freed == 0)
            continue;

        const KernelDesc other = coRunner(freed * 3);

        // CNN confined to its optSM SMs, co-runner on the rest.
        const PartitionedResult together = sim.runPartitioned(
            {{cnn, 0, opt, ls.kernel.optTLP},
             {other, opt, gpu.numSMs, 2}},
            true);

        // Sequential baseline: each kernel gets the whole GPU.
        LaunchConfig whole;
        whole.scheduler = SchedKind::RoundRobin;
        whole.tlpLimit = ls.kernel.optTLP;
        const SimResult cnn_alone = sim.runKernel(cnn, whole);
        LaunchConfig whole2 = whole;
        whole2.tlpLimit = 2;
        const SimResult other_alone = sim.runKernel(other, whole2);

        table.addRow(
            {ls.layer.name, TextTable::num(opt),
             TextTable::num(freed), bench::ms(cnn_alone.timeS),
             bench::ms(together.kernelTimeS[0]),
             bench::ms(together.kernelTimeS[1]),
             bench::ms(cnn_alone.timeS + other_alone.timeS),
             bench::ms(together.timeS)});
    }
    printSection("Extension — co-location on freed SMs (K20c, "
                 "AlexNet batch 1)",
                 table.render());

    // ---- per-layer optSM vs static max-Util allocation --------------
    const RuntimeKernelScheduler rt(gpu);
    std::size_t max_opt = 0;
    for (const LayerSchedule &ls : plan.layers)
        max_opt = std::max(max_opt, ls.kernel.optSM);

    ExecPolicy fixed = pcnnPolicy();
    fixed.fixedSmAllocation = max_opt;

    const SimResult per_layer = rt.execute(plan, pcnnPolicy());
    const SimResult static_alloc = rt.execute(plan, fixed);
    const SimResult whole_gpu = rt.execute(plan, baselinePolicy());

    TextTable alloc({"Allocation", "Latency (ms)", "Energy (J)",
                     "Static energy (J)"});
    alloc.addRow({"whole GPU, RR (hardware)",
                  bench::ms(whole_gpu.timeS),
                  TextTable::num(whole_gpu.energy.total(), 3),
                  TextTable::num(whole_gpu.energy.staticJ, 3)});
    alloc.addRow({"static max-Util SMs (" +
                      std::to_string(max_opt) + ") for all layers",
                  bench::ms(static_alloc.timeS),
                  TextTable::num(static_alloc.energy.total(), 3),
                  TextTable::num(static_alloc.energy.staticJ, 3)});
    alloc.addRow({"per-layer optSM (P-CNN)",
                  bench::ms(per_layer.timeS),
                  TextTable::num(per_layer.energy.total(), 3),
                  TextTable::num(per_layer.energy.staticJ, 3)});
    printSection("Extension — static vs per-layer SM allocation "
                 "(Section III.D.2)",
                 alloc.render());
    bench::paperNote("'we should allocate SMs according to the Util "
                     "in each layer' — per-layer optSM undercuts the "
                     "static max-Util allocation");
    return 0;
}
