/**
 * @file
 * Reproduces Fig. 3: user satisfaction vs runtime for the three task
 * classes, plus the energy-consumption curve that motivates slowing
 * down inside the imperceptible region.
 *
 * SoC_time is evaluated from the implemented satisfaction model; the
 * energy curve runs an actual AlexNet plan across the DVFS levels so
 * the "energy falls, then plateaus past T_e" shape comes from the
 * simulator rather than from a sketch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/csv.hh"
#include "gpu/dvfs.hh"
#include "nn/model_zoo.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/satisfaction.hh"

using namespace pcnn;

int
main()
{
    const UserRequirement interactive =
        inferRequirement(ageDetectionApp());
    const UserRequirement real_time =
        inferRequirement(videoSurveillanceApp());
    const UserRequirement background =
        inferRequirement(imageTaggingApp());

    // SoC_time across the latency axis.
    const double lat[] = {0.005, 0.016, 0.017, 0.05,  0.1, 0.2,
                          0.5,   1.0,   2.0,   2.999, 3.0, 5.0};
    TextTable curve({"Latency (s)", "Interactive", "Real-time (60FPS)",
                     "Background"});
    CsvWriter csv({"latency_s", "interactive", "real_time",
                   "background"});
    for (double t : lat) {
        curve.addRow({TextTable::num(t, 3),
                      TextTable::num(socTime(t, interactive), 3),
                      TextTable::num(socTime(t, real_time), 3),
                      TextTable::num(socTime(t, background), 3)});
        csv.addRow({TextTable::num(t, 3),
                    TextTable::num(socTime(t, interactive), 4),
                    TextTable::num(socTime(t, real_time), 4),
                    TextTable::num(socTime(t, background), 4)});
    }
    printSection("Fig. 3 — SoC_time vs runtime per task class",
                 curve.render());
    csv.writeFile("fig3_soc_time.csv");

    // Energy vs runtime: slow the same work down through DVFS.
    const DvfsModel dvfs(k20c());
    TextTable energy({"DVFS level", "Runtime (ms)", "Task energy (J)",
                      "Avg power (W)"});
    for (double level : DvfsModel::levels()) {
        const GpuSpec gpu = dvfs.at(level);
        const OfflineCompiler compiler(gpu);
        const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
        const RuntimeKernelScheduler rt(gpu);
        const SimResult r = rt.execute(plan, pcnnPolicy());
        energy.addRow({TextTable::num(level, 2), bench::ms(r.timeS),
                       TextTable::num(r.energy.total(), 3),
                       TextTable::num(r.averagePowerW(), 1)});
    }
    printSection("Fig. 3 (energy curve) — slowing the same work down",
                 energy.render());
    bench::paperNote("imperceptible until T_i, linear decay to T_t, "
                     "0 beyond; real-time has no tolerable region; "
                     "background is always satisfied; power falls "
                     "faster than runtime grows until the static "
                     "floor (T_e) is reached");
    return 0;
}
