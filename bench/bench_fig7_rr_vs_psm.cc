/**
 * @file
 * Reproduces Fig. 7: Round-Robin vs Priority-SM CTA scheduling.
 *
 * First the paper's illustration (4 SMs, 4 CTAs, optTLP 2), then the
 * same comparison on a real layer (AlexNet CONV5, K20, batch 1).
 * Expected shape: PSM achieves nearly RR's performance using half
 * (or fewer) of the SMs, so gating the rest saves energy at equal
 * service.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/sim/gpu_sim.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/kernel_scheduler.hh"

using namespace pcnn;

int
main()
{
    // ---- the Fig. 7 illustration -----------------------------------
    GpuSpec toy = jetsonTx1();
    toy.name = "Toy4";
    toy.numSMs = 4;
    const GpuSim sim(toy);

    KernelDesc k;
    k.name = "fig7";
    k.gridSize = 4;
    k.ctaWorkFlops = 1e7;
    k.blockSize = 256;
    k.issueDensity = 0.6;

    LaunchConfig rr;
    rr.scheduler = SchedKind::RoundRobin;
    rr.tlpLimit = 2;
    LaunchConfig psm;
    psm.scheduler = SchedKind::PrioritySM;
    psm.tlpLimit = 2;
    psm.smsAllowed = 2;
    psm.powerGateIdle = true;

    const SimResult r_rr = sim.runKernel(k, rr);
    const SimResult r_psm = sim.runKernel(k, psm);

    TextTable toy_table({"Scheduler", "SMs used", "SMs powered",
                         "Time (us)", "Energy (mJ)", "Avg power (W)"});
    for (const auto &[name, r] :
         {std::pair<const char *, const SimResult &>{"RR", r_rr},
          {"PSM", r_psm}}) {
        toy_table.addRow(
            {name, TextTable::num(int64_t(r.smsUsed)),
             TextTable::num(int64_t(r.smsPowered)),
             TextTable::num(r.timeS * 1e6, 1),
             TextTable::num(r.energy.total() * 1e3, 3),
             TextTable::num(r.averagePowerW(), 2)});
    }
    printSection("Fig. 7 — RR vs PSM (4 SMs, 4 CTAs, optTLP 2)",
                 toy_table.render());

    // ---- the same effect on a real plan -----------------------------
    const GpuSpec gpu = k20c();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    const RuntimeKernelScheduler rt(gpu);
    const SimResult base = rt.execute(plan, baselinePolicy());
    const SimResult opt = rt.execute(plan, pcnnPolicy());

    TextTable real_table({"Policy", "Latency (ms)", "Energy (J)",
                          "Static energy (J)"});
    real_table.addRow({"RR / all SMs", bench::ms(base.timeS),
                       TextTable::num(base.energy.total(), 3),
                       TextTable::num(base.energy.staticJ, 3)});
    real_table.addRow({"PSM / optSM + gating", bench::ms(opt.timeS),
                       TextTable::num(opt.energy.total(), 3),
                       TextTable::num(opt.energy.staticJ, 3)});
    printSection("Fig. 7 (applied) — AlexNet batch 1 on K20c",
                 real_table.render());
    bench::paperNote("PSM is better than RR: nearly the same "
                     "performance with half the SM resources");
    return 0;
}
