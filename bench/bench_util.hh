/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef PCNN_BENCH_BENCH_UTIL_HH
#define PCNN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/table.hh"

namespace pcnn {
namespace bench {

/** Milliseconds with sensible precision. */
inline std::string
ms(double seconds)
{
    return TextTable::num(seconds * 1e3, seconds < 0.01 ? 2 : 1);
}

/** Table III-style cell: latency or 'x' on out-of-memory. */
inline std::string
msOrX(bool oom, double seconds)
{
    return oom ? "x" : ms(seconds);
}

/** Print the paper reference line under a reproduced artifact. */
inline void
paperNote(const std::string &note)
{
    std::printf("paper: %s\n", note.c_str());
    std::fflush(stdout);
}

} // namespace bench
} // namespace pcnn

#endif // PCNN_BENCH_BENCH_UTIL_HH
