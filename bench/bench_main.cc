/**
 * @file
 * Shared main for the google-benchmark binaries: stamps the JSON
 * context with the host identity the numbers depend on — CPU model,
 * SIMD feature flags, cache sizes, hardware threads, and the kernel
 * tier the dispatcher would pick — so a BENCH_*.json snapshot is
 * interpretable without the machine it ran on.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <thread>

#include "tensor/microkernel.hh"

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const pcnn::CpuFeatures &cpu = pcnn::cpuFeatures();
    const pcnn::CacheInfo &ci = pcnn::cacheInfo();
    benchmark::AddCustomContext("cpu_model", cpu.model);
    benchmark::AddCustomContext("cpu_features", cpu.str());
    benchmark::AddCustomContext("cache_l1d_bytes",
                                std::to_string(ci.l1d));
    benchmark::AddCustomContext("cache_l2_bytes",
                                std::to_string(ci.l2));
    benchmark::AddCustomContext("cache_l3_bytes",
                                std::to_string(ci.l3));
    benchmark::AddCustomContext(
        "hardware_threads",
        std::to_string(std::thread::hardware_concurrency()));
    benchmark::AddCustomContext(
        "kernel_tier_best",
        pcnn::kernelTierName(pcnn::bestKernelTier()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
