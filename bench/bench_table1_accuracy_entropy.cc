/**
 * @file
 * Reproduces Table I: accuracy vs entropy across network capacities.
 *
 * The paper shows AlexNet (79.4% / 1.05), VGGNet (86.6% / 0.88) and
 * GoogLeNet (88.5% / 0.83) — accuracy rises as output entropy falls.
 * Without ImageNet-trained models we train the three MiniNet
 * capacities on the synthetic task (DESIGN.md substitution) and
 * report the same two columns; the relationship, not the absolute
 * numbers, is the claim under test.
 */

#include <cstdio>

#include "common/table.hh"
#include "data/synthetic.hh"
#include "nn/model_zoo.hh"
#include "train/trainer.hh"

using namespace pcnn;

int
main()
{
    // Difficulty high enough that capacity matters: the three tiers
    // must spread out in accuracy, as the three ImageNet networks do.
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.9;
    cfg.maxShift = 3;
    cfg.seed = 90;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(2048);
    Dataset test_set = task.generate(512);

    TextTable table({"CNNs (substitute)", "Accuracy", "Entropy"});
    const MiniSize sizes[] = {MiniSize::Small, MiniSize::Medium,
                              MiniSize::Large};
    const char *analog[] = {"MiniNet-S (AlexNet analog)",
                            "MiniNet-M (VGGNet analog)",
                            "MiniNet-L (GoogLeNet analog)"};

    for (int i = 0; i < 3; ++i) {
        Rng rng(91);
        Network net = makeMiniNet(sizes[i], rng);
        TrainConfig tc;
        tc.epochs = 8;
        // A gentle learning rate keeps the deepest tier stable.
        tc.sgd.learningRate = 0.02;
        Trainer trainer(net, tc);
        trainer.fit(train_set);
        const EvalResult r = trainer.evaluate(test_set);
        table.addRow({analog[i],
                      TextTable::num(r.accuracy * 100.0, 1) + "%",
                      TextTable::num(r.meanEntropy, 2)});
    }

    printSection("Table I — accuracy vs entropy", table.render());
    std::printf("paper: AlexNet 79.4%%/1.05, VGGNet 86.6%%/0.88, "
                "GoogLeNet 88.5%%/0.83 — accuracy rises as entropy "
                "falls\n");
    return 0;
}
