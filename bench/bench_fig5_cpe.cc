/**
 * @file
 * Reproduces Fig. 5: computation efficiency cpE (Eq. 3) of each
 * AlexNet conv layer under cuBLAS and cuDNN on K20 and TX1
 * (non-batched).
 *
 * Expected shape: cpE < 35% on K20, < 15% for the last two layers;
 * cuDNN beats cuBLAS on K20 but *loses* to it on TX1 (its small
 * 32x32 tile is bandwidth-hungry on the 25.6 GB/s mobile part).
 */

#include <cstdio>

#include "bench_util.hh"
#include "libs/dl_library.hh"
#include "nn/model_zoo.hh"

using namespace pcnn;

int
main()
{
    const NetDescriptor net = alexNet();
    const GpuSpec gpus[] = {k20c(), jetsonTx1()};
    const auto libs = allLibraries();

    std::vector<std::string> header{"GPU", "Library"};
    for (const ConvSpec &c : net.convs)
        header.push_back(c.name);
    header.push_back("mean");
    TextTable table(header);

    for (const GpuSpec &gpu : gpus) {
        for (const auto &lib : libs) {
            if (lib->name() == "Nervana")
                continue; // Fig. 5 compares cuBLAS and cuDNN
            std::vector<std::string> row{gpu.name, lib->name()};
            double sum = 0.0;
            for (const ConvSpec &layer : net.convs) {
                const double t = lib->layerTime(gpu, layer, 1);
                const double cpe =
                    layer.flopsPerImage() / t / gpu.peakFlops();
                sum += cpe;
                row.push_back(TextTable::num(cpe * 100.0, 1) + "%");
            }
            row.push_back(
                TextTable::num(sum / double(net.convs.size()) * 100.0,
                               1) +
                "%");
            table.addRow(row);
        }
        table.addSeparator();
    }

    printSection("Fig. 5 — compute efficiency cpE per CONV layer",
                 table.render());
    bench::paperNote("K20 cpE < 35% (last two layers < 15%); TX1 "
                     "cuDNN mean ~40%, below cuBLAS");
    return 0;
}
