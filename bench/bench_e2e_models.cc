/**
 * @file
 * End-to-end model-level benchmarks of the inference hot path.
 *
 * The microbenches in bench_micro_kernels.cc time single kernels;
 * this bench times whole-network forward passes of the trainable
 * model_zoo nets (AlexNet-style, VGG-style, inception-style) at batch
 * 1/4/16, both at full resolution and with 25% perforation, so
 * data-layout work that hides between kernels — im2col, panel
 * packing, scratch churn, bias/interpolation copies — shows up in the
 * number that matters: images per second through a real layer graph.
 *
 * tools/run_bench.sh snapshots this bench as BENCH_pr3.json.
 */

#include <benchmark/benchmark.h>

#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/conv_layer.hh"
#include "nn/fusion.hh"
#include "nn/graph/compiled_graph.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

/** Which model_zoo builder a benchmark instance runs. */
enum class Zoo
{
    AlexStyle,
    VggStyle,
    InceptionStyle,
};

Network
makeNet(Zoo zoo, Rng &rng)
{
    switch (zoo) {
      case Zoo::AlexStyle:
        return makeMiniAlexNet(rng);
      case Zoo::VggStyle:
        return makeMiniVgg(rng);
      case Zoo::InceptionStyle:
        return makeMiniInception(rng);
    }
    return makeMiniAlexNet(rng);
}

/**
 * Forward the net over a fixed random batch. range(0) = batch size,
 * range(1) = percent of conv output positions computed (100 = full,
 * lower = perforated inference with nearest-neighbour fill).
 */
void
runForward(benchmark::State &state, Zoo zoo)
{
    const auto batch = std::size_t(state.range(0));
    const auto percent = std::size_t(state.range(1));
    Rng rng(42);
    Network net = makeNet(zoo, rng);

    const Shape in = net.inputShape();
    Tensor x(Shape{batch, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    if (percent < 100) {
        for (ConvLayer *c : net.convLayers())
            c->setComputedPositions(c->fullPositions() * percent / 100);
    }

    // Warm-up grows every scratch buffer and weight panel; after it,
    // the steady-state forward must not touch the allocator, and the
    // probe below publishes the measured count per JSON row (the
    // runtime cross-check of the pcnn_analyze hot-path-alloc rule).
    Tensor y;
    net.forwardInto(x, false, y);
    std::uint64_t steady_allocs = 0;
    for (auto _ : state) {
        ScopedAllocCount probe;
        net.forwardInto(x, false, y);
        benchmark::DoNotOptimize(y.data());
        steady_allocs += probe.allocs();
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(batch));
    state.counters["img/s"] = benchmark::Counter(
        double(state.iterations()) * double(batch),
        benchmark::Counter::kIsRate);
    state.counters["steady_allocs"] = double(steady_allocs);
    state.counters["alloc_counting"] =
        allocCountingEnabled() ? 1.0 : 0.0;
    // Steady activation+scratch footprint of the path that actually
    // ran (the legacy ping-pong chain unless PCNN_GRAPH=1), and the
    // arena share of it when the compiled graph is on.
    state.counters["steady_mem_bytes"] =
        double(net.steadyMemoryBytes());
    state.counters["peak_arena_bytes"] =
        net.compiledGraph() != nullptr
            ? double(net.compiledGraph()->arenaBytes())
            : 0.0;
}

void
BM_E2EMiniAlexNet(benchmark::State &state)
{
    runForward(state, Zoo::AlexStyle);
}

void
BM_E2EMiniVgg(benchmark::State &state)
{
    runForward(state, Zoo::VggStyle);
}

void
BM_E2EMiniInception(benchmark::State &state)
{
    runForward(state, Zoo::InceptionStyle);
}

#define PCNN_E2E_ARGS                                                  \
    ->Args({1, 100})                                                   \
        ->Args({4, 100})                                               \
        ->Args({16, 100})                                              \
        ->Args({1, 25})                                                \
        ->Args({4, 25})                                                \
        ->Args({16, 25})

BENCHMARK(BM_E2EMiniAlexNet) PCNN_E2E_ARGS;
BENCHMARK(BM_E2EMiniVgg) PCNN_E2E_ARGS;
BENCHMARK(BM_E2EMiniInception) PCNN_E2E_ARGS;

#undef PCNN_E2E_ARGS

// --------------------------------- compiled-graph A/B (§5j)

/**
 * Whole-network forward through the compiled graph vs. the legacy
 * ping-pong chain, same net and input (logits are bitwise identical
 * by contract; tests/test_graph.cc asserts it). range(0) = batch,
 * range(1) = 0 (legacy) / 1 (compiled graph).
 *
 * Each row carries the §5j acceptance counters alongside img/s and
 * steady_allocs: steady_mem_bytes is the measured path's steady
 * activation+scratch footprint, baseline_scratch_bytes the legacy
 * chain's footprint on a fresh twin network (the memory the arena
 * replaces — constant across the 0/1 rows so the drop is readable
 * off any row), and peak_arena_bytes the single arena allocation
 * (0 on legacy rows).
 *
 * tools/run_bench.sh snapshots this family as BENCH_pr9.json.
 */
void
runGraphForward(benchmark::State &state, Zoo zoo)
{
    const auto batch = std::size_t(state.range(0));
    const bool graph = state.range(1) != 0;
    Rng rng(42);
    Network net = makeNet(zoo, rng);

    const Shape in = net.inputShape();
    Tensor x(Shape{batch, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    // Legacy steady footprint on a fresh twin (same seed, so same
    // weights and shapes) — the pre-arena baseline for this row.
    Rng twinRng(42);
    Network twin = makeNet(zoo, twinRng);
    setGraphEnabled(false);
    Tensor y;
    twin.forwardInto(x, false, y);
    twin.forwardInto(x, false, y);
    const std::size_t baseline = twin.steadyMemoryBytes();

    setGraphEnabled(graph);
    net.forwardInto(x, false, y); // warm: arena, pool, panels
    std::uint64_t steady_allocs = 0;
    for (auto _ : state) {
        ScopedAllocCount probe;
        net.forwardInto(x, false, y);
        benchmark::DoNotOptimize(y.data());
        steady_allocs += probe.allocs();
    }
    setGraphEnabled(false);

    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(batch));
    state.counters["img/s"] = benchmark::Counter(
        double(state.iterations()) * double(batch),
        benchmark::Counter::kIsRate);
    state.counters["steady_allocs"] = double(steady_allocs);
    state.counters["alloc_counting"] =
        allocCountingEnabled() ? 1.0 : 0.0;
    state.counters["steady_mem_bytes"] =
        double(net.steadyMemoryBytes());
    state.counters["baseline_scratch_bytes"] = double(baseline);
    state.counters["peak_arena_bytes"] =
        net.compiledGraph() != nullptr
            ? double(net.compiledGraph()->arenaBytes())
            : 0.0;
}

void
BM_E2EGraphMiniAlexNet(benchmark::State &state)
{
    runGraphForward(state, Zoo::AlexStyle);
}

void
BM_E2EGraphMiniVgg(benchmark::State &state)
{
    runGraphForward(state, Zoo::VggStyle);
}

void
BM_E2EGraphMiniInception(benchmark::State &state)
{
    runGraphForward(state, Zoo::InceptionStyle);
}

#define PCNN_E2E_GRAPH_ARGS                                            \
    ->ArgNames({"batch", "graph"})                                     \
        ->ArgsProduct({{1, 16}, {0, 1}})

BENCHMARK(BM_E2EGraphMiniAlexNet) PCNN_E2E_GRAPH_ARGS;
BENCHMARK(BM_E2EGraphMiniVgg) PCNN_E2E_GRAPH_ARGS;
BENCHMARK(BM_E2EGraphMiniInception) PCNN_E2E_GRAPH_ARGS;

#undef PCNN_E2E_GRAPH_ARGS

// ------------------------------- per-algorithm layer breakdowns

/**
 * One conv layer, one algorithm, batch 1: the per-shape latency
 * table behind the conv-algorithm cost model (DESIGN.md §5e).
 * range(0) indexes the shape sweep below — the MiniVgg 3x3 layers
 * plus two full-size VGG-16 shapes; range(1) is the ConvAlgo
 * encoding (0 = im2col, 2 = winograd) or -1 for cost-model
 * dispatch, so the "auto" rows expose the dispatch regret directly.
 *
 * tools/run_bench.sh snapshots these rows (with the winograd
 * microbench) as BENCH_pr4.json.
 */
struct AlgoShape
{
    const char *name;
    std::size_t inC, outC, hw;
};

constexpr AlgoShape kAlgoShapes[] = {
    {"minivgg_conv1_1", 1, 12, 16}, {"minivgg_conv1_2", 12, 12, 16},
    {"minivgg_conv2_1", 12, 24, 8}, {"minivgg_conv2_2", 24, 24, 8},
    {"vgg16_conv3", 128, 128, 28},  {"vgg16_conv2", 64, 64, 56},
};

void
BM_ConvAlgoLayer(benchmark::State &state)
{
    const AlgoShape &sh = kAlgoShapes[state.range(0)];
    Rng rng(42);
    ConvSpec spec;
    spec.name = sh.name;
    spec.inC = sh.inC;
    spec.outC = sh.outC;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;
    spec.inH = spec.inW = sh.hw;
    ConvLayer layer(spec, rng);
    if (state.range(1) >= 0)
        layer.setAlgo(ConvAlgo(int(state.range(1))));

    Tensor x(1, sh.inC, sh.hw, sh.hw);
    x.fillGaussian(rng, 0, 1);
    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
    state.SetLabel(std::string(sh.name) + "/" +
                   convAlgoName(layer.effectiveAlgo(false)));
}

BENCHMARK(BM_ConvAlgoLayer)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5},
                   {int(ConvAlgo::Im2col), int(ConvAlgo::Winograd),
                    -1}});

/**
 * Whole-net MiniVgg forward with the ReLU-folding peephole on vs.
 * off (cost-model conv dispatch either way): the fused-epilogue
 * payoff at the network level.
 */
void
BM_E2EMiniVggReluFolding(benchmark::State &state)
{
    Rng rng(42);
    Network net = makeMiniVgg(rng);
    const Shape in = net.inputShape();
    Tensor x(Shape{1, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    setReluFolding(state.range(0) != 0);
    for (auto _ : state) {
        Tensor y = net.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    setReluFolding(true);
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E2EMiniVggReluFolding)->Arg(0)->Arg(1);

/**
 * Whole-net batch-1 forward with every conv/fc layer on the int8
 * quantized route vs. the fp32 default — the network-level A/B of
 * the DESIGN.md §5i microbench rows. range(0) = model_zoo net,
 * range(1) = 0 (fp32) / 1 (int8, via the process-wide force that
 * the PCNN_QUANTIZE CI leg also uses).
 *
 * Beyond latency, each row carries the accuracy-proxy counters the
 * perforation/precision tuner trades against: top1_match is the
 * fraction of a fixed 16-image probe batch whose argmax survives
 * the precision flip (1.0 on the fp32 rows by construction), and
 * entropy_delta the shift in mean output entropy — the paper's
 * Eq. 10 confidence signal. steady_allocs must stay 0 when
 * alloc_counting = 1: quantized panels and activation buffers are
 * grow-only, so the steady-state int8 forward is allocation-free
 * like the fp32 path.
 */
void
BM_E2EQuantized(benchmark::State &state)
{
    const Zoo zoo = Zoo(int(state.range(0)));
    const bool int8 = state.range(1) != 0;
    Rng rng(42);
    Network net = makeNet(zoo, rng);
    const Shape in = net.inputShape();

    // Accuracy probe: fp32 reference labels/entropy on a fixed
    // batch, then the same batch in the measured mode.
    const std::size_t probe = 16;
    Tensor xp(Shape{probe, in.c, in.h, in.w});
    xp.fillGaussian(rng, 0, 1);
    setQuantizeForced(false);
    const Tensor ref = net.forward(xp, false);
    const std::size_t classes = ref.size() / probe;
    const double ref_entropy = batchEntropy(softmax(ref));
    setQuantizeForced(int8);
    const Tensor got = net.forward(xp, false);
    std::size_t matches = 0;
    for (std::size_t i = 0; i < probe; ++i) {
        const float *r = ref.data() + i * classes;
        const float *q = got.data() + i * classes;
        std::size_t rb = 0, qb = 0;
        for (std::size_t j = 1; j < classes; ++j) {
            if (r[j] > r[rb])
                rb = j;
            if (q[j] > q[qb])
                qb = j;
        }
        matches += (rb == qb) ? 1 : 0;
    }
    const double got_entropy = batchEntropy(softmax(got));

    Tensor x(Shape{1, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);
    Tensor y;
    net.forwardInto(x, false, y); // warm: quantize panels, scratch
    std::uint64_t steady_allocs = 0;
    for (auto _ : state) {
        ScopedAllocCount alloc_probe;
        net.forwardInto(x, false, y);
        benchmark::DoNotOptimize(y.data());
        steady_allocs += alloc_probe.allocs();
    }
    clearQuantizeForced();

    state.SetItemsProcessed(int64_t(state.iterations()));
    state.counters["img/s"] = benchmark::Counter(
        double(state.iterations()), benchmark::Counter::kIsRate);
    state.counters["top1_match"] =
        double(matches) / double(probe);
    state.counters["entropy_delta"] = got_entropy - ref_entropy;
    state.counters["steady_allocs"] = double(steady_allocs);
    state.counters["alloc_counting"] =
        allocCountingEnabled() ? 1.0 : 0.0;
}
BENCHMARK(BM_E2EQuantized)
    ->ArgNames({"zoo", "int8"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}});

/**
 * Alternating full/perforated forwards through one net: the
 * scratch-churn shape (gemmOut shrinking and regrowing every call)
 * that the grow-only scratch fix targets.
 */
void
BM_E2EAlternatingPerforation(benchmark::State &state)
{
    Rng rng(43);
    Network net = makeMiniInception(rng);
    const Shape in = net.inputShape();
    Tensor x(Shape{1, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    bool perf = false;
    for (auto _ : state) {
        for (ConvLayer *c : net.convLayers())
            c->setComputedPositions(
                perf ? c->fullPositions() / 4 : 0);
        perf = !perf;
        Tensor y = net.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E2EAlternatingPerforation);

} // namespace
} // namespace pcnn
