/**
 * @file
 * End-to-end model-level benchmarks of the inference hot path.
 *
 * The microbenches in bench_micro_kernels.cc time single kernels;
 * this bench times whole-network forward passes of the trainable
 * model_zoo nets (AlexNet-style, VGG-style, inception-style) at batch
 * 1/4/16, both at full resolution and with 25% perforation, so
 * data-layout work that hides between kernels — im2col, panel
 * packing, scratch churn, bias/interpolation copies — shows up in the
 * number that matters: images per second through a real layer graph.
 *
 * tools/run_bench.sh snapshots this bench as BENCH_pr3.json.
 */

#include <benchmark/benchmark.h>

#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/conv_layer.hh"
#include "nn/fusion.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"

namespace pcnn {
namespace {

/** Which model_zoo builder a benchmark instance runs. */
enum class Zoo
{
    AlexStyle,
    VggStyle,
    InceptionStyle,
};

Network
makeNet(Zoo zoo, Rng &rng)
{
    switch (zoo) {
      case Zoo::AlexStyle:
        return makeMiniAlexNet(rng);
      case Zoo::VggStyle:
        return makeMiniVgg(rng);
      case Zoo::InceptionStyle:
        return makeMiniInception(rng);
    }
    return makeMiniAlexNet(rng);
}

/**
 * Forward the net over a fixed random batch. range(0) = batch size,
 * range(1) = percent of conv output positions computed (100 = full,
 * lower = perforated inference with nearest-neighbour fill).
 */
void
runForward(benchmark::State &state, Zoo zoo)
{
    const auto batch = std::size_t(state.range(0));
    const auto percent = std::size_t(state.range(1));
    Rng rng(42);
    Network net = makeNet(zoo, rng);

    const Shape in = net.inputShape();
    Tensor x(Shape{batch, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    if (percent < 100) {
        for (ConvLayer *c : net.convLayers())
            c->setComputedPositions(c->fullPositions() * percent / 100);
    }

    // Warm-up grows every scratch buffer and weight panel; after it,
    // the steady-state forward must not touch the allocator, and the
    // probe below publishes the measured count per JSON row (the
    // runtime cross-check of the pcnn_analyze hot-path-alloc rule).
    Tensor y;
    net.forwardInto(x, false, y);
    std::uint64_t steady_allocs = 0;
    for (auto _ : state) {
        ScopedAllocCount probe;
        net.forwardInto(x, false, y);
        benchmark::DoNotOptimize(y.data());
        steady_allocs += probe.allocs();
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(batch));
    state.counters["img/s"] = benchmark::Counter(
        double(state.iterations()) * double(batch),
        benchmark::Counter::kIsRate);
    state.counters["steady_allocs"] = double(steady_allocs);
    state.counters["alloc_counting"] =
        allocCountingEnabled() ? 1.0 : 0.0;
}

void
BM_E2EMiniAlexNet(benchmark::State &state)
{
    runForward(state, Zoo::AlexStyle);
}

void
BM_E2EMiniVgg(benchmark::State &state)
{
    runForward(state, Zoo::VggStyle);
}

void
BM_E2EMiniInception(benchmark::State &state)
{
    runForward(state, Zoo::InceptionStyle);
}

#define PCNN_E2E_ARGS                                                  \
    ->Args({1, 100})                                                   \
        ->Args({4, 100})                                               \
        ->Args({16, 100})                                              \
        ->Args({1, 25})                                                \
        ->Args({4, 25})                                                \
        ->Args({16, 25})

BENCHMARK(BM_E2EMiniAlexNet) PCNN_E2E_ARGS;
BENCHMARK(BM_E2EMiniVgg) PCNN_E2E_ARGS;
BENCHMARK(BM_E2EMiniInception) PCNN_E2E_ARGS;

#undef PCNN_E2E_ARGS

// ------------------------------- per-algorithm layer breakdowns

/**
 * One conv layer, one algorithm, batch 1: the per-shape latency
 * table behind the conv-algorithm cost model (DESIGN.md §5e).
 * range(0) indexes the shape sweep below — the MiniVgg 3x3 layers
 * plus two full-size VGG-16 shapes; range(1) is the ConvAlgo
 * encoding (0 = im2col, 2 = winograd) or -1 for cost-model
 * dispatch, so the "auto" rows expose the dispatch regret directly.
 *
 * tools/run_bench.sh snapshots these rows (with the winograd
 * microbench) as BENCH_pr4.json.
 */
struct AlgoShape
{
    const char *name;
    std::size_t inC, outC, hw;
};

constexpr AlgoShape kAlgoShapes[] = {
    {"minivgg_conv1_1", 1, 12, 16}, {"minivgg_conv1_2", 12, 12, 16},
    {"minivgg_conv2_1", 12, 24, 8}, {"minivgg_conv2_2", 24, 24, 8},
    {"vgg16_conv3", 128, 128, 28},  {"vgg16_conv2", 64, 64, 56},
};

void
BM_ConvAlgoLayer(benchmark::State &state)
{
    const AlgoShape &sh = kAlgoShapes[state.range(0)];
    Rng rng(42);
    ConvSpec spec;
    spec.name = sh.name;
    spec.inC = sh.inC;
    spec.outC = sh.outC;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;
    spec.inH = spec.inW = sh.hw;
    ConvLayer layer(spec, rng);
    if (state.range(1) >= 0)
        layer.setAlgo(ConvAlgo(int(state.range(1))));

    Tensor x(1, sh.inC, sh.hw, sh.hw);
    x.fillGaussian(rng, 0, 1);
    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
    state.SetLabel(std::string(sh.name) + "/" +
                   convAlgoName(layer.effectiveAlgo(false)));
}

BENCHMARK(BM_ConvAlgoLayer)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5},
                   {int(ConvAlgo::Im2col), int(ConvAlgo::Winograd),
                    -1}});

/**
 * Whole-net MiniVgg forward with the ReLU-folding peephole on vs.
 * off (cost-model conv dispatch either way): the fused-epilogue
 * payoff at the network level.
 */
void
BM_E2EMiniVggReluFolding(benchmark::State &state)
{
    Rng rng(42);
    Network net = makeMiniVgg(rng);
    const Shape in = net.inputShape();
    Tensor x(Shape{1, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    setReluFolding(state.range(0) != 0);
    for (auto _ : state) {
        Tensor y = net.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    setReluFolding(true);
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E2EMiniVggReluFolding)->Arg(0)->Arg(1);

/**
 * Alternating full/perforated forwards through one net: the
 * scratch-churn shape (gemmOut shrinking and regrowing every call)
 * that the grow-only scratch fix targets.
 */
void
BM_E2EAlternatingPerforation(benchmark::State &state)
{
    Rng rng(43);
    Network net = makeMiniInception(rng);
    const Shape in = net.inputShape();
    Tensor x(Shape{1, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    bool perf = false;
    for (auto _ : state) {
        for (ConvLayer *c : net.convLayers())
            c->setComputedPositions(
                perf ? c->fullPositions() / 4 : 0);
        perf = !perf;
        Tensor y = net.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E2EAlternatingPerforation);

} // namespace
} // namespace pcnn
