/**
 * @file
 * End-to-end model-level benchmarks of the inference hot path.
 *
 * The microbenches in bench_micro_kernels.cc time single kernels;
 * this bench times whole-network forward passes of the trainable
 * model_zoo nets (AlexNet-style, VGG-style, inception-style) at batch
 * 1/4/16, both at full resolution and with 25% perforation, so
 * data-layout work that hides between kernels — im2col, panel
 * packing, scratch churn, bias/interpolation copies — shows up in the
 * number that matters: images per second through a real layer graph.
 *
 * tools/run_bench.sh snapshots this bench as BENCH_pr3.json.
 */

#include <benchmark/benchmark.h>

#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"

namespace pcnn {
namespace {

/** Which model_zoo builder a benchmark instance runs. */
enum class Zoo
{
    AlexStyle,
    VggStyle,
    InceptionStyle,
};

Network
makeNet(Zoo zoo, Rng &rng)
{
    switch (zoo) {
      case Zoo::AlexStyle:
        return makeMiniAlexNet(rng);
      case Zoo::VggStyle:
        return makeMiniVgg(rng);
      case Zoo::InceptionStyle:
        return makeMiniInception(rng);
    }
    return makeMiniAlexNet(rng);
}

/**
 * Forward the net over a fixed random batch. range(0) = batch size,
 * range(1) = percent of conv output positions computed (100 = full,
 * lower = perforated inference with nearest-neighbour fill).
 */
void
runForward(benchmark::State &state, Zoo zoo)
{
    const auto batch = std::size_t(state.range(0));
    const auto percent = std::size_t(state.range(1));
    Rng rng(42);
    Network net = makeNet(zoo, rng);

    const Shape in = net.inputShape();
    Tensor x(Shape{batch, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    if (percent < 100) {
        for (ConvLayer *c : net.convLayers())
            c->setComputedPositions(c->fullPositions() * percent / 100);
    }

    for (auto _ : state) {
        Tensor y = net.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(batch));
    state.counters["img/s"] = benchmark::Counter(
        double(state.iterations()) * double(batch),
        benchmark::Counter::kIsRate);
}

void
BM_E2EMiniAlexNet(benchmark::State &state)
{
    runForward(state, Zoo::AlexStyle);
}

void
BM_E2EMiniVgg(benchmark::State &state)
{
    runForward(state, Zoo::VggStyle);
}

void
BM_E2EMiniInception(benchmark::State &state)
{
    runForward(state, Zoo::InceptionStyle);
}

#define PCNN_E2E_ARGS                                                  \
    ->Args({1, 100})                                                   \
        ->Args({4, 100})                                               \
        ->Args({16, 100})                                              \
        ->Args({1, 25})                                                \
        ->Args({4, 25})                                                \
        ->Args({16, 25})

BENCHMARK(BM_E2EMiniAlexNet) PCNN_E2E_ARGS;
BENCHMARK(BM_E2EMiniVgg) PCNN_E2E_ARGS;
BENCHMARK(BM_E2EMiniInception) PCNN_E2E_ARGS;

#undef PCNN_E2E_ARGS

/**
 * Alternating full/perforated forwards through one net: the
 * scratch-churn shape (gemmOut shrinking and regrowing every call)
 * that the grow-only scratch fix targets.
 */
void
BM_E2EAlternatingPerforation(benchmark::State &state)
{
    Rng rng(43);
    Network net = makeMiniInception(rng);
    const Shape in = net.inputShape();
    Tensor x(Shape{1, in.c, in.h, in.w});
    x.fillGaussian(rng, 0, 1);

    bool perf = false;
    for (auto _ : state) {
        for (ConvLayer *c : net.convLayers())
            c->setComputedPositions(
                perf ? c->fullPositions() / 4 : 0);
        perf = !perf;
        Tensor y = net.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_E2EAlternatingPerforation);

} // namespace
} // namespace pcnn
