/**
 * @file
 * Extension bench: batching policy under a live request stream.
 *
 * The paper's Table III contrasts batching and non-batching for one
 * request; a service sees a stream. This bench sweeps arrival rates
 * against batching policies for interactive AlexNet on K20c and
 * reports p95 latency, per-image energy and the mean SoC_time —
 * showing the crossover the offline compiler's batch selection
 * navigates: batching wastes satisfaction at low load and saves
 * energy at high load.
 */

#include <cstdio>

#include "bench_util.hh"
#include "nn/model_zoo.hh"
#include "pcnn/runtime/serving_sim.hh"

using namespace pcnn;

int
main()
{
    const ServingSimulator sim(k20c(), alexNet());
    const UserRequirement req = inferRequirement(ageDetectionApp());

    struct Policy
    {
        const char *name;
        std::size_t maxBatch;
        double maxWaitS;
    };
    const Policy policies[] = {
        {"serve-one", 1, 0.0},
        {"batch-8/20ms", 8, 0.020},
        {"batch-32/80ms", 32, 0.080},
    };
    const double rates[] = {2.0, 20.0, 100.0, 300.0};

    TextTable table({"Arrival (req/s)", "Policy", "Mean batch",
                     "p50 (ms)", "p95 (ms)", "Busy", "E/img (J)",
                     "Mean SoC_time"});
    for (double rate : rates) {
        for (const Policy &p : policies) {
            ServingConfig cfg;
            cfg.arrivalRateHz = rate;
            cfg.durationS = rate > 100 ? 4.0 : 12.0;
            cfg.maxBatch = p.maxBatch;
            cfg.maxWaitS = p.maxWaitS;
            cfg.seed = 11;
            const ServingStats s = sim.run(cfg, req);
            table.addRow({TextTable::num(rate, 0), p.name,
                          TextTable::num(s.meanBatch, 1),
                          bench::ms(s.p50LatencyS),
                          bench::ms(s.p95LatencyS),
                          TextTable::num(s.busyFraction, 2),
                          TextTable::num(s.energyPerImageJ, 3),
                          TextTable::num(s.meanSocTime, 2)});
        }
        table.addSeparator();
    }

    printSection("Extension — serving a request stream (AlexNet on "
                 "K20c, interactive requirement)",
                 table.render());
    bench::paperNote("batching pays off only once the stream is "
                     "dense enough to fill batches within the wait "
                     "budget — the stream-level version of the "
                     "Table III / Fig. 4 trade-off");
    return 0;
}
