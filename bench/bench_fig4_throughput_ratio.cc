/**
 * @file
 * Reproduces Fig. 4: ratio of throughput without batching to
 * throughput with batching, per network x platform x library.
 *
 * Expected shape: ratios are well below 1 (below ~50% for cuDNN) —
 * non-batched inference wastes most of the GPU.
 */

#include <cstdio>

#include "bench_util.hh"
#include "libs/dl_library.hh"
#include "nn/model_zoo.hh"

using namespace pcnn;

int
main()
{
    const auto libs = allLibraries();
    const GpuSpec gpus[] = {titanX(), gtx970m(), jetsonTx1()};

    std::vector<std::string> header{"CNNs", "GPU"};
    for (const auto &lib : libs)
        header.push_back(lib->name());
    TextTable table(header);

    for (const NetDescriptor &net : paperNetworks()) {
        for (const GpuSpec &gpu : gpus) {
            std::vector<std::string> row{net.name, gpu.name};
            for (const auto &lib : libs) {
                const LatencyEstimate batched =
                    lib->estimateLatency(gpu, net, net.paperBatch);
                const LatencyEstimate single =
                    lib->estimateLatency(gpu, net, 1);
                if (batched.oom || single.oom) {
                    row.push_back("x");
                } else {
                    row.push_back(TextTable::num(
                        single.throughput() / batched.throughput(),
                        2));
                }
            }
            table.addRow(row);
        }
        table.addSeparator();
    }

    printSection(
        "Fig. 4 — throughput ratio (no-batching / batching)",
        table.render());
    bench::paperNote("ratios below 0.5 for cuDNN across platforms");
    return 0;
}
