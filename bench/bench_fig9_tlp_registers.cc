/**
 * @file
 * Reproduces Fig. 9: TLP vs registers per thread for the 128x128
 * sub-matrix on K20 (curReg 127, minReg 32).
 *
 * Expected shape: a staircase — TLP jumps each time the register
 * budget crosses a divisor boundary of the register file; within a
 * stair, the rightmost (largest-register) point is the only design
 * worth evaluating, which is exactly the pruning the kernel tuner
 * applies.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/csv.hh"
#include "gpu/occupancy.hh"
#include "pcnn/offline/kernel_tuner.hh"

using namespace pcnn;

int
main()
{
    const GpuSpec gpu = k20c();
    const TileConfig tile = tileByName(128, 128);
    const KernelTuner tuner(gpu);
    const std::size_t min_reg = tuner.minReg();

    // Fig. 9 plots the register-bound TLP (Eq. 5), so report that
    // bound directly alongside the full occupancy.
    CsvWriter csv({"registers", "tlp_register_bound", "tlp_actual"});
    std::size_t last_tlp = 0;
    TextTable stairs({"Stair (TLP)", "Registers (rightmost point)"});
    for (std::size_t r = tile.naturalRegs; r >= min_reg; --r) {
        const Occupancy o = occupancy(gpu, tile, r);
        csv.addRow({std::to_string(r), std::to_string(o.byRegisters),
                    std::to_string(o.ctasPerSm)});
        if (o.byRegisters != last_tlp) {
            stairs.addRow({TextTable::num(int64_t(o.byRegisters)),
                           TextTable::num(int64_t(r))});
            last_tlp = o.byRegisters;
        }
    }

    printSection("Fig. 9 — TLP vs registers (128x128 on K20)",
                 stairs.render());
    csv.writeFile("fig9_tlp_vs_registers.csv");
    std::printf("full series written to fig9_tlp_vs_registers.csv\n");

    // The tuner's pruned candidate set for this tile.
    TextTable pruned({"Candidate", "TLP"});
    for (const KernelConfig &cfg : tuner.staircase(tile)) {
        const Occupancy o = occupancy(gpu, tile, cfg.regsPerThread);
        pruned.addRow({cfg.str(),
                       TextTable::num(int64_t(o.ctasPerSm))});
    }
    printSection("Fig. 9 (pruned design space, shmem-aware)",
                 pruned.render());
    bench::paperNote("curReg 127, minReg 32; within a stair the "
                     "most-register design performs best");
    return 0;
}
