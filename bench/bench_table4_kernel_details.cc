/**
 * @file
 * Reproduces Table IV: detailed information of the CNN-dominated
 * SGEMM kernels — AlexNet CONV2/CONV5 under cuBLAS and cuDNN on TX1
 * and K20: result matrix, sub-matrix, registers, shared memory,
 * block size, register-bound blocks, shared-memory-bound blocks,
 * maxBlocks, and GridSize.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/kernel_model.hh"
#include "gpu/occupancy.hh"
#include "libs/dl_library.hh"
#include "nn/model_zoo.hh"

using namespace pcnn;

int
main()
{
    const NetDescriptor net = alexNet();
    const ConvSpec layers[] = {net.convs[1], net.convs[4]};
    const GpuSpec gpus[] = {jetsonTx1(), k20c()};

    TextTable table({"GPU", "Library", "COV layer", "Result-matrix",
                     "Sub-matrix", "Register", "SharedMem",
                     "BlockSize", "#blocks(reg)", "#blocks(shm)",
                     "maxBlocks", "GridSize"});

    for (const GpuSpec &gpu : gpus) {
        for (const auto &lib : allLibraries()) {
            if (lib->name() == "Nervana")
                continue; // Table IV characterizes cuBLAS and cuDNN
            for (const ConvSpec &layer : layers) {
                const KernelConfig cfg =
                    lib->selectKernel(gpu, layer, 1);
                const SgemmModel model(gpu, cfg);
                const GemmShape g = layer.gemmShape(1);
                const Occupancy &o = model.occ();
                table.addRow(
                    {gpu.name, lib->name(), layer.name,
                     std::to_string(g.m) + "x" + std::to_string(g.n),
                     cfg.tile.str(),
                     TextTable::num(int64_t(cfg.effectiveRegs())),
                     TextTable::num(int64_t(cfg.tile.sharedMemBytes)),
                     TextTable::num(int64_t(cfg.tile.blockSize)),
                     TextTable::num(
                         int64_t(o.byRegisters * gpu.numSMs)),
                     TextTable::num(
                         int64_t(o.bySharedMem * gpu.numSMs)),
                     TextTable::num(int64_t(o.maxBlocks(gpu))),
                     TextTable::num(int64_t(model.gridSize(g)))});
            }
        }
        table.addSeparator();
    }

    printSection("Table IV — CNN-dominated kernel details",
                 table.render());
    bench::paperNote(
        "TX1/cuBLAS CONV2: 128x729 result, 128x64 tile, 120 regs, "
        "12544 B shm, min(14,8)=8 maxBlocks, grid 12; TX1/cuDNN: "
        "32x32 tile, 48 regs, 2304 B, grid 92; K20: 64x64 tile, 79 "
        "regs, 8468 B, min(65,39)=39, grid 24/6");
    return 0;
}
