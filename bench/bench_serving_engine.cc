/**
 * @file
 * Concurrent serving engine bench (DESIGN.md §5f) -> BENCH_pr5.json.
 *
 * Three experiments over MiniAlexNet:
 *  1. Closed loop, batch 1: throughput vs worker count with a
 *     bounded in-flight window, asserting the logits of a probe set
 *     stay bitwise identical across worker counts.
 *  2. Open loop: a Poisson arrival stream against the deadline-aware
 *     batcher, reporting latency tails, mean batch, shed count.
 *  3. Cross-check: the same batching policy driven through the
 *     analytical ServingSimulator; both must show the same
 *     qualitative behaviour (mean batch grows with arrival rate,
 *     never exceeds the cap, every request accounted for).
 *
 * Usage: bench_serving_engine [--quick] [out.json]
 * --quick shrinks request counts for CI smoke runs.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/model_zoo.hh"
#include "pcnn/runtime/serving_sim.hh"
#include "serve/engine.hh"
#include "tensor/microkernel.hh"

using namespace pcnn;

namespace {

UserRequirement
interactiveReq()
{
    return inferRequirement(ageDetectionApp());
}

std::vector<Tensor>
probeInputs(const Shape &in, std::size_t n)
{
    Rng rng(2024);
    std::vector<Tensor> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Tensor t(Shape{1, in.c, in.h, in.w});
        t.fillUniform(rng, -1.0f, 1.0f);
        xs.push_back(std::move(t));
    }
    return xs;
}

struct ClosedLoopResult
{
    std::size_t workers = 0;
    std::size_t requests = 0;
    double throughputRps = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    std::uint64_t steadyAllocs = 0;
    std::uint64_t steadyProbedBatches = 0;
    std::vector<Tensor> probeLogits;
};

/**
 * Closed loop: keep a bounded window of requests in flight so the
 * engine is always busy but the queue never sheds; the first
 * `probes.size()` requests reuse the probe inputs so logits can be
 * compared across worker counts.
 */
ClosedLoopResult
runClosedLoop(std::size_t workers, std::size_t total,
              const std::vector<Tensor> &probes)
{
    Rng rng(42); // identical weights for every worker count
    Network net = makeMiniAlexNet(rng);
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.maxBatch = 1;
    cfg.queueCapacity = total;
    cfg.requirement = interactiveReq();
    cfg.maxWaitS = 0.0;
    ServeEngine engine(net, cfg);

    Rng inputs(7);
    const Shape &in = net.inputShape();
    auto makeInput = [&](std::size_t i) {
        if (i < probes.size())
            return probes[i];
        Tensor t(Shape{1, in.c, in.h, in.w});
        t.fillUniform(inputs, -1.0f, 1.0f);
        return t;
    };

    ClosedLoopResult r;
    r.workers = workers;
    r.requests = total;
    const std::size_t window = workers * 4;
    std::deque<std::future<ServeResult>> inflight;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < total; ++i) {
        auto sub = engine.submit(makeInput(i));
        if (sub.status != SubmitStatus::Accepted) {
            std::fprintf(stderr, "closed loop shed a request\n");
            std::exit(1);
        }
        inflight.push_back(std::move(sub.result));
        while (inflight.size() >= window) {
            const ServeResult res = inflight.front().get();
            inflight.pop_front();
            if (r.probeLogits.size() < probes.size())
                r.probeLogits.push_back(res.logits);
        }
    }
    while (!inflight.empty()) {
        const ServeResult res = inflight.front().get();
        inflight.pop_front();
        if (r.probeLogits.size() < probes.size())
            r.probeLogits.push_back(res.logits);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    r.throughputRps = double(total) / wall;
    const ServeMetricsSnapshot m = engine.metrics();
    r.p50Ms = m.latency.p50S * 1e3;
    r.p99Ms = m.latency.p99S * 1e3;
    r.steadyAllocs = m.steadyAllocs;
    r.steadyProbedBatches = m.steadyProbedBatches;
    engine.stop();
    return r;
}

struct OpenLoopResult
{
    double rateHz = 0.0;
    ServeMetricsSnapshot metrics;
};

/** Open loop: Poisson arrivals at rateHz for `total` requests. */
OpenLoopResult
runOpenLoop(std::size_t workers, std::size_t maxBatch,
            double maxWaitS, double rateHz, std::size_t total)
{
    Rng rng(42);
    Network net = makeMiniAlexNet(rng);
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.maxBatch = maxBatch;
    cfg.queueCapacity = 256;
    cfg.requirement = interactiveReq();
    cfg.maxWaitS = maxWaitS;
    ServeEngine engine(net, cfg);

    Rng arrivals(99);
    Rng inputs(7);
    const Shape &in = net.inputShape();
    std::vector<std::future<ServeResult>> futs;
    futs.reserve(total);
    auto next = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < total; ++i) {
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                -std::log(1.0 - arrivals.uniform()) / rateHz));
        std::this_thread::sleep_until(next);
        Tensor t(Shape{1, in.c, in.h, in.w});
        t.fillUniform(inputs, -1.0f, 1.0f);
        auto sub = engine.submit(std::move(t));
        if (sub.status == SubmitStatus::Accepted)
            futs.push_back(std::move(sub.result));
    }
    for (auto &f : futs)
        f.get();
    OpenLoopResult r;
    r.rateHz = rateHz;
    r.metrics = engine.metrics();
    engine.stop();
    return r;
}

void
jsonBatchHist(std::FILE *f, const BatchSizeHistogram &h)
{
    std::fprintf(f, "[");
    bool first = true;
    for (std::size_t b = 1; b < h.counts.size(); ++b) {
        if (h.counts[b] == 0)
            continue;
        std::fprintf(f, "%s{\"batch\": %zu, \"count\": %zu}",
                     first ? "" : ", ", b, h.counts[b]);
        first = false;
    }
    std::fprintf(f, "]");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_pr5.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            out_path = argv[i];
    }

    const std::size_t closed_total = quick ? 64 : 1024;
    const std::size_t open_total = quick ? 48 : 400;
    const std::size_t probe_count = 8;

    Rng seed_rng(42);
    Network probe_net = makeMiniAlexNet(seed_rng);
    const std::vector<Tensor> probes =
        probeInputs(probe_net.inputShape(), probe_count);

    // 1. Closed loop: throughput vs workers, bitwise probe check.
    const std::size_t worker_counts[] = {1, 2, 4};
    std::vector<ClosedLoopResult> closed;
    for (std::size_t w : worker_counts)
        closed.push_back(runClosedLoop(w, closed_total, probes));

    bool bitwise_equal = true;
    for (std::size_t i = 1; i < closed.size(); ++i)
        for (std::size_t p = 0; p < probe_count; ++p)
            if (std::memcmp(closed[0].probeLogits[p].data(),
                            closed[i].probeLogits[p].data(),
                            closed[0].probeLogits[p].size() *
                                sizeof(float)) != 0)
                bitwise_equal = false;

    TextTable closed_table({"Workers", "Lanes/worker", "Requests",
                            "Throughput (req/s)", "p50 (ms)",
                            "p99 (ms)"});
    for (const ClosedLoopResult &r : closed)
        closed_table.addRow(
            {std::to_string(r.workers),
             std::to_string(std::max<std::size_t>(
                 1, threadCount() / r.workers)),
             std::to_string(r.requests),
             TextTable::num(r.throughputRps, 0),
             TextTable::num(r.p50Ms, 3), TextTable::num(r.p99Ms, 3)});
    printSection("Serving engine — closed loop, MiniAlexNet batch 1",
                 closed_table.render());
    std::printf("probe logits bitwise identical across "
                "worker counts: %s\n",
                bitwise_equal ? "yes" : "NO");

    // 2. Open loop: Poisson arrivals vs the deadline-aware batcher.
    const double rates[] = {quick ? 200.0 : 500.0,
                            quick ? 1000.0 : 2000.0,
                            quick ? 4000.0 : 8000.0};
    const std::size_t open_workers = 2, open_batch = 8;
    const double open_wait = 0.005;
    std::vector<OpenLoopResult> open;
    for (double rate : rates)
        open.push_back(runOpenLoop(open_workers, open_batch,
                                   open_wait, rate, open_total));

    TextTable open_table({"Arrival (req/s)", "Completed", "Shed",
                          "Mean batch", "p50 (ms)", "p95 (ms)",
                          "p99 (ms)", "p99.9 (ms)"});
    for (const OpenLoopResult &r : open)
        open_table.addRow(
            {TextTable::num(r.rateHz, 0),
             std::to_string(r.metrics.completed),
             std::to_string(r.metrics.shed),
             TextTable::num(r.metrics.batchHist.meanBatch(), 2),
             bench::ms(r.metrics.latency.p50S),
             bench::ms(r.metrics.latency.p95S),
             bench::ms(r.metrics.latency.p99S),
             bench::ms(r.metrics.latency.p999S)});
    printSection("Serving engine — open loop, Poisson arrivals "
                 "(2 workers, maxBatch 8, 5 ms wait)",
                 open_table.render());

    // 3. Cross-check the batching behaviour against the analytical
    // simulator under the same policy shape (its service times come
    // from the GPU model, so only the qualitative behaviour must
    // match: batches fill as load rises and never exceed the cap).
    const ServingSimulator sim(k20c(), alexNet());
    const UserRequirement sim_req = interactiveReq();
    std::vector<double> sim_mean_batches;
    for (double rate : {20.0, 100.0, 300.0}) {
        ServingConfig scfg;
        scfg.arrivalRateHz = rate;
        scfg.durationS = quick ? 2.0 : 8.0;
        scfg.maxBatch = open_batch;
        scfg.maxWaitS = open_wait;
        scfg.seed = 11;
        const ServingStats s = sim.run(scfg, sim_req);
        sim_mean_batches.push_back(s.meanBatch);
    }
    const bool engine_monotone =
        open.back().metrics.batchHist.meanBatch() >=
        open.front().metrics.batchHist.meanBatch();
    const bool sim_monotone =
        sim_mean_batches.back() >= sim_mean_batches.front();
    std::printf("batching cross-check: engine mean batch rises with "
                "load: %s; simulator agrees: %s\n",
                engine_monotone ? "yes" : "NO",
                sim_monotone ? "yes" : "NO");

    // ------------------------------------------------ JSON snapshot
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"serving_engine\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"alloc_counting\": %s,\n",
                 allocCountingEnabled() ? "true" : "false");
    const CpuFeatures &cpu = cpuFeatures();
    const CacheInfo &ci = cacheInfo();
    std::fprintf(f,
                 "  \"host\": {\"hardware_threads\": %u, "
                 "\"pcnn_threads\": %zu,\n"
                 "    \"cpu_model\": \"%s\", \"cpu_features\": "
                 "\"%s\",\n"
                 "    \"cache_l1d_bytes\": %zu, \"cache_l2_bytes\": "
                 "%zu, \"cache_l3_bytes\": %zu,\n"
                 "    \"kernel_tier\": \"%s\"},\n",
                 std::thread::hardware_concurrency(), threadCount(),
                 cpu.model.c_str(), cpu.str().c_str(), ci.l1d, ci.l2,
                 ci.l3, kernelTierName(activeKernelTier()));

    std::fprintf(f, "  \"closed_loop\": [\n");
    for (std::size_t i = 0; i < closed.size(); ++i) {
        const ClosedLoopResult &r = closed[i];
        std::fprintf(
            f,
            "    {\"workers\": %zu, \"requests\": %zu, "
            "\"throughput_rps\": %.1f, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f, \"steady_allocs\": %llu, "
            "\"steady_probed_batches\": %llu}%s\n",
            r.workers, r.requests, r.throughputRps, r.p50Ms, r.p99Ms,
            static_cast<unsigned long long>(r.steadyAllocs),
            static_cast<unsigned long long>(r.steadyProbedBatches),
            i + 1 < closed.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"probe_logits_bitwise_equal\": %s,\n",
                 bitwise_equal ? "true" : "false");

    std::fprintf(f, "  \"open_loop\": [\n");
    for (std::size_t i = 0; i < open.size(); ++i) {
        const ServeMetricsSnapshot &m = open[i].metrics;
        std::fprintf(
            f,
            "    {\"rate_hz\": %.0f, \"workers\": %zu, "
            "\"max_batch\": %zu, \"max_wait_s\": %.3f, "
            "\"completed\": %llu, \"shed\": %llu, "
            "\"mean_batch\": %.3f, \"queue_high_water\": %zu, "
            "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
            "\"p999_ms\": %.4f, \"throughput_rps\": %.1f, "
            "\"steady_allocs\": %llu, "
            "\"steady_probed_batches\": %llu, "
            "\"batch_hist\": ",
            open[i].rateHz, open_workers, open_batch, open_wait,
            static_cast<unsigned long long>(m.completed),
            static_cast<unsigned long long>(m.shed),
            m.batchHist.meanBatch(), m.queueHighWater,
            m.latency.p50S * 1e3, m.latency.p95S * 1e3,
            m.latency.p99S * 1e3, m.latency.p999S * 1e3,
            m.throughputRps,
            static_cast<unsigned long long>(m.steadyAllocs),
            static_cast<unsigned long long>(m.steadyProbedBatches));
        jsonBatchHist(f, m.batchHist);
        std::fprintf(f, "}%s\n", i + 1 < open.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    std::fprintf(f,
                 "  \"sim_crosscheck\": {\"engine_mean_batch_rises\": "
                 "%s, \"sim_mean_batch_rises\": %s, "
                 "\"sim_mean_batches\": [%.3f, %.3f, %.3f]}\n",
                 engine_monotone ? "true" : "false",
                 sim_monotone ? "true" : "false", sim_mean_batches[0],
                 sim_mean_batches[1], sim_mean_batches[2]);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    return bitwise_equal ? 0 : 1;
}
