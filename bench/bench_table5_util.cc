/**
 * @file
 * Reproduces Table V: per-layer Util of AlexNet across K20 / 970m /
 * TX1 with the non-batching method (batch 1, stock cuBLAS kernels).
 *
 * Expected shape: Util falls toward the later conv layers on every
 * platform, and even the 2-SM TX1 is underutilized at CONV5.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/kernel_model.hh"
#include "libs/cublas_like.hh"
#include "nn/model_zoo.hh"

using namespace pcnn;

int
main()
{
    const NetDescriptor net = alexNet();
    const GpuSpec gpus[] = {k20c(), gtx970m(), jetsonTx1()};
    CublasLike cublas;

    std::vector<std::string> header{"GPU"};
    for (const ConvSpec &c : net.convs)
        header.push_back(c.name);
    TextTable table(header);

    for (const GpuSpec &gpu : gpus) {
        std::vector<std::string> row{gpu.name};
        for (const ConvSpec &layer : net.convs) {
            const KernelConfig cfg = cublas.selectKernel(gpu, layer, 1);
            const SgemmModel model(gpu, cfg);
            row.push_back(
                TextTable::num(model.util(layer.gemmShape(1)), 2));
        }
        table.addRow(row);
    }

    printSection("Table V — Util of AlexNet (non-batched)",
                 table.render());
    bench::paperNote("K20: 0.82 0.62 0.46 0.23 0.15 | 970m: 0.6 0.3 "
                     "0.3 0.15 0.1 | TX1: 1 0.75 0.75 0.75 0.5");
    return 0;
}
