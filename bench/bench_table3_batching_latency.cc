/**
 * @file
 * Reproduces Table III: network latency (ms) with and without the
 * batching method, for AlexNet/GoogLeNet/VGGNet on TitanX/970m/TX1
 * under cuBLAS/cuDNN/Nervana. 'x' marks out-of-memory failures.
 *
 * Expected shapes: batching is far slower to respond but much higher
 * throughput; Nervana is the fastest library; cuDNN and Nervana fail
 * on the mobile GPU for the big networks; Nervana's "non-batched"
 * column is really batch 32 (its minimum granularity).
 */

#include <cstdio>

#include "bench_util.hh"
#include "libs/dl_library.hh"
#include "nn/model_zoo.hh"

using namespace pcnn;
using namespace pcnn::bench;

int
main()
{
    const auto libs = allLibraries();
    const GpuSpec gpus[] = {titanX(), gtx970m(), jetsonTx1()};

    std::vector<std::string> header{"CNNs", "GPU"};
    for (const auto &lib : libs)
        header.push_back(lib->name() + " batch");
    for (const auto &lib : libs)
        header.push_back(lib->name() + " no-batch");
    TextTable table(header);

    for (const NetDescriptor &net : paperNetworks()) {
        for (const GpuSpec &gpu : gpus) {
            std::vector<std::string> row{net.name, gpu.name};
            for (const auto &lib : libs) {
                const LatencyEstimate e =
                    lib->estimateLatency(gpu, net, net.paperBatch);
                row.push_back(msOrX(e.oom, e.totalS()));
            }
            for (const auto &lib : libs) {
                // "No batching" = batch 1, except Nervana whose
                // minimum batch is 32 (bold in the paper's table).
                const LatencyEstimate e =
                    lib->estimateLatency(gpu, net, 1);
                row.push_back(msOrX(e.oom, e.totalS()));
            }
            table.addRow(row);
        }
        table.addSeparator();
    }

    printSection("Table III — latencies (ms) w/ and w/o batching",
                 table.render());
    paperNote("AlexNet/TitanX: 131/68/31 batched, 3/3/15 non-batched; "
              "TX1 rows are ~10x slower; cuDNN+Nervana mark x for "
              "GoogLeNet/VGGNet batched on TX1; Nervana VGG x even "
              "non-batched (min batch 32)");
    return 0;
}
