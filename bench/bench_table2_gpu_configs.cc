/**
 * @file
 * Reproduces Table II (GPU configurations) and Table VI (the
 * simulator parameters derived from them).
 */

#include <cstdio>

#include "common/table.hh"
#include "gpu/gpu_spec.hh"

using namespace pcnn;

int
main()
{
    TextTable t2({"GPU", "Platform", "CUDA cores", "Clock (MHz)",
                  "Memory (MB)", "BW (GB/s)"});
    for (const GpuSpec &g : allGpus()) {
        t2.addRow({g.name, g.platform,
                   TextTable::num(int64_t(g.numSMs * g.coresPerSM)),
                   TextTable::num(g.coreClockMHz, 0),
                   TextTable::num(g.dramMB, 0),
                   TextTable::num(g.memBandwidthGBs, 1)});
    }
    printSection("Table II — GPU configurations", t2.render());

    TextTable t6({"GPU", "SMs", "Regs/SM", "Shared mem (KB)",
                  "Max threads/SM", "Max CTAs/SM"});
    for (const GpuSpec &g : allGpus()) {
        t6.addRow({g.name, TextTable::num(int64_t(g.numSMs)),
                   TextTable::num(int64_t(g.registersPerSM)),
                   TextTable::num(double(g.sharedMemPerSM) / 1024.0, 0),
                   TextTable::num(int64_t(g.maxThreadsPerSM)),
                   TextTable::num(int64_t(g.maxCtasPerSM))});
    }
    printSection("Table VI — simulation parameters", t6.render());
    std::printf("paper: K20c 13 SMs @706 MHz, TX1 2 SMs @998 MHz, "
                "64Kx32bit registers, 2048 threads, 16 CTAs\n");
    return 0;
}
