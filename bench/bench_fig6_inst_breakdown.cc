/**
 * @file
 * Reproduces Fig. 6: instruction breakdown (computation density) for
 * the common sub-matrix sizes.
 *
 * Expected shape: the FFMA share of issued instructions grows with
 * the sub-matrix size — the trade-off against the higher resource
 * utilization of small tiles (Section III.D.1).
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/tile_config.hh"

using namespace pcnn;

int
main()
{
    TextTable table({"Sub-matrix", "FFMA", "LDG", "LDS", "Other",
                     "FP density"});
    for (const TileConfig &tile : tileCatalogue()) {
        const InstMix mix = baseInstMix(tile);
        const double total = mix.total();
        auto pct = [&](double v) {
            return TextTable::num(v / total * 100.0, 1) + "%";
        };
        table.addRow({tile.str(), pct(mix.ffma), pct(mix.ldg),
                      pct(mix.lds), pct(mix.other),
                      TextTable::num(mix.density(), 3)});
    }
    printSection("Fig. 6 — instruction breakdown per sub-matrix size",
                 table.render());
    bench::paperNote("the ratio of floating point instructions to "
                     "total instructions rises with sub-matrix size; "
                     "32x32 (cuDNN mobile) is the worst");
    return 0;
}
