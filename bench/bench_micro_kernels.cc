/**
 * @file
 * google-benchmark microbenches of the CPU substrate: SGEMM, im2col,
 * convolution forward (exact and perforated), softmax/entropy, and
 * the analytical kernel model itself.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "gpu/kernel_model.hh"
#include "nn/conv_layer.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/host_tuner.hh"
#include "pcnn/offline/kernel_tuner.hh"
#include "tensor/microkernel.hh"
#include "tensor/quant.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

void
BM_Sgemm(benchmark::State &state)
{
    const auto n = std::size_t(state.range(0));
    Rng rng(1);
    std::vector<float> a(n * n), b(n * n), c(n * n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : b)
        x = float(rng.uniform(-1, 1));
    for (auto _ : state) {
        sgemm(false, false, n, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(2 * n * n * n));
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_Im2col(benchmark::State &state)
{
    Rng rng(2);
    Tensor x(1, 16, 32, 32);
    x.fillGaussian(rng, 0, 1);
    const ConvGeom g{16, 32, 32, 3, 1, 1};
    std::vector<float> cols;
    for (auto _ : state) {
        im2col(x, 0, g, cols);
        benchmark::DoNotOptimize(cols.data());
    }
}
BENCHMARK(BM_Im2col);

void
BM_ConvForward(benchmark::State &state)
{
    Rng rng(3);
    ConvSpec spec;
    spec.name = "bench";
    spec.inC = 16;
    spec.outC = 32;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;
    spec.inH = spec.inW = 32;
    ConvLayer layer(spec, rng);
    Tensor x(1, 16, 32, 32);
    x.fillGaussian(rng, 0, 1);

    // range(0): percent of output positions actually computed.
    const std::size_t full = 32 * 32;
    layer.setComputedPositions(full * std::size_t(state.range(0)) /
                               100);
    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_ConvForward)->Arg(100)->Arg(50)->Arg(25);

/**
 * The same 3x3 layer pinned to one conv algorithm: the winograd
 * F(2x2,3x3) route vs. the im2col lowering, head to head on a shape
 * where the cost model prefers winograd. range(0) selects the
 * ConvAlgo encoding (0 = im2col, 2 = winograd).
 */
void
BM_ConvForwardAlgo(benchmark::State &state)
{
    Rng rng(3);
    ConvSpec spec;
    spec.name = "bench";
    spec.inC = 64;
    spec.outC = 64;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;
    spec.inH = spec.inW = 28;
    ConvLayer layer(spec, rng);
    layer.setAlgo(ConvAlgo(int(state.range(0))));
    Tensor x(1, 64, 28, 28);
    x.fillGaussian(rng, 0, 1);

    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_ConvForwardAlgo)
    ->Arg(int(ConvAlgo::Im2col))
    ->Arg(int(ConvAlgo::Winograd));

/**
 * SGEMM thread scaling: range(0) = matrix size, range(1) = pool
 * lanes. The GFLOPS counter makes speedups directly comparable in
 * the JSON snapshot (tools/run_bench.sh).
 */
void
BM_SgemmThreads(benchmark::State &state)
{
    const auto n = std::size_t(state.range(0));
    setThreadCount(std::size_t(state.range(1)));
    Rng rng(1);
    std::vector<float> a(n * n), b(n * n), c(n * n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : b)
        x = float(rng.uniform(-1, 1));
    for (auto _ : state) {
        sgemm(false, false, n, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        2.0 * double(n) * double(n) * double(n) *
            double(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate);
    setThreadCount(0);
}
BENCHMARK(BM_SgemmThreads)
    ->UseRealTime()
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

/** im2col thread scaling on the stock 16x32x32 / 3x3 geometry. */
void
BM_Im2colThreads(benchmark::State &state)
{
    setThreadCount(std::size_t(state.range(0)));
    Rng rng(2);
    Tensor x(1, 16, 32, 32);
    x.fillGaussian(rng, 0, 1);
    const ConvGeom g{16, 32, 32, 3, 1, 1};
    std::vector<float> cols;
    for (auto _ : state) {
        im2col(x, 0, g, cols);
        benchmark::DoNotOptimize(cols.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(g.colRows() * 32 * 32 *
                                    sizeof(float)));
    setThreadCount(0);
}
BENCHMARK(BM_Im2colThreads)->UseRealTime()->Arg(1)->Arg(2)->Arg(4);

/**
 * Convolution forward on the paper's AlexNet CONV2 layer (the Fig. 2
 * exemplar: 5x5 over 96 -> 256 channels, 2 groups, 27x27 output),
 * batch 1, at range(0) pool lanes. This is the PR's headline
 * acceptance shape.
 */
void
BM_ConvForwardAlexNetConv2(benchmark::State &state)
{
    setThreadCount(std::size_t(state.range(0)));
    Rng rng(5);
    const ConvSpec spec = alexNet().convs[1];
    ConvLayer layer(spec, rng);
    Tensor x(1, spec.inC, spec.inH, spec.inW);
    x.fillGaussian(rng, 0, 1);
    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        spec.flopsPerImage() * double(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate);
    setThreadCount(0);
}
BENCHMARK(BM_ConvForwardAlexNetConv2)->UseRealTime()->Arg(1)->Arg(2)->Arg(4);

/** Conv layer of a paper network, looked up by name. */
const ConvSpec &
zooConv(const NetDescriptor &d, const char *name)
{
    for (const ConvSpec &c : d.convs)
        if (c.name == name)
            return c;
    std::abort(); // bench shape table out of sync with the zoo
}

/** Shape table of the tier sweep: fixed squares + e2e conv GEMMs. */
GemmShape
tierBenchShape(int idx)
{
    static const NetDescriptor alex = alexNet();
    static const NetDescriptor vgg = vgg16();
    switch (idx) {
    case 0:
        return GemmShape{256, 256, 256};
    case 1:
        return GemmShape{512, 512, 512};
    case 2:
        return zooConv(alex, "CONV2").gemmShape(1); // large K (1200)
    case 3:
        return zooConv(vgg, "CONV2_1").gemmShape(1);
    default:
        return zooConv(vgg, "CONV3_1").gemmShape(1); // large K (1152)
    }
}

/**
 * The tier sweep over the prepacked inference hot path
 * (sgemmPrepacked, the route serving traffic takes). cfg selects the
 * kernel configuration:
 *   0 = portable tier at its default blocking (the pre-dispatch
 *       baseline: what every host ran before tier dispatch existed),
 *   1 = runtime-dispatched best tier at its cache-derived default,
 *   2 = the persisted per-host tune cache (pcnn_autotune winner);
 *       skipped with an error when no valid cache exists — run
 *       tools/run_bench.sh or pcnn_autotune first.
 *
 * The bitwise_threads_ok counter re-runs the product at 1/2/4 pool
 * lanes before timing and records whether all three agree bitwise —
 * the per-tier determinism contract, checked on the exact
 * configuration being measured.
 */
void
BM_SgemmTier(benchmark::State &state)
{
    const GemmShape g = tierBenchShape(int(state.range(0)));
    const int cfg = int(state.range(1));

    resetKernelTier();
    resetBlocking();
    if (cfg == 0) {
        setKernelTier(KernelTier::Portable);
        setBlocking(defaultBlocking(KernelTier::Portable));
    } else if (cfg == 1) {
        setKernelTier(bestKernelTier());
    } else {
        HostTuneConfig tuned;
        std::string err;
        if (!loadHostTune(hostTuneCachePath(), tuned, err) ||
            !applyHostTune(tuned)) {
            state.SkipWithError(("no usable tune cache: " + err).c_str());
            return;
        }
    }

    Rng rng(6);
    std::vector<float> a(g.m * g.k), w(g.k * g.n), c(g.m * g.n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : w)
        x = float(rng.uniform(-1, 1));
    PackedPanel panel;
    packWeights(false, g.k, g.n, w.data(), panel);

    // Determinism probe at the measured configuration.
    bool bitwise_ok = true;
    {
        std::vector<float> ref(g.m * g.n);
        setThreadCount(1);
        sgemmPrepacked(g.m, g.n, g.k, a.data(), panel, ref.data());
        for (std::size_t lanes : {std::size_t(2), std::size_t(4)}) {
            setThreadCount(lanes);
            sgemmPrepacked(g.m, g.n, g.k, a.data(), panel, c.data());
            if (std::memcmp(ref.data(), c.data(),
                            c.size() * sizeof(float)) != 0)
                bitwise_ok = false;
        }
        setThreadCount(0);
    }

    for (auto _ : state) {
        sgemmPrepacked(g.m, g.n, g.k, a.data(), panel, c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        g.flops() * double(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate);
    state.counters["bitwise_threads_ok"] = bitwise_ok ? 1.0 : 0.0;
    state.counters["k"] = double(g.k);
    resetKernelTier();
    resetBlocking();
}
BENCHMARK(BM_SgemmTier)
    ->ArgNames({"shape", "cfg"})
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2}});

/** Best-of-five seconds per call of `fn`, with the inner iteration
 * count calibrated so each sample spans at least ~20 ms. Used for
 * the in-bench fp32-vs-int8 baseline where both sides must be timed
 * with the same methodology. */
template <class Fn>
double
bestSecsPerCall(Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    fn(); // warm-up: grow panels and scratch outside the samples
    std::size_t iters = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            fn();
        const double s =
            std::chrono::duration<double>(clock::now() - t0).count();
        if (s >= 0.02 || iters >= (std::size_t(1) << 20))
            break;
        iters *= 2;
    }
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            fn();
        const double s =
            std::chrono::duration<double>(clock::now() - t0).count();
        best = std::min(best, s / double(iters));
    }
    return best;
}

/**
 * Int8 quantized GEMM (fused dequant epilogue) vs. the tuned fp32
 * hot path on the batch-1 conv GEMM acceptance shapes — the
 * DESIGN.md §5i headline numbers. range(0) indexes tierBenchShape
 * (2 = AlexNet CONV2, 3 = VGG-16 CONV2_1, 4 = VGG-16 CONV3_1, the
 * large-K shapes where int8's 4x denser dot products pay off);
 * range(1) = int8 kernel configuration: 0 = portable int8 tier,
 * 1 = the runtime-dispatched best int8 tier.
 *
 * The timed body is the full per-forward int8 cost: quantize+pack
 * the activation panel, then qgemm. The speedup_vs_fp32 counter
 * divides a same-methodology fp32 baseline — the plain sgemm call
 * the exact conv route makes per forward (weights x im2col matrix,
 * internal packing included), under the per-host tune cache when
 * one exists and the dispatched best tier otherwise — by the int8
 * time. bitwise_threads_ok asserts the cross-thread bitwise
 * contract on the measured configuration, and steady_allocs records
 * the allocator traffic of a warmed call (must be 0 when
 * alloc_counting = 1).
 */
void
BM_Qgemm(benchmark::State &state)
{
    const GemmShape g = tierBenchShape(int(state.range(0)));
    const int cfg = int(state.range(1));

    Rng rng(7);
    std::vector<float> wgt(g.m * g.k), act(g.k * g.n), c(g.m * g.n);
    for (auto &x : wgt)
        x = float(rng.uniform(-1, 1));
    for (auto &x : act)
        x = float(rng.uniform(-1, 1));

    // Tuned fp32 baseline on the same shape: the per-host autotuned
    // config when a cache exists (tools/run_bench.sh sweeps one
    // first), the dispatched best tier otherwise.
    resetKernelTier();
    resetBlocking();
    {
        HostTuneConfig tuned;
        std::string err;
        if (!loadHostTune(hostTuneCachePath(), tuned, err) ||
            !applyHostTune(tuned))
            setKernelTier(bestKernelTier());
    }
    const double fp32_secs = bestSecsPerCall([&] {
        sgemm(false, false, g.m, g.n, g.k, wgt.data(), act.data(),
              c.data());
        benchmark::DoNotOptimize(c.data());
    });

    resetKernelTier();
    resetBlocking();
    if (cfg == 0)
        setKernelTier(KernelTier::Portable);

    QuantizedPanel qw;
    quantizeWeights(g.m, g.k, wgt.data(), qw);
    const QuantParams qp = computeQuantParams(act.data(), act.size());
    std::vector<std::uint8_t> qb;
    const auto quantizedCall = [&] {
        quantizePackActivations(act.data(), g.k, g.n, g.n, false, qp,
                                qb);
        qgemm(g.m, g.n, g.k, qw, qb.data(), qp, c.data(), nullptr,
              false);
        benchmark::DoNotOptimize(c.data());
    };

    // Determinism probe at the measured configuration: the int8
    // contract is bitwise identity across thread counts (and tiers,
    // which the cfg sweep itself exercises).
    bool bitwise_ok = true;
    {
        std::vector<float> ref(g.m * g.n);
        setThreadCount(1);
        quantizePackActivations(act.data(), g.k, g.n, g.n, false, qp,
                                qb);
        qgemm(g.m, g.n, g.k, qw, qb.data(), qp, ref.data(), nullptr,
              false);
        for (std::size_t lanes : {std::size_t(2), std::size_t(4)}) {
            setThreadCount(lanes);
            quantizedCall();
            if (std::memcmp(ref.data(), c.data(),
                            c.size() * sizeof(float)) != 0)
                bitwise_ok = false;
        }
        setThreadCount(0);
    }

    // Steady-state allocation probe on a warmed call.
    std::uint64_t steady_allocs = 0;
    {
        quantizedCall();
        ScopedAllocCount probe;
        quantizedCall();
        steady_allocs = probe.allocs();
    }

    const double int8_secs = bestSecsPerCall(quantizedCall);

    for (auto _ : state)
        quantizedCall();

    state.counters["GFLOPS"] = benchmark::Counter(
        g.flops() * double(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate);
    state.counters["speedup_vs_fp32"] = fp32_secs / int8_secs;
    state.counters["steady_allocs"] = double(steady_allocs);
    state.counters["alloc_counting"] =
        allocCountingEnabled() ? 1.0 : 0.0;
    state.counters["bitwise_threads_ok"] = bitwise_ok ? 1.0 : 0.0;
    state.counters["k"] = double(g.k);
    resetKernelTier();
    resetBlocking();
}
BENCHMARK(BM_Qgemm)
    ->ArgNames({"shape", "cfg"})
    ->ArgsProduct({{2, 3, 4}, {0, 1}});

void
BM_SoftmaxEntropy(benchmark::State &state)
{
    Rng rng(4);
    Tensor logits(64, 1000, 1, 1);
    logits.fillGaussian(rng, 0, 3);
    for (auto _ : state) {
        const Tensor p = softmax(logits);
        benchmark::DoNotOptimize(batchEntropy(p));
    }
}
BENCHMARK(BM_SoftmaxEntropy);

void
BM_KernelModel(benchmark::State &state)
{
    const GpuSpec gpu = k20c();
    const GemmShape g{384, 169 * 64, 2304};
    for (auto _ : state) {
        const SgemmModel m(gpu, {tileByName(64, 64), 0});
        benchmark::DoNotOptimize(m.kernelTime(g));
    }
}
BENCHMARK(BM_KernelModel);

void
BM_KernelTuner(benchmark::State &state)
{
    const GpuSpec gpu = jetsonTx1();
    const KernelTuner tuner(gpu);
    const GemmShape g = alexNet().convs[1].gemmShape(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(tuner.tune(g));
}
BENCHMARK(BM_KernelTuner);

} // namespace
} // namespace pcnn
