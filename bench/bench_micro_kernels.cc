/**
 * @file
 * google-benchmark microbenches of the CPU substrate: SGEMM, im2col,
 * convolution forward (exact and perforated), softmax/entropy, and
 * the analytical kernel model itself.
 */

#include <benchmark/benchmark.h>

#include "common/parallel.hh"
#include "common/random.hh"
#include "gpu/kernel_model.hh"
#include "nn/conv_layer.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/kernel_tuner.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

void
BM_Sgemm(benchmark::State &state)
{
    const auto n = std::size_t(state.range(0));
    Rng rng(1);
    std::vector<float> a(n * n), b(n * n), c(n * n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : b)
        x = float(rng.uniform(-1, 1));
    for (auto _ : state) {
        sgemm(false, false, n, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(2 * n * n * n));
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_Im2col(benchmark::State &state)
{
    Rng rng(2);
    Tensor x(1, 16, 32, 32);
    x.fillGaussian(rng, 0, 1);
    const ConvGeom g{16, 32, 32, 3, 1, 1};
    std::vector<float> cols;
    for (auto _ : state) {
        im2col(x, 0, g, cols);
        benchmark::DoNotOptimize(cols.data());
    }
}
BENCHMARK(BM_Im2col);

void
BM_ConvForward(benchmark::State &state)
{
    Rng rng(3);
    ConvSpec spec;
    spec.name = "bench";
    spec.inC = 16;
    spec.outC = 32;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;
    spec.inH = spec.inW = 32;
    ConvLayer layer(spec, rng);
    Tensor x(1, 16, 32, 32);
    x.fillGaussian(rng, 0, 1);

    // range(0): percent of output positions actually computed.
    const std::size_t full = 32 * 32;
    layer.setComputedPositions(full * std::size_t(state.range(0)) /
                               100);
    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_ConvForward)->Arg(100)->Arg(50)->Arg(25);

/**
 * The same 3x3 layer pinned to one conv algorithm: the winograd
 * F(2x2,3x3) route vs. the im2col lowering, head to head on a shape
 * where the cost model prefers winograd. range(0) selects the
 * ConvAlgo encoding (0 = im2col, 2 = winograd).
 */
void
BM_ConvForwardAlgo(benchmark::State &state)
{
    Rng rng(3);
    ConvSpec spec;
    spec.name = "bench";
    spec.inC = 64;
    spec.outC = 64;
    spec.kernel = 3;
    spec.stride = 1;
    spec.pad = 1;
    spec.inH = spec.inW = 28;
    ConvLayer layer(spec, rng);
    layer.setAlgo(ConvAlgo(int(state.range(0))));
    Tensor x(1, 64, 28, 28);
    x.fillGaussian(rng, 0, 1);

    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_ConvForwardAlgo)
    ->Arg(int(ConvAlgo::Im2col))
    ->Arg(int(ConvAlgo::Winograd));

/**
 * SGEMM thread scaling: range(0) = matrix size, range(1) = pool
 * lanes. The GFLOPS counter makes speedups directly comparable in
 * the JSON snapshot (tools/run_bench.sh).
 */
void
BM_SgemmThreads(benchmark::State &state)
{
    const auto n = std::size_t(state.range(0));
    setThreadCount(std::size_t(state.range(1)));
    Rng rng(1);
    std::vector<float> a(n * n), b(n * n), c(n * n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : b)
        x = float(rng.uniform(-1, 1));
    for (auto _ : state) {
        sgemm(false, false, n, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        2.0 * double(n) * double(n) * double(n) *
            double(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate);
    setThreadCount(0);
}
BENCHMARK(BM_SgemmThreads)
    ->UseRealTime()
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

/** im2col thread scaling on the stock 16x32x32 / 3x3 geometry. */
void
BM_Im2colThreads(benchmark::State &state)
{
    setThreadCount(std::size_t(state.range(0)));
    Rng rng(2);
    Tensor x(1, 16, 32, 32);
    x.fillGaussian(rng, 0, 1);
    const ConvGeom g{16, 32, 32, 3, 1, 1};
    std::vector<float> cols;
    for (auto _ : state) {
        im2col(x, 0, g, cols);
        benchmark::DoNotOptimize(cols.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(g.colRows() * 32 * 32 *
                                    sizeof(float)));
    setThreadCount(0);
}
BENCHMARK(BM_Im2colThreads)->UseRealTime()->Arg(1)->Arg(2)->Arg(4);

/**
 * Convolution forward on the paper's AlexNet CONV2 layer (the Fig. 2
 * exemplar: 5x5 over 96 -> 256 channels, 2 groups, 27x27 output),
 * batch 1, at range(0) pool lanes. This is the PR's headline
 * acceptance shape.
 */
void
BM_ConvForwardAlexNetConv2(benchmark::State &state)
{
    setThreadCount(std::size_t(state.range(0)));
    Rng rng(5);
    const ConvSpec spec = alexNet().convs[1];
    ConvLayer layer(spec, rng);
    Tensor x(1, spec.inC, spec.inH, spec.inW);
    x.fillGaussian(rng, 0, 1);
    for (auto _ : state) {
        Tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        spec.flopsPerImage() * double(state.iterations()) * 1e-9,
        benchmark::Counter::kIsRate);
    setThreadCount(0);
}
BENCHMARK(BM_ConvForwardAlexNetConv2)->UseRealTime()->Arg(1)->Arg(2)->Arg(4);

void
BM_SoftmaxEntropy(benchmark::State &state)
{
    Rng rng(4);
    Tensor logits(64, 1000, 1, 1);
    logits.fillGaussian(rng, 0, 3);
    for (auto _ : state) {
        const Tensor p = softmax(logits);
        benchmark::DoNotOptimize(batchEntropy(p));
    }
}
BENCHMARK(BM_SoftmaxEntropy);

void
BM_KernelModel(benchmark::State &state)
{
    const GpuSpec gpu = k20c();
    const GemmShape g{384, 169 * 64, 2304};
    for (auto _ : state) {
        const SgemmModel m(gpu, {tileByName(64, 64), 0});
        benchmark::DoNotOptimize(m.kernelTime(g));
    }
}
BENCHMARK(BM_KernelModel);

void
BM_KernelTuner(benchmark::State &state)
{
    const GpuSpec gpu = jetsonTx1();
    const KernelTuner tuner(gpu);
    const GemmShape g = alexNet().convs[1].gemmShape(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(tuner.tune(g));
}
BENCHMARK(BM_KernelTuner);

} // namespace
} // namespace pcnn
