file(REMOVE_RECURSE
  "../bench/bench_table1_accuracy_entropy"
  "../bench/bench_table1_accuracy_entropy.pdb"
  "CMakeFiles/bench_table1_accuracy_entropy.dir/bench_table1_accuracy_entropy.cc.o"
  "CMakeFiles/bench_table1_accuracy_entropy.dir/bench_table1_accuracy_entropy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_accuracy_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
