# Empty compiler generated dependencies file for bench_fig7_rr_vs_psm.
# This may be replaced when dependencies are built.
