file(REMOVE_RECURSE
  "../bench/bench_fig7_rr_vs_psm"
  "../bench/bench_fig7_rr_vs_psm.pdb"
  "CMakeFiles/bench_fig7_rr_vs_psm.dir/bench_fig7_rr_vs_psm.cc.o"
  "CMakeFiles/bench_fig7_rr_vs_psm.dir/bench_fig7_rr_vs_psm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rr_vs_psm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
