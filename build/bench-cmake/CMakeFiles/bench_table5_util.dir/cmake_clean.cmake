file(REMOVE_RECURSE
  "../bench/bench_table5_util"
  "../bench/bench_table5_util.pdb"
  "CMakeFiles/bench_table5_util.dir/bench_table5_util.cc.o"
  "CMakeFiles/bench_table5_util.dir/bench_table5_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
