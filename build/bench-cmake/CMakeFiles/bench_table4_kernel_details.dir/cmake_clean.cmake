file(REMOVE_RECURSE
  "../bench/bench_table4_kernel_details"
  "../bench/bench_table4_kernel_details.pdb"
  "CMakeFiles/bench_table4_kernel_details.dir/bench_table4_kernel_details.cc.o"
  "CMakeFiles/bench_table4_kernel_details.dir/bench_table4_kernel_details.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_kernel_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
