file(REMOVE_RECURSE
  "../bench/bench_table2_gpu_configs"
  "../bench/bench_table2_gpu_configs.pdb"
  "CMakeFiles/bench_table2_gpu_configs.dir/bench_table2_gpu_configs.cc.o"
  "CMakeFiles/bench_table2_gpu_configs.dir/bench_table2_gpu_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gpu_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
