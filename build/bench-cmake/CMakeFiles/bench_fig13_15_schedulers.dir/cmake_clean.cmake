file(REMOVE_RECURSE
  "../bench/bench_fig13_15_schedulers"
  "../bench/bench_fig13_15_schedulers.pdb"
  "CMakeFiles/bench_fig13_15_schedulers.dir/bench_fig13_15_schedulers.cc.o"
  "CMakeFiles/bench_fig13_15_schedulers.dir/bench_fig13_15_schedulers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_15_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
