# Empty dependencies file for bench_fig13_15_schedulers.
# This may be replaced when dependencies are built.
