# Empty dependencies file for bench_fig9_tlp_registers.
# This may be replaced when dependencies are built.
