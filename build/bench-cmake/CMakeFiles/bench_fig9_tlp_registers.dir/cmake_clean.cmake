file(REMOVE_RECURSE
  "../bench/bench_fig9_tlp_registers"
  "../bench/bench_fig9_tlp_registers.pdb"
  "CMakeFiles/bench_fig9_tlp_registers.dir/bench_fig9_tlp_registers.cc.o"
  "CMakeFiles/bench_fig9_tlp_registers.dir/bench_fig9_tlp_registers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tlp_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
