# Empty dependencies file for bench_fig3_soc_curve.
# This may be replaced when dependencies are built.
