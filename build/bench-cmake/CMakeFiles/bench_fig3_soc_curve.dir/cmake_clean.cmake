file(REMOVE_RECURSE
  "../bench/bench_fig3_soc_curve"
  "../bench/bench_fig3_soc_curve.pdb"
  "CMakeFiles/bench_fig3_soc_curve.dir/bench_fig3_soc_curve.cc.o"
  "CMakeFiles/bench_fig3_soc_curve.dir/bench_fig3_soc_curve.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_soc_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
