file(REMOVE_RECURSE
  "../bench/bench_fig16_accuracy_tuning"
  "../bench/bench_fig16_accuracy_tuning.pdb"
  "CMakeFiles/bench_fig16_accuracy_tuning.dir/bench_fig16_accuracy_tuning.cc.o"
  "CMakeFiles/bench_fig16_accuracy_tuning.dir/bench_fig16_accuracy_tuning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_accuracy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
