# Empty dependencies file for bench_fig5_cpe.
# This may be replaced when dependencies are built.
