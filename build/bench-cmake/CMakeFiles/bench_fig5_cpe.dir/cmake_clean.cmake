file(REMOVE_RECURSE
  "../bench/bench_fig5_cpe"
  "../bench/bench_fig5_cpe.pdb"
  "CMakeFiles/bench_fig5_cpe.dir/bench_fig5_cpe.cc.o"
  "CMakeFiles/bench_fig5_cpe.dir/bench_fig5_cpe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
