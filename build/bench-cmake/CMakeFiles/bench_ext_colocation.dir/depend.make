# Empty dependencies file for bench_ext_colocation.
# This may be replaced when dependencies are built.
