file(REMOVE_RECURSE
  "../bench/bench_ext_colocation"
  "../bench/bench_ext_colocation.pdb"
  "CMakeFiles/bench_ext_colocation.dir/bench_ext_colocation.cc.o"
  "CMakeFiles/bench_ext_colocation.dir/bench_ext_colocation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
