file(REMOVE_RECURSE
  "../bench/bench_ext_dvfs"
  "../bench/bench_ext_dvfs.pdb"
  "CMakeFiles/bench_ext_dvfs.dir/bench_ext_dvfs.cc.o"
  "CMakeFiles/bench_ext_dvfs.dir/bench_ext_dvfs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
