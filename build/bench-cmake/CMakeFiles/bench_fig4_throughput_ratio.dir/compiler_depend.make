# Empty compiler generated dependencies file for bench_fig4_throughput_ratio.
# This may be replaced when dependencies are built.
