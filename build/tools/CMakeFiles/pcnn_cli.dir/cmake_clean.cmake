file(REMOVE_RECURSE
  "CMakeFiles/pcnn_cli.dir/pcnn_cli.cc.o"
  "CMakeFiles/pcnn_cli.dir/pcnn_cli.cc.o.d"
  "pcnn_cli"
  "pcnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
