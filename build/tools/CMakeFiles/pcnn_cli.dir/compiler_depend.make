# Empty compiler generated dependencies file for pcnn_cli.
# This may be replaced when dependencies are built.
