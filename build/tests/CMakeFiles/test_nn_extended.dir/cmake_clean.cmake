file(REMOVE_RECURSE
  "CMakeFiles/test_nn_extended.dir/test_nn_extended.cc.o"
  "CMakeFiles/test_nn_extended.dir/test_nn_extended.cc.o.d"
  "test_nn_extended"
  "test_nn_extended.pdb"
  "test_nn_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
