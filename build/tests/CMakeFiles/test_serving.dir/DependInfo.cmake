
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_serving.cc" "tests/CMakeFiles/test_serving.dir/test_serving.cc.o" "gcc" "tests/CMakeFiles/test_serving.dir/test_serving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcnn/CMakeFiles/pcnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/libs/CMakeFiles/pcnn_libs.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pcnn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/pcnn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pcnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pcnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
