file(REMOVE_RECURSE
  "CMakeFiles/test_libs.dir/test_libs.cc.o"
  "CMakeFiles/test_libs.dir/test_libs.cc.o.d"
  "test_libs"
  "test_libs.pdb"
  "test_libs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
