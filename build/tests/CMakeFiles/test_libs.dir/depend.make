# Empty dependencies file for test_libs.
# This may be replaced when dependencies are built.
