# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_libs[1]_include.cmake")
include("/root/repo/build/tests/test_offline[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_nn_extended[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_serving[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
