file(REMOVE_RECURSE
  "CMakeFiles/image_tagging.dir/image_tagging.cc.o"
  "CMakeFiles/image_tagging.dir/image_tagging.cc.o.d"
  "image_tagging"
  "image_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
