# Empty dependencies file for image_tagging.
# This may be replaced when dependencies are built.
