file(REMOVE_RECURSE
  "CMakeFiles/deploy_pipeline.dir/deploy_pipeline.cc.o"
  "CMakeFiles/deploy_pipeline.dir/deploy_pipeline.cc.o.d"
  "deploy_pipeline"
  "deploy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
