# Empty compiler generated dependencies file for deploy_pipeline.
# This may be replaced when dependencies are built.
