# Empty dependencies file for age_detection.
# This may be replaced when dependencies are built.
