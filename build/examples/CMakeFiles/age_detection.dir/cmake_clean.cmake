file(REMOVE_RECURSE
  "CMakeFiles/age_detection.dir/age_detection.cc.o"
  "CMakeFiles/age_detection.dir/age_detection.cc.o.d"
  "age_detection"
  "age_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/age_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
