# Empty compiler generated dependencies file for pcnn_nn.
# This may be replaced when dependencies are built.
