file(REMOVE_RECURSE
  "CMakeFiles/pcnn_nn.dir/avgpool_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/avgpool_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/conv_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/conv_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/conv_spec.cc.o"
  "CMakeFiles/pcnn_nn.dir/conv_spec.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/dropout_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/dropout_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/fc_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/fc_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/inception_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/inception_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/lrn_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/lrn_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/model_zoo.cc.o"
  "CMakeFiles/pcnn_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/network.cc.o"
  "CMakeFiles/pcnn_nn.dir/network.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/pool_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/pool_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/relu_layer.cc.o"
  "CMakeFiles/pcnn_nn.dir/relu_layer.cc.o.d"
  "CMakeFiles/pcnn_nn.dir/serialize.cc.o"
  "CMakeFiles/pcnn_nn.dir/serialize.cc.o.d"
  "libpcnn_nn.a"
  "libpcnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
