
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/avgpool_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/avgpool_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/avgpool_layer.cc.o.d"
  "/root/repo/src/nn/conv_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/conv_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/conv_layer.cc.o.d"
  "/root/repo/src/nn/conv_spec.cc" "src/nn/CMakeFiles/pcnn_nn.dir/conv_spec.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/conv_spec.cc.o.d"
  "/root/repo/src/nn/dropout_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/dropout_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/dropout_layer.cc.o.d"
  "/root/repo/src/nn/fc_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/fc_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/fc_layer.cc.o.d"
  "/root/repo/src/nn/inception_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/inception_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/inception_layer.cc.o.d"
  "/root/repo/src/nn/lrn_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/lrn_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/lrn_layer.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/nn/CMakeFiles/pcnn_nn.dir/model_zoo.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/model_zoo.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/pcnn_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/pool_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/pool_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/pool_layer.cc.o.d"
  "/root/repo/src/nn/relu_layer.cc" "src/nn/CMakeFiles/pcnn_nn.dir/relu_layer.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/relu_layer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/pcnn_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/pcnn_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pcnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
