file(REMOVE_RECURSE
  "CMakeFiles/pcnn_data.dir/dataset.cc.o"
  "CMakeFiles/pcnn_data.dir/dataset.cc.o.d"
  "CMakeFiles/pcnn_data.dir/synthetic.cc.o"
  "CMakeFiles/pcnn_data.dir/synthetic.cc.o.d"
  "libpcnn_data.a"
  "libpcnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
