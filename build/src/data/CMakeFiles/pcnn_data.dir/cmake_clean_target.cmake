file(REMOVE_RECURSE
  "libpcnn_data.a"
)
