# Empty dependencies file for pcnn_data.
# This may be replaced when dependencies are built.
