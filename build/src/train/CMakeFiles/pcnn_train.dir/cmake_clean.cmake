file(REMOVE_RECURSE
  "CMakeFiles/pcnn_train.dir/loss.cc.o"
  "CMakeFiles/pcnn_train.dir/loss.cc.o.d"
  "CMakeFiles/pcnn_train.dir/sgd.cc.o"
  "CMakeFiles/pcnn_train.dir/sgd.cc.o.d"
  "CMakeFiles/pcnn_train.dir/trainer.cc.o"
  "CMakeFiles/pcnn_train.dir/trainer.cc.o.d"
  "libpcnn_train.a"
  "libpcnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
