# Empty compiler generated dependencies file for pcnn_train.
# This may be replaced when dependencies are built.
