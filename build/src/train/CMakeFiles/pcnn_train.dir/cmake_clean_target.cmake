file(REMOVE_RECURSE
  "libpcnn_train.a"
)
