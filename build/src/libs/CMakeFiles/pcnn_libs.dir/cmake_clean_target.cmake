file(REMOVE_RECURSE
  "libpcnn_libs.a"
)
