# Empty dependencies file for pcnn_libs.
# This may be replaced when dependencies are built.
