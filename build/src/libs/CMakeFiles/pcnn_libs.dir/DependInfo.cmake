
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libs/cublas_like.cc" "src/libs/CMakeFiles/pcnn_libs.dir/cublas_like.cc.o" "gcc" "src/libs/CMakeFiles/pcnn_libs.dir/cublas_like.cc.o.d"
  "/root/repo/src/libs/cudnn_like.cc" "src/libs/CMakeFiles/pcnn_libs.dir/cudnn_like.cc.o" "gcc" "src/libs/CMakeFiles/pcnn_libs.dir/cudnn_like.cc.o.d"
  "/root/repo/src/libs/dl_library.cc" "src/libs/CMakeFiles/pcnn_libs.dir/dl_library.cc.o" "gcc" "src/libs/CMakeFiles/pcnn_libs.dir/dl_library.cc.o.d"
  "/root/repo/src/libs/nervana_like.cc" "src/libs/CMakeFiles/pcnn_libs.dir/nervana_like.cc.o" "gcc" "src/libs/CMakeFiles/pcnn_libs.dir/nervana_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/pcnn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pcnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
