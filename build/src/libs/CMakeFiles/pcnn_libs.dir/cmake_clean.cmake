file(REMOVE_RECURSE
  "CMakeFiles/pcnn_libs.dir/cublas_like.cc.o"
  "CMakeFiles/pcnn_libs.dir/cublas_like.cc.o.d"
  "CMakeFiles/pcnn_libs.dir/cudnn_like.cc.o"
  "CMakeFiles/pcnn_libs.dir/cudnn_like.cc.o.d"
  "CMakeFiles/pcnn_libs.dir/dl_library.cc.o"
  "CMakeFiles/pcnn_libs.dir/dl_library.cc.o.d"
  "CMakeFiles/pcnn_libs.dir/nervana_like.cc.o"
  "CMakeFiles/pcnn_libs.dir/nervana_like.cc.o.d"
  "libpcnn_libs.a"
  "libpcnn_libs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_libs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
