
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcnn/offline/batch_selector.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/batch_selector.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/batch_selector.cc.o.d"
  "/root/repo/src/pcnn/offline/compiler.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/compiler.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/compiler.cc.o.d"
  "/root/repo/src/pcnn/offline/dvfs_planner.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/dvfs_planner.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/dvfs_planner.cc.o.d"
  "/root/repo/src/pcnn/offline/kernel_tuner.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/kernel_tuner.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/kernel_tuner.cc.o.d"
  "/root/repo/src/pcnn/offline/plan_io.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/plan_io.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/plan_io.cc.o.d"
  "/root/repo/src/pcnn/offline/resource_model.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/resource_model.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/resource_model.cc.o.d"
  "/root/repo/src/pcnn/offline/time_model.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/time_model.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/offline/time_model.cc.o.d"
  "/root/repo/src/pcnn/runtime/accuracy_tuner.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/accuracy_tuner.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/accuracy_tuner.cc.o.d"
  "/root/repo/src/pcnn/runtime/calibration.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/calibration.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/calibration.cc.o.d"
  "/root/repo/src/pcnn/runtime/entropy_profile.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/entropy_profile.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/entropy_profile.cc.o.d"
  "/root/repo/src/pcnn/runtime/executor.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/executor.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/executor.cc.o.d"
  "/root/repo/src/pcnn/runtime/kernel_scheduler.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/kernel_scheduler.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/kernel_scheduler.cc.o.d"
  "/root/repo/src/pcnn/runtime/requirement_learner.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/requirement_learner.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/requirement_learner.cc.o.d"
  "/root/repo/src/pcnn/runtime/serving_sim.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/serving_sim.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/serving_sim.cc.o.d"
  "/root/repo/src/pcnn/runtime/tuning_table.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/tuning_table.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/runtime/tuning_table.cc.o.d"
  "/root/repo/src/pcnn/satisfaction.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/satisfaction.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/satisfaction.cc.o.d"
  "/root/repo/src/pcnn/schedulers/energy_efficient.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/energy_efficient.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/energy_efficient.cc.o.d"
  "/root/repo/src/pcnn/schedulers/ideal.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/ideal.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/ideal.cc.o.d"
  "/root/repo/src/pcnn/schedulers/pcnn_scheduler.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/pcnn_scheduler.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/pcnn_scheduler.cc.o.d"
  "/root/repo/src/pcnn/schedulers/perf_preferred.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/perf_preferred.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/perf_preferred.cc.o.d"
  "/root/repo/src/pcnn/schedulers/qpe.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/qpe.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/qpe.cc.o.d"
  "/root/repo/src/pcnn/schedulers/qpe_plus.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/qpe_plus.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/qpe_plus.cc.o.d"
  "/root/repo/src/pcnn/schedulers/sched_common.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/sched_common.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/sched_common.cc.o.d"
  "/root/repo/src/pcnn/schedulers/scheduler.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/scheduler.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/schedulers/scheduler.cc.o.d"
  "/root/repo/src/pcnn/task.cc" "src/pcnn/CMakeFiles/pcnn_core.dir/task.cc.o" "gcc" "src/pcnn/CMakeFiles/pcnn_core.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/pcnn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/libs/CMakeFiles/pcnn_libs.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/pcnn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pcnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pcnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
