file(REMOVE_RECURSE
  "libpcnn_tensor.a"
)
