file(REMOVE_RECURSE
  "CMakeFiles/pcnn_tensor.dir/tensor.cc.o"
  "CMakeFiles/pcnn_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/pcnn_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/pcnn_tensor.dir/tensor_ops.cc.o.d"
  "libpcnn_tensor.a"
  "libpcnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
