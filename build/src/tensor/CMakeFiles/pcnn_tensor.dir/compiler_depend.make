# Empty compiler generated dependencies file for pcnn_tensor.
# This may be replaced when dependencies are built.
