# Empty dependencies file for pcnn_gpu.
# This may be replaced when dependencies are built.
