
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/dvfs.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/dvfs.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/dvfs.cc.o.d"
  "/root/repo/src/gpu/gpu_spec.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/gpu_spec.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/gpu_spec.cc.o.d"
  "/root/repo/src/gpu/kernel_model.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/kernel_model.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/kernel_model.cc.o.d"
  "/root/repo/src/gpu/memory_model.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/memory_model.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/memory_model.cc.o.d"
  "/root/repo/src/gpu/occupancy.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/occupancy.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/occupancy.cc.o.d"
  "/root/repo/src/gpu/sim/cta_scheduler.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/sim/cta_scheduler.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/sim/cta_scheduler.cc.o.d"
  "/root/repo/src/gpu/sim/energy_model.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/sim/energy_model.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/sim/energy_model.cc.o.d"
  "/root/repo/src/gpu/sim/gpu_sim.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/sim/gpu_sim.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/sim/gpu_sim.cc.o.d"
  "/root/repo/src/gpu/tile_config.cc" "src/gpu/CMakeFiles/pcnn_gpu.dir/tile_config.cc.o" "gcc" "src/gpu/CMakeFiles/pcnn_gpu.dir/tile_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pcnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
