file(REMOVE_RECURSE
  "libpcnn_gpu.a"
)
