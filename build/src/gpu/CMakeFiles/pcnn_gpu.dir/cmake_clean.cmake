file(REMOVE_RECURSE
  "CMakeFiles/pcnn_gpu.dir/dvfs.cc.o"
  "CMakeFiles/pcnn_gpu.dir/dvfs.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/gpu_spec.cc.o"
  "CMakeFiles/pcnn_gpu.dir/gpu_spec.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/kernel_model.cc.o"
  "CMakeFiles/pcnn_gpu.dir/kernel_model.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/memory_model.cc.o"
  "CMakeFiles/pcnn_gpu.dir/memory_model.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/occupancy.cc.o"
  "CMakeFiles/pcnn_gpu.dir/occupancy.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/sim/cta_scheduler.cc.o"
  "CMakeFiles/pcnn_gpu.dir/sim/cta_scheduler.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/sim/energy_model.cc.o"
  "CMakeFiles/pcnn_gpu.dir/sim/energy_model.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/sim/gpu_sim.cc.o"
  "CMakeFiles/pcnn_gpu.dir/sim/gpu_sim.cc.o.d"
  "CMakeFiles/pcnn_gpu.dir/tile_config.cc.o"
  "CMakeFiles/pcnn_gpu.dir/tile_config.cc.o.d"
  "libpcnn_gpu.a"
  "libpcnn_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
