# Empty dependencies file for pcnn_common.
# This may be replaced when dependencies are built.
