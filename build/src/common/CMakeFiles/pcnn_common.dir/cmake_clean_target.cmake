file(REMOVE_RECURSE
  "libpcnn_common.a"
)
