file(REMOVE_RECURSE
  "CMakeFiles/pcnn_common.dir/csv.cc.o"
  "CMakeFiles/pcnn_common.dir/csv.cc.o.d"
  "CMakeFiles/pcnn_common.dir/logging.cc.o"
  "CMakeFiles/pcnn_common.dir/logging.cc.o.d"
  "CMakeFiles/pcnn_common.dir/random.cc.o"
  "CMakeFiles/pcnn_common.dir/random.cc.o.d"
  "CMakeFiles/pcnn_common.dir/stats.cc.o"
  "CMakeFiles/pcnn_common.dir/stats.cc.o.d"
  "CMakeFiles/pcnn_common.dir/table.cc.o"
  "CMakeFiles/pcnn_common.dir/table.cc.o.d"
  "libpcnn_common.a"
  "libpcnn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcnn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
