/**
 * @file
 * Background task: throughput- and energy-oriented batch tagging.
 *
 * Shows the offline compiler's batch-size selection (Section IV.B.1):
 * the optimal batch is derived from the last layer's Util, differs
 * per platform, and is capped by device memory; the runtime then
 * compares schedulers on per-image energy.
 *
 * Run: ./image_tagging
 */

#include <cstdio>

#include "pcnn/pcnn.hh"

using namespace pcnn;

int
main()
{
    const NetDescriptor net = alexNet();
    const AppSpec app = imageTaggingApp();

    std::printf("batch-size selection for %s (background task):\n",
                net.name.c_str());
    TextTable batch_table({"GPU", "Memory cap", "Saturation batch",
                           "Chosen batch", "Last-layer Util"});
    for (const GpuSpec &gpu : allGpus()) {
        const BatchSelector selector(gpu);
        const std::size_t cap = selector.memoryCap(net);
        const std::size_t sat = selector.smallestFullUtilBatch(net);
        const std::size_t chosen = selector.backgroundBatch(net);

        const KernelTuner tuner(gpu);
        const GemmShape g = net.convs.back().gemmShape(chosen);
        const SgemmModel model(gpu, tuner.tune(g).config);
        batch_table.addRow(
            {gpu.name, TextTable::num(cap),
             sat == 0 ? "-" : TextTable::num(sat),
             TextTable::num(chosen), TextTable::num(model.util(g), 2)});
    }
    std::printf("%s", batch_table.render().c_str());

    // Energy comparison on the server GPU: every scheduler tags the
    // same photo roll; background SoC is driven by energy alone.
    const GpuSpec gpu = k20c();
    const ScheduleContext ctx = makeContext(app, net, gpu);
    std::printf("\ntagging on %s (%s task, %.0f img/s arriving):\n",
                gpu.name.c_str(),
                taskClassName(app.taskClass).c_str(), app.dataRateHz);
    TextTable sched_table({"Scheduler", "Batch", "Energy/img (J)",
                           "Throughput (img/s)", "SoC"});
    for (const auto &s : allSchedulers()) {
        const ScheduleOutcome o = s->run(ctx);
        sched_table.addRow(
            {o.scheduler, TextTable::num(o.batch),
             TextTable::num(o.energyPerImageJ, 4),
             TextTable::num(double(o.batch) / o.latencyS, 0),
             TextTable::num(o.socScore, 2)});
    }
    std::printf("%s", sched_table.render().c_str());
    std::printf("\nbackground tasks never violate SoC_time; the "
                "winner is decided by joules per photo.\n");
    return 0;
}
