/**
 * @file
 * Real-time task with calibration: 60 FPS surveillance on a mobile
 * GPU, where only the entropy-guided approximation meets the frame
 * deadline — and the calibrator backs off when the scene gets hard.
 *
 * Uses GoogLeNet shapes on the TX1 for the timing side (the paper's
 * Fig. 15b setting) and a trained MiniNet for the accuracy side.
 *
 * Run: ./video_surveillance
 */

#include <cstdio>

#include "pcnn/pcnn.hh"

using namespace pcnn;

int
main()
{
    const GpuSpec gpu = jetsonTx1();
    const AppSpec app = videoSurveillanceApp();
    const UserRequirement req = inferRequirement(app);
    std::printf("%s on %s: deadline %.2f ms/frame, entropy "
                "threshold %.2f\n",
                app.name.c_str(), gpu.name.c_str(),
                req.imperceptibleS * 1e3, req.entropyThreshold);

    // Timing side: GoogLeNet on the TX1 misses the deadline exactly
    // as in the paper, until accuracy tuning sheds work.
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compile(googleNet(), app);
    std::printf("exact network: %.2f ms -> %s\n",
                plan.latencyS() * 1e3,
                plan.timeRequirementMissed ? "MISSES the deadline"
                                           : "meets the deadline");

    TunerConfig tuner_cfg;
    tuner_cfg.entropyThreshold = req.entropyThreshold;
    const AccuracyTuner tuner(gpu, tuner_cfg);
    const TuningTable table =
        tuner.tuneModeled(plan, EntropyProfile::representative());
    const std::size_t level =
        table.selectLevel(req.entropyThreshold);
    const TuningEntry &entry = table.entry(level);
    std::printf("entropy-tuned (level %zu/%zu): %.2f ms (%.2fx) -> "
                "%s\n",
                level, table.levels(), entry.predictedTimeS * 1e3,
                entry.speedup,
                entry.predictedTimeS <= req.imperceptibleS
                    ? "meets the deadline"
                    : "still misses");

    const RuntimeKernelScheduler runtime(gpu);
    const SimResult run =
        runtime.execute(plan, pcnnPolicy(), &entry.positions);
    std::printf("simulated tuned execution: %.2f ms/frame, %.4f J, "
                "avg %.2f W\n",
                run.timeS * 1e3, run.energy.total(),
                run.averagePowerW());

    // Accuracy side: a trained classifier watches an easy scene,
    // then the scene turns hard (more noise); calibration reacts.
    // The hard scene shifts the *distribution* (objects move further
    // from where the classifier saw them) rather than just adding
    // noise — distribution shift is what genuinely confuses the
    // network and raises output entropy. Pure heavy noise would
    // saturate it into confidently-wrong answers instead.
    SyntheticTaskConfig easy;
    easy.difficulty = 0.35;
    easy.seed = 31;
    SyntheticTask easy_scene(easy);
    SyntheticTaskConfig hard = easy;
    hard.difficulty = 0.6;
    hard.maxShift = 6;
    SyntheticTask hard_scene(hard);

    Rng rng(32);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    Dataset train_set = easy_scene.generate(1536);
    TrainConfig train_cfg;
    train_cfg.epochs = 6;
    Trainer trainer(net, train_cfg);
    trainer.fit(train_set);

    const CompiledPlan mini_plan =
        compiler.compileAtBatch(describe(net), 64);
    TunerConfig mini_cfg;
    mini_cfg.entropyThreshold = 0.7;
    Executor exec(net, mini_plan, gpu, mini_cfg);
    Dataset tune_data = easy_scene.generate(128);
    exec.tune(tune_data.batch(0, tune_data.size()));
    std::printf("\ncalibration demo: tuned to level %zu of %zu\n",
                exec.currentLevel(), exec.tuningTable().levels());

    std::printf("easy scene frames:\n");
    for (int f = 0; f < 3; ++f) {
        Dataset frame = easy_scene.generate(32);
        const InferenceResult r = exec.infer(frame.batch(0, 32));
        std::printf("  frame %d: level %zu, entropy %.3f%s\n", f,
                    r.tuningLevel, r.entropy,
                    r.recalibrated ? "  -> stepping back" : "");
    }
    std::printf("scene turns hard (objects drift out of frame):\n");
    for (int f = 0; f < 5; ++f) {
        Dataset frame = hard_scene.generate(32);
        const InferenceResult r = exec.infer(frame.batch(0, 32));
        std::printf("  frame %d: level %zu, entropy %.3f%s\n", f,
                    r.tuningLevel, r.entropy,
                    r.recalibrated ? "  -> stepping back" : "");
    }
    std::printf("calibrator finished at level %zu\n",
                exec.currentLevel());
    return 0;
}
