/**
 * @file
 * Cross-platform compilation explorer: one network, four GPUs.
 *
 * Demonstrates the paper's headline workflow — train once, deploy
 * everywhere without retraining: the offline compiler re-tunes the
 * kernel (tile + registers), the TLP/SM allocation, and the batch
 * size for each microarchitecture, and the analytical time model
 * predicts whether each platform can serve each task class.
 *
 * Run: ./platform_explorer [AlexNet|GoogLeNet|VGGNet]
 */

#include <cstdio>
#include <cstring>

#include "pcnn/pcnn.hh"

using namespace pcnn;

int
main(int argc, char **argv)
{
    NetDescriptor net = alexNet();
    if (argc > 1) {
        for (const NetDescriptor &candidate : paperNetworks())
            if (candidate.name == argv[1])
                net = candidate;
    }
    std::printf("exploring %s across all platforms\n\n",
                net.name.c_str());

    // Per-layer kernel decisions at batch 1.
    TextTable kernels({"GPU", "Layer", "Kernel", "optTLP", "optSM",
                       "Util", "Time (ms)"});
    for (const GpuSpec &gpu : allGpus()) {
        const OfflineCompiler compiler(gpu);
        const CompiledPlan plan = compiler.compileAtBatch(net, 1);
        const std::size_t show =
            std::min<std::size_t>(plan.layers.size(), 5);
        for (std::size_t i = 0; i < show; ++i) {
            const LayerSchedule &ls = plan.layers[i];
            kernels.addRow({gpu.name, ls.layer.name,
                            ls.kernel.config.str(),
                            TextTable::num(ls.kernel.optTLP),
                            TextTable::num(ls.kernel.optSM),
                            TextTable::num(ls.util, 2),
                            TextTable::num(ls.timeS * 1e3, 3)});
        }
        kernels.addSeparator();
    }
    std::printf("per-layer kernel decisions (batch 1, first five "
                "layers):\n%s\n",
                kernels.render().c_str());

    // Task-class feasibility per platform.
    const AppSpec apps[] = {ageDetectionApp(), videoSurveillanceApp(),
                            imageTaggingApp()};
    TextTable feasibility({"GPU", "Task", "Batch", "Latency (ms)",
                           "Requirement (ms)", "Verdict"});
    for (const GpuSpec &gpu : allGpus()) {
        const OfflineCompiler compiler(gpu);
        for (const AppSpec &app : apps) {
            const UserRequirement req = inferRequirement(app);
            const CompiledPlan plan = compiler.compile(net, app);
            std::string requirement =
                req.timeInsensitive
                    ? "-"
                    : TextTable::num(req.imperceptibleS * 1e3, 1);
            std::string verdict =
                req.timeInsensitive
                    ? "throughput mode"
                    : (plan.timeRequirementMissed
                           ? "needs accuracy tuning"
                           : "meets requirement");
            feasibility.addRow({gpu.name, app.name,
                                TextTable::num(plan.batch),
                                TextTable::num(plan.latencyS() * 1e3,
                                               2),
                                requirement, verdict});
        }
        feasibility.addSeparator();
    }
    std::printf("task feasibility after offline compilation:\n%s",
                feasibility.render().c_str());
    return 0;
}
