/**
 * @file
 * Interactive task end-to-end: a trained classifier served through
 * the full P-CNN runtime (offline compilation, entropy-based
 * accuracy tuning, perforated execution, calibration).
 *
 * "Age detection" stands in for any user-facing, accuracy-tolerant
 * app: the user submits one image per request and tolerates a mild
 * accuracy dip for a snappier answer. We train a MiniNet on the
 * synthetic task (the DESIGN.md substitution for an ImageNet model),
 * deploy it to the notebook GPU, tune, and serve requests.
 *
 * Run: ./age_detection
 */

#include <cstdio>

#include "pcnn/pcnn.hh"

using namespace pcnn;

int
main()
{
    // Train the classifier (the "offline, data-center" stage).
    SyntheticTaskConfig task_cfg;
    task_cfg.difficulty = 0.45;
    task_cfg.seed = 2026;
    SyntheticTask task(task_cfg);
    Dataset train_set = task.generate(2048);
    Dataset test_set = task.generate(256);

    Rng rng(7);
    Network net = makeMiniNet(MiniSize::Large, rng);
    TrainConfig train_cfg;
    train_cfg.epochs = 8;
    Trainer trainer(net, train_cfg);
    trainer.fit(train_set);
    const EvalResult quality = trainer.evaluate(test_set);
    std::printf("trained %s: %.1f%% accuracy, %.3f mean entropy\n",
                net.name().c_str(), quality.accuracy * 100.0,
                quality.meanEntropy);

    // Deploy to the notebook GPU for an interactive app. Batch 64 in
    // the compiled plan keeps the simulated kernels compute-bound.
    const GpuSpec gpu = gtx970m();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan =
        compiler.compileAtBatch(describe(net), 64);
    std::printf("compiled for %s: %.3f ms per batch of %zu\n",
                gpu.name.c_str(), plan.latencyS() * 1e3, plan.batch);

    // Entropy-based accuracy tuning on unlabeled tuning inputs.
    TunerConfig tuner_cfg;
    tuner_cfg.entropyThreshold = quality.meanEntropy + 0.35;
    Executor exec(net, plan, gpu, tuner_cfg);
    Dataset tune_data = task.generate(192);
    exec.tune(tune_data.batch(0, tune_data.size()));

    std::printf("tuning path (%zu levels):\n",
                exec.tuningTable().levels());
    for (std::size_t i = 0; i < exec.tuningTable().levels(); ++i) {
        const TuningEntry &e = exec.tuningTable().entry(i);
        std::printf("  level %zu: %.2fx speedup, entropy %.3f%s\n", i,
                    e.speedup, e.entropy,
                    i == exec.currentLevel() ? "   <- selected" : "");
    }

    // Serve a stream of requests.
    std::printf("\nserving 8 requests:\n");
    Dataset live = task.generate(8 * 4);
    std::size_t correct = 0, total = 0;
    for (int r = 0; r < 8; ++r) {
        const Tensor batch = live.batch(std::size_t(r) * 4, 4);
        const auto labels = live.batchLabels(std::size_t(r) * 4, 4);
        const InferenceResult res = exec.infer(batch);
        for (std::size_t i = 0; i < 4; ++i) {
            correct += res.predictions[i] == labels[i];
            ++total;
        }
        std::printf("  request %d: level %zu, entropy %.3f, "
                    "sim %.3f ms, %.4f J%s\n",
                    r, res.tuningLevel, res.entropy,
                    res.simLatencyS * 1e3, res.energyJ,
                    res.recalibrated ? "  (recalibrated)" : "");
    }
    std::printf("live accuracy with tuned kernels: %.1f%%\n",
                100.0 * double(correct) / double(total));
    return 0;
}
