/**
 * @file
 * Quickstart: deploy a published CNN to a GPU platform with P-CNN.
 *
 * Walks the whole public API in one sitting:
 *   1. pick a network (AlexNet shapes) and a platform (Jetson TX1),
 *   2. describe the application so P-CNN can infer the user's
 *      requirements,
 *   3. offline-compile (batch selection + per-layer kernel tuning +
 *      optSM/optTLP),
 *   4. execute on the CTA-level simulator with the P-CNN runtime
 *      kernel scheduler,
 *   5. score the deployment with the SoC metric.
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "pcnn/pcnn.hh"

using namespace pcnn;

int
main()
{
    // 1. Network and platform.
    const NetDescriptor net = alexNet();
    const GpuSpec gpu = jetsonTx1();
    std::printf("deploying %s (%.2f GFLOP/image, %.0f MB weights) "
                "to %s (%zu SMs, %.2f TFLOP/s peak)\n",
                net.name.c_str(), net.totalFlopsPerImage() / 1e9,
                weightBytes(net) / 1e6, gpu.name.c_str(), gpu.numSMs,
                gpu.peakFlops() / 1e12);

    // 2. Application: an interactive photo app, one request at a
    //    time. P-CNN infers the 100 ms / 3 s HCI thresholds.
    const AppSpec app = ageDetectionApp();
    const UserRequirement req = inferRequirement(app);
    std::printf("app '%s' (%s): T_i=%.0f ms, T_t=%.0f ms, entropy "
                "threshold %.2f\n",
                app.name.c_str(),
                taskClassName(app.taskClass).c_str(),
                req.imperceptibleS * 1e3, req.tolerableS * 1e3,
                req.entropyThreshold);

    // 3. Cross-platform offline compilation.
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compile(net, app);
    std::printf("\ncompiled plan: batch %zu, predicted latency "
                "%.2f ms (conv %.2f + fc %.2f + aux %.2f)\n",
                plan.batch, plan.latencyS() * 1e3,
                plan.time.convS * 1e3, plan.time.fcS * 1e3,
                plan.time.auxS * 1e3);
    TextTable table({"Layer", "Kernel", "optTLP", "optSM", "Util",
                     "Time (ms)"});
    for (const LayerSchedule &ls : plan.layers) {
        table.addRow({ls.layer.name, ls.kernel.config.str(),
                      TextTable::num(ls.kernel.optTLP),
                      TextTable::num(ls.kernel.optSM),
                      TextTable::num(ls.util, 2),
                      TextTable::num(ls.timeS * 1e3, 3)});
    }
    std::printf("%s", table.render().c_str());

    // 4. Execute on the simulated GPU with the P-CNN runtime
    //    scheduler (PSM placement, optSM allocation, power gating).
    const RuntimeKernelScheduler runtime(gpu);
    const SimResult run = runtime.execute(plan, pcnnPolicy());
    const SimResult naive = runtime.execute(plan, baselinePolicy());
    std::printf("\nsimulated execution: %.2f ms, %.3f J "
                "(hardware RR baseline: %.2f ms, %.3f J)\n",
                run.timeS * 1e3, run.energy.total(), naive.timeS * 1e3,
                naive.energy.total());

    // 5. Score the deployment.
    const EntropyProfile profile = EntropyProfile::representative();
    const double score =
        soc(run.timeS, profile.entropyAt(1.0),
            run.energy.total() / double(plan.batch), req);
    std::printf("SoC = SoC_time x SoC_accuracy / energy = %.2f\n",
                score);
    std::printf("\nNext steps: examples/age_detection.cc (accuracy "
                "tuning), examples/video_surveillance.cc "
                "(calibration), examples/image_tagging.cc (batch "
                "selection), examples/platform_explorer.cc "
                "(cross-platform compilation).\n");
    return 0;
}
