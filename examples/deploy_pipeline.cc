/**
 * @file
 * Deployment pipeline: the artifact-centric workflow a production
 * team would script around P-CNN.
 *
 *   build box:   train -> save weights; per target GPU: offline
 *                compile (+ DVFS plan) -> save plan
 *   device:      load weights + plan (no re-tuning), tune accuracy
 *                on local data, serve, learn the user's real
 *                latency threshold online
 *
 * Run: ./deploy_pipeline
 */

#include <cstdio>

#include "nn/serialize.hh"
#include "pcnn/offline/dvfs_planner.hh"
#include "pcnn/offline/plan_io.hh"
#include "pcnn/pcnn.hh"
#include "pcnn/runtime/requirement_learner.hh"

using namespace pcnn;

int
main()
{
    const std::string weights_path = "/tmp/pcnn_demo_weights.bin";
    const std::string plan_path = "/tmp/pcnn_demo_plan.bin";

    // ---------------- build box: train once --------------------------
    SyntheticTaskConfig task_cfg;
    task_cfg.difficulty = 0.45;
    task_cfg.seed = 77;
    SyntheticTask task(task_cfg);
    {
        Rng rng(78);
        Network net = makeMiniNet(MiniSize::Medium, rng);
        Dataset train_set = task.generate(1536);
        TrainConfig tc;
        tc.epochs = 6;
        Trainer trainer(net, tc);
        trainer.fit(train_set);
        if (!saveWeights(net, weights_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         weights_path.c_str());
            return 1;
        }
        std::printf("[build] trained %s, weights -> %s\n",
                    net.name().c_str(), weights_path.c_str());

        // Offline compile for the target device, DVFS-aware.
        const DvfsPlanner planner(gtx970m());
        Rng probe_rng(78);
        Network probe = makeMiniNet(MiniSize::Medium, probe_rng);
        const DvfsPlan dp =
            planner.plan(describe(probe), ageDetectionApp());
        CompiledPlan plan = dp.plan;
        // Re-plan at a serving batch so conv kernels dominate.
        const OfflineCompiler compiler(dp.gpu);
        plan = compiler.compileAtBatch(describe(probe), 32);
        if (!savePlan(plan, plan_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         plan_path.c_str());
            return 1;
        }
        std::printf("[build] compiled for %s (DVFS level %.2f), "
                    "plan -> %s\n",
                    dp.gpu.name.c_str(), dp.level, plan_path.c_str());
    }

    // ---------------- device: load artifacts and serve ---------------
    Rng rng(999); // fresh weights, about to be overwritten by load
    Network net = makeMiniNet(MiniSize::Medium, rng);
    if (!loadWeights(net, weights_path)) {
        std::fprintf(stderr, "weight load failed\n");
        return 1;
    }
    const auto plan = loadPlan(plan_path);
    if (!plan) {
        std::fprintf(stderr, "plan load failed\n");
        return 1;
    }
    std::printf("[device] restored %s + plan for %s (batch %zu, "
                "%.3f ms predicted)\n",
                net.name().c_str(), plan->gpuName.c_str(),
                plan->batch, plan->latencyS() * 1e3);

    const DvfsModel dvfs(gtx970m());
    const GpuSpec gpu = dvfs.nominal();
    TunerConfig tcfg;
    tcfg.entropyThreshold = 0.9;
    Executor exec(net, *plan, gpu, tcfg);
    Dataset tune_data = task.generate(128);
    exec.tune(tune_data.batch(0, tune_data.size()));
    std::printf("[device] accuracy-tuned to level %zu of %zu "
                "(%.2fx speedup)\n",
                exec.currentLevel(), exec.tuningTable().levels(),
                exec.tuningTable()
                    .entry(exec.currentLevel())
                    .speedup);

    // Serve while learning this user's real patience. The simulated
    // user is more patient than the HCI table value (T_i ~ 250 ms).
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    Rng user_rng(80);
    const double true_ti = 0.25;
    for (int r = 0; r < 40; ++r) {
        Dataset req = task.generate(8);
        const InferenceResult res = exec.infer(req.batch(0, 8));
        // Simulated latency plus some app/network jitter.
        const double latency =
            res.simLatencyS + user_rng.uniform(0.0, 0.4);
        learner.observe(latency, latency <= true_ti
                                     ? UserFeedback::Satisfied
                                     : UserFeedback::Complained);
    }
    std::printf("[device] learned T_i after %zu requests: %.0f ms "
                "(table said 100 ms, this user tolerates ~250 ms)\n",
                learner.observations(),
                learner.current().imperceptibleS * 1e3);
    std::printf("[device] the extra slack feeds back into DVFS: "
                "level %.2f would now suffice\n",
                dvfs.levelForBudget(plan->latencyS(),
                                    learner.current().imperceptibleS));

    std::remove(weights_path.c_str());
    std::remove(plan_path.c_str());
    return 0;
}
