/**
 * @file
 * Per-model replica autoscaling policy (DESIGN.md §5k).
 *
 * The signal is *backlog seconds per replica*: the EWMA-estimated
 * time one replica would need to drain the model's current queue.
 * Replica counts translate arena budget into service capacity, so
 * the policy is deliberately sluggish — a deadband between the grow
 * and shrink thresholds, consecutive-tick holds on both sides, and a
 * post-action cooldown — because each grow costs an arena allocation
 * and warm-up forward, and flapping would re-pay that cost on every
 * load ripple.
 *
 * The policy itself is pure (no clock, no threads, no engine types):
 * tick() maps one observation to Hold/Grow/Shrink, which makes the
 * hysteresis behavior exhaustively unit-testable. The engine's
 * scaler thread owns the clock and the replica plumbing.
 */

#ifndef PCNN_SERVE_AUTOSCALER_HH
#define PCNN_SERVE_AUTOSCALER_HH

#include <cstddef>

namespace pcnn {

/** Autoscaling thresholds and hysteresis. */
struct AutoscalerConfig
{
    std::size_t minReplicas = 1; ///< never shrink below
    std::size_t maxReplicas = 4; ///< never grow past
    /// grow when backlog-per-replica exceeds this for growHold ticks
    double growBacklogS = 0.050;
    /// shrink when backlog-per-replica is under this for shrinkHold
    /// ticks; must sit well below growBacklogS (the deadband between
    /// them is what prevents flapping)
    double shrinkBacklogS = 0.005;
    std::size_t growHold = 2;      ///< consecutive ticks to grow
    std::size_t shrinkHold = 6;    ///< consecutive ticks to shrink
    /// ticks after any action during which the policy holds and
    /// restarts its streaks (lets the replica change take effect
    /// before it is judged)
    std::size_t cooldownTicks = 3;
};

/** One model's scaling state machine. */
class AutoscalerPolicy
{
  public:
    /** What the engine should do to the replica pool this tick. */
    enum class Action
    {
        Hold,
        Grow,   ///< add one replica
        Shrink, ///< retire one idle replica
    };

    explicit AutoscalerPolicy(AutoscalerConfig config);

    /**
     * Feed one observation; returns the action to take now.
     * @param backlog_per_replica_s estimated seconds one replica's
     *        share of the queue needs to drain
     * @param replicas current pool size
     */
    Action tick(double backlog_per_replica_s, std::size_t replicas);

    /** The configuration this policy runs under. */
    const AutoscalerConfig &config() const { return cfg; }

  private:
    AutoscalerConfig cfg;
    std::size_t growStreak = 0;
    std::size_t shrinkStreak = 0;
    std::size_t cooldown = 0;
};

/**
 * The backlog signal: estimated seconds one replica's share of the
 * queue needs to drain, assuming full maxBatch batches at the
 * estimated per-batch service time. 0 when the queue is empty or no
 * service time has been observed yet.
 */
double backlogPerReplicaS(std::size_t queued, std::size_t replicas,
                          std::size_t max_batch,
                          double batch_service_est_s);

} // namespace pcnn

#endif // PCNN_SERVE_AUTOSCALER_HH
