#include "serve/engine.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/alloc_count.hh"
#include "common/check.hh"
#include "common/parallel.hh"
#include "common/tags.hh"
#include "gpu/gpu_spec.hh"
#include "nn/fusion.hh"
#include "pcnn/offline/batch_selector.hh"
#include "pcnn/offline/host_tuner.hh"

namespace pcnn {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

ServeEngine::ServeEngine(Network &prototype, EngineConfig config)
    : cfg(config), proto(prototype), queue(cfg.queueCapacity),
      policy(BatcherConfig{cfg.maxBatch, cfg.requirement, cfg.maxWaitS})
{
    PCNN_CHECK(cfg.workers >= 1, "engine needs at least one worker");
    PCNN_CHECK(cfg.maxBatch >= 1, "engine maxBatch must be >= 1");

    // Pin the per-host tuned kernel tier/blocking (when a valid tune
    // cache exists) before the warm-up below runs the first GEMM and
    // before any worker thread exists: the dispatch setters are not
    // safe against concurrent GEMMs, and every worker must inherit
    // the same configuration the warm-up measured. If the embedding
    // process already ran a forward (a prototype whose logits the
    // engine must reproduce bitwise), the hook declines and the
    // engine keeps the configuration those results were computed
    // under.
    (void)applyHostTuneCacheOnce();

    // Partition the intra-op lane budget across workers so inter-op
    // and intra-op parallelism compose instead of multiplying.
    lanes = cfg.lanesPerWorker != 0
                ? cfg.lanesPerWorker
                : std::max<std::size_t>(1, threadCount() / cfg.workers);

    // Register the Model handle (DESIGN.md §5k): a frozen clone of
    // the prototype plus the graph schedule built exactly once for
    // the whole engine — adopted from the serialized plan-v4 section
    // when the config carries one, compiled here otherwise. Cloning
    // freezes the caller's prototype, so nothing can invalidate the
    // replica warm-ups below after they run.
    ModelConfig mc;
    mc.name = proto.name();
    mc.maxBatch = cfg.maxBatch;
    mc.maxReplicas = cfg.workers;
    mc.schedule = cfg.schedule;
    const RegisterStatus st =
        registry.registerModel(proto.cloneSharingWeights(),
                               std::move(mc));
    PCNN_CHECK(st == RegisterStatus::Registered,
               "engine model registration failed: ",
               registerStatusName(st));
    Model &model = registry.model(0);

    // Each replica adopts the shared schedule (its one arena
    // allocation, before any worker thread exists — no serving batch
    // can trigger a recompile later) and warms at the batch ceiling,
    // so every grow-only buffer reaches its steady-state envelope up
    // front. The first warm-up also materializes every weight-derived
    // panel the inference route reads; panels then reach the workers
    // through the thread-creation happens-before edge, and the frozen
    // generation guarantees no worker ever re-packs — the steady
    // state takes no locks on weight state at all.
    replicas.reserve(cfg.workers);
    for (std::size_t i = 0; i < cfg.workers; ++i)
        replicas.push_back(model.makeReplica(lanes));

    // Seed the flush decision with the measured warm-up service time.
    policy.recordService(cfg.maxBatch,
                         model.estimator().estS(cfg.maxBatch));

    meter.start();
    threads.reserve(cfg.workers);
    for (std::size_t i = 0; i < cfg.workers; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ServeEngine::~ServeEngine()
{
    stop();
}

ServeEngine::Submission
ServeEngine::submit(Tensor input)
{
    const Shape &in = proto.inputShape();
    PCNN_CHECK(input.shape().n == 1 && input.shape().c == in.c &&
                   input.shape().h == in.h && input.shape().w == in.w,
               "serve submit: input ", input.shape().str(),
               " mismatches expected [1,", in.c, ",", in.h, ",", in.w,
               "]");

    PendingRequest req;
    req.id = nextId.fetch_add(1, std::memory_order_relaxed);
    req.input = std::move(input);
    req.enqueued = std::chrono::steady_clock::now();
    std::future<ServeResult> fut = req.done.get_future();

    Submission sub;
    sub.status = queue.push(std::move(req));
    if (sub.status == SubmitStatus::Accepted) {
        sub.result = std::move(fut);
        meter.recordQueueDepth(queue.size());
    } else if (sub.status == SubmitStatus::QueueFull) {
        meter.recordShed();
    }
    return sub;
}

void
ServeEngine::stop()
{
    if (stopFlag.exchange(true))
        return;
    queue.close();
    for (std::thread &t : threads)
        t.join();
    threads.clear();
}

PCNN_HOT_PATH
void
ServeEngine::workerLoop(std::size_t worker)
{
    // The cap is thread-local: install it once for the life of the
    // worker so every forward below runs on this worker's share of
    // the lane budget.
    ScopedLaneLimit limit(lanes);
    Network &net = replicas[worker];
    const std::size_t item = proto.inputShape().itemSize();

    // Persistent per-worker staging and output tensors: resize() is
    // capacity-preserving, so once a batch size has been seen the
    // loop below stages, forwards, and reads results without a
    // single allocation. maxSeen tracks the warm envelope — any
    // batch no larger than one already served is steady state and is
    // probed for the zero-alloc invariant (DESIGN.md §5h).
    Tensor x;
    Tensor logits;
    std::size_t maxSeen = 0;

    for (;;) {
        // pcnn-analyze: allow(hot-path-alloc): request handoff —
        // ownership of the pending requests moves out of the queue,
        // outside the steady-state probe window below.
        std::vector<PendingRequest> batch = queue.popBatch(policy);
        if (batch.empty())
            return; // closed and drained

        const std::size_t b = batch.size();
        const bool steady = allocCountingEnabled() && b <= maxSeen;
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t probedAllocs = 0;
        {
            // The probe covers exactly the steady-state work: batch
            // staging plus the forward. Request plumbing (promises,
            // per-request logits copies, metrics) allocates by
            // design and stays outside the envelope.
            ScopedAllocCount probe;
            // pcnn-analyze: allow(hot-path-alloc): grow-only staging
            // buffer; capacity is reused once the batch size has been
            // seen — the probe proves it.
            x.resize(Shape{b, proto.inputShape().c,
                           proto.inputShape().h, proto.inputShape().w});
            for (std::size_t i = 0; i < b; ++i)
                std::memcpy(x.data() + i * item, batch[i].input.data(),
                            item * sizeof(float));
            net.forwardInto(x, false, logits);
            probedAllocs = probe.allocs();
        }
        maxSeen = std::max(maxSeen, b);
        const auto end = std::chrono::steady_clock::now();
        if (steady)
            meter.recordSteadyProbe(probedAllocs);

        policy.recordService(b, secondsSince(start, end));
        meter.recordBatch(b);
        for (std::size_t i = 0; i < b; ++i) {
            ServeResult r;
            // pcnn-analyze: allow(hot-path-alloc): per-request
            // response copy whose ownership passes to the caller;
            // outside the probe window by design.
            r.logits = logits.item(i);
            r.batchSize = b;
            r.queueS = secondsSince(batch[i].enqueued, start);
            r.latencyS = secondsSince(batch[i].enqueued, end);
            meter.recordLatency(r.latencyS, r.queueS);
            batch[i].done.set_value(std::move(r));
        }
    }
}

std::size_t
optimalServeBatch(const GpuSpec &gpu, const NetDescriptor &net,
                  const AppSpec &app, const UserRequirement &req)
{
    BatchSelector sel(gpu);
    if (app.taskClass == TaskClass::Background || req.timeInsensitive)
        return sel.backgroundBatch(net);
    return std::max<std::size_t>(1, sel.initialBatch(net, app, req));
}

} // namespace pcnn
