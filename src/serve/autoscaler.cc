#include "serve/autoscaler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

AutoscalerPolicy::AutoscalerPolicy(AutoscalerConfig config)
    : cfg(config)
{
    pcnn_assert(cfg.minReplicas >= 1, "minReplicas must be >= 1");
    pcnn_assert(cfg.maxReplicas >= cfg.minReplicas,
                "maxReplicas must be >= minReplicas");
    pcnn_assert(cfg.shrinkBacklogS <= cfg.growBacklogS,
                "shrink threshold must not exceed grow threshold");
    pcnn_assert(cfg.growHold >= 1 && cfg.shrinkHold >= 1,
                "hold counts must be >= 1");
}

AutoscalerPolicy::Action
AutoscalerPolicy::tick(double backlog_per_replica_s,
                       std::size_t replicas)
{
    if (cooldown > 0) {
        // Streaks restart after the cooldown: evidence gathered
        // while the last action was still settling is stale.
        --cooldown;
        growStreak = 0;
        shrinkStreak = 0;
        return Action::Hold;
    }
    if (backlog_per_replica_s > cfg.growBacklogS) {
        shrinkStreak = 0;
        if (++growStreak >= cfg.growHold && replicas < cfg.maxReplicas) {
            growStreak = 0;
            cooldown = cfg.cooldownTicks;
            return Action::Grow;
        }
        return Action::Hold;
    }
    if (backlog_per_replica_s < cfg.shrinkBacklogS) {
        growStreak = 0;
        if (++shrinkStreak >= cfg.shrinkHold &&
            replicas > cfg.minReplicas) {
            shrinkStreak = 0;
            cooldown = cfg.cooldownTicks;
            return Action::Shrink;
        }
        return Action::Hold;
    }
    // Deadband: the pool is sized about right; both streaks restart
    // so brief excursions on either side cannot accumulate into an
    // action (the no-flapping guarantee on a steady load step).
    growStreak = 0;
    shrinkStreak = 0;
    return Action::Hold;
}

double
backlogPerReplicaS(std::size_t queued, std::size_t replicas,
                   std::size_t max_batch, double batch_service_est_s)
{
    if (queued == 0 || batch_service_est_s <= 0.0)
        return 0.0;
    const std::size_t r = std::max<std::size_t>(1, replicas);
    const std::size_t mb = std::max<std::size_t>(1, max_batch);
    const auto batches = static_cast<double>((queued + mb - 1) / mb);
    return batches * batch_service_est_s / static_cast<double>(r);
}

} // namespace pcnn
