/**
 * @file
 * Deadline-aware dynamic batching policy.
 *
 * Larger batches amortize per-image cost (the reason the offline
 * compiler picks an optimal batch size at all, Section IV.B.1), but
 * every queued request keeps aging while the batch fills. The Batcher
 * bounds that wait with the user's satisfaction curve (Fig. 3): an
 * incomplete batch is flushed early as soon as waiting any longer
 * would push the *oldest* request's completion past the end of the
 * imperceptible region, where SoC_time starts decaying.
 *
 * The per-batch-size EWMA the flush decision needs is factored out
 * as ServiceEstimator so the multi-tenant scheduler and autoscaler
 * (DESIGN.md §5k) can maintain the same learned service model per
 * model without carrying a batching policy around.
 */

#ifndef PCNN_SERVE_BATCHER_HH
#define PCNN_SERVE_BATCHER_HH

#include <cstddef>
#include <vector>

#include "common/mutex.hh"
#include "pcnn/task.hh"

namespace pcnn {

/**
 * Thread-safe per-batch-size EWMA service-time model. Workers feed
 * measured batch execution times back after every batch; consumers
 * (flush decisions, background slack admission, autoscaling) read
 * smoothed estimates.
 */
class ServiceEstimator
{
  public:
    /** @param max_batch largest batch size tracked (>= 1) */
    explicit ServiceEstimator(std::size_t max_batch);

    /** Largest batch size tracked. */
    std::size_t maxBatch() const { return cap; }

    /** Feed back one measured batch execution time. */
    void record(std::size_t batch, double service_s);

    /**
     * Estimated service time of a batch: the EWMA for that size, the
     * largest observed size at or under it as a fallback, 0 before
     * any observation (optimistic: never act earlier than measured
     * evidence demands).
     */
    double estS(std::size_t batch) const;

  private:
    std::size_t cap;
    mutable Mutex mu;
    /// [batch] -> smoothed seconds, 0 unset
    std::vector<double> ewma PCNN_GUARDED_BY(mu);
};

/** Batching policy knobs. */
struct BatcherConfig
{
    /// serve at most this many requests per batch (the offline
    /// compiler's optimal batch size; see optimalServeBatch)
    std::size_t maxBatch = 1;
    /// per-request satisfaction requirement driving the early flush
    UserRequirement requirement;
    /// hard cap on how long the oldest request may wait for the batch
    /// to fill (0 = serve immediately with whatever is queued)
    double maxWaitS = 0.0;
};

/**
 * Decides how long an incomplete batch may keep waiting. Thread-safe:
 * worker replicas consult it concurrently from popBatch and feed
 * measured service times back after every batch.
 */
class Batcher
{
  public:
    explicit Batcher(BatcherConfig config);

    /** Largest batch the policy will form. */
    std::size_t maxBatch() const { return cfg.maxBatch; }

    /** The configuration this policy was built with. */
    const BatcherConfig &config() const { return cfg; }

    /**
     * Seconds the consumer may keep waiting for more requests given
     * the oldest queued request's age. <= 0 means flush now: the
     * batch is full, the maxWaitS budget is spent, or — for
     * latency-sensitive requirements — the oldest request's slack
     * before leaving the imperceptible region (T_i minus the
     * estimated service time minus its age) has run out.
     */
    double waitBudgetS(double oldest_age_s, std::size_t queued) const;

    /**
     * Feed back a measured batch execution time; maintains the
     * per-batch-size EWMA estimate the flush decision uses.
     */
    void recordService(std::size_t batch, double service_s);

    /** The underlying EWMA estimate (see ServiceEstimator::estS). */
    double estServiceS(std::size_t batch) const;

  private:
    BatcherConfig cfg;
    ServiceEstimator est;
};

} // namespace pcnn

#endif // PCNN_SERVE_BATCHER_HH
