/**
 * @file
 * Multi-model, multi-tenant serving engine (DESIGN.md §5k).
 *
 * Generalizes the single-model ServeEngine: one shared worker pool
 * serves every model in a ModelRegistry through the QueueFabric's
 * priority rules. Each model owns a replica pool (clones sharing the
 * frozen prototype's weights and panels, each with its own adopted
 * graph arena); a scaler thread grows and shrinks the pools with the
 * hysteresis policy in autoscaler.hh, cloning replicas without a
 * single weight repack or graph recompile.
 *
 * Request flow: submit(model, class, image) -> fabric lanes ->
 * worker takes a grant, pops an idle replica of the granted model,
 * stages the batch, forwards, fulfills the promises, returns the
 * replica. Workers hold no model affinity: any worker serves any
 * model, so capacity moves to wherever the fabric points it.
 */

#ifndef PCNN_SERVE_MULTI_ENGINE_HH
#define PCNN_SERVE_MULTI_ENGINE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "serve/autoscaler.hh"
#include "serve/model_registry.hh"
#include "serve/scheduler.hh"

namespace pcnn {

/** Engine sizing and policy. */
struct MultiEngineConfig
{
    std::size_t workers = 1;         ///< shared worker threads
    std::size_t initialReplicas = 1; ///< starting pool size per model
    /// intra-op lanes per worker; 0 = partition threadCount() evenly
    std::size_t lanesPerWorker = 0;
    FabricConfig fabric;             ///< queue + admission policy
    AutoscalerConfig autoscaler;     ///< pool hysteresis policy
    /// scaler thread tick period; 0 disables the thread entirely
    /// (pools then move only through the scaleTo() test hook)
    double autoscaleTickS = 0.0;
};

/** Serves every model of a registry through one queue fabric. */
class MultiTenantEngine
{
  public:
    /**
     * @param registry registered models; must outlive the engine.
     *        Registration must be finished: the engine snapshots the
     *        model count and the registry is immutable from here on.
     * @param config sizing and policy
     */
    MultiTenantEngine(ModelRegistry &registry,
                      MultiEngineConfig config);

    /** Stops and joins (see stop()). */
    ~MultiTenantEngine();

    MultiTenantEngine(const MultiTenantEngine &) = delete;
    MultiTenantEngine &operator=(const MultiTenantEngine &) = delete;

    /** submit() outcome: a status and, when accepted, a future. */
    struct Submission
    {
        SubmitStatus status = SubmitStatus::Stopped;
        std::future<TenantResult> result; ///< valid iff Accepted
    };

    /**
     * Submit one image [1, c, h, w] for `model` under a task class.
     * Never blocks. The class sets the requirement and lane
     * (classRequirement): interactive/real-time ride the EDF urgent
     * lane, background the slack-funded lane. A shed background
     * request's future resolves with TenantResult::shed == true.
     */
    Submission submit(std::size_t model, TaskClass cls, Tensor input);

    /**
     * Stop accepting requests, serve everything already queued
     * exactly once (background budget waived during the drain), and
     * join all threads. Idempotent; also run by the destructor.
     */
    void stop();

    /** Shared worker thread count. */
    std::size_t workerCount() const { return cfg.workers; }

    /** Intra-op lanes each worker runs with. */
    std::size_t lanesPerWorker() const { return lanes; }

    /** Registered model count the engine serves. */
    std::size_t modelCount() const { return models; }

    /** Current replica pool size of one model. */
    std::size_t replicaCount(std::size_t model) const;

    /**
     * Grow or shrink one model's pool to `target` replicas (clamped
     * to [1, the model's maxReplicas]); the deterministic test hook
     * behind the same plumbing the scaler thread uses. Shrinking
     * stops early when no more replicas are idle; returns the pool
     * size actually reached.
     */
    std::size_t scaleTo(std::size_t model, std::size_t target);

    /** The queue fabric (exposed for tests and benches). */
    QueueFabric &queueFabric() { return fabric; }

    /** Metrics snapshot (thread-safe at any time). */
    TenantMetricsSnapshot metrics() const { return meter.snapshot(); }

    /**
     * Sum over pools of replicas x the model's adopted arena bytes —
     * the engine's live activation-arena footprint.
     */
    std::size_t liveArenaBytes() const;

  private:
    /** One model's replica pool. */
    struct Pool
    {
        Mutex mu;
        /// idle replicas; workers pop from the back, the scaler
        /// retires from the back
        std::vector<Network> idle PCNN_GUARDED_BY(mu);
    };

    /** Worker loop: take a grant, run it, fulfill the promises. */
    void serveLoop(std::size_t worker);

    /** Scaler loop: tick every autoscaleTickS until stop. */
    void scalerLoop();

    /** Add one replica to a pool. */
    void growOne(std::size_t model) PCNN_REQUIRES(scaleMu);

    /** Retire one idle replica; false when none is idle. */
    bool shrinkOne(std::size_t model) PCNN_REQUIRES(scaleMu);

    /** Refresh the metrics arena gauge from the pool totals. */
    void publishArenaGauge() PCNN_REQUIRES(scaleMu);

    MultiEngineConfig cfg;
    std::size_t lanes = 1;
    std::size_t models = 0;
    ModelRegistry &reg;
    mutable TenantMetrics meter;
    QueueFabric fabric;
    std::vector<std::unique_ptr<Pool>> pools;

    mutable Mutex scaleMu;
    CondVar scaleCv;
    /// pool sizes (idle + in service) per model
    std::vector<std::size_t> totals PCNN_GUARDED_BY(scaleMu);
    /// per-model hysteresis state, driven by the scaler thread
    std::vector<AutoscalerPolicy> policies PCNN_GUARDED_BY(scaleMu);
    bool scaleStop PCNN_GUARDED_BY(scaleMu) = false;

    std::vector<std::thread> threads;
    std::thread scaler;
    std::atomic<std::uint64_t> nextId{0};
    std::atomic<bool> stopFlag{false};
};

} // namespace pcnn

#endif // PCNN_SERVE_MULTI_ENGINE_HH
