/**
 * @file
 * Thread-safe serving metrics: latency tails, batch-size histogram,
 * throughput, shed count, queue high-water.
 *
 * Uses the same LatencySummary/BatchSizeHistogram helpers as the
 * analytical ServingSimulator so engine measurements and simulator
 * predictions are directly comparable.
 */

#ifndef PCNN_SERVE_METRICS_HH
#define PCNN_SERVE_METRICS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.hh"
#include "pcnn/runtime/histogram.hh"
#include "pcnn/task.hh"

namespace pcnn {

/** Point-in-time view of an engine's metrics. */
struct ServeMetricsSnapshot
{
    LatencySummary latency;       ///< submit -> completion, seconds
    LatencySummary queueWait;     ///< submit -> service start
    BatchSizeHistogram batchHist; ///< served-batch size distribution
    std::uint64_t completed = 0;  ///< requests served
    std::uint64_t shed = 0;       ///< requests rejected QueueFull
    std::size_t queueHighWater = 0;
    double elapsedS = 0.0;      ///< start() -> snapshot()
    double throughputRps = 0.0; ///< completed / elapsedS
    /// worker-thread allocations observed inside steady-state
    /// (post-warmup, batch size already seen) forward probes; the
    /// zero-alloc invariant (DESIGN.md §5h) requires this to stay 0
    std::uint64_t steadyAllocs = 0;
    /// forwards the steady-state allocation probe covered
    std::uint64_t steadyProbedBatches = 0;
};

/** Concurrent metrics recorder shared by all engine threads. */
class ServeMetrics
{
  public:
    ServeMetrics();

    /** Reset counters and restart the throughput clock. */
    void start();

    /** Count one served batch. */
    void recordBatch(std::size_t batch);

    /** Count one completed request. */
    void recordLatency(double latency_s, double queue_s);

    /** Count one rejected (QueueFull) request. */
    void recordShed();

    /** Track the observed queue depth high-water mark. */
    void recordQueueDepth(std::size_t depth);

    /**
     * Record one steady-state allocation probe: a worker forward over
     * a batch size it had already served, measured by
     * ScopedAllocCount. `allocs` must be 0 for the zero-alloc
     * invariant to hold; the snapshot exposes the sum so tests and
     * benches can assert it.
     */
    void recordSteadyProbe(std::uint64_t allocs);

    /** Consistent snapshot of everything recorded since start(). */
    ServeMetricsSnapshot snapshot() const;

  private:
    mutable Mutex mu;
    std::chrono::steady_clock::time_point started
        PCNN_GUARDED_BY(mu);
    std::vector<double> latencies PCNN_GUARDED_BY(mu);
    std::vector<double> queueWaits PCNN_GUARDED_BY(mu);
    BatchSizeHistogram hist PCNN_GUARDED_BY(mu);
    std::uint64_t shedCount PCNN_GUARDED_BY(mu) = 0;
    std::size_t highWater PCNN_GUARDED_BY(mu) = 0;
    std::uint64_t steadyAllocs PCNN_GUARDED_BY(mu) = 0;
    std::uint64_t steadyProbed PCNN_GUARDED_BY(mu) = 0;
};

/** Task classes, for indexing per-class metric arrays. */
constexpr std::size_t kTaskClassCount = 3;

/** Per-task-class serving statistics (DESIGN.md §5k). */
struct TenantClassStats
{
    LatencySummary latency;      ///< submit -> completion
    LatencySummary queueWait;    ///< submit -> service start
    std::uint64_t completed = 0; ///< requests served
    std::uint64_t shed = 0;      ///< rejected or evicted
    std::uint64_t sloMet = 0;    ///< completed inside the deadline
    std::uint64_t sloMissed = 0; ///< completed past the deadline

    /** Fraction of completions inside the deadline (1 when none). */
    double
    sloAttainment() const
    {
        const std::uint64_t n = sloMet + sloMissed;
        return n == 0 ? 1.0 : double(sloMet) / double(n);
    }
};

/** One point of a model's replica-count trajectory. */
struct ReplicaEvent
{
    double tS = 0.0;           ///< seconds since metrics start()
    std::size_t model = 0;     ///< registry index
    std::size_t replicas = 0;  ///< pool size after the change
};

/** Point-in-time view of a multi-tenant engine's metrics. */
struct TenantMetricsSnapshot
{
    /// indexed by static_cast<std::size_t>(TaskClass)
    TenantClassStats byClass[kTaskClassCount];
    /// replica pool-size changes, in record order (autoscaler trace)
    std::vector<ReplicaEvent> replicaTrajectory;
    std::uint64_t completed = 0; ///< all classes
    std::uint64_t shed = 0;      ///< all classes
    /// background requests evicted to admit an urgent arrival
    /// (subset of the background class's shed count)
    std::uint64_t backgroundEvicted = 0;
    std::size_t queueHighWater = 0; ///< max per-model queue depth
    double elapsedS = 0.0;
    double throughputRps = 0.0;
    /// live replica arena bytes across all pools (gauge)
    std::size_t liveArenaBytes = 0;
    /// registry-wide reserved arena bytes (gauge)
    std::size_t reservedArenaBytes = 0;
    /// steady-state allocation probe results (DESIGN.md §5h): must
    /// stay 0 / the probe coverage count
    std::uint64_t steadyAllocs = 0;
    std::uint64_t steadyProbedBatches = 0;
};

/**
 * Concurrent recorder shared by the multi-tenant engine's producers,
 * workers, fabric and scaler thread.
 */
class TenantMetrics
{
  public:
    TenantMetrics();

    /** Reset counters and restart the clock. */
    void start();

    /**
     * Count one completed request of a class. `slo_met` is whether
     * it finished inside its deadline (always true for background).
     */
    void recordRequest(TaskClass cls, double latency_s,
                       double queue_s, bool slo_met);

    /** Count one shed request; `evicted` marks admission evictions. */
    void recordShed(TaskClass cls, bool evicted);

    /** Track the per-model queue depth high-water mark. */
    void recordQueueDepth(std::size_t depth);

    /** Record a replica pool-size change (autoscaler trajectory). */
    void recordReplicas(std::size_t model, std::size_t replicas);

    /** Update the arena gauges (engine scale events). */
    void setArenaBytes(std::size_t live_bytes,
                       std::size_t reserved_bytes);

    /** Record one steady-state allocation probe (see ServeMetrics). */
    void recordSteadyProbe(std::uint64_t allocs);

    /** Consistent snapshot of everything recorded since start(). */
    TenantMetricsSnapshot snapshot() const;

  private:
    /** Mutable per-class accumulators. */
    struct ClassAccum
    {
        std::vector<double> latencies;
        std::vector<double> queueWaits;
        std::uint64_t shed = 0;
        std::uint64_t sloMet = 0;
        std::uint64_t sloMissed = 0;
    };

    mutable Mutex mu;
    std::chrono::steady_clock::time_point started
        PCNN_GUARDED_BY(mu);
    ClassAccum byClass[kTaskClassCount] PCNN_GUARDED_BY(mu);
    std::vector<ReplicaEvent> trajectory PCNN_GUARDED_BY(mu);
    std::uint64_t evicted PCNN_GUARDED_BY(mu) = 0;
    std::size_t highWater PCNN_GUARDED_BY(mu) = 0;
    std::size_t liveArena PCNN_GUARDED_BY(mu) = 0;
    std::size_t reservedArena PCNN_GUARDED_BY(mu) = 0;
    std::uint64_t steadyAllocs PCNN_GUARDED_BY(mu) = 0;
    std::uint64_t steadyProbed PCNN_GUARDED_BY(mu) = 0;
};

} // namespace pcnn

#endif // PCNN_SERVE_METRICS_HH
