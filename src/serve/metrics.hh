/**
 * @file
 * Thread-safe serving metrics: latency tails, batch-size histogram,
 * throughput, shed count, queue high-water.
 *
 * Uses the same LatencySummary/BatchSizeHistogram helpers as the
 * analytical ServingSimulator so engine measurements and simulator
 * predictions are directly comparable.
 */

#ifndef PCNN_SERVE_METRICS_HH
#define PCNN_SERVE_METRICS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "pcnn/runtime/histogram.hh"

namespace pcnn {

/** Point-in-time view of an engine's metrics. */
struct ServeMetricsSnapshot
{
    LatencySummary latency;       ///< submit -> completion, seconds
    LatencySummary queueWait;     ///< submit -> service start
    BatchSizeHistogram batchHist; ///< served-batch size distribution
    std::uint64_t completed = 0;  ///< requests served
    std::uint64_t shed = 0;       ///< requests rejected QueueFull
    std::size_t queueHighWater = 0;
    double elapsedS = 0.0;      ///< start() -> snapshot()
    double throughputRps = 0.0; ///< completed / elapsedS
};

/** Concurrent metrics recorder shared by all engine threads. */
class ServeMetrics
{
  public:
    ServeMetrics();

    /** Reset counters and restart the throughput clock. */
    void start();

    /** Count one served batch. */
    void recordBatch(std::size_t batch);

    /** Count one completed request. */
    void recordLatency(double latency_s, double queue_s);

    /** Count one rejected (QueueFull) request. */
    void recordShed();

    /** Track the observed queue depth high-water mark. */
    void recordQueueDepth(std::size_t depth);

    /** Consistent snapshot of everything recorded since start(). */
    ServeMetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu;
    std::chrono::steady_clock::time_point started;
    std::vector<double> latencies;
    std::vector<double> queueWaits;
    BatchSizeHistogram hist;
    std::uint64_t shedCount = 0;
    std::size_t highWater = 0;
};

} // namespace pcnn

#endif // PCNN_SERVE_METRICS_HH
