/**
 * @file
 * Thread-safe serving metrics: latency tails, batch-size histogram,
 * throughput, shed count, queue high-water.
 *
 * Uses the same LatencySummary/BatchSizeHistogram helpers as the
 * analytical ServingSimulator so engine measurements and simulator
 * predictions are directly comparable.
 */

#ifndef PCNN_SERVE_METRICS_HH
#define PCNN_SERVE_METRICS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.hh"
#include "pcnn/runtime/histogram.hh"

namespace pcnn {

/** Point-in-time view of an engine's metrics. */
struct ServeMetricsSnapshot
{
    LatencySummary latency;       ///< submit -> completion, seconds
    LatencySummary queueWait;     ///< submit -> service start
    BatchSizeHistogram batchHist; ///< served-batch size distribution
    std::uint64_t completed = 0;  ///< requests served
    std::uint64_t shed = 0;       ///< requests rejected QueueFull
    std::size_t queueHighWater = 0;
    double elapsedS = 0.0;      ///< start() -> snapshot()
    double throughputRps = 0.0; ///< completed / elapsedS
    /// worker-thread allocations observed inside steady-state
    /// (post-warmup, batch size already seen) forward probes; the
    /// zero-alloc invariant (DESIGN.md §5h) requires this to stay 0
    std::uint64_t steadyAllocs = 0;
    /// forwards the steady-state allocation probe covered
    std::uint64_t steadyProbedBatches = 0;
};

/** Concurrent metrics recorder shared by all engine threads. */
class ServeMetrics
{
  public:
    ServeMetrics();

    /** Reset counters and restart the throughput clock. */
    void start();

    /** Count one served batch. */
    void recordBatch(std::size_t batch);

    /** Count one completed request. */
    void recordLatency(double latency_s, double queue_s);

    /** Count one rejected (QueueFull) request. */
    void recordShed();

    /** Track the observed queue depth high-water mark. */
    void recordQueueDepth(std::size_t depth);

    /**
     * Record one steady-state allocation probe: a worker forward over
     * a batch size it had already served, measured by
     * ScopedAllocCount. `allocs` must be 0 for the zero-alloc
     * invariant to hold; the snapshot exposes the sum so tests and
     * benches can assert it.
     */
    void recordSteadyProbe(std::uint64_t allocs);

    /** Consistent snapshot of everything recorded since start(). */
    ServeMetricsSnapshot snapshot() const;

  private:
    mutable Mutex mu;
    std::chrono::steady_clock::time_point started
        PCNN_GUARDED_BY(mu);
    std::vector<double> latencies PCNN_GUARDED_BY(mu);
    std::vector<double> queueWaits PCNN_GUARDED_BY(mu);
    BatchSizeHistogram hist PCNN_GUARDED_BY(mu);
    std::uint64_t shedCount PCNN_GUARDED_BY(mu) = 0;
    std::size_t highWater PCNN_GUARDED_BY(mu) = 0;
    std::uint64_t steadyAllocs PCNN_GUARDED_BY(mu) = 0;
    std::uint64_t steadyProbed PCNN_GUARDED_BY(mu) = 0;
};

} // namespace pcnn

#endif // PCNN_SERVE_METRICS_HH
