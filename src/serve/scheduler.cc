#include "serve/scheduler.hh"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/check.hh"

namespace pcnn {

QueueFabric::QueueFabric(const ModelRegistry &registry,
                         FabricConfig config, TenantMetrics &metrics)
    : reg(registry), cfg(config), meter(metrics),
      states(registry.size())
{
    PCNN_CHECK(reg.size() >= 1, "fabric needs a registered model");
    PCNN_CHECK(cfg.queueCapacity >= 1,
               "fabric queueCapacity must be >= 1");
}

SubmitStatus
QueueFabric::push(TenantRequest &&req)
{
    PCNN_CHECK(req.model < reg.size(), "fabric push: model index ",
               req.model, " out of range (", reg.size(), " models)");
    // The evicted request's promise is fulfilled after the lock is
    // released: set_value may run arbitrary waiter wake-up work.
    std::optional<TenantRequest> evictedReq;
    SubmitStatus status = SubmitStatus::Accepted;
    {
        UniqueLock lk(mu);
        if (stopped) {
            status = SubmitStatus::Stopped;
        } else {
            ModelState &st = states[req.model];
            bool admit = true;
            if (st.urgent.size() + st.background.size() >=
                cfg.queueCapacity) {
                // Admission control: background sheds before
                // interactive. An urgent arrival makes room by
                // evicting the newest queued background request (the
                // one that has invested the least waiting); anything
                // else is rejected.
                if (req.urgent() && !st.background.empty()) {
                    evictedReq = std::move(st.background.back());
                    st.background.pop_back();
                } else {
                    admit = false;
                    status = SubmitStatus::QueueFull;
                }
            }
            if (admit) {
                if (req.urgent()) {
                    // EDF: keep the urgent lane sorted by absolute
                    // deadline; stable for equal deadlines (arrival
                    // order).
                    auto pos = std::upper_bound(
                        st.urgent.begin(), st.urgent.end(),
                        req.deadline,
                        [](const auto &d, const TenantRequest &r) {
                            return d < r.deadline;
                        });
                    st.urgent.insert(pos, std::move(req));
                } else {
                    st.background.push_back(std::move(req));
                }
                meter.recordQueueDepth(st.urgent.size() +
                                       st.background.size());
            }
        }
    }
    if (evictedReq) {
        meter.recordShed(evictedReq->cls, true);
        TenantResult shedResult;
        shedResult.shed = true;
        evictedReq->done.set_value(std::move(shedResult));
    }
    if (status == SubmitStatus::Accepted)
        cv.notifyOne();
    else if (status == SubmitStatus::QueueFull)
        meter.recordShed(req.cls, false);
    return status;
}

BatchGrant
QueueFabric::take()
{
    UniqueLock lk(mu);
    for (;;) {
        BatchGrant g;
        if (formGrant(g))
            return g;
        if (stopped) {
            bool drained = true;
            for (const ModelState &st : states)
                if (!st.urgent.empty() || !st.background.empty())
                    drained = false;
            if (drained) {
                // Cascade the shutdown: every other waiting worker
                // must also observe closed-and-drained and exit.
                cv.notifyAll();
                return BatchGrant{};
            }
        }
        cv.wait(lk, mu);
    }
}

bool
QueueFabric::tryTake(BatchGrant &out)
{
    MutexLock lk(mu);
    return formGrant(out);
}

bool
QueueFabric::formGrant(BatchGrant &out)
{
    // Urgent first: among models with both queued urgent work and an
    // idle replica, serve the earliest head deadline (EDF across
    // models as well as within a lane).
    std::size_t best = states.size();
    for (std::size_t m = 0; m < states.size(); ++m) {
        const ModelState &st = states[m];
        if (st.idle == 0 || st.urgent.empty())
            continue;
        if (best == states.size() ||
            st.urgent.front().deadline <
                states[best].urgent.front().deadline)
            best = m;
    }
    if (best != states.size()) {
        ModelState &st = states[best];
        const std::size_t cap = reg.model(best).maxBatch();
        const std::size_t b = std::min(cap, st.urgent.size());
        out.model = best;
        out.background = false;
        out.batch.clear();
        out.batch.reserve(b);
        for (std::size_t i = 0; i < b; ++i) {
            out.batch.push_back(std::move(st.urgent.front()));
            st.urgent.pop_front();
        }
        --st.idle;
        return true;
    }

    // Background fills leftover capacity. Any model with an idle
    // replica here has an empty urgent lane (it would have matched
    // above), so a free worker serving bounded background work is
    // strictly better than idling — but the batch must fit the
    // occupancy budget so an urgent arrival is never blocked longer
    // than the SoC_time slack policy allows. After close() the
    // budget is waived: drain everything.
    best = states.size();
    for (std::size_t m = 0; m < states.size(); ++m) {
        const ModelState &st = states[m];
        if (st.idle == 0 || st.background.empty())
            continue;
        if (best == states.size() ||
            st.background.size() > states[best].background.size())
            best = m;
    }
    if (best == states.size())
        return false;

    ModelState &st = states[best];
    const std::size_t cap = reg.model(best).maxBatch();
    std::size_t b = std::min(cap, st.background.size());
    if (!stopped) {
        const double budget = budgetLocked();
        const ServiceEstimator &est = reg.model(best).estimator();
        // Largest batch whose estimated service fits the budget; a
        // single request always passes so background cannot starve
        // (minOccupancyS expresses the same floor in time units).
        while (b > 1 && est.estS(b) > budget)
            --b;
    }
    out.model = best;
    out.background = true;
    out.batch.clear();
    out.batch.reserve(b);
    for (std::size_t i = 0; i < b; ++i) {
        out.batch.push_back(std::move(st.background.front()));
        st.background.pop_front();
    }
    --st.idle;
    return true;
}

double
QueueFabric::budgetLocked() const
{
    // The protected latency class's EWMA service estimate: the
    // slowest model's batch-1 time, since an urgent request for any
    // model may arrive while a background batch holds a replica.
    double urgentEst = 0.0;
    for (std::size_t m = 0; m < reg.size(); ++m)
        urgentEst =
            std::max(urgentEst, reg.model(m).estimator().estS(1));
    return backgroundOccupancyBudgetS(cfg.guardRequirement, urgentEst,
                                      cfg.slack);
}

void
QueueFabric::addIdle(std::size_t model)
{
    bool drain = false;
    {
        MutexLock lk(mu);
        PCNN_CHECK(model < states.size(),
                   "addIdle: model out of range");
        ++states[model].idle;
        drain = stopped;
    }
    // During drain every waiter must recheck (one may be the last to
    // observe drained); in steady state one replica serves one taker.
    if (drain)
        cv.notifyAll();
    else
        cv.notifyOne();
}

bool
QueueFabric::removeIdle(std::size_t model)
{
    MutexLock lk(mu);
    PCNN_CHECK(model < states.size(),
               "removeIdle: model out of range");
    if (states[model].idle == 0)
        return false;
    --states[model].idle;
    return true;
}

void
QueueFabric::close()
{
    {
        MutexLock lk(mu);
        stopped = true;
    }
    cv.notifyAll();
}

bool
QueueFabric::closed() const
{
    MutexLock lk(mu);
    return stopped;
}

std::size_t
QueueFabric::urgentQueued(std::size_t model) const
{
    MutexLock lk(mu);
    return states.at(model).urgent.size();
}

std::size_t
QueueFabric::backgroundQueued(std::size_t model) const
{
    MutexLock lk(mu);
    return states.at(model).background.size();
}

std::size_t
QueueFabric::queued(std::size_t model) const
{
    MutexLock lk(mu);
    return states.at(model).urgent.size() +
           states.at(model).background.size();
}

std::size_t
QueueFabric::idleCount(std::size_t model) const
{
    MutexLock lk(mu);
    return states.at(model).idle;
}

double
QueueFabric::backgroundBudgetS() const
{
    MutexLock lk(mu);
    return budgetLocked();
}

} // namespace pcnn
