/**
 * @file
 * Bounded MPMC request queue for the concurrent serving engine.
 *
 * Producers (application threads calling ServeEngine::submit) push
 * single-image requests without ever blocking: a full queue rejects
 * with SubmitStatus::QueueFull so the caller can shed load instead of
 * stalling (DESIGN.md §5f). Consumers (worker replicas) pop *batches*
 * under a Batcher policy that trades waiting time for batch size.
 */

#ifndef PCNN_SERVE_REQUEST_QUEUE_HH
#define PCNN_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "common/mutex.hh"
#include "tensor/tensor.hh"

namespace pcnn {

class Batcher;

/** Outcome of ServeEngine::submit / RequestQueue::push. */
enum class SubmitStatus
{
    Accepted,  ///< queued; the future will be fulfilled
    QueueFull, ///< shed: the bounded queue was at capacity
    Stopped,   ///< the engine is stopping; no new work accepted
};

/** Completed inference for one request. */
struct ServeResult
{
    Tensor logits;             ///< [1, k, 1, 1] classifier output
    double latencyS = 0.0;     ///< submit -> completion
    double queueS = 0.0;       ///< submit -> service start
    std::size_t batchSize = 0; ///< size of the batch it rode in
};

/** One queued request. */
struct PendingRequest
{
    std::uint64_t id = 0;
    Tensor input; ///< [1, c, h, w]
    std::chrono::steady_clock::time_point enqueued;
    std::promise<ServeResult> done;
};

/**
 * Bounded multi-producer multi-consumer queue. push() never blocks;
 * popBatch() blocks until a Batcher-approved batch is ready or the
 * queue is closed and drained.
 */
class RequestQueue
{
  public:
    /** @param capacity maximum queued requests (>= 1) */
    explicit RequestQueue(std::size_t capacity);

    /**
     * Enqueue a request, or reject immediately: QueueFull at
     * capacity, Stopped after close(). The request is moved from only
     * on acceptance.
     */
    SubmitStatus push(PendingRequest &&req);

    /**
     * Pop the next batch under the policy: blocks while the queue is
     * open and empty; once requests are queued, waits at most the
     * policy's waitBudgetS for the batch to fill, then takes up to
     * policy.maxBatch() requests in arrival order. After close() any
     * remaining requests are still handed out (drain); an empty
     * return means closed-and-drained, and consumers should exit.
     */
    std::vector<PendingRequest> popBatch(const Batcher &policy);

    /**
     * Stop accepting new requests and wake every waiting consumer.
     * Already-queued requests remain poppable. Idempotent.
     */
    void close();

    /** True after close(). */
    bool closed() const;

    /** Requests currently queued. */
    std::size_t size() const;

    /** Maximum depth ever observed (for metrics). */
    std::size_t highWater() const;

    /** Configured capacity. */
    std::size_t capacity() const { return cap; }

  private:
    const std::size_t cap;
    mutable Mutex mu;
    CondVar cv;
    std::deque<PendingRequest> items PCNN_GUARDED_BY(mu);
    std::size_t peak PCNN_GUARDED_BY(mu) = 0;
    bool stopped PCNN_GUARDED_BY(mu) = false;
};

} // namespace pcnn

#endif // PCNN_SERVE_REQUEST_QUEUE_HH
