#include "serve/request_queue.hh"

#include <algorithm>

#include "serve/batcher.hh"

namespace pcnn {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

RequestQueue::RequestQueue(std::size_t capacity)
    : cap(std::max<std::size_t>(1, capacity))
{
}

SubmitStatus
RequestQueue::push(PendingRequest &&req)
{
    {
        MutexLock lk(mu);
        if (stopped)
            return SubmitStatus::Stopped;
        if (items.size() >= cap)
            return SubmitStatus::QueueFull;
        items.push_back(std::move(req));
        peak = std::max(peak, items.size());
    }
    cv.notifyOne();
    return SubmitStatus::Accepted;
}

std::vector<PendingRequest>
RequestQueue::popBatch(const Batcher &policy)
{
    UniqueLock lk(mu);
    for (;;) {
        if (items.empty()) {
            if (stopped)
                return {};
            cv.wait(lk, mu);
            continue;
        }

        const std::size_t max_batch = policy.maxBatch();
        double budget = 0.0;
        if (!stopped && items.size() < max_batch) {
            const double age = secondsSince(
                items.front().enqueued,
                std::chrono::steady_clock::now());
            budget = policy.waitBudgetS(age, items.size());
        }
        if (budget > 0.0) {
            // More slack: wait for the batch to fill (or for close /
            // new arrivals to re-evaluate the budget).
            cv.waitFor(lk, mu, std::chrono::duration<double>(budget));
            continue;
        }

        const std::size_t take = std::min(items.size(), max_batch);
        // pcnn-analyze: allow(hot-path-alloc): batch handoff
        // vector whose ownership moves to the worker; outside the
        // steady-state probe window by design.
        std::vector<PendingRequest> batch;
        // pcnn-analyze: allow(hot-path-alloc): see above.
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            // pcnn-analyze: allow(hot-path-alloc): see above.
            batch.push_back(std::move(items.front()));
            items.pop_front();
        }
        const bool more = !items.empty();
        lk.unlock();
        if (more)
            cv.notifyOne();
        return batch;
    }
}

void
RequestQueue::close()
{
    {
        MutexLock lk(mu);
        stopped = true;
    }
    cv.notifyAll();
}

bool
RequestQueue::closed() const
{
    MutexLock lk(mu);
    return stopped;
}

std::size_t
RequestQueue::size() const
{
    MutexLock lk(mu);
    return items.size();
}

std::size_t
RequestQueue::highWater() const
{
    MutexLock lk(mu);
    return peak;
}

} // namespace pcnn
