#include "serve/request_queue.hh"

#include <algorithm>

#include "serve/batcher.hh"

namespace pcnn {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

RequestQueue::RequestQueue(std::size_t capacity)
    : cap(std::max<std::size_t>(1, capacity))
{
}

SubmitStatus
RequestQueue::push(PendingRequest &&req)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (stopped)
            return SubmitStatus::Stopped;
        if (items.size() >= cap)
            return SubmitStatus::QueueFull;
        items.push_back(std::move(req));
        peak = std::max(peak, items.size());
    }
    cv.notify_one();
    return SubmitStatus::Accepted;
}

std::vector<PendingRequest>
RequestQueue::popBatch(const Batcher &policy)
{
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        if (items.empty()) {
            if (stopped)
                return {};
            cv.wait(lk);
            continue;
        }

        const std::size_t max_batch = policy.maxBatch();
        double budget = 0.0;
        if (!stopped && items.size() < max_batch) {
            const double age = secondsSince(
                items.front().enqueued,
                std::chrono::steady_clock::now());
            budget = policy.waitBudgetS(age, items.size());
        }
        if (budget > 0.0) {
            // More slack: wait for the batch to fill (or for close /
            // new arrivals to re-evaluate the budget).
            cv.wait_for(lk, std::chrono::duration<double>(budget));
            continue;
        }

        const std::size_t take = std::min(items.size(), max_batch);
        std::vector<PendingRequest> batch;
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(items.front()));
            items.pop_front();
        }
        const bool more = !items.empty();
        lk.unlock();
        if (more)
            cv.notify_one();
        return batch;
    }
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopped = true;
    }
    cv.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lk(mu);
    return stopped;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lk(mu);
    return items.size();
}

std::size_t
RequestQueue::highWater() const
{
    std::lock_guard<std::mutex> lk(mu);
    return peak;
}

} // namespace pcnn
