/**
 * @file
 * Multi-model registry for the serving engine (DESIGN.md §5k).
 *
 * A Model is the frozen unit of serving: one prototype network
 * (optionally perforated to a cheaper operating point), the compiled
 * graph schedule every replica adopts, the learned per-batch-size
 * service model, and the arena cost one replica will pay. The
 * ModelRegistry owns several Models, enforces a registry-wide
 * activation-arena budget at registration time, and hands the
 * multi-tenant engine everything it needs to clone replicas without
 * ever recompiling or repacking.
 *
 * The schedule is built (or adopted from a serialized plan-v4
 * section) exactly once per model at registration; replicas then
 * adopt the same pure-data schedule, so N replicas cost N arena
 * allocations and zero graph recompiles — the per-engine compile in
 * the single-model ServeEngine generalized to a shared artifact.
 */

#ifndef PCNN_SERVE_MODEL_REGISTRY_HH
#define PCNN_SERVE_MODEL_REGISTRY_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/graph/graph_ir.hh"
#include "nn/network.hh"
#include "serve/batcher.hh"

namespace pcnn {

/** Per-model registration parameters. */
struct ModelConfig
{
    std::string name;            ///< registry key, must be unique
    std::size_t maxBatch = 1;    ///< batch ceiling per replica
    /// autoscaler replica ceiling; the registry reserves arena
    /// budget for this many replicas up front
    std::size_t maxReplicas = 4;
    /// fraction of each conv layer's output positions computed
    /// (1 = full grid); applied to the prototype before the schedule
    /// is built, so perforation levels register as distinct models
    double perforationKeep = 1.0;
    /// serialized plan-v4 schedule to adopt instead of compiling at
    /// registration (satellite: offline compile once, register
    /// everywhere); nullptr falls back to compile-on-register
    const GraphSchedule *schedule = nullptr;
};

/** Outcome of ModelRegistry::registerModel. */
enum class RegisterStatus
{
    Registered,            ///< model added
    DuplicateName,         ///< a model with this name already exists
    BudgetExceeded,        ///< arena reservation would pass the budget
    ScheduleBatchTooSmall, ///< supplied schedule compiled under maxBatch
};

/** Human-readable RegisterStatus (logs and tests). */
std::string registerStatusName(RegisterStatus status);

/**
 * One registered model: frozen prototype, shared schedule, service
 * model, arena accounting. Replica cloning (makeReplica) must be
 * serialized by the caller — the engine constructor and the single
 * scaler thread are the only cloners — but the produced replicas and
 * the estimator are safe for concurrent use.
 */
class Model
{
  public:
    /** Built by ModelRegistry::registerModel. */
    Model(Network prototype, ModelConfig config,
          std::optional<GraphSchedule> sched);

    Model(const Model &) = delete;
    Model &operator=(const Model &) = delete;

    /** Registry key. */
    const std::string &name() const { return cfg.name; }

    /** Batch ceiling each replica compiles and warms at. */
    std::size_t maxBatch() const { return cfg.maxBatch; }

    /** Autoscaler replica ceiling. */
    std::size_t maxReplicas() const { return cfg.maxReplicas; }

    /** Registration parameters. */
    const ModelConfig &config() const { return cfg; }

    /** Per-item input shape replicas expect. */
    const Shape &inputShape() const { return proto.inputShape(); }

    /** The frozen prototype (perforation state visible to tests). */
    Network &prototype() { return proto; }

    /** The shared schedule, or nullptr when the graph path is off. */
    const GraphSchedule *schedule() const
    {
        return sched ? &*sched : nullptr;
    }

    /**
     * Activation-arena bytes ONE replica allocates when it adopts
     * the schedule (0 with the graph path off: the legacy ping-pong
     * scratch grows lazily instead).
     */
    std::size_t replicaArenaBytes() const
    {
        return sched ? sched->arenaFloats * sizeof(float) : 0;
    }

    /** Arena bytes reserved for this model at its replica ceiling. */
    std::size_t reservedArenaBytes() const
    {
        return replicaArenaBytes() * cfg.maxReplicas;
    }

    /**
     * Learned per-batch-size service model. Warm-up forwards seed
     * it; workers feed measured batch times back through it; the
     * scheduler and autoscaler read it.
     */
    ServiceEstimator &estimator() { return est; }
    const ServiceEstimator &estimator() const { return est; }

    /**
     * Clone a serving replica: shares the prototype's weights and
     * panels (zero repacks), adopts the shared schedule (exactly one
     * arena allocation, zero recompiles), then runs one warm-up
     * forward at maxBatch under `lanes` intra-op lanes so every
     * grow-only buffer reaches its steady-state envelope before the
     * replica serves traffic. The measured warm-up time seeds the
     * estimator. Not thread-safe against itself (see class comment).
     */
    Network makeReplica(std::size_t lanes);

  private:
    ModelConfig cfg;
    Network proto;
    std::optional<GraphSchedule> sched;
    ServiceEstimator est;
};

/** Registry-wide limits. */
struct RegistryConfig
{
    /// cap on the summed per-model arena reservations
    /// (replicaArenaBytes x maxReplicas); 0 = unlimited
    std::size_t arenaBudgetBytes = 0;
};

/**
 * Owns the registered models. Registration is a setup-phase API
 * (single-threaded, before any engine is constructed over the
 * registry); afterwards the registry is immutable and all reads are
 * safe from any thread.
 */
class ModelRegistry
{
  public:
    explicit ModelRegistry(RegistryConfig config = {});

    /**
     * Register a model. On success the registry owns the prototype;
     * on any failure the prototype is untouched by the registry
     * (though perforation may already be applied) and the registry
     * is unchanged. Fails cleanly with BudgetExceeded when the
     * model's reservation would push the registry total past the
     * configured budget.
     */
    RegisterStatus registerModel(Network prototype, ModelConfig config);

    /** Registered model count. */
    std::size_t size() const { return entries.size(); }

    /** Model by registration index. */
    Model &model(std::size_t i) { return *entries.at(i); }
    const Model &model(std::size_t i) const { return *entries.at(i); }

    /** Model by name, or nullptr. */
    Model *find(const std::string &name);

    /** Registration index of a name, or size() when absent. */
    std::size_t indexOf(const std::string &name) const;

    /** Sum of every model's reservedArenaBytes(). */
    std::size_t totalReservedArenaBytes() const { return reserved; }

    /** Configured budget (0 = unlimited). */
    std::size_t budgetBytes() const { return cfg.arenaBudgetBytes; }

  private:
    RegistryConfig cfg;
    std::vector<std::unique_ptr<Model>> entries;
    std::size_t reserved = 0;
};

/**
 * Register the trainable mini zoo at two perforation levels each:
 * "<net>/full" (perforationKeep 1.0) and "<net>/p50" (0.5) for
 * MiniAlexNet, MiniVgg and MiniInception — six models over one
 * weight initialization stream. Returns the number registered
 * (PCNN_CHECK-fails if any registration is rejected, so callers that
 * want budget rejections must register manually).
 */
std::size_t registerMiniZoo(ModelRegistry &registry, Rng &rng,
                            std::size_t max_batch,
                            std::size_t max_replicas);

} // namespace pcnn

#endif // PCNN_SERVE_MODEL_REGISTRY_HH
