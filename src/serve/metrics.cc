#include "serve/metrics.hh"

#include <algorithm>

namespace pcnn {

ServeMetrics::ServeMetrics()
{
    started = std::chrono::steady_clock::now();
}

void
ServeMetrics::start()
{
    MutexLock lk(mu);
    started = std::chrono::steady_clock::now();
    latencies.clear();
    queueWaits.clear();
    hist = BatchSizeHistogram();
    shedCount = 0;
    highWater = 0;
    steadyAllocs = 0;
    steadyProbed = 0;
}

void
ServeMetrics::recordBatch(std::size_t batch)
{
    MutexLock lk(mu);
    hist.record(batch);
}

void
ServeMetrics::recordLatency(double latency_s, double queue_s)
{
    MutexLock lk(mu);
    // pcnn-analyze: allow(hot-path-alloc): per-request sample
    // log (amortized doubling); recorded outside the worker's
    // steady-state probe window by design.
    latencies.push_back(latency_s);
    // pcnn-analyze: allow(hot-path-alloc): see above.
    queueWaits.push_back(queue_s);
}

void
ServeMetrics::recordShed()
{
    MutexLock lk(mu);
    ++shedCount;
}

void
ServeMetrics::recordQueueDepth(std::size_t depth)
{
    MutexLock lk(mu);
    highWater = std::max(highWater, depth);
}

void
ServeMetrics::recordSteadyProbe(std::uint64_t allocs)
{
    MutexLock lk(mu);
    steadyAllocs += allocs;
    ++steadyProbed;
}

ServeMetricsSnapshot
ServeMetrics::snapshot() const
{
    std::vector<double> lat, waits;
    ServeMetricsSnapshot s;
    {
        MutexLock lk(mu);
        lat = latencies;
        waits = queueWaits;
        s.batchHist = hist;
        s.shed = shedCount;
        s.queueHighWater = highWater;
        s.steadyAllocs = steadyAllocs;
        s.steadyProbedBatches = steadyProbed;
        s.elapsedS = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    }
    s.completed = lat.size();
    s.latency = summarizeLatencies(std::move(lat));
    s.queueWait = summarizeLatencies(std::move(waits));
    s.throughputRps =
        s.elapsedS > 0.0 ? double(s.completed) / s.elapsedS : 0.0;
    return s;
}

TenantMetrics::TenantMetrics()
{
    started = std::chrono::steady_clock::now();
}

void
TenantMetrics::start()
{
    MutexLock lk(mu);
    started = std::chrono::steady_clock::now();
    for (ClassAccum &c : byClass)
        c = ClassAccum();
    trajectory.clear();
    evicted = 0;
    highWater = 0;
    liveArena = 0;
    reservedArena = 0;
    steadyAllocs = 0;
    steadyProbed = 0;
}

void
TenantMetrics::recordRequest(TaskClass cls, double latency_s,
                             double queue_s, bool slo_met)
{
    MutexLock lk(mu);
    ClassAccum &c = byClass[static_cast<std::size_t>(cls)];
    c.latencies.push_back(latency_s);
    c.queueWaits.push_back(queue_s);
    if (slo_met)
        ++c.sloMet;
    else
        ++c.sloMissed;
}

void
TenantMetrics::recordShed(TaskClass cls, bool evicted_request)
{
    MutexLock lk(mu);
    ++byClass[static_cast<std::size_t>(cls)].shed;
    if (evicted_request)
        ++evicted;
}

void
TenantMetrics::recordQueueDepth(std::size_t depth)
{
    MutexLock lk(mu);
    highWater = std::max(highWater, depth);
}

void
TenantMetrics::recordReplicas(std::size_t model, std::size_t replicas)
{
    MutexLock lk(mu);
    ReplicaEvent ev;
    ev.tS = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();
    ev.model = model;
    ev.replicas = replicas;
    trajectory.push_back(ev);
}

void
TenantMetrics::setArenaBytes(std::size_t live_bytes,
                             std::size_t reserved_bytes)
{
    MutexLock lk(mu);
    liveArena = live_bytes;
    reservedArena = reserved_bytes;
}

void
TenantMetrics::recordSteadyProbe(std::uint64_t allocs)
{
    MutexLock lk(mu);
    steadyAllocs += allocs;
    ++steadyProbed;
}

TenantMetricsSnapshot
TenantMetrics::snapshot() const
{
    TenantMetricsSnapshot s;
    std::vector<double> lat[kTaskClassCount];
    std::vector<double> waits[kTaskClassCount];
    {
        MutexLock lk(mu);
        for (std::size_t i = 0; i < kTaskClassCount; ++i) {
            lat[i] = byClass[i].latencies;
            waits[i] = byClass[i].queueWaits;
            s.byClass[i].shed = byClass[i].shed;
            s.byClass[i].sloMet = byClass[i].sloMet;
            s.byClass[i].sloMissed = byClass[i].sloMissed;
        }
        s.replicaTrajectory = trajectory;
        s.backgroundEvicted = evicted;
        s.queueHighWater = highWater;
        s.liveArenaBytes = liveArena;
        s.reservedArenaBytes = reservedArena;
        s.steadyAllocs = steadyAllocs;
        s.steadyProbedBatches = steadyProbed;
        s.elapsedS = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    }
    for (std::size_t i = 0; i < kTaskClassCount; ++i) {
        TenantClassStats &c = s.byClass[i];
        c.completed = lat[i].size();
        c.latency = summarizeLatencies(std::move(lat[i]));
        c.queueWait = summarizeLatencies(std::move(waits[i]));
        s.completed += c.completed;
        s.shed += c.shed;
    }
    s.throughputRps =
        s.elapsedS > 0.0 ? double(s.completed) / s.elapsedS : 0.0;
    return s;
}

} // namespace pcnn
