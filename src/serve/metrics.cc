#include "serve/metrics.hh"

#include <algorithm>

namespace pcnn {

ServeMetrics::ServeMetrics()
{
    started = std::chrono::steady_clock::now();
}

void
ServeMetrics::start()
{
    std::lock_guard<std::mutex> lk(mu);
    started = std::chrono::steady_clock::now();
    latencies.clear();
    queueWaits.clear();
    hist = BatchSizeHistogram();
    shedCount = 0;
    highWater = 0;
}

void
ServeMetrics::recordBatch(std::size_t batch)
{
    std::lock_guard<std::mutex> lk(mu);
    hist.record(batch);
}

void
ServeMetrics::recordLatency(double latency_s, double queue_s)
{
    std::lock_guard<std::mutex> lk(mu);
    latencies.push_back(latency_s);
    queueWaits.push_back(queue_s);
}

void
ServeMetrics::recordShed()
{
    std::lock_guard<std::mutex> lk(mu);
    ++shedCount;
}

void
ServeMetrics::recordQueueDepth(std::size_t depth)
{
    std::lock_guard<std::mutex> lk(mu);
    highWater = std::max(highWater, depth);
}

ServeMetricsSnapshot
ServeMetrics::snapshot() const
{
    std::vector<double> lat, waits;
    ServeMetricsSnapshot s;
    {
        std::lock_guard<std::mutex> lk(mu);
        lat = latencies;
        waits = queueWaits;
        s.batchHist = hist;
        s.shed = shedCount;
        s.queueHighWater = highWater;
        s.elapsedS = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    }
    s.completed = lat.size();
    s.latency = summarizeLatencies(std::move(lat));
    s.queueWait = summarizeLatencies(std::move(waits));
    s.throughputRps =
        s.elapsedS > 0.0 ? double(s.completed) / s.elapsedS : 0.0;
    return s;
}

} // namespace pcnn
