#include "serve/metrics.hh"

#include <algorithm>

namespace pcnn {

ServeMetrics::ServeMetrics()
{
    started = std::chrono::steady_clock::now();
}

void
ServeMetrics::start()
{
    MutexLock lk(mu);
    started = std::chrono::steady_clock::now();
    latencies.clear();
    queueWaits.clear();
    hist = BatchSizeHistogram();
    shedCount = 0;
    highWater = 0;
    steadyAllocs = 0;
    steadyProbed = 0;
}

void
ServeMetrics::recordBatch(std::size_t batch)
{
    MutexLock lk(mu);
    hist.record(batch);
}

void
ServeMetrics::recordLatency(double latency_s, double queue_s)
{
    MutexLock lk(mu);
    // pcnn-analyze: allow(hot-path-alloc): per-request sample
    // log (amortized doubling); recorded outside the worker's
    // steady-state probe window by design.
    latencies.push_back(latency_s);
    // pcnn-analyze: allow(hot-path-alloc): see above.
    queueWaits.push_back(queue_s);
}

void
ServeMetrics::recordShed()
{
    MutexLock lk(mu);
    ++shedCount;
}

void
ServeMetrics::recordQueueDepth(std::size_t depth)
{
    MutexLock lk(mu);
    highWater = std::max(highWater, depth);
}

void
ServeMetrics::recordSteadyProbe(std::uint64_t allocs)
{
    MutexLock lk(mu);
    steadyAllocs += allocs;
    ++steadyProbed;
}

ServeMetricsSnapshot
ServeMetrics::snapshot() const
{
    std::vector<double> lat, waits;
    ServeMetricsSnapshot s;
    {
        MutexLock lk(mu);
        lat = latencies;
        waits = queueWaits;
        s.batchHist = hist;
        s.shed = shedCount;
        s.queueHighWater = highWater;
        s.steadyAllocs = steadyAllocs;
        s.steadyProbedBatches = steadyProbed;
        s.elapsedS = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    }
    s.completed = lat.size();
    s.latency = summarizeLatencies(std::move(lat));
    s.queueWait = summarizeLatencies(std::move(waits));
    s.throughputRps =
        s.elapsedS > 0.0 ? double(s.completed) / s.elapsedS : 0.0;
    return s;
}

} // namespace pcnn
