#include "serve/model_registry.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hh"
#include "common/parallel.hh"
#include "nn/fusion.hh"
#include "nn/graph/compiled_graph.hh"
#include "nn/model_zoo.hh"

namespace pcnn {

std::string
registerStatusName(RegisterStatus status)
{
    switch (status) {
      case RegisterStatus::Registered:
        return "registered";
      case RegisterStatus::DuplicateName:
        return "duplicate-name";
      case RegisterStatus::BudgetExceeded:
        return "budget-exceeded";
      case RegisterStatus::ScheduleBatchTooSmall:
        return "schedule-batch-too-small";
    }
    pcnn_panic("unknown RegisterStatus");
}

Model::Model(Network prototype, ModelConfig config,
             std::optional<GraphSchedule> schedule)
    : cfg(std::move(config)), proto(std::move(prototype)),
      sched(std::move(schedule)),
      est(std::max<std::size_t>(1, cfg.maxBatch))
{
    PCNN_CHECK(cfg.maxBatch >= 1, "model ", cfg.name,
               ": maxBatch must be >= 1");
    PCNN_CHECK(cfg.maxReplicas >= 1, "model ", cfg.name,
               ": maxReplicas must be >= 1");
}

Network
Model::makeReplica(std::size_t lanes)
{
    Network replica = proto.cloneSharingWeights();
    // One arena allocation per replica, zero recompiles: the shared
    // schedule was built once at registration, each replica only
    // validates and adopts it. The lane cap matches the worker that
    // will own the replica so the shared conv scratch pool and the
    // warm-up below size for exactly the lanes serving will use.
    ScopedLaneLimit limit(lanes);
    if (sched)
        replica.adoptGraphSchedule(*sched);

    // Warm the full steady-state envelope before the replica is
    // published: a maxBatch forward grows every grow-only buffer
    // (staging, scratch pool, legacy ping-pong) to its ceiling, so
    // every smaller serving batch afterwards is allocation-free, and
    // it materializes the shared weight panels on the first replica
    // (frozen weights: later replicas find them and never repack).
    const Shape &in = proto.inputShape();
    Tensor warm(Shape{cfg.maxBatch, in.c, in.h, in.w});
    Tensor logits;
    const auto t0 = std::chrono::steady_clock::now();
    replica.forwardInto(warm, false, logits);
    const auto t1 = std::chrono::steady_clock::now();
    est.record(cfg.maxBatch,
               std::chrono::duration<double>(t1 - t0).count());
    return replica;
}

ModelRegistry::ModelRegistry(RegistryConfig config) : cfg(config) {}

RegisterStatus
ModelRegistry::registerModel(Network prototype, ModelConfig config)
{
    PCNN_CHECK(!config.name.empty(), "model needs a name");
    if (indexOf(config.name) != entries.size())
        return RegisterStatus::DuplicateName;
    PCNN_CHECK(config.perforationKeep > 0.0 &&
                   config.perforationKeep <= 1.0,
               "model ", config.name, ": perforationKeep ",
               config.perforationKeep, " outside (0, 1]");

    // Pin the model's operating point before anything derived from
    // the op structure (schedule, panels) exists: perforation levels
    // are part of the model's identity in the registry.
    if (config.perforationKeep < 1.0) {
        for (ConvLayer *c : prototype.convLayers()) {
            const auto full = static_cast<double>(c->fullPositions());
            const auto keep = static_cast<std::size_t>(
                full * config.perforationKeep);
            c->setComputedPositions(std::max<std::size_t>(1, keep));
        }
    }

    std::optional<GraphSchedule> sched;
    if (config.schedule != nullptr) {
        // Serialized plan-v4 schedule (offline compiler): adopt-time
        // validation against the live layers is CompiledGraph's job
        // and fails loudly; the batch capacity check is the one
        // mismatch worth a clean rejection because it depends on
        // this registration's config, not on the plan's integrity.
        if (config.schedule->batch < config.maxBatch)
            return RegisterStatus::ScheduleBatchTooSmall;
        sched = *config.schedule;
    } else if (graphEnabled()) {
        // Compile-on-register fallback: run the pass pipeline once;
        // pure data, no arena is allocated here.
        sched = buildGraphSchedule(prototype, config.maxBatch);
    }

    const std::size_t arena =
        sched ? sched->arenaFloats * sizeof(float) : 0;
    const std::size_t want = arena * config.maxReplicas;
    if (cfg.arenaBudgetBytes != 0 &&
        reserved + want > cfg.arenaBudgetBytes)
        return RegisterStatus::BudgetExceeded;

    reserved += want;
    entries.push_back(std::make_unique<Model>(
        std::move(prototype), std::move(config), std::move(sched)));
    return RegisterStatus::Registered;
}

Model *
ModelRegistry::find(const std::string &name)
{
    const std::size_t i = indexOf(name);
    return i == entries.size() ? nullptr : entries[i].get();
}

std::size_t
ModelRegistry::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (entries[i]->name() == name)
            return i;
    return entries.size();
}

std::size_t
registerMiniZoo(ModelRegistry &registry, Rng &rng,
                std::size_t max_batch, std::size_t max_replicas)
{
    struct ZooSpec
    {
        const char *base;
        Network (*make)(Rng &, std::size_t);
    };
    const ZooSpec nets[] = {
        {"MiniAlexNet", makeMiniAlexNet},
        {"MiniVgg", makeMiniVgg},
        {"MiniInception", makeMiniInception},
    };
    struct LevelSpec
    {
        const char *suffix;
        double keep;
    };
    const LevelSpec levels[] = {{"/full", 1.0}, {"/p50", 0.5}};

    std::size_t count = 0;
    for (const ZooSpec &z : nets) {
        for (const LevelSpec &lvl : levels) {
            // Each registration gets its own prototype: perforation
            // is applied to the network itself and the registry
            // takes ownership. Weights across perforation levels of
            // the same net need not match — only be deterministic —
            // so one shared rng stream is fine.
            ModelConfig mc;
            mc.name = std::string(z.base) + lvl.suffix;
            mc.maxBatch = max_batch;
            mc.maxReplicas = max_replicas;
            mc.perforationKeep = lvl.keep;
            const RegisterStatus st = registry.registerModel(
                z.make(rng, 8), std::move(mc));
            PCNN_CHECK(st == RegisterStatus::Registered,
                       "mini-zoo registration failed: ",
                       registerStatusName(st));
            ++count;
        }
    }
    return count;
}

} // namespace pcnn
