/**
 * @file
 * Multi-tenant queue fabric (DESIGN.md §5k).
 *
 * One scheduling structure routes every request — model id, task
 * class, deadline — to the replica pools. Per model there are two
 * lanes: an *urgent* lane (interactive + real-time, ordered earliest
 * deadline first) and a *background* lane (FIFO). Idle workers take
 * grants with strict priority: any serviceable urgent work first;
 * background only when no urgent request is queued anywhere, and
 * then only a batch small enough to fit the occupancy budget derived
 * from the protected classes' SoC_time slack (runtime/slack.hh) and
 * the per-model EWMA service estimates.
 *
 * Admission control sheds background before interactive: an urgent
 * arrival at a full model queue evicts the newest queued background
 * request (fulfilled as shed) instead of being rejected; a
 * background arrival at a full queue is simply rejected.
 *
 * The fabric is thread-free — workers and producers drive it — so
 * every policy decision is deterministic and unit-testable via
 * tryTake() without threads.
 */

#ifndef PCNN_SERVE_SCHEDULER_HH
#define PCNN_SERVE_SCHEDULER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "common/mutex.hh"
#include "pcnn/runtime/slack.hh"
#include "pcnn/task.hh"
#include "serve/metrics.hh"
#include "serve/model_registry.hh"
#include "serve/request_queue.hh"
#include "tensor/tensor.hh"

namespace pcnn {

/** Completed (or shed) multi-tenant inference. */
struct TenantResult
{
    Tensor logits;             ///< [1, k, 1, 1]; empty when shed
    bool shed = false;         ///< evicted by admission control
    double latencyS = 0.0;     ///< submit -> completion
    double queueS = 0.0;       ///< submit -> service start
    std::size_t batchSize = 0; ///< size of the batch it rode in
};

/** One queued multi-tenant request. */
struct TenantRequest
{
    std::uint64_t id = 0;
    std::size_t model = 0; ///< registry index
    TaskClass cls = TaskClass::Interactive;
    /// latency requirement; engines fill it from classRequirement()
    UserRequirement req;
    /// absolute deadline (enqueued + the requirement's imperceptible
    /// region); orders the urgent lane, EDF
    std::chrono::steady_clock::time_point deadline;
    Tensor input; ///< [1, c, h, w]
    std::chrono::steady_clock::time_point enqueued;
    std::promise<TenantResult> done;

    /** Urgent lane membership (everything but background). */
    bool urgent() const { return cls != TaskClass::Background; }
};

/** A batch of same-model requests granted to one worker. */
struct BatchGrant
{
    std::size_t model = 0;
    bool background = false;
    /// same-model, same-lane requests; empty means the fabric is
    /// closed and fully drained: the worker should exit
    std::vector<TenantRequest> batch;
};

/** Fabric policy knobs. */
struct FabricConfig
{
    /// per-model bound on queued requests (urgent + background)
    std::size_t queueCapacity = 64;
    /// background occupancy-budget policy
    SlackConfig slack;
    /// the latency class background admission protects when no
    /// urgent request is queued to read a requirement from
    UserRequirement guardRequirement = classRequirement(
        TaskClass::Interactive);
};

/**
 * The shared scheduling structure between producers, workers and the
 * replica pools. Tracks per-model idle-replica counts (mirrored by
 * the engine's pools): a grant is only formed for a model with an
 * idle replica, so a worker holding a grant never blocks on replica
 * acquisition.
 */
class QueueFabric
{
  public:
    /**
     * @param registry registered models; must outlive the fabric
     * @param config policy knobs
     * @param metrics recorder for shed/depth events the fabric owns
     */
    QueueFabric(const ModelRegistry &registry, FabricConfig config,
                TenantMetrics &metrics);

    /**
     * Enqueue a request, or shed: Stopped after close(); QueueFull
     * when the model's queue is at capacity and nothing may be
     * evicted. An urgent arrival at capacity evicts the newest
     * queued background request of the same model (its promise is
     * fulfilled with shed=true) — background sheds before
     * interactive, never the other way. Never blocks.
     */
    SubmitStatus push(TenantRequest &&req);

    /**
     * Block until a grant is available (see class comment for the
     * priority rules) or the fabric is closed and drained (empty
     * grant). Decrements the granted model's idle count; the worker
     * must return the replica via addIdle() when done.
     */
    BatchGrant take();

    /**
     * Non-blocking take(): applies exactly the same policy once.
     * Returns false when nothing is grantable right now. Lets tests
     * drive the policy deterministically without worker threads.
     */
    bool tryTake(BatchGrant &out);

    /** Report a replica of `model` idle (also called at start-up). */
    void addIdle(std::size_t model);

    /**
     * Permanently remove one idle replica of `model` from the
     * schedulable pool (autoscaler shrink). Returns false when no
     * replica of the model is currently idle.
     */
    bool removeIdle(std::size_t model);

    /** Stop accepting requests and wake all waiting workers. */
    void close();

    /** True after close(). */
    bool closed() const;

    /** Queued urgent requests of one model (tests/metrics). */
    std::size_t urgentQueued(std::size_t model) const;

    /** Queued background requests of one model (tests/metrics). */
    std::size_t backgroundQueued(std::size_t model) const;

    /** Total queued requests of one model. */
    std::size_t queued(std::size_t model) const;

    /** Idle replicas of one model (tests/autoscaler). */
    std::size_t idleCount(std::size_t model) const;

    /**
     * The occupancy budget a background batch would get right now
     * (seconds; +inf when unconstrained). Exposed for tests and the
     * bench trace.
     */
    double backgroundBudgetS() const;

  private:
    /** Per-model queues and replica availability. */
    struct ModelState
    {
        std::deque<TenantRequest> urgent;     ///< EDF-ordered
        std::deque<TenantRequest> background; ///< FIFO
        std::size_t idle = 0;                 ///< idle replicas
    };

    /** Policy core; returns false when nothing is grantable. */
    bool formGrant(BatchGrant &out) PCNN_REQUIRES(mu);

    /** Occupancy budget under the lock (see backgroundBudgetS). */
    double budgetLocked() const PCNN_REQUIRES(mu);

    const ModelRegistry &reg;
    FabricConfig cfg;
    TenantMetrics &meter;
    mutable Mutex mu;
    CondVar cv;
    std::vector<ModelState> states PCNN_GUARDED_BY(mu);
    bool stopped PCNN_GUARDED_BY(mu) = false;
};

} // namespace pcnn

#endif // PCNN_SERVE_SCHEDULER_HH
