/**
 * @file
 * Concurrent CNN serving engine (DESIGN.md §5f).
 *
 * Drives real Network::forward calls under load: a bounded MPMC
 * request queue feeds N worker replicas that share one copy of the
 * prototype's weights and persistent packed/winograd panels
 * (Network::cloneSharingWeights), form batches under a
 * deadline-aware Batcher, and partition the PCNN_THREADS lane budget
 * among themselves with ScopedLaneLimit so inter-op and intra-op
 * parallelism compose without oversubscription. Because the compute
 * substrate is bitwise-deterministic across lane counts, per-request
 * outputs are bitwise identical to a single-worker run.
 */

#ifndef PCNN_SERVE_ENGINE_HH
#define PCNN_SERVE_ENGINE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "nn/graph/compiled_graph.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "pcnn/task.hh"
#include "serve/batcher.hh"
#include "serve/metrics.hh"
#include "serve/model_registry.hh"
#include "serve/request_queue.hh"

namespace pcnn {

struct GpuSpec;

/** Engine sizing and policy. */
struct EngineConfig
{
    std::size_t workers = 1;       ///< replica count (>= 1)
    std::size_t maxBatch = 1;      ///< batch ceiling per replica
    std::size_t queueCapacity = 64;
    UserRequirement requirement;   ///< drives the early flush
    double maxWaitS = 0.0;         ///< hard batch-fill wait cap
    /// intra-op lanes per worker; 0 = partition threadCount() evenly
    /// (at least 1 lane each)
    std::size_t lanesPerWorker = 0;
    /// serialized plan-v4 schedule for the replicas to adopt
    /// (DESIGN.md §5k); nullptr compiles one at construction instead
    const GraphSchedule *schedule = nullptr;
};

/**
 * Multi-replica serving engine over one prototype network.
 *
 * The prototype is frozen on construction (its parameters become
 * shared and read-only; training it afterwards PCNN_CHECK-fails) and
 * a warm-up forward materializes every panel the inference route
 * needs *before* worker threads exist, so the steady state performs
 * no panel packing and no lock-protected weight access at all.
 */
class ServeEngine
{
  public:
    /**
     * @param prototype network to serve; must outlive the engine
     * @param config sizing and batching policy
     */
    ServeEngine(Network &prototype, EngineConfig config);

    /** Stops and joins (see stop()). */
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /** submit() outcome: a status and, when accepted, a future. */
    struct Submission
    {
        SubmitStatus status = SubmitStatus::Stopped;
        std::future<ServeResult> result; ///< valid iff Accepted
    };

    /**
     * Submit one image [1, c, h, w] (matching the prototype's input
     * shape). Never blocks: a full queue sheds the request with
     * QueueFull and a stopped engine returns Stopped; only Accepted
     * submissions carry a valid future.
     */
    Submission submit(Tensor input);

    /**
     * Stop accepting requests, serve everything already queued
     * exactly once, and join the workers. Idempotent; also run by
     * the destructor.
     */
    void stop();

    /** Replica count. */
    std::size_t workerCount() const { return cfg.workers; }

    /** Intra-op lanes each worker runs with. */
    std::size_t lanesPerWorker() const { return lanes; }

    /** The batching policy (exposed for tests and benches). */
    const Batcher &batcher() const { return policy; }

    /** Metrics snapshot (thread-safe at any time). */
    ServeMetricsSnapshot metrics() const { return meter.snapshot(); }

    /** Queue depth high-water mark. */
    std::size_t queueHighWater() const { return queue.highWater(); }

    /**
     * Graph compiles a replica has performed (0 with the graph path
     * off). With PCNN_GRAPH on this is exactly 1 for every replica —
     * the schedule is built (or adopted from a serialized plan) once
     * for the whole engine and every replica adopts it at the batch
     * ceiling, so serving never recompiles and each replica owns
     * exactly one arena allocation for the engine's lifetime.
     */
    std::size_t replicaGraphCompiles(std::size_t worker) const
    {
        return replicas[worker].graphCompileCount();
    }

    /** Bytes of replica `worker`'s activation arena (0 when off). */
    std::size_t replicaArenaBytes(std::size_t worker) const
    {
        const CompiledGraph *g = replicas[worker].compiledGraph();
        return g != nullptr ? g->arenaBytes() : 0;
    }

  private:
    /** Worker replica loop: pop a batch, run it, fulfill promises. */
    void workerLoop(std::size_t worker);

    EngineConfig cfg;
    std::size_t lanes = 1;
    Network &proto;
    /// single-entry registry holding the engine's Model handle
    /// (frozen clone of the prototype + shared schedule + service
    /// estimator); replicas clone from it (DESIGN.md §5k)
    ModelRegistry registry;
    std::vector<Network> replicas; ///< one per worker
    RequestQueue queue;
    Batcher policy;
    ServeMetrics meter;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> nextId{0};
    std::atomic<bool> stopFlag{false};
};

/**
 * The offline compiler's optimal serving batch for a task (Section
 * IV.B.1 / Eq. 13): background tasks get the full-utilization batch,
 * latency-sensitive tasks the batch their data rate can fill inside
 * the time requirement.
 */
std::size_t optimalServeBatch(const GpuSpec &gpu,
                              const NetDescriptor &net,
                              const AppSpec &app,
                              const UserRequirement &req);

} // namespace pcnn

#endif // PCNN_SERVE_ENGINE_HH
