#include "serve/multi_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/alloc_count.hh"
#include "common/check.hh"
#include "common/parallel.hh"
#include "pcnn/offline/host_tuner.hh"

namespace pcnn {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

MultiTenantEngine::MultiTenantEngine(ModelRegistry &registry,
                                     MultiEngineConfig config)
    : cfg(config), models(registry.size()), reg(registry),
      fabric(registry, cfg.fabric, meter)
{
    PCNN_CHECK(cfg.workers >= 1, "engine needs at least one worker");
    PCNN_CHECK(models >= 1, "engine needs a registered model");
    PCNN_CHECK(cfg.initialReplicas >= 1,
               "engine needs at least one replica per model");

    // Same contract as the single-model engine: pin the host-tuned
    // kernel configuration before the first warm-up forward and
    // before any worker thread exists.
    (void)applyHostTuneCacheOnce();

    lanes = cfg.lanesPerWorker != 0
                ? cfg.lanesPerWorker
                : std::max<std::size_t>(1, threadCount() / cfg.workers);

    pools.reserve(models);
    for (std::size_t m = 0; m < models; ++m)
        pools.push_back(std::make_unique<Pool>());

    meter.start();
    {
        MutexLock lk(scaleMu);
        totals.assign(models, 0);
        policies.reserve(models);
        for (std::size_t m = 0; m < models; ++m)
            policies.emplace_back(cfg.autoscaler);
        // Initial pools, built before any worker exists: the first
        // replica of each model materializes the shared weight
        // panels during its warm-up; panels then reach the workers
        // through the thread-creation happens-before edge.
        for (std::size_t m = 0; m < models; ++m) {
            const std::size_t want = std::min(
                cfg.initialReplicas, reg.model(m).maxReplicas());
            for (std::size_t i = 0; i < want; ++i)
                growOne(m);
        }
    }

    threads.reserve(cfg.workers);
    for (std::size_t i = 0; i < cfg.workers; ++i)
        threads.emplace_back([this, i] { serveLoop(i); });
    if (cfg.autoscaleTickS > 0.0)
        scaler = std::thread([this] { scalerLoop(); });
}

MultiTenantEngine::~MultiTenantEngine()
{
    stop();
}

MultiTenantEngine::Submission
MultiTenantEngine::submit(std::size_t model, TaskClass cls,
                          Tensor input)
{
    PCNN_CHECK(model < models, "submit: model index ", model,
               " out of range (", models, " models)");
    const Shape &in = reg.model(model).inputShape();
    PCNN_CHECK(input.shape().n == 1 && input.shape().c == in.c &&
                   input.shape().h == in.h && input.shape().w == in.w,
               "submit: input ", input.shape().str(),
               " mismatches expected [1,", in.c, ",", in.h, ",", in.w,
               "]");

    TenantRequest req;
    req.id = nextId.fetch_add(1, std::memory_order_relaxed);
    req.model = model;
    req.cls = cls;
    req.req = classRequirement(cls);
    req.input = std::move(input);
    req.enqueued = std::chrono::steady_clock::now();
    // Background requests never enter the EDF lane; give them their
    // enqueue time as a harmless placeholder instead of casting an
    // infinite requirement into the clock's duration type.
    req.deadline =
        req.urgent()
            ? req.enqueued +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          req.req.imperceptibleS))
            : req.enqueued;
    std::future<TenantResult> fut = req.done.get_future();

    Submission sub;
    sub.status = fabric.push(std::move(req));
    if (sub.status == SubmitStatus::Accepted)
        sub.result = std::move(fut);
    return sub;
}

void
MultiTenantEngine::stop()
{
    if (stopFlag.exchange(true))
        return;
    {
        MutexLock lk(scaleMu);
        scaleStop = true;
    }
    scaleCv.notifyAll();
    if (scaler.joinable())
        scaler.join();
    fabric.close();
    for (std::thread &t : threads)
        t.join();
    threads.clear();
}

std::size_t
MultiTenantEngine::replicaCount(std::size_t model) const
{
    MutexLock lk(scaleMu);
    return totals.at(model);
}

std::size_t
MultiTenantEngine::liveArenaBytes() const
{
    MutexLock lk(scaleMu);
    std::size_t sum = 0;
    for (std::size_t m = 0; m < models; ++m)
        sum += totals[m] * reg.model(m).replicaArenaBytes();
    return sum;
}

std::size_t
MultiTenantEngine::scaleTo(std::size_t model, std::size_t target)
{
    PCNN_CHECK(model < models, "scaleTo: model out of range");
    const std::size_t cap = reg.model(model).maxReplicas();
    const std::size_t want =
        std::min(cap, std::max<std::size_t>(1, target));
    MutexLock lk(scaleMu);
    while (totals[model] < want)
        growOne(model);
    while (totals[model] > want && shrinkOne(model)) {
    }
    return totals[model];
}

void
MultiTenantEngine::growOne(std::size_t model)
{
    // Replica creation is slow (clone + adopt + maxBatch warm-up)
    // and runs under scaleMu: the scaler thread and scaleTo are the
    // only cloners, satisfying Model::makeReplica's serialization
    // contract without touching the worker-facing pool lock.
    Network replica = reg.model(model).makeReplica(lanes);
    Pool &pool = *pools[model];
    {
        MutexLock lk(pool.mu);
        pool.idle.push_back(std::move(replica));
    }
    // Pool before fabric: once the idle count is visible a grant may
    // pop immediately.
    fabric.addIdle(model);
    ++totals[model];
    meter.recordReplicas(model, totals[model]);
    publishArenaGauge();
}

bool
MultiTenantEngine::shrinkOne(std::size_t model)
{
    // Fabric first: a successful removeIdle reserves one idle
    // replica that no grant can claim anymore, so the pool pop below
    // cannot race a worker.
    if (!fabric.removeIdle(model))
        return false;
    Pool &pool = *pools[model];
    {
        MutexLock lk(pool.mu);
        PCNN_CHECK(!pool.idle.empty(),
                   "pool/fabric idle accounting diverged");
        pool.idle.pop_back();
    }
    --totals[model];
    meter.recordReplicas(model, totals[model]);
    publishArenaGauge();
    return true;
}

void
MultiTenantEngine::publishArenaGauge()
{
    std::size_t live = 0;
    for (std::size_t m = 0; m < models; ++m)
        live += totals[m] * reg.model(m).replicaArenaBytes();
    meter.setArenaBytes(live, reg.totalReservedArenaBytes());
}

void
MultiTenantEngine::scalerLoop()
{
    const auto tick = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(cfg.autoscaleTickS));
    UniqueLock lk(scaleMu);
    for (;;) {
        if (scaleStop)
            return;
        scaleCv.waitFor(lk, scaleMu, tick);
        if (scaleStop)
            return;
        for (std::size_t m = 0; m < models; ++m) {
            Model &model = reg.model(m);
            const double estBatch =
                model.estimator().estS(model.maxBatch());
            const double backlog = backlogPerReplicaS(
                fabric.queued(m), totals[m], model.maxBatch(),
                estBatch);
            switch (policies[m].tick(backlog, totals[m])) {
              case AutoscalerPolicy::Action::Grow:
                if (totals[m] < model.maxReplicas())
                    growOne(m);
                break;
              case AutoscalerPolicy::Action::Shrink:
                if (totals[m] > cfg.autoscaler.minReplicas)
                    (void)shrinkOne(m);
                break;
              case AutoscalerPolicy::Action::Hold:
                break;
            }
        }
    }
}

void
MultiTenantEngine::serveLoop(std::size_t worker)
{
    (void)worker;
    // Thread-local lane cap for the life of the worker: every
    // forward below runs on this worker's share of the lane budget.
    ScopedLaneLimit limit(lanes);

    // Persistent per-(worker, model) staging and output tensors plus
    // the warm-envelope watermark: resize() is capacity-preserving,
    // so once a batch size has been seen for a model, staging and
    // forward run allocation-free (replica-internal buffers were
    // grown to maxBatch by the warm-up in Model::makeReplica).
    std::vector<Tensor> stage(models);
    std::vector<Tensor> outs(models);
    std::vector<std::size_t> maxSeen(models, 0);

    for (;;) {
        BatchGrant grant = fabric.take();
        if (grant.batch.empty())
            return; // closed and drained

        const std::size_t m = grant.model;
        const std::size_t b = grant.batch.size();
        const Shape &in = reg.model(m).inputShape();
        const std::size_t item = in.itemSize();

        // The grant reserved one idle replica of this model; claim
        // it. LIFO keeps the hottest replica's caches in play.
        Network replica = [&] {
            Pool &pool = *pools[m];
            MutexLock lk(pool.mu);
            PCNN_CHECK(!pool.idle.empty(),
                       "granted model has no idle replica");
            Network r = std::move(pool.idle.back());
            pool.idle.pop_back();
            return r;
        }();

        Tensor &x = stage[m];
        Tensor &logits = outs[m];
        const bool steady = allocCountingEnabled() && b <= maxSeen[m];
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t probedAllocs = 0;
        {
            // The probe covers exactly the steady-state work: batch
            // staging plus the forward. Request plumbing (promises,
            // per-request logits copies, metrics) allocates by
            // design and stays outside the envelope.
            ScopedAllocCount probe;
            x.resize(Shape{b, in.c, in.h, in.w});
            for (std::size_t i = 0; i < b; ++i)
                std::memcpy(x.data() + i * item,
                            grant.batch[i].input.data(),
                            item * sizeof(float));
            replica.forwardInto(x, false, logits);
            probedAllocs = probe.allocs();
        }
        maxSeen[m] = std::max(maxSeen[m], b);
        const auto end = std::chrono::steady_clock::now();
        if (steady)
            meter.recordSteadyProbe(probedAllocs);

        // Return the replica before fulfilling promises: capacity
        // comes back to the fabric as early as possible.
        {
            Pool &pool = *pools[m];
            MutexLock lk(pool.mu);
            pool.idle.push_back(std::move(replica));
        }
        fabric.addIdle(m);

        reg.model(m).estimator().record(b, secondsSince(start, end));
        for (std::size_t i = 0; i < b; ++i) {
            TenantRequest &q = grant.batch[i];
            TenantResult r;
            r.logits = logits.item(i);
            r.batchSize = b;
            r.queueS = secondsSince(q.enqueued, start);
            r.latencyS = secondsSince(q.enqueued, end);
            const bool sloMet = q.req.timeInsensitive ||
                                r.latencyS <= q.req.imperceptibleS;
            meter.recordRequest(q.cls, r.latencyS, r.queueS, sloMet);
            q.done.set_value(std::move(r));
        }
    }
}

} // namespace pcnn
