#include "serve/batcher.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

namespace {

/// EWMA smoothing: heavy enough to damp scheduler noise, light
/// enough to track DVFS-style service-time drift within ~10 batches.
constexpr double kAlpha = 0.3;

} // namespace

ServiceEstimator::ServiceEstimator(std::size_t max_batch)
    : cap(max_batch), ewma(max_batch + 1, 0.0)
{
    pcnn_assert(cap >= 1, "estimator maxBatch must be >= 1");
}

void
ServiceEstimator::record(std::size_t batch, double service_s)
{
    pcnn_assert(batch >= 1 && batch <= cap,
                "recorded batch out of range");
    MutexLock lk(mu);
    double &slot = ewma[batch];
    slot = slot == 0.0 ? service_s
                       : (1.0 - kAlpha) * slot + kAlpha * service_s;
}

double
ServiceEstimator::estS(std::size_t batch) const
{
    const std::size_t b = std::min(batch, cap);
    MutexLock lk(mu);
    // Exact size first, then the largest observed size under it:
    // service time grows with batch, so a smaller batch's time is a
    // usable (under-)estimate while samples are still sparse.
    for (std::size_t i = b; i >= 1; --i)
        if (ewma[i] != 0.0)
            return ewma[i];
    return 0.0;
}

Batcher::Batcher(BatcherConfig config)
    : cfg(config), est(std::max<std::size_t>(1, cfg.maxBatch))
{
    pcnn_assert(cfg.maxBatch >= 1, "batcher maxBatch must be >= 1");
    pcnn_assert(cfg.maxWaitS >= 0.0, "batcher maxWaitS must be >= 0");
}

double
Batcher::waitBudgetS(double oldest_age_s, std::size_t queued) const
{
    if (queued >= cfg.maxBatch)
        return 0.0;
    // Hard cap: the oldest request never waits past maxWaitS.
    double budget = cfg.maxWaitS - oldest_age_s;
    if (!cfg.requirement.timeInsensitive) {
        // Early flush (Fig. 3): keep the oldest request's completion
        // inside the imperceptible region. Waiting w more seconds
        // completes it no earlier than age + w + service(maxBatch),
        // so the slack before T_i is the wait we can still afford.
        const double slack = cfg.requirement.imperceptibleS -
                             est.estS(cfg.maxBatch) - oldest_age_s;
        budget = std::min(budget, slack);
    }
    return std::max(budget, 0.0);
}

void
Batcher::recordService(std::size_t batch, double service_s)
{
    est.record(batch, service_s);
}

double
Batcher::estServiceS(std::size_t batch) const
{
    return est.estS(batch);
}

} // namespace pcnn
