/**
 * @file
 * Synthetic labeled image task.
 *
 * Substitutes for ImageNet test data in the accuracy/entropy
 * experiments (DESIGN.md). Each class is a smooth random template;
 * samples are shifted, scaled, noisy instances of their class
 * template. The `difficulty` knob controls the signal-to-noise
 * ratio, so trained-classifier accuracy is tunable and perforation
 * degrades it smoothly — the property Fig. 16 depends on.
 */

#ifndef PCNN_DATA_SYNTHETIC_HH
#define PCNN_DATA_SYNTHETIC_HH

#include <cstddef>
#include <vector>

#include "data/dataset.hh"

namespace pcnn {

/** Configuration of the synthetic classification task. */
struct SyntheticTaskConfig
{
    std::size_t classes = 8;
    std::size_t channels = 1;
    std::size_t height = 16;
    std::size_t width = 16;
    /// noise stddev relative to signal amplitude; ~0.3 is easy,
    /// ~1.0 is hard
    double difficulty = 0.5;
    /// max translation (pixels) applied to the class template
    std::size_t maxShift = 2;
    std::uint64_t seed = 42;
};

/**
 * Generates reproducible labeled datasets from class templates.
 *
 * The template of each class is fixed at construction; repeated
 * generate() calls draw fresh instances, so train/test splits are
 * i.i.d. from the same task.
 */
class SyntheticTask
{
  public:
    /** Build class templates from cfg.seed. */
    explicit SyntheticTask(SyntheticTaskConfig cfg);

    /** Task configuration. */
    const SyntheticTaskConfig &config() const { return cfg; }

    /** Item shape of generated datasets. */
    Shape itemShape() const;

    /** Generate n labeled samples (classes balanced round-robin). */
    Dataset generate(std::size_t n);

    /** The noiseless template of one class (for tests). */
    const Tensor &classTemplate(std::size_t cls) const;

  private:
    /** Draw one sample of class cls into `out`. */
    void sampleInto(std::size_t cls, Tensor &out);

    SyntheticTaskConfig cfg;
    Rng rng;
    std::vector<Tensor> templates;
};

} // namespace pcnn

#endif // PCNN_DATA_SYNTHETIC_HH
