/**
 * @file
 * Labeled image dataset container.
 */

#ifndef PCNN_DATA_DATASET_HH
#define PCNN_DATA_DATASET_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"
#include "tensor/tensor.hh"

namespace pcnn {

/**
 * In-memory labeled dataset: a batch-major image tensor plus one
 * integer label per item.
 */
class Dataset
{
  public:
    /** Empty dataset of a given item shape. */
    explicit Dataset(Shape item_shape);

    /** Item shape (n forced to 1). */
    const Shape &itemShape() const { return shape; }

    /** Number of items. */
    std::size_t size() const { return labels_.size(); }

    /** Append one item. @pre image shape matches itemShape() */
    void add(const Tensor &image, std::size_t label);

    /** Label of item i. */
    std::size_t label(std::size_t i) const { return labels_.at(i); }

    /** All labels. */
    const std::vector<std::size_t> &labels() const { return labels_; }

    /** Copy of item i as an n=1 tensor. */
    Tensor image(std::size_t i) const;

    /**
     * Materialize items [first, first+count) as one batch tensor.
     * @pre the range is within bounds
     */
    Tensor batch(std::size_t first, std::size_t count) const;

    /** Labels of the same range, for loss computation. */
    std::vector<std::size_t> batchLabels(std::size_t first,
                                         std::size_t count) const;

    /** Shuffle items in place (images and labels together). */
    void shuffle(Rng &rng);

    /** Split off the last `count` items into a new dataset. */
    Dataset takeTail(std::size_t count);

  private:
    Shape shape;
    std::vector<float> pixels; ///< size() * shape.itemSize() floats
    std::vector<std::size_t> labels_;
};

} // namespace pcnn

#endif // PCNN_DATA_DATASET_HH
