#include "data/synthetic.hh"

#include <cmath>

#include "common/logging.hh"

namespace pcnn {

namespace {

/**
 * Smooth a plane in place with a 3x3 box filter (two passes), so the
 * class signal has the local spatial correlation perforation relies
 * on ("neighbouring pixels tend to have similar values").
 */
void
smoothPlane(Tensor &t, std::size_t c)
{
    const std::size_t h = t.shape().h, w = t.shape().w;
    for (int pass = 0; pass < 2; ++pass) {
        Tensor copy = t;
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                double s = 0.0;
                int cnt = 0;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const long yy = long(y) + dy, xx = long(x) + dx;
                        if (yy < 0 || yy >= long(h) || xx < 0 ||
                            xx >= long(w)) {
                            continue;
                        }
                        s += copy.at(0, c, std::size_t(yy),
                                     std::size_t(xx));
                        ++cnt;
                    }
                }
                t.at(0, c, y, x) = float(s / cnt);
            }
        }
    }
}

} // namespace

SyntheticTask::SyntheticTask(SyntheticTaskConfig config)
    : cfg(config), rng(config.seed)
{
    pcnn_assert(cfg.classes >= 2, "need at least two classes");
    pcnn_assert(cfg.maxShift * 2 < cfg.height &&
                    cfg.maxShift * 2 < cfg.width,
                "maxShift too large for the image size");
    templates.reserve(cfg.classes);
    for (std::size_t k = 0; k < cfg.classes; ++k) {
        Tensor t(Shape{1, cfg.channels, cfg.height, cfg.width});
        t.fillGaussian(rng, 0.0f, 1.0f);
        for (std::size_t c = 0; c < cfg.channels; ++c)
            smoothPlane(t, c);
        // Normalize template energy so all classes are equally hard.
        double e = 0.0;
        for (std::size_t i = 0; i < t.size(); ++i)
            e += double(t[i]) * double(t[i]);
        const float scale = float(1.0 / std::sqrt(e / double(t.size())));
        for (std::size_t i = 0; i < t.size(); ++i)
            t[i] *= scale;
        templates.push_back(std::move(t));
    }
}

Shape
SyntheticTask::itemShape() const
{
    return Shape{1, cfg.channels, cfg.height, cfg.width};
}

const Tensor &
SyntheticTask::classTemplate(std::size_t cls) const
{
    return templates.at(cls);
}

void
SyntheticTask::sampleInto(std::size_t cls, Tensor &out)
{
    const Tensor &tpl = templates[cls];
    const long max_shift = long(cfg.maxShift);
    const long dy = rng.range(-max_shift, max_shift);
    const long dx = rng.range(-max_shift, max_shift);
    const float gain = float(rng.uniform(0.8, 1.2));
    const float noise = float(cfg.difficulty);

    const std::size_t h = cfg.height, w = cfg.width;
    for (std::size_t c = 0; c < cfg.channels; ++c) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                const long sy = long(y) - dy, sx = long(x) - dx;
                float v = 0.0f;
                if (sy >= 0 && sy < long(h) && sx >= 0 && sx < long(w))
                    v = tpl.at(0, c, std::size_t(sy), std::size_t(sx));
                out.at(0, c, y, x) =
                    gain * v + float(rng.gaussian(0.0, noise));
            }
        }
    }
}

Dataset
SyntheticTask::generate(std::size_t n)
{
    Dataset ds(itemShape());
    Tensor img(itemShape());
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t cls = i % cfg.classes;
        sampleInto(cls, img);
        ds.add(img, cls);
    }
    ds.shuffle(rng);
    return ds;
}

} // namespace pcnn
