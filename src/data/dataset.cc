#include "data/dataset.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

Dataset::Dataset(Shape item_shape) : shape(item_shape)
{
    shape.n = 1;
    pcnn_assert(shape.itemSize() > 0, "dataset item shape empty");
}

void
Dataset::add(const Tensor &image, std::size_t label)
{
    pcnn_assert(image.shape().itemSize() == shape.itemSize() &&
                    image.shape().n == 1,
                "dataset add: image ", image.shape().str(),
                " mismatches item shape ", shape.str());
    pixels.insert(pixels.end(), image.data(),
                  image.data() + shape.itemSize());
    labels_.push_back(label);
}

Tensor
Dataset::image(std::size_t i) const
{
    return batch(i, 1);
}

Tensor
Dataset::batch(std::size_t first, std::size_t count) const
{
    pcnn_assert(first + count <= size(), "dataset batch [", first, ", ",
                first + count, ") out of ", size());
    Tensor out(Shape{count, shape.c, shape.h, shape.w});
    const std::size_t item = shape.itemSize();
    std::copy(pixels.begin() + first * item,
              pixels.begin() + (first + count) * item, out.data());
    return out;
}

std::vector<std::size_t>
Dataset::batchLabels(std::size_t first, std::size_t count) const
{
    pcnn_assert(first + count <= size(), "dataset labels out of range");
    return {labels_.begin() + first, labels_.begin() + first + count};
}

void
Dataset::shuffle(Rng &rng)
{
    const std::size_t item = shape.itemSize();
    for (std::size_t i = size(); i > 1; --i) {
        const std::size_t j = rng.below(i);
        if (j == i - 1)
            continue;
        std::swap(labels_[i - 1], labels_[j]);
        std::swap_ranges(pixels.begin() + (i - 1) * item,
                         pixels.begin() + i * item,
                         pixels.begin() + j * item);
    }
}

Dataset
Dataset::takeTail(std::size_t count)
{
    pcnn_assert(count <= size(), "takeTail(", count, ") out of ", size());
    Dataset tail(shape);
    const std::size_t first = size() - count;
    const std::size_t item = shape.itemSize();
    tail.pixels.assign(pixels.begin() + first * item, pixels.end());
    tail.labels_.assign(labels_.begin() + first, labels_.end());
    pixels.resize(first * item);
    labels_.resize(first);
    return tail;
}

} // namespace pcnn
