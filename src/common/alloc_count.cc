#include "common/alloc_count.hh"

#include <cstddef>
#include <cstdlib>
#include <new>

// pcnn-analyze: allow-file(raw-new): this file IS the allocator
// hook; it defines the counting replacements for the global
// new/delete family.

namespace pcnn {
namespace {

// Plain integers with static (zero) initialization: the counters
// must be usable from the very first allocation of a thread, before
// any dynamic thread_local initialization could have run.
thread_local std::uint64_t tlsAllocs = 0;
thread_local std::uint64_t tlsFrees = 0;

} // namespace

bool
allocCountingEnabled()
{
#if defined(PCNN_COUNT_ALLOCS)
    return true;
#else
    return false;
#endif
}

std::uint64_t
threadAllocCount()
{
    return tlsAllocs;
}

std::uint64_t
threadFreeCount()
{
    return tlsFrees;
}

ScopedAllocCount::ScopedAllocCount()
    : a0(tlsAllocs), f0(tlsFrees)
{
}

std::uint64_t
ScopedAllocCount::allocs() const
{
    return tlsAllocs - a0;
}

std::uint64_t
ScopedAllocCount::frees() const
{
    return tlsFrees - f0;
}

namespace detail {

void
countAlloc()
{
    ++tlsAllocs;
}

void
countFree()
{
    ++tlsFrees;
}

} // namespace detail
} // namespace pcnn

#if defined(PCNN_COUNT_ALLOCS)

// Counting replacements for the whole global allocation family.
// Every form funnels through malloc/free (aligned forms through
// aligned_alloc), so mixing forms stays correct and the hook adds
// one thread-local increment per call — cheap enough to leave on for
// the entire dev test suite. The sanitizer presets compile this out:
// ASan/TSan interpose their own new/delete, and replacing it would
// disable their mismatch and poisoning checks.

namespace {

void *
countedAlloc(std::size_t size)
{
    pcnn::detail::countAlloc();
    if (size == 0)
        size = 1;
    return std::malloc(size);
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    pcnn::detail::countAlloc();
    if (size == 0)
        size = 1;
    // aligned_alloc requires the size to be a multiple of the
    // alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded);
}

} // namespace

void *
operator new(std::size_t size)
{
    void *p = countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = countedAlignedAlloc(size, std::size_t(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *p = countedAlignedAlloc(size, std::size_t(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size, std::size_t(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size, std::size_t(align));
}

void
operator delete(void *p) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    pcnn::detail::countFree();
    std::free(p);
}

#endif // PCNN_COUNT_ALLOCS
