/**
 * @file
 * ASCII table rendering for bench output.
 *
 * Every bench binary reproduces one table or figure from the paper;
 * TextTable renders them with aligned columns so the console output
 * can be compared side-by-side with the publication.
 */

#ifndef PCNN_COMMON_TABLE_HH
#define PCNN_COMMON_TABLE_HH

#include <string>
#include <type_traits>
#include <vector>

namespace pcnn {

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   TextTable t({"GPU", "Latency (ms)"});
 *   t.addRow({"TX1", "397"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with a header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the whole table, including header and rules. */
    std::string render() const;

    /** Number of data rows added so far (separators excluded). */
    std::size_t rowCount() const { return dataRows; }

    /** Format a double with the given precision, trimming zeros. */
    static std::string num(double v, int precision = 2);

    /** Format any integer type exactly. */
    template <typename T>
        requires std::is_integral_v<T>
    static std::string
    num(T v)
    {
        return std::to_string(v);
    }

  private:
    std::vector<std::string> header;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows;
    std::size_t dataRows = 0;
};

/** Print a titled section banner around a rendered table. */
void printSection(const std::string &title, const std::string &body);

} // namespace pcnn

#endif // PCNN_COMMON_TABLE_HH
