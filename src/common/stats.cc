#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pcnn {

double
mean(const std::vector<double> &v)
{
    pcnn_assert(!v.empty(), "mean of empty vector");
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    pcnn_assert(!v.empty(), "stddev of empty vector");
    const double mu = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - mu) * (x - mu);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double
geomean(const std::vector<double> &v)
{
    pcnn_assert(!v.empty(), "geomean of empty vector");
    double s = 0.0;
    for (double x : v) {
        pcnn_assert(x > 0.0, "geomean needs positive values, got ", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

double
minOf(const std::vector<double> &v)
{
    pcnn_assert(!v.empty(), "min of empty vector");
    return *std::min_element(v.begin(), v.end());
}

double
maxOf(const std::vector<double> &v)
{
    pcnn_assert(!v.empty(), "max of empty vector");
    return *std::max_element(v.begin(), v.end());
}

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStats::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace pcnn
