/**
 * @file
 * Minimal CSV writer used by benches to dump figure series that can
 * be re-plotted externally.
 */

#ifndef PCNN_COMMON_CSV_HH
#define PCNN_COMMON_CSV_HH

#include <string>
#include <vector>

namespace pcnn {

/**
 * Accumulates rows and writes RFC-4180-ish CSV (quotes fields that
 * contain commas, quotes, or newlines).
 */
class CsvWriter
{
  public:
    /** Construct with a header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(const std::vector<std::string> &row);

    /** Render the CSV document as a string. */
    std::string render() const;

    /**
     * Write to a file.
     * @retval true on success, false if the file could not be opened.
     */
    bool writeFile(const std::string &path) const;

  private:
    static std::string escape(const std::string &field);

    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace pcnn

#endif // PCNN_COMMON_CSV_HH
