#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace pcnn {

TextTable::TextTable(std::vector<std::string> hdr)
    : header(std::move(hdr))
{
    pcnn_assert(!header.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    pcnn_assert(row.size() == header.size(),
                "row width ", row.size(), " != header width ",
                header.size());
    rows.push_back(std::move(row));
    ++dataRows;
}

void
TextTable::addSeparator()
{
    rows.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto rule = [&]() {
        std::string s = "+";
        for (auto w : width)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            s += " " + v + std::string(width[c] - v.size(), ' ') + " |";
        }
        return s + "\n";
    };

    std::string out = rule() + line(header) + rule();
    for (const auto &row : rows)
        out += row.empty() ? rule() : line(row);
    out += rule();
    return out;
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        while (s.back() == '0')
            s.pop_back();
        if (s.back() == '.')
            s.pop_back();
    }
    return s;
}

void
printSection(const std::string &title, const std::string &body)
{
    std::printf("\n=== %s ===\n%s", title.c_str(), body.c_str());
    std::fflush(stdout);
}

} // namespace pcnn
