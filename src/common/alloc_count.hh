/**
 * @file
 * Per-thread allocation counters (DESIGN.md §5h).
 *
 * When the build enables PCNN_COUNT_ALLOCS (the dev preset does; the
 * sanitizer presets leave the sanitizers' own operator new in place),
 * alloc_count.cc replaces the global operator new/delete family with
 * malloc-backed versions that bump thread-local counters. The
 * counters make the zero-steady-state-allocation invariant a
 * *measured* property:
 *
 *  - ScopedAllocCount probes a region of the calling thread:
 *    prepacked e2e forward and the serving engine's post-warmup
 *    batches must report 0 (tests/test_allocprobe.cc asserts it,
 *    bench_e2e_models / bench_serving_engine publish it per row);
 *  - tools/pcnn_analyze proves the same property statically for
 *    PCNN_HOT_PATH-tagged functions — the runtime probe is the
 *    cross-check that the static whitelist stays honest.
 *
 * Counters are per-thread on purpose: concurrent producer threads
 * (request submitters, promise plumbing) allocate freely while a
 * worker's forward loop must not, and a process-wide counter could
 * not tell the two apart.
 */

#ifndef PCNN_COMMON_ALLOC_COUNT_HH
#define PCNN_COMMON_ALLOC_COUNT_HH

#include <cstdint>

namespace pcnn {

/** True when the build replaces operator new with counting hooks. */
bool allocCountingEnabled();

/**
 * Allocations observed on the calling thread since it started.
 * Always 0 when !allocCountingEnabled().
 */
std::uint64_t threadAllocCount();

/** Deallocations observed on the calling thread. */
std::uint64_t threadFreeCount();

/**
 * Counts allocator traffic of the calling thread between
 * construction and the allocs()/frees() calls. Usage:
 *
 *   ScopedAllocCount probe;
 *   net.forwardInto(x, false, y);   // steady-state: must not allocate
 *   PCNN_CHECK_EQ(probe.allocs(), 0u, ...);
 *
 * Only this thread's traffic is counted: pool worker lanes are
 * invisible to the probe, so serving workers (which run with a lane
 * limit of 1) and single-thread tests get exact numbers, while
 * multi-lane probes still catch every allocation the dispatching
 * thread itself performs.
 */
class ScopedAllocCount
{
  public:
    ScopedAllocCount();

    /** Allocations on this thread since construction. */
    std::uint64_t allocs() const;

    /** Deallocations on this thread since construction. */
    std::uint64_t frees() const;

  private:
    std::uint64_t a0;
    std::uint64_t f0;
};

} // namespace pcnn

#endif // PCNN_COMMON_ALLOC_COUNT_HH
