/**
 * @file
 * Annotated mutex / condition-variable wrappers.
 *
 * libstdc++'s std::mutex carries no thread-safety attributes, so
 * clang's analysis cannot see through it. These thin wrappers add
 * the PCNN_CAPABILITY / PCNN_ACQUIRE / PCNN_RELEASE annotations
 * (common/thread_annotations.hh) while compiling to the exact same
 * code: every method is an inline forward to the std type.
 *
 * Usage mirrors the std types:
 *
 *   Mutex mu;
 *   int value PCNN_GUARDED_BY(mu);
 *   { MutexLock lk(mu); value++; }            // lock_guard
 *   { UniqueLock lk(mu); cv.wait(lk); ... }   // unique_lock + CV
 *
 * UniqueLock supports unlock()/lock() mid-scope (the analyzer
 * tracks the state), which popBatch uses to drop the lock before
 * notifying. CondVar::wait takes the UniqueLock wrapper and
 * re-establishes the "held" claim on return like std::condition_
 * variable does. Predicate waits are written as explicit while
 * loops at the call site so the GUARDED_BY reads inside the
 * predicate stay inside a context the analyzer understands
 * (attributes cannot attach to lambdas).
 */

#ifndef PCNN_COMMON_MUTEX_HH
#define PCNN_COMMON_MUTEX_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace pcnn {

/** std::mutex with capability annotations. */
class PCNN_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() PCNN_ACQUIRE()
    {
        mu.lock();
    }

    void
    unlock() PCNN_RELEASE()
    {
        mu.unlock();
    }

    /** The wrapped std::mutex, for std APIs that need the real type. */
    std::mutex &
    native()
    {
        return mu;
    }

  private:
    std::mutex mu;
};

/** std::lock_guard over Mutex: holds the lock for the full scope. */
class PCNN_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex &m) PCNN_ACQUIRE(m) : mu(m) { mu.lock(); }
    ~MutexLock() PCNN_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

/**
 * std::unique_lock over Mutex: releasable and re-acquirable within
 * the scope, and the handle CondVar waits on.
 */
class PCNN_SCOPED_CAPABILITY UniqueLock {
  public:
    explicit UniqueLock(Mutex &m) PCNN_ACQUIRE(m) : lk(m.native()) {}

    /** Unlocks on destruction only if still held. */
    ~UniqueLock() PCNN_RELEASE()
    {
        // std::unique_lock already skips the unlock when released;
        // the annotation tells the analyzer the capability is gone.
    }

    void
    unlock() PCNN_RELEASE()
    {
        lk.unlock();
    }

    void
    lock() PCNN_ACQUIRE()
    {
        lk.lock();
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk;
};

/**
 * std::condition_variable that waits on a UniqueLock. The guarded
 * Mutex is passed alongside the lock so the analyzer can match the
 * REQUIRES claim against the capability the caller actually holds
 * (it matches capability expressions syntactically, so the
 * requirement must name the caller's mutex, not a field of the
 * lock handle).
 */
class CondVar {
  public:
    /** Caller must hold `m` via `lk`; holds it again on return. */
    void
    wait(UniqueLock &lk, Mutex &m) PCNN_REQUIRES(m)
    {
        (void)m;
        cv.wait(lk.lk);
    }

    /** Timed wait; returns cv_status::timeout on budget expiry. */
    template <class Rep, class Period>
    std::cv_status
    waitFor(UniqueLock &lk, Mutex &m,
            const std::chrono::duration<Rep, Period> &budget)
        PCNN_REQUIRES(m)
    {
        (void)m;
        return cv.wait_for(lk.lk, budget);
    }

    void
    notifyOne()
    {
        cv.notify_one();
    }

    void
    notifyAll()
    {
        cv.notify_all();
    }

  private:
    std::condition_variable cv;
};

} // namespace pcnn

#endif // PCNN_COMMON_MUTEX_HH
