/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic component in the library (synthetic data, weight
 * initialization, noise injection) draws from an explicitly seeded
 * Rng so that tests and benches are reproducible run-to-run.
 */

#ifndef PCNN_COMMON_RANDOM_HH
#define PCNN_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace pcnn {

/**
 * Small, fast, seedable PRNG (xoshiro256**).
 *
 * Not cryptographic; chosen for speed, tiny state, and full
 * reproducibility across platforms (unlike std::mt19937 distribution
 * adaptors, all derived draws here are implementation-defined-free).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (splitmix64-expanded). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box–Muller, cached pair). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Fisher–Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child stream (for parallel components). */
    Rng fork();

  private:
    std::uint64_t s[4];
    double cachedGaussian;
    bool hasCachedGaussian;
};

} // namespace pcnn

#endif // PCNN_COMMON_RANDOM_HH
