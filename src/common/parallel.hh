/**
 * @file
 * Deterministic CPU thread pool for the functional substrate.
 *
 * Every CPU hot path (SGEMM, im2col, layer batch loops, the offline
 * compiler's candidate sweeps) fans work out through parallelFor().
 * The partition is *static*: [0, n) is split into threadCount()
 * contiguous chunks whose boundaries depend only on n and the
 * configured thread count — never on timing — and every output cell
 * is written by exactly one chunk with an unchanged per-cell
 * accumulation order. Results are therefore bitwise identical across
 * thread counts, which keeps every bench reproducible (DESIGN.md §5).
 *
 * The pool is sized by the PCNN_THREADS environment variable
 * (default: std::thread::hardware_concurrency). Nested parallelFor
 * calls execute inline on the calling worker, so composed parallel
 * code (e.g. a batch-parallel conv layer whose SGEMM is itself
 * parallel) cannot deadlock or oversubscribe.
 *
 * Inter-op composition: threads that are themselves replicas of a
 * concurrent server (serve/ worker threads) install a per-thread
 * ScopedLaneLimit so the PCNN_THREADS budget is *partitioned* across
 * them instead of multiplied. threadCount() reports the capped value
 * on such a thread, and a limit of 1 makes every parallelFor run
 * inline with no pool traffic at all. Because results are bitwise
 * identical across lane counts, partitioning never changes outputs.
 */

#ifndef PCNN_COMMON_PARALLEL_HH
#define PCNN_COMMON_PARALLEL_HH

#include <cstddef>
#include <type_traits>
#include <utility>

namespace pcnn {

/**
 * Chunk body: half-open index range plus the executing lane id.
 *
 * A non-owning callable reference (two raw pointers), not a
 * std::function: parallelFor sits on the inference hot path, and a
 * std::function built from a lambda whose captures exceed the
 * small-buffer optimization heap-allocates on every call —
 * measurable per-layer allocator traffic that the zero-steady-state-
 * allocation invariant (DESIGN.md §5h) forbids. The referenced
 * callable must outlive the call, which parallelFor guarantees by
 * executing synchronously.
 */
class ParallelBody
{
  public:
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::remove_cv_t<std::remove_reference_t<F>>,
                  ParallelBody>>>
    ParallelBody(F &&f) // NOLINT: implicit by design, like function_ref
        : obj(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          call([](void *o, std::size_t begin, std::size_t end,
                  std::size_t tid) {
              (*static_cast<std::remove_reference_t<F> *>(o))(
                  begin, end, tid);
          })
    {
    }

    void
    operator()(std::size_t begin, std::size_t end,
               std::size_t tid) const
    {
        call(obj, begin, end, tid);
    }

  private:
    void *obj;
    void (*call)(void *, std::size_t, std::size_t, std::size_t);
};

/**
 * Configured worker-lane count (>= 1). First call reads PCNN_THREADS
 * (clamped to [1, 256]); an unset or unparsable value falls back to
 * hardware_concurrency.
 */
std::size_t threadCount();

/**
 * Override the lane count at run time (used by tests and benches to
 * compare thread counts inside one process). n == 0 restores the
 * PCNN_THREADS / hardware default. Must not be called from inside a
 * parallelFor body.
 */
void setThreadCount(std::size_t n);

/**
 * True while the calling thread is executing a parallelFor body;
 * further parallelFor calls from it run inline (serial).
 */
bool inParallelRegion();

/**
 * Lane id of the calling thread: 0 on the main thread, the worker's
 * lane otherwise. Always < threadCount(). Useful for indexing
 * per-lane scratch from code that may run inside a region.
 */
std::size_t currentLane();

/**
 * Run fn over the static partition of [0, n): lane t receives
 * [n*t/T, n*(t+1)/T) where T = threadCount(). Blocks until every
 * chunk has finished; rethrows the first chunk exception. Runs inline
 * when n <= 1, T == 1, or the caller is already inside a region.
 */
void parallelFor(std::size_t n, const ParallelBody &fn);

/**
 * RAII per-thread cap on the lanes parallelFor may use from the
 * calling thread (inter-op/intra-op composition, DESIGN.md §5f):
 * while alive, threadCount() returns min(pool lanes, n) on this
 * thread and dispatches partition work accordingly. A limit of 1
 * makes every parallelFor from this thread run inline. n == 0 means
 * "no cap". Limits nest (the innermost wins until destroyed) and
 * never affect other threads.
 */
class ScopedLaneLimit
{
  public:
    explicit ScopedLaneLimit(std::size_t n);
    ~ScopedLaneLimit();

    ScopedLaneLimit(const ScopedLaneLimit &) = delete;
    ScopedLaneLimit &operator=(const ScopedLaneLimit &) = delete;

  private:
    std::size_t prev;
};

} // namespace pcnn

#endif // PCNN_COMMON_PARALLEL_HH
