#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace pcnn {

namespace {
LogLevel globalLevel = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace pcnn
