/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs), fatal() for user errors that make it
 * impossible to continue, warn()/inform() for advisory messages that
 * never stop execution.
 */

#ifndef PCNN_COMMON_LOGGING_HH
#define PCNN_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace pcnn {

/** Verbosity levels for advisory messages. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Process-wide verbosity; benches lower it, tests silence it. */
LogLevel logLevel();

/** Set the process-wide verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

/** Print and abort(); used for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print and exit(1); used for unrecoverable user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr (never stops execution). */
void warnImpl(const std::string &msg);

/** Print an informational message to stdout. */
void informImpl(const std::string &msg);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
fmt(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail
} // namespace pcnn

/** Abort with a message; for conditions that indicate a library bug. */
#define pcnn_panic(...) \
    ::pcnn::detail::panicImpl(__FILE__, __LINE__, \
                              ::pcnn::detail::fmt(__VA_ARGS__))

/** Exit with a message; for conditions that are the caller's fault. */
#define pcnn_fatal(...) \
    ::pcnn::detail::fatalImpl(__FILE__, __LINE__, \
                              ::pcnn::detail::fmt(__VA_ARGS__))

/** Non-fatal warning. */
#define pcnn_warn(...) \
    ::pcnn::detail::warnImpl(::pcnn::detail::fmt(__VA_ARGS__))

/** Informational status message (suppressed when LogLevel::Quiet). */
#define pcnn_inform(...) \
    ::pcnn::detail::informImpl(::pcnn::detail::fmt(__VA_ARGS__))

/** Cheap always-on invariant check with a formatted message. */
#define pcnn_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            pcnn_panic("assertion failed: " #cond " — ", \
                       ::pcnn::detail::fmt(__VA_ARGS__)); \
        } \
    } while (0)

#endif // PCNN_COMMON_LOGGING_HH
