/**
 * @file
 * Small statistics helpers shared by the trainer, the tuner, and the
 * bench harnesses.
 */

#ifndef PCNN_COMMON_STATS_HH
#define PCNN_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace pcnn {

/** Arithmetic mean. @pre v non-empty */
double mean(const std::vector<double> &v);

/** Population standard deviation. @pre v non-empty */
double stddev(const std::vector<double> &v);

/** Geometric mean. @pre v non-empty, all elements > 0 */
double geomean(const std::vector<double> &v);

/** Minimum element. @pre v non-empty */
double minOf(const std::vector<double> &v);

/** Maximum element. @pre v non-empty */
double maxOf(const std::vector<double> &v);

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 * Numerically stable for long runs of simulator samples.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return n; }

    /** Mean of samples seen; 0 when empty. */
    double mean() const { return n ? mu : 0.0; }

    /** Population variance; 0 when fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen; 0 when empty. */
    double min() const { return n ? lo : 0.0; }

    /** Largest sample seen; 0 when empty. */
    double max() const { return n ? hi : 0.0; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace pcnn

#endif // PCNN_COMMON_STATS_HH
