/**
 * @file
 * Source-level discipline tags read by tools/pcnn_analyze.
 *
 * The macros expand to nothing: they exist so the analyzer (and the
 * reader) can see which functions carry extra obligations. Place a
 * tag on its own line immediately above the function's return type:
 *
 *   PCNN_HOT_PATH
 *   void
 *   FcLayer::forwardImpl(...)
 *
 * PCNN_HOT_PATH — the function is on the steady-state inference
 * path. pcnn_analyze walks its transitive (name-level) callees and
 * rejects any reachable allocating primitive — operator new, malloc,
 * container growth (push_back/resize/reserve/...), container or
 * Tensor construction — unless the site carries an explicit
 * exemption:
 *
 *   // pcnn-analyze: allow(hot-path-alloc): <why this is safe>
 *
 * Legitimate exemptions are grow-only scratch (capacity is reused
 * once warm), generation-gated repacks (run once per weight update),
 * and request plumbing outside the probed envelope. The runtime
 * cross-check (common/alloc_count.hh probes in tests and benches)
 * keeps the whitelist honest: a wrongly-allowed site shows up as a
 * non-zero steady-state allocation count.
 *
 * PCNN_BINARY_READER — the function parses untrusted length-driven
 * binary input. pcnn_analyze requires a validation (PCNN_CHECK /
 * PCNN_DCHECK or an early-failure guard) between function entry —
 * or the previous length-driven read — and each read.
 */

#ifndef PCNN_COMMON_TAGS_HH
#define PCNN_COMMON_TAGS_HH

#define PCNN_HOT_PATH
#define PCNN_BINARY_READER

#endif // PCNN_COMMON_TAGS_HH
