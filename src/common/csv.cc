#include "common/csv.hh"

#include <fstream>

#include "common/logging.hh"

namespace pcnn {

CsvWriter::CsvWriter(std::vector<std::string> hdr)
    : header(std::move(hdr))
{
    pcnn_assert(!header.empty(), "csv needs at least one column");
}

void
CsvWriter::addRow(const std::vector<std::string> &row)
{
    pcnn_assert(row.size() == header.size(),
                "csv row width mismatch: ", row.size(), " vs ",
                header.size());
    rows.push_back(row);
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    return out + "\"";
}

std::string
CsvWriter::render() const
{
    auto join = [](const std::vector<std::string> &cells) {
        std::string s;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                s += ",";
            s += escape(cells[i]);
        }
        return s + "\n";
    };
    std::string out = join(header);
    for (const auto &row : rows)
        out += join(row);
    return out;
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << render();
    return static_cast<bool>(f);
}

} // namespace pcnn
