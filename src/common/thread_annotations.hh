/**
 * @file
 * Clang Thread Safety Analysis annotation macros (DESIGN.md §5h).
 *
 * Wrappers over clang's `capability` attribute family, compiled to
 * nothing on every other compiler (gcc builds the same sources
 * warning-free). The clang CI leg compiles the annotated targets
 * with -Wthread-safety -Werror, turning the locking conventions the
 * serving engine and thread pool rely on into build failures:
 *
 *  - every field a mutex protects carries PCNN_GUARDED_BY(mu), so a
 *    read or write outside the lock is a compile error;
 *  - functions that expect the caller to hold (or not hold) a lock
 *    say so with PCNN_REQUIRES / PCNN_EXCLUDES;
 *  - lock wrappers themselves (common/mutex.hh) are annotated with
 *    PCNN_ACQUIRE / PCNN_RELEASE so the analyzer tracks them.
 *
 * The annotations are macros — not a library — so headers stay
 * dependency-free and the no-op expansion keeps non-clang builds
 * byte-identical. Companion static checking that does not need clang
 * at all (hot-path allocation closure, reader check discipline,
 * mutex/GUARDED_BY pairing) lives in tools/pcnn_analyze.cc.
 */

#ifndef PCNN_COMMON_THREAD_ANNOTATIONS_HH
#define PCNN_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PCNN_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif

#ifndef PCNN_THREAD_ANNOTATION_
#define PCNN_THREAD_ANNOTATION_(x)
#endif

/** Type declares a capability (a lock). */
#define PCNN_CAPABILITY(name) \
    PCNN_THREAD_ANNOTATION_(capability(name))

/** RAII type that acquires a capability for its lifetime. */
#define PCNN_SCOPED_CAPABILITY \
    PCNN_THREAD_ANNOTATION_(scoped_lockable)

/** Field may only be touched while `mu` is held. */
#define PCNN_GUARDED_BY(mu) PCNN_THREAD_ANNOTATION_(guarded_by(mu))

/** Pointee may only be touched while `mu` is held. */
#define PCNN_PT_GUARDED_BY(mu) \
    PCNN_THREAD_ANNOTATION_(pt_guarded_by(mu))

/** Caller must hold the listed capabilities. */
#define PCNN_REQUIRES(...) \
    PCNN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define PCNN_EXCLUDES(...) \
    PCNN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Function acquires the capability (and does not release it). */
#define PCNN_ACQUIRE(...) \
    PCNN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define PCNN_RELEASE(...) \
    PCNN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function returns a reference to the given capability. */
#define PCNN_RETURN_CAPABILITY(x) \
    PCNN_THREAD_ANNOTATION_(lock_returned(x))

/** Escape hatch: body is exempt from the analysis (say why). */
#define PCNN_NO_THREAD_SAFETY_ANALYSIS \
    PCNN_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif // PCNN_COMMON_THREAD_ANNOTATIONS_HH
