#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace pcnn {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedGaussian(0.0), hasCachedGaussian(false)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    pcnn_assert(n > 0, "Rng::below needs n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % n);
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    pcnn_assert(lo <= hi, "Rng::range needs lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace pcnn
