/**
 * @file
 * Contract and invariant macros.
 *
 * Two families, both printing a formatted message through the
 * logging layer and aborting via panic (so sanitizer builds, death
 * tests and core dumps all see the failure point):
 *
 *  - PCNN_CHECK / PCNN_CHECK_EQ|NE|LT|LE|GT|GE — always-on
 *    contracts. Use for preconditions on API boundaries, resource
 *    and accounting invariants, and anything whose cost is dwarfed
 *    by the work it guards.
 *
 *  - PCNN_DCHECK / PCNN_DCHECK_EQ|NE|LT|LE|GT|GE — debug contracts
 *    for per-element hot paths (Tensor::at bounds, inner-loop
 *    invariants). Compiled out unless PCNN_ENABLE_DCHECKS is
 *    defined; the CMake option PCNN_DCHECKS (default ON) controls
 *    it, so only an explicit -DPCNN_DCHECKS=OFF release build drops
 *    them. Disabled checks still parse their arguments, so code
 *    referenced only from a DCHECK cannot rot.
 *
 * The comparison forms evaluate each operand exactly once and print
 * both values on failure, e.g.
 *
 *     PCNN_CHECK_LT(level, entries.size(), "tuning level");
 *       -> "check failed: level < entries.size() (7 vs 4) — tuning level"
 *
 * Operands of the comparison forms must be ostream-streamable; use
 * plain PCNN_CHECK for types that are not.
 */

#ifndef PCNN_COMMON_CHECK_HH
#define PCNN_COMMON_CHECK_HH

#include "common/logging.hh"

/** Always-on contract with a formatted message. */
#define PCNN_CHECK(cond, ...) \
    do { \
        if (!(cond)) { \
            ::pcnn::detail::panicImpl( \
                __FILE__, __LINE__, \
                ::pcnn::detail::fmt("check failed: " #cond \
                                    __VA_OPT__(" — ", ) __VA_ARGS__)); \
        } \
    } while (0)

/** Shared implementation of the binary comparison contracts. */
#define PCNN_CHECK_OP_(op, a, b, ...) \
    do { \
        const auto &pcnn_chk_a_ = (a); \
        const auto &pcnn_chk_b_ = (b); \
        if (!(pcnn_chk_a_ op pcnn_chk_b_)) { \
            ::pcnn::detail::panicImpl( \
                __FILE__, __LINE__, \
                ::pcnn::detail::fmt( \
                    "check failed: " #a " " #op " " #b " (", \
                    pcnn_chk_a_, " vs ", pcnn_chk_b_, ")" \
                    __VA_OPT__(" — ", ) __VA_ARGS__)); \
        } \
    } while (0)

#define PCNN_CHECK_EQ(a, b, ...) PCNN_CHECK_OP_(==, a, b, __VA_ARGS__)
#define PCNN_CHECK_NE(a, b, ...) PCNN_CHECK_OP_(!=, a, b, __VA_ARGS__)
#define PCNN_CHECK_LT(a, b, ...) PCNN_CHECK_OP_(<, a, b, __VA_ARGS__)
#define PCNN_CHECK_LE(a, b, ...) PCNN_CHECK_OP_(<=, a, b, __VA_ARGS__)
#define PCNN_CHECK_GT(a, b, ...) PCNN_CHECK_OP_(>, a, b, __VA_ARGS__)
#define PCNN_CHECK_GE(a, b, ...) PCNN_CHECK_OP_(>=, a, b, __VA_ARGS__)

#ifdef PCNN_ENABLE_DCHECKS

#define PCNN_DCHECK(cond, ...) PCNN_CHECK(cond, __VA_ARGS__)
#define PCNN_DCHECK_EQ(a, b, ...) PCNN_CHECK_EQ(a, b, __VA_ARGS__)
#define PCNN_DCHECK_NE(a, b, ...) PCNN_CHECK_NE(a, b, __VA_ARGS__)
#define PCNN_DCHECK_LT(a, b, ...) PCNN_CHECK_LT(a, b, __VA_ARGS__)
#define PCNN_DCHECK_LE(a, b, ...) PCNN_CHECK_LE(a, b, __VA_ARGS__)
#define PCNN_DCHECK_GT(a, b, ...) PCNN_CHECK_GT(a, b, __VA_ARGS__)
#define PCNN_DCHECK_GE(a, b, ...) PCNN_CHECK_GE(a, b, __VA_ARGS__)

#else // !PCNN_ENABLE_DCHECKS

/** Disabled form: never evaluates, but keeps the operands compiling. */
#define PCNN_DCHECK_NOP_(cond) \
    do { \
        if (false) { \
            (void)(cond); \
        } \
    } while (0)

#define PCNN_DCHECK(cond, ...) PCNN_DCHECK_NOP_(cond)
#define PCNN_DCHECK_EQ(a, b, ...) PCNN_DCHECK_NOP_((a) == (b))
#define PCNN_DCHECK_NE(a, b, ...) PCNN_DCHECK_NOP_((a) != (b))
#define PCNN_DCHECK_LT(a, b, ...) PCNN_DCHECK_NOP_((a) < (b))
#define PCNN_DCHECK_LE(a, b, ...) PCNN_DCHECK_NOP_((a) <= (b))
#define PCNN_DCHECK_GT(a, b, ...) PCNN_DCHECK_NOP_((a) > (b))
#define PCNN_DCHECK_GE(a, b, ...) PCNN_DCHECK_NOP_((a) >= (b))

#endif // PCNN_ENABLE_DCHECKS

#endif // PCNN_COMMON_CHECK_HH
