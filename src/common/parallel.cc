#include "common/parallel.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/mutex.hh"

namespace pcnn {

namespace {

thread_local std::size_t tls_lane = 0;
thread_local bool tls_in_region = false;
/// per-thread lane cap installed by ScopedLaneLimit; 0 = uncapped
thread_local std::size_t tls_lane_limit = 0;

std::size_t
defaultThreads()
{
    if (const char *env = std::getenv("PCNN_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return std::min<std::size_t>(v, 256);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Lazily-started worker pool. Lane 0 is the dispatching thread; lanes
 * 1..T-1 are persistent workers woken per dispatch by a generation
 * counter. One dispatch is in flight at a time (dispatchMutex).
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    std::size_t
    lanes() PCNN_EXCLUDES(configMutex)
    {
        MutexLock lk(configMutex);
        return nLanes;
    }

    void
    resize(std::size_t n)
        PCNN_EXCLUDES(dispatchMutex, configMutex, stateMutex)
    {
        pcnn_assert(!tls_in_region,
                    "setThreadCount inside a parallel region");
        MutexLock dlk(dispatchMutex);
        MutexLock lk(configMutex);
        if (n == 0)
            n = defaultThreads();
        if (n == nLanes)
            return;
        stopWorkers();
        nLanes = n;
    }

    void
    run(std::size_t n, const ParallelBody &fn)
        PCNN_EXCLUDES(dispatchMutex, configMutex, stateMutex)
    {
        // A lane cap of 1 short-circuits before touching any shared
        // pool state: capped serving workers pay zero contention.
        std::size_t lanes_now;
        if (tls_lane_limit == 1) {
            lanes_now = 1;
        } else {
            MutexLock lk(configMutex);
            lanes_now = nLanes;
            if (tls_lane_limit != 0)
                lanes_now = std::min(lanes_now, tls_lane_limit);
        }
        if (tls_in_region || lanes_now == 1 || n <= 1) {
            // Inline (possibly nested) execution on the calling lane.
            const bool outer = !tls_in_region;
            tls_in_region = true;
            try {
                fn(0, n, tls_lane);
            } catch (...) {
                tls_in_region = !outer;
                throw;
            }
            tls_in_region = !outer;
            return;
        }

        MutexLock dlk(dispatchMutex);
        // nLanes belongs to configMutex: re-read it under its own
        // lock (dispatchMutex excludes resize(), so the value stays
        // stable for the whole dispatch) and re-apply the per-thread
        // cap to the fresh value.
        std::size_t lanes;
        {
            MutexLock clk(configMutex);
            lanes = nLanes;
        }
        if (tls_lane_limit != 0)
            lanes = std::max<std::size_t>(
                1, std::min(lanes, tls_lane_limit));
        ensureWorkers(lanes);
        {
            MutexLock slk(stateMutex);
            job = &fn;
            jobSize = n;
            jobLanes = lanes;
            pendingLanes = lanes - 1;
            firstError = nullptr;
            ++generation;
        }
        wake.notifyAll();

        // Lane 0 executes its own chunk while the workers run theirs.
        std::exception_ptr mainError;
        try {
            runChunk(fn, n, lanes, 0);
        } catch (...) {
            mainError = std::current_exception();
            tls_in_region = false;
        }

        UniqueLock lk(stateMutex);
        while (pendingLanes != 0)
            done.wait(lk, stateMutex);
        job = nullptr;
        if (mainError)
            std::rethrow_exception(mainError);
        if (firstError)
            std::rethrow_exception(firstError);
    }

  private:
    Pool() = default;

    ~Pool()
    {
        MutexLock dlk(dispatchMutex);
        stopWorkers();
    }

    static void
    runChunk(const ParallelBody &fn, std::size_t n, std::size_t lanes,
             std::size_t lane)
    {
        const std::size_t begin = n * lane / lanes;
        const std::size_t end = n * (lane + 1) / lanes;
        if (begin >= end)
            return;
        tls_in_region = true;
        fn(begin, end, lane);
        tls_in_region = false;
    }

    void
    ensureWorkers(std::size_t lanes_now)
        PCNN_REQUIRES(dispatchMutex) PCNN_EXCLUDES(stateMutex)
    {
        if (workers.size() + 1 == lanes_now)
            return;
        for (std::size_t lane = workers.size() + 1; lane < lanes_now;
             ++lane) {
            workers.emplace_back([this, lane] { workerLoop(lane); });
        }
    }

    void
    stopWorkers()
        PCNN_REQUIRES(dispatchMutex) PCNN_EXCLUDES(stateMutex)
    {
        {
            MutexLock lk(stateMutex);
            stopping = true;
            ++generation;
        }
        wake.notifyAll();
        for (auto &w : workers)
            w.join();
        workers.clear();
        MutexLock lk(stateMutex);
        stopping = false;
    }

    void
    workerLoop(std::size_t lane) PCNN_EXCLUDES(stateMutex)
    {
        tls_lane = lane;
        std::uint64_t seen = 0;
        UniqueLock lk(stateMutex);
        for (;;) {
            while (!stopping && generation == seen)
                wake.wait(lk, stateMutex);
            seen = generation;
            if (stopping)
                return;
            const ParallelBody *fn = job;
            const std::size_t n = jobSize;
            const std::size_t lanes = jobLanes;
            if (fn == nullptr || lane >= lanes)
                continue;
            lk.unlock();
            std::exception_ptr err;
            try {
                runChunk(*fn, n, lanes, lane);
            } catch (...) {
                err = std::current_exception();
                tls_in_region = false;
            }
            lk.lock();
            if (err && !firstError)
                firstError = err;
            if (--pendingLanes == 0)
                done.notifyOne();
        }
    }

    // Serializes top-level dispatches from user threads; also the
    // capability guarding the worker vector (workers are started and
    // joined only while a dispatch or resize holds it).
    Mutex dispatchMutex;
    // Guards the configured lane count.
    Mutex configMutex;
    std::size_t nLanes PCNN_GUARDED_BY(configMutex) =
        defaultThreads();
    std::vector<std::thread> workers PCNN_GUARDED_BY(dispatchMutex);

    // Dispatch state, guarded by stateMutex.
    Mutex stateMutex;
    CondVar wake, done;
    std::uint64_t generation PCNN_GUARDED_BY(stateMutex) = 0;
    bool stopping PCNN_GUARDED_BY(stateMutex) = false;
    const ParallelBody *job PCNN_GUARDED_BY(stateMutex) = nullptr;
    std::size_t jobSize PCNN_GUARDED_BY(stateMutex) = 0;
    std::size_t jobLanes PCNN_GUARDED_BY(stateMutex) = 0;
    std::size_t pendingLanes PCNN_GUARDED_BY(stateMutex) = 0;
    std::exception_ptr firstError PCNN_GUARDED_BY(stateMutex);
};

} // namespace

std::size_t
threadCount()
{
    if (tls_lane_limit == 1)
        return 1;
    const std::size_t base = Pool::instance().lanes();
    if (tls_lane_limit != 0)
        return std::max<std::size_t>(1,
                                     std::min(base, tls_lane_limit));
    return base;
}

ScopedLaneLimit::ScopedLaneLimit(std::size_t n) : prev(tls_lane_limit)
{
    // Nesting composes as the tighter of the two caps: a region that
    // was already limited must not widen inside.
    if (n == 0)
        return;
    tls_lane_limit = prev == 0 ? n : std::min(prev, n);
}

ScopedLaneLimit::~ScopedLaneLimit()
{
    tls_lane_limit = prev;
}

void
setThreadCount(std::size_t n)
{
    Pool::instance().resize(n);
}

bool
inParallelRegion()
{
    return tls_in_region;
}

std::size_t
currentLane()
{
    return tls_lane;
}

void
parallelFor(std::size_t n, const ParallelBody &fn)
{
    if (n == 0)
        return;
    // pcnn-analyze: allow(hot-path-alloc): the name-level call graph
    // would merge every ::run overload at this edge; Pool dispatch
    // itself is steady-state alloc-free — workers are spawned once by
    // ensureWorkers and the body travels by non-owning function ref —
    // and the runtime probe (test_allocprobe, PCNN_THREADS 1/2/4)
    // verifies that end to end.
    Pool::instance().run(n, fn);
}

} // namespace pcnn
