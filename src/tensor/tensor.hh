/**
 * @file
 * Dense 4-D float tensor in NCHW layout.
 *
 * This is the functional substrate for the CNN library: all layer
 * math operates on Tensor. The GPU-side analytical models never touch
 * Tensor data — they only consume layer *shapes* — so this class
 * optimizes for clarity over peak CPU throughput.
 */

#ifndef PCNN_TENSOR_TENSOR_HH
#define PCNN_TENSOR_TENSOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.hh"

namespace pcnn {

/** Shape of a 4-D NCHW tensor. Any dimension may be 1. */
struct Shape
{
    std::size_t n = 1; ///< batch
    std::size_t c = 1; ///< channels
    std::size_t h = 1; ///< height
    std::size_t w = 1; ///< width

    /** Total element count. */
    std::size_t size() const { return n * c * h * w; }

    /** Element count of one batch item. */
    std::size_t itemSize() const { return c * h * w; }

    bool operator==(const Shape &o) const = default;

    /** Human-readable "[n,c,h,w]". */
    std::string str() const;
};

/**
 * Dense float tensor, NCHW layout, value-semantic.
 *
 * Invariant: the accessible storage holds exactly shape.size()
 * floats. Storage is normally owned; bindView() switches a tensor
 * into a non-owning view over caller-managed memory (the compiled
 * graph's arena slices, DESIGN.md §5j). Copying a view deep-copies
 * its contents into owned storage, so views never escape by value.
 */
class Tensor
{
  public:
    /** Empty 1x1x1x1 tensor holding a single zero. */
    Tensor();

    /** Zero-filled tensor of the given shape. */
    explicit Tensor(Shape s);

    /** Convenience constructor from dimensions. */
    Tensor(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

    Tensor(const Tensor &o);
    Tensor &operator=(const Tensor &o);
    Tensor(Tensor &&o) noexcept;
    Tensor &operator=(Tensor &&o) noexcept;
    ~Tensor() = default;

    /** Shape accessor. */
    const Shape &shape() const { return shp; }

    /** Total element count. */
    std::size_t size() const { return shp.size(); }

    /**
     * Turn this tensor into a non-owning view of `cap` floats at
     * `p`, shaped `s` (s.size() <= cap). The bytes are NOT zeroed:
     * a view is a window onto storage someone else plans — binding
     * must not disturb data other views already wrote there. Any
     * owned storage is released. resize() on a view only re-shapes
     * within `cap` (again without zero-filling), so views must only
     * receive outputs of operations that fully overwrite their
     * destination — every inference-mode layer forward does.
     */
    void bindView(float *p, std::size_t cap, Shape s);

    /** Release a view binding; back to an owned 1x1x1x1 zero. */
    void unbind();

    /** True when this tensor is a non-owning view. */
    bool isView() const { return ext != nullptr; }

    /** Storage capacity in floats (owned buffer or bound window). */
    std::size_t capacityFloats() const
    {
        return ext != nullptr ? extCap : buf.capacity();
    }

    /** Mutable element access with bounds assertions. */
    float &at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);

    /** Const element access with bounds assertions. */
    float at(std::size_t n, std::size_t c, std::size_t h,
             std::size_t w) const;

    /** Raw flat access (row-major over NCHW). */
    float &operator[](std::size_t i) { return data()[i]; }

    /** Raw flat const access. */
    float operator[](std::size_t i) const { return data()[i]; }

    /** Raw pointer to the first element. */
    float *data() { return ext != nullptr ? ext : buf.data(); }

    /** Const raw pointer to the first element. */
    const float *data() const
    {
        return ext != nullptr ? ext : buf.data();
    }

    /** Set every element to v. */
    void fill(float v);

    /** Fill from N(mean, stddev) using the caller's RNG. */
    void fillGaussian(Rng &rng, float mean, float stddev);

    /** Fill from U[lo, hi) using the caller's RNG. */
    void fillUniform(Rng &rng, float lo, float hi);

    /**
     * Reinterpret the buffer with a new shape of identical size.
     * @pre s.size() == size()
     */
    void reshape(Shape s);

    /**
     * Resize and zero; prior contents are discarded. On a view the
     * shape changes within the bound capacity and the bytes are left
     * untouched (see bindView).
     */
    void resize(Shape s);

    /** Extract batch item i as an n=1 tensor (copies). */
    Tensor item(std::size_t i) const;

    /** Sum of all elements. */
    double sum() const;

    /** Max absolute difference against another same-shape tensor. */
    double maxAbsDiff(const Tensor &o) const;

  private:
    Shape shp;
    std::vector<float> buf;
    float *ext = nullptr;   ///< view storage; owned when null
    std::size_t extCap = 0; ///< view capacity in floats
};

} // namespace pcnn

#endif // PCNN_TENSOR_TENSOR_HH
