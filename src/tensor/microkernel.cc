#include "tensor/microkernel.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PCNN_X86_TIERS 1
#include <immintrin.h>
#endif

#if defined(__ARM_NEON)
#define PCNN_NEON_TIER 1
#include <arm_neon.h>
#endif

namespace pcnn {

namespace {

// ------------------------------------------------------------------
// Portable tier: the original Vec8 8x8 kernel (PR 1). The explicit
// vector type pins the compiler to lane-wise (j-direction)
// vectorization; all traffic goes through memcpy to dodge
// strict-aliasing UB (PR 2). This tier builds on every compiler we
// support and is the reference the wider tiers are toleranced
// against.
// ------------------------------------------------------------------

constexpr std::size_t kPortMR = 8;
constexpr std::size_t kPortNR = 8;

#if defined(__GNUC__) || defined(__clang__)
#define PCNN_HAVE_VEC_EXT 1
typedef float Vec8 __attribute__((vector_size(kPortNR * sizeof(float))));

inline Vec8
loadVec8(const float *p)
{
    Vec8 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeVec8(float *p, const Vec8 &v)
{
    std::memcpy(p, &v, sizeof(v));
}
#endif

void
microFullPortable(std::size_t k, const float *a, std::size_t lda,
                  const float *b, std::size_t ldb, float *c,
                  std::size_t ldc, std::size_t pf)
{
#ifdef PCNN_HAVE_VEC_EXT
    Vec8 acc[kPortMR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        if (pf != 0 && p + pf < k)
            __builtin_prefetch(b + (p + pf) * ldb);
        const Vec8 bv = loadVec8(b + p * ldb);
        for (std::size_t i = 0; i < kPortMR; ++i)
            acc[i] += a[i * lda + p] * bv;
    }
    for (std::size_t i = 0; i < kPortMR; ++i)
        storeVec8(c + i * ldc, loadVec8(c + i * ldc) + acc[i]);
#else
    float acc[kPortMR][kPortNR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        for (std::size_t i = 0; i < kPortMR; ++i) {
            const float av = a[i * lda + p];
            for (std::size_t j = 0; j < kPortNR; ++j)
                acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < kPortMR; ++i)
        for (std::size_t j = 0; j < kPortNR; ++j)
            c[i * ldc + j] += acc[i][j];
    (void)pf;
#endif
}

// ------------------------------------------------------------------
// AVX2 tier: 6x16 FMA over ymm. 12 accumulator registers + 2 B
// registers + 1 broadcast = 15 of 16 architectural ymm, and the
// 6-broadcast/2-load k-step keeps the FMA ports (12 FMAs -> 6
// cycles) ahead of the load ports (8 loads -> 4 cycles). Compiled
// via a per-function target attribute so the binary stays runnable
// on non-AVX2 hosts; dispatch guards execution behind cpuid.
// ------------------------------------------------------------------

#ifdef PCNN_X86_TIERS

__attribute__((target("avx2,fma"))) void
microFullAvx2(std::size_t k, const float *a, std::size_t lda,
              const float *b, std::size_t ldb, float *c,
              std::size_t ldc, std::size_t pf)
{
    __m256 acc[6][2];
    for (auto &row : acc)
        row[0] = row[1] = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        if (pf != 0 && p + pf < k)
            _mm_prefetch(reinterpret_cast<const char *>(b + (p + pf) * ldb),
                         _MM_HINT_T0);
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (std::size_t i = 0; i < 6; ++i) {
            const __m256 av = _mm256_set1_ps(a[i * lda + p]);
            acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
        }
    }
    for (std::size_t i = 0; i < 6; ++i) {
        float *cr = c + i * ldc;
        _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr),
                                           acc[i][0]));
        _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8),
                                               acc[i][1]));
    }
}

// ------------------------------------------------------------------
// AVX-512 tier: 8x32 FMA over zmm. 16 accumulators + 2 B + 1
// broadcast of 32 zmm; the 8-broadcast/2-load k-step (10 loads -> 5
// cycles) keeps the 16 FMAs (8 cycles on 2 ports) compute-bound,
// and nr = 32 divides the 16x16 feature maps the mini models
// produce, so edge tiles stay rare.
// ------------------------------------------------------------------

__attribute__((target("avx512f"))) void
microFullAvx512(std::size_t k, const float *a, std::size_t lda,
                const float *b, std::size_t ldb, float *c,
                std::size_t ldc, std::size_t pf)
{
    __m512 acc[8][2];
    for (auto &row : acc)
        row[0] = row[1] = _mm512_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        if (pf != 0 && p + pf < k) {
            // A 32-float B row spans two cache lines.
            const char *nxt =
                reinterpret_cast<const char *>(b + (p + pf) * ldb);
            _mm_prefetch(nxt, _MM_HINT_T0);
            _mm_prefetch(nxt + 64, _MM_HINT_T0);
        }
        const __m512 b0 = _mm512_loadu_ps(brow);
        const __m512 b1 = _mm512_loadu_ps(brow + 16);
        for (std::size_t i = 0; i < 8; ++i) {
            const __m512 av = _mm512_set1_ps(a[i * lda + p]);
            acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
        }
    }
    for (std::size_t i = 0; i < 8; ++i) {
        float *cr = c + i * ldc;
        _mm512_storeu_ps(cr, _mm512_add_ps(_mm512_loadu_ps(cr),
                                           acc[i][0]));
        _mm512_storeu_ps(cr + 16,
                         _mm512_add_ps(_mm512_loadu_ps(cr + 16),
                                       acc[i][1]));
    }
}

#endif // PCNN_X86_TIERS

// ------------------------------------------------------------------
// NEON tier: 8x8 over float32x4 pairs — the portable kernel's shape
// with explicit fused-multiply lanes. Guarded by the compile-time
// target; AArch64 always has NEON, so no runtime probe is needed.
// ------------------------------------------------------------------

#ifdef PCNN_NEON_TIER

void
microFullNeon(std::size_t k, const float *a, std::size_t lda,
              const float *b, std::size_t ldb, float *c,
              std::size_t ldc, std::size_t pf)
{
    float32x4_t acc[8][2];
    for (auto &row : acc)
        row[0] = row[1] = vdupq_n_f32(0.0f);
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        if (pf != 0 && p + pf < k)
            __builtin_prefetch(b + (p + pf) * ldb);
        const float32x4_t b0 = vld1q_f32(brow);
        const float32x4_t b1 = vld1q_f32(brow + 4);
        for (std::size_t i = 0; i < 8; ++i) {
            const float32x4_t av = vdupq_n_f32(a[i * lda + p]);
            acc[i][0] = vfmaq_f32(acc[i][0], av, b0);
            acc[i][1] = vfmaq_f32(acc[i][1], av, b1);
        }
    }
    for (std::size_t i = 0; i < 8; ++i) {
        float *cr = c + i * ldc;
        vst1q_f32(cr, vaddq_f32(vld1q_f32(cr), acc[i][0]));
        vst1q_f32(cr + 4, vaddq_f32(vld1q_f32(cr + 4), acc[i][1]));
    }
}

#endif // PCNN_NEON_TIER

// ------------------------------------------------------------------
// Detection
// ------------------------------------------------------------------

std::string
readCpuModel()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        const auto colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        if (line.compare(0, 10, "model name") == 0 ||
            line.compare(0, 8, "Hardware") == 0) {
            std::string v = line.substr(colon + 1);
            const auto first = v.find_first_not_of(" \t");
            if (first != std::string::npos)
                return v.substr(first);
        }
    }
    return "unknown";
}

CpuFeatures
detectCpu()
{
    CpuFeatures f;
#ifdef PCNN_X86_TIERS
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
    f.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
    f.avx512vnni = __builtin_cpu_supports("avx512vnni") != 0;
#endif
#ifdef PCNN_NEON_TIER
    f.neon = true;
#endif
    f.model = readCpuModel();
    return f;
}

/** Parse a sysfs cache size string ("48K", "2M"); 0 on failure. */
std::size_t
parseCacheSize(const std::string &s)
{
    std::size_t value = 0;
    std::size_t i = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + std::size_t(s[i] - '0');
        ++i;
    }
    if (i == 0)
        return 0;
    if (i < s.size() && (s[i] == 'K' || s[i] == 'k'))
        value <<= 10;
    else if (i < s.size() && (s[i] == 'M' || s[i] == 'm'))
        value <<= 20;
    return value;
}

CacheInfo
detectCaches()
{
    CacheInfo ci;
    for (int idx = 0; idx < 8; ++idx) {
        const std::string base =
            "/sys/devices/system/cpu/cpu0/cache/index" +
            std::to_string(idx) + "/";
        std::ifstream lvl(base + "level"), typ(base + "type"),
            siz(base + "size");
        int level = 0;
        std::string type, size;
        if (!(lvl >> level) || !(typ >> type) || !(siz >> size))
            continue;
        const std::size_t bytes = parseCacheSize(size);
        if (bytes == 0 || type == "Instruction")
            continue;
        if (level == 1)
            ci.l1d = bytes;
        else if (level == 2)
            ci.l2 = bytes;
        else if (level == 3)
            ci.l3 = bytes;
    }
    return ci;
}

/** Register-tile shape per tier, defined even for unsupported tiers
 *  (defaultBlocking must be computable for any tier name found in a
 *  foreign tune-cache file). */
void
tierShape(KernelTier tier, std::size_t &mr, std::size_t &nr)
{
    switch (tier) {
      case KernelTier::Avx2:
        mr = 6;
        nr = 16;
        return;
      case KernelTier::Avx512:
        mr = 8;
        nr = 32;
        return;
      case KernelTier::Portable:
      case KernelTier::Neon:
        break;
    }
    mr = kPortMR;
    nr = kPortNR;
}

// ------------------------------------------------------------------
// Dispatch state
// ------------------------------------------------------------------

struct DispatchState
{
    bool tierPinned = false;
    KernelTier tier = KernelTier::Portable;
    bool blkPinned = false;
    GemmBlocking blk;
};

DispatchState &
state()
{
    static DispatchState s;
    return s;
}

/** PCNN_KERNEL_TIER, parsed and validated once per process. */
struct EnvTier
{
    bool forced = false;
    KernelTier tier = KernelTier::Portable;
};

const EnvTier &
envTier()
{
    static EnvTier e = [] {
        EnvTier r;
        const char *v = std::getenv("PCNN_KERNEL_TIER");
        if (v == nullptr || *v == '\0' || std::string(v) == "auto")
            return r;
        KernelTier t;
        if (!parseKernelTier(v, t)) {
            pcnn_warn("PCNN_KERNEL_TIER=", v,
                      " is not a known tier (want portable | avx2 | "
                      "avx512 | neon | auto); ignoring");
            return r;
        }
        if (!kernelTierSupported(t)) {
            pcnn_warn("PCNN_KERNEL_TIER=", v,
                      " is not supported on this host (",
                      cpuFeatures().str(), "); using ",
                      kernelTierName(bestKernelTier()));
            return r;
        }
        r.forced = true;
        r.tier = t;
        return r;
    }();
    return e;
}

} // namespace

const char *
kernelTierName(KernelTier tier)
{
    switch (tier) {
      case KernelTier::Portable:
        return "portable";
      case KernelTier::Neon:
        return "neon";
      case KernelTier::Avx2:
        return "avx2";
      case KernelTier::Avx512:
        return "avx512";
    }
    return "portable";
}

bool
parseKernelTier(const std::string &s, KernelTier &out)
{
    if (s == "portable")
        out = KernelTier::Portable;
    else if (s == "neon")
        out = KernelTier::Neon;
    else if (s == "avx2")
        out = KernelTier::Avx2;
    else if (s == "avx512")
        out = KernelTier::Avx512;
    else
        return false;
    return true;
}

std::string
CpuFeatures::str() const
{
    std::string s;
    const auto add = [&s](const char *name) {
        if (!s.empty())
            s += ',';
        s += name;
    };
    if (avx2)
        add("avx2");
    if (avx512f)
        add("avx512f");
    if (avx512bw)
        add("avx512bw");
    if (avx512vnni)
        add("avx512vnni");
    if (neon)
        add("neon");
    if (s.empty())
        s = "none";
    return s;
}

const CpuFeatures &
cpuFeatures()
{
    // pcnn-analyze: allow(hot-path-alloc): one-time static
    // init; detection runs once per process.
    static const CpuFeatures f = detectCpu();
    return f;
}

const CacheInfo &
cacheInfo()
{
    // pcnn-analyze: allow(hot-path-alloc): one-time static
    // init; detection runs once per process.
    static const CacheInfo ci = detectCaches();
    return ci;
}

bool
kernelTierSupported(KernelTier tier)
{
    switch (tier) {
      case KernelTier::Portable:
        return true;
      case KernelTier::Neon:
#ifdef PCNN_NEON_TIER
        return true;
#else
        return false;
#endif
      case KernelTier::Avx2:
#ifdef PCNN_X86_TIERS
        return cpuFeatures().avx2;
#else
        return false;
#endif
      case KernelTier::Avx512:
#ifdef PCNN_X86_TIERS
        return cpuFeatures().avx512f;
#else
        return false;
#endif
    }
    return false;
}

std::vector<KernelTier>
supportedKernelTiers()
{
    std::vector<KernelTier> tiers{KernelTier::Portable};
    for (KernelTier t : {KernelTier::Neon, KernelTier::Avx2,
                         KernelTier::Avx512})
        if (kernelTierSupported(t))
            tiers.push_back(t);
    return tiers;
}

KernelTier
bestKernelTier()
{
    // Cached: the host ISA cannot change mid-process, and this sits
    // on the sgemm dispatch path (via activeKernelTier/activeBlocking)
    // where rebuilding the candidate vector per call was the last
    // steady-state allocation the probe caught (DESIGN.md §5h).
    // pcnn-analyze: allow(hot-path-alloc): one-time static
    // init (the comment above).
    static const KernelTier best = supportedKernelTiers().back();
    return best;
}

KernelTier
activeKernelTier()
{
    const DispatchState &s = state();
    if (s.tierPinned)
        return s.tier;
    // pcnn-analyze: allow(hot-path-alloc): PCNN_KERNEL_TIER is
    // parsed once per process into a static; steady-state calls
    // only read the cached result.
    const EnvTier &env = envTier();
    if (env.forced)
        return env.tier;
    return bestKernelTier();
}

bool
kernelTierForcedByEnv()
{
    return envTier().forced;
}

void
setKernelTier(KernelTier tier)
{
    PCNN_CHECK(kernelTierSupported(tier), "setKernelTier: tier ",
               kernelTierName(tier), " is not supported on this host (",
               cpuFeatures().str(), ")");
    state().tierPinned = true;
    state().tier = tier;
}

void
resetKernelTier()
{
    state().tierPinned = false;
}

bool
kernelTierPinned()
{
    return state().tierPinned;
}

const MicroKernel &
microKernelFor(KernelTier tier)
{
    PCNN_CHECK(kernelTierSupported(tier), "microKernelFor: tier ",
               kernelTierName(tier), " is not supported on this host");
    static const MicroKernel portable{KernelTier::Portable, kPortMR,
                                      kPortNR, &microFullPortable};
#ifdef PCNN_X86_TIERS
    static const MicroKernel avx2{KernelTier::Avx2, 6, 16,
                                  &microFullAvx2};
    static const MicroKernel avx512{KernelTier::Avx512, 8, 32,
                                    &microFullAvx512};
    if (tier == KernelTier::Avx2)
        return avx2;
    if (tier == KernelTier::Avx512)
        return avx512;
#endif
#ifdef PCNN_NEON_TIER
    static const MicroKernel neon{KernelTier::Neon, 8, 8,
                                  &microFullNeon};
    if (tier == KernelTier::Neon)
        return neon;
#endif
    return portable;
}

GemmBlocking
defaultBlocking(KernelTier tier)
{
    std::size_t mr = 0, nr = 0;
    tierShape(tier, mr, nr);
    const CacheInfo &ci = cacheInfo();
    const std::size_t l1 = ci.l1d != 0 ? ci.l1d : 32u << 10;
    const std::size_t l2 = ci.l2 != 0 ? ci.l2 : 1u << 20;

    GemmBlocking blk;
    // kc: a kc x nr B sliver (the stream one register tile consumes)
    // occupies half of L1d.
    blk.kc = std::clamp<std::size_t>(l1 / (2 * sizeof(float) * nr), 64,
                                     512);
    // nc: the kc x nc B slab occupies half of L2.
    blk.nc = l2 / (2 * sizeof(float) * blk.kc);
    blk.nc = std::max(nr, blk.nc - blk.nc % nr);
    // mc: an mc x kc A block occupies a quarter of L2.
    blk.mc = l2 / (4 * sizeof(float) * blk.kc);
    blk.mc = std::max(mr, blk.mc - blk.mc % mr);
    blk.prefetch = 0;
    return blk;
}

GemmBlocking
activeBlocking()
{
    const DispatchState &s = state();
    if (s.blkPinned)
        return s.blk;
    return defaultBlocking(activeKernelTier());
}

void
setBlocking(const GemmBlocking &blk)
{
    state().blkPinned = true;
    state().blk = blk;
}

void
resetBlocking()
{
    state().blkPinned = false;
}

bool
blockingPinned()
{
    return state().blkPinned;
}

} // namespace pcnn
