/**
 * @file
 * Winograd F(2x2,3x3) convolution: transforms + batched tile-GEMM.
 *
 * Transform matrices (Lavin & Gray, "Fast Algorithms for
 * Convolutional Neural Networks"):
 *
 *   B^T = | 1  0 -1  0 |   G = | 1    0    0  |   A^T = | 1 1  1  0 |
 *         | 0  1  1  0 |       | 1/2  1/2  1/2|         | 0 1 -1 -1 |
 *         | 0 -1  1  0 |       | 1/2 -1/2  1/2|
 *         | 0  1  0 -1 |       | 0    0    1  |
 *
 * All three are applied as two 1-D passes (rows then columns); the
 * row/column passes below are the literal matrix products written
 * out, so each transform costs only adds (and two halvings on the
 * weight side).
 */

#include "tensor/winograd.hh"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/check.hh"
#include "common/parallel.hh"
#include "common/tags.hh"

namespace pcnn {

namespace {

/** One row/column pass of B^T (and of B, which is its transpose
 *  applied from the right): [d0-d2, d1+d2, d2-d1, d1-d3]. */
inline void
inputPass(const float *s, std::size_t ss, float *t, std::size_t ts)
{
    const float d0 = s[0 * ss], d1 = s[1 * ss], d2 = s[2 * ss],
                d3 = s[3 * ss];
    t[0 * ts] = d0 - d2;
    t[1 * ts] = d1 + d2;
    t[2 * ts] = d2 - d1;
    t[3 * ts] = d1 - d3;
}

/** One row/column pass of A^T: [m0+m1+m2, m1-m2-m3]. */
inline void
outputPass(const float *s, std::size_t ss, float *t, std::size_t ts)
{
    const float m0 = s[0 * ss], m1 = s[1 * ss], m2 = s[2 * ss],
                m3 = s[3 * ss];
    t[0 * ts] = m0 + m1 + m2;
    t[1 * ts] = m1 - m2 - m3;
}

/// process-wide weight-transform counter (see header)
std::atomic<std::uint64_t> &
winoPackCounter()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

} // namespace

std::uint64_t
winogradPackCount()
{
    return winoPackCounter().load(std::memory_order_relaxed);
}

void
winogradTransformWeights(const float *w, std::size_t in_c,
                         std::size_t out_c, WinogradWeights &out)
{
    PCNN_CHECK(in_c > 0 && out_c > 0 && w != nullptr,
               "winograd weight transform: empty group ", in_c, "x",
               out_c);
    winoPackCounter().fetch_add(1, std::memory_order_relaxed);
    const std::size_t plane = in_c * out_c;
    // pcnn-analyze: allow(hot-path-alloc): generation-gated
    // weight transform; never runs in a steady-state forward.
    if (out.data.size() < 16 * plane)
        out.data.resize(16 * plane);
    out.inC = in_c;
    out.outC = out_c;

    // U = G g G^T per (oc, ic) filter, scattered so each transform
    // point p is a contiguous row-major in_c x out_c SGEMM B operand.
    for (std::size_t oc = 0; oc < out_c; ++oc) {
        for (std::size_t ic = 0; ic < in_c; ++ic) {
            const float *g = w + (oc * in_c + ic) * 9;
            float t[4][3]; // G g
            for (std::size_t c = 0; c < 3; ++c) {
                const float g0 = g[0 + c], g1 = g[3 + c], g2 = g[6 + c];
                t[0][c] = g0;
                t[1][c] = 0.5f * (g0 + g1 + g2);
                t[2][c] = 0.5f * (g0 - g1 + g2);
                t[3][c] = g2;
            }
            float u[4][4]; // (G g) G^T
            for (std::size_t r = 0; r < 4; ++r) {
                u[r][0] = t[r][0];
                u[r][1] = 0.5f * (t[r][0] + t[r][1] + t[r][2]);
                u[r][2] = 0.5f * (t[r][0] - t[r][1] + t[r][2]);
                u[r][3] = t[r][2];
            }
            for (std::size_t p = 0; p < 16; ++p)
                out.data[p * plane + ic * out_c + oc] = u[p / 4][p % 4];
        }
    }
}

PCNN_HOT_PATH
void
winogradForward(const Tensor &x, std::size_t item, const ConvGeom &g,
                std::size_t chan_off, const WinogradWeights &wts,
                const float *bias, Tensor &y, std::size_t out_chan_off,
                bool fuse_relu, WinogradScratch &scratch)
{
    PCNN_CHECK(winogradApplicable(g),
               "winograd: geometry kernel=", g.kernel,
               " stride=", g.stride, " is not F(2x2,3x3)-eligible");
    PCNN_CHECK_EQ(wts.inC, g.inC, "winograd: weight/geometry channels");

    const std::size_t oh = g.outH(), ow = g.outW();
    const std::size_t th = winogradTileRows(oh);
    const std::size_t tw = winogradTileCols(ow);
    const std::size_t tiles = th * tw;
    const std::size_t in_c = g.inC, out_c = wts.outC;
    const std::size_t in_h = g.inH, in_w = g.inW;
    const std::size_t pad = g.pad;

    // pcnn-analyze: allow(hot-path-alloc): grow-only per-lane
    // transform scratch; sized by the largest tile set seen.
    if (scratch.v.size() < 16 * tiles * in_c)
        scratch.v.resize(16 * tiles * in_c);
    // pcnn-analyze: allow(hot-path-alloc): see above.
    if (scratch.m.size() < 16 * tiles * out_c)
        scratch.m.resize(16 * tiles * out_c);
    float *v = scratch.v.data();
    float *mm = scratch.m.data();

    // 1. Input transform: V_p[t][ic] = (B^T d B)[p] of the 4x4 input
    // patch feeding tile t. Tiles are disjoint, so the partition is
    // thread-count-invariant (nested calls run inline).
    const float *xbase =
        x.data() + (item * x.shape().c + chan_off) * in_h * in_w;
    parallelFor(tiles, [&](std::size_t t0, std::size_t t1,
                           std::size_t) {
        for (std::size_t t = t0; t < t1; ++t) {
            const std::size_t ty = t / tw, tx = t % tw;
            // Patch origin in input coordinates (stride 1, 2 outputs
            // per tile); may start before 0 or run past the edge.
            const std::ptrdiff_t iy0 =
                std::ptrdiff_t(2 * ty) - std::ptrdiff_t(pad);
            const std::ptrdiff_t ix0 =
                std::ptrdiff_t(2 * tx) - std::ptrdiff_t(pad);
            for (std::size_t ic = 0; ic < in_c; ++ic) {
                const float *xp = xbase + ic * in_h * in_w;
                float d[4][4];
                for (std::size_t r = 0; r < 4; ++r) {
                    const std::ptrdiff_t iy = iy0 + std::ptrdiff_t(r);
                    if (iy < 0 || iy >= std::ptrdiff_t(in_h)) {
                        d[r][0] = d[r][1] = d[r][2] = d[r][3] = 0.0f;
                        continue;
                    }
                    const float *row = xp + std::size_t(iy) * in_w;
                    for (std::size_t cc = 0; cc < 4; ++cc) {
                        const std::ptrdiff_t ix =
                            ix0 + std::ptrdiff_t(cc);
                        d[r][cc] =
                            (ix < 0 || ix >= std::ptrdiff_t(in_w))
                                ? 0.0f
                                : row[std::size_t(ix)];
                    }
                }
                float bt[4][4]; // B^T d
                for (std::size_t cc = 0; cc < 4; ++cc)
                    inputPass(&d[0][cc], 4, &bt[0][cc], 4);
                float vv[4][4]; // (B^T d) B
                for (std::size_t r = 0; r < 4; ++r)
                    inputPass(&bt[r][0], 1, &vv[r][0], 1);
                for (std::size_t p = 0; p < 16; ++p)
                    v[(p * tiles + t) * in_c + ic] = vv[p / 4][p % 4];
            }
        }
    });

    // 2. Batched tile-GEMM: one product per transform point, each on
    // the persistent pre-transformed B operand. sgemm parallelizes
    // internally (or runs inline inside an outer parallel region).
    for (std::size_t p = 0; p < 16; ++p)
        sgemm(false, false, tiles, out_c, in_c,
              v + p * tiles * in_c, wts.point(p),
              mm + p * tiles * out_c);

    // 3. Output transform: Y = A^T M A per tile/channel, plus the
    // fused bias/ReLU epilogue, clipped at odd-extent edges.
    float *ybase =
        y.data() + (item * y.shape().c + out_chan_off) * oh * ow;
    parallelFor(tiles, [&](std::size_t t0, std::size_t t1,
                           std::size_t) {
        for (std::size_t t = t0; t < t1; ++t) {
            const std::size_t ty = t / tw, tx = t % tw;
            const std::size_t oy0 = 2 * ty, ox0 = 2 * tx;
            const std::size_t ny = std::min<std::size_t>(2, oh - oy0);
            const std::size_t nx = std::min<std::size_t>(2, ow - ox0);
            for (std::size_t oc = 0; oc < out_c; ++oc) {
                float m4[4][4];
                for (std::size_t p = 0; p < 16; ++p)
                    m4[p / 4][p % 4] =
                        mm[(p * tiles + t) * out_c + oc];
                float at[2][4]; // A^T M
                for (std::size_t cc = 0; cc < 4; ++cc)
                    outputPass(&m4[0][cc], 4, &at[0][cc], 4);
                float yy[2][2]; // (A^T M) A
                for (std::size_t r = 0; r < 2; ++r)
                    outputPass(&at[r][0], 1, &yy[r][0], 1);
                const float b = bias ? bias[oc] : 0.0f;
                float *yp = ybase + oc * oh * ow;
                for (std::size_t r = 0; r < ny; ++r) {
                    float *yrow = yp + (oy0 + r) * ow + ox0;
                    for (std::size_t cc = 0; cc < nx; ++cc) {
                        float val = yy[r][cc] + b;
                        if (fuse_relu && val < 0.0f)
                            val = 0.0f;
                        yrow[cc] = val;
                    }
                }
            }
        }
    });
}

} // namespace pcnn
