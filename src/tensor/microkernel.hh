/**
 * @file
 * SIMD micro-kernel tiers and the cache-blocking configuration of the
 * CPU SGEMM (DESIGN.md §5g).
 *
 * The paper's core thesis is that one kernel shape cannot be optimal
 * across microarchitectures: tile and register parameters must be
 * co-tuned per architecture and cached for reuse. This module is the
 * CPU mirror of that story. It provides
 *
 *  - a *tier* of register-blocked micro-kernels — portable Vec8 8x8,
 *    AVX2+FMA 6x16, AVX-512 8x32, NEON 8x8 — compiled via per-function
 *    target attributes so one binary carries every tier its compiler
 *    supports, selected once at startup from cpuid/feature detection
 *    and overridable with PCNN_KERNEL_TIER;
 *  - the Kc/Mc/Nc cache-blocking hierarchy above the register tile,
 *    with defaults derived from the host's detected cache sizes and
 *    override hooks the per-host autotuner (pcnn/offline/host_tuner)
 *    uses to pin swept winners.
 *
 * Determinism contract: for a fixed tier and blocking configuration,
 * every C cell accumulates in pure ascending-k order (Kc chunks in
 * ascending order, k ascending within a chunk) on exactly one thread,
 * and the full/edge kernel split depends only on (m, n) and the
 * blocking — never on the thread count. Results are therefore bitwise
 * identical across PCNN_THREADS *per tier*; different tiers (FMA
 * contraction, different Kc association) may differ within a small
 * ULP envelope, which tests/test_microkernel.cc budgets explicitly.
 *
 * Tier/blocking setters are start-up/test configuration knobs: they
 * must not race concurrently running GEMMs (the serving engine pins
 * the tuned config before its workers exist, DESIGN.md §5f/§5g).
 */

#ifndef PCNN_TENSOR_MICROKERNEL_HH
#define PCNN_TENSOR_MICROKERNEL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pcnn {

/** Micro-kernel families, ordered by preference (highest last). */
enum class KernelTier : std::uint8_t
{
    Portable = 0, ///< Vec8 8x8, builds everywhere
    Neon,         ///< 8x8 over float32x4 pairs (__ARM_NEON builds)
    Avx2,         ///< 6x16 FMA over ymm (x86-64, runtime-guarded)
    Avx512,       ///< 8x32 FMA over zmm (x86-64, runtime-guarded)
};

/** Canonical lower-case tier name ("portable", "avx2", ...). */
const char *kernelTierName(KernelTier tier);

/**
 * Parse a tier name (as in PCNN_KERNEL_TIER or the tune cache).
 * @retval false if `s` names no known tier ("auto" is not a tier)
 */
bool parseKernelTier(const std::string &s, KernelTier &out);

/** CPU identity and SIMD feature flags, detected once per process. */
struct CpuFeatures
{
    bool avx2 = false;     ///< AVX2 + FMA both present
    bool avx512f = false;  ///< AVX-512 Foundation
    bool avx512bw = false; ///< AVX-512 Byte/Word (int8 kernel tier)
    bool avx512vnni = false; ///< AVX-512 VNNI (vpdpbusd int8 variant)
    bool neon = false;     ///< compiled for a NEON target
    std::string model;    ///< e.g. /proc/cpuinfo "model name"

    /** Feature flags as a stable comma-joined string ("avx2,fma"). */
    std::string str() const;
};

/** Host CPU features (cached after the first call; thread-safe). */
const CpuFeatures &cpuFeatures();

/** Data-cache capacities in bytes; 0 = unknown on this host. */
struct CacheInfo
{
    std::size_t l1d = 0;
    std::size_t l2 = 0;
    std::size_t l3 = 0;
};

/** Host cache sizes from sysfs (cached; zeros when undetectable). */
const CacheInfo &cacheInfo();

/**
 * One register-blocked micro-kernel: accumulates the full mr x nr
 * C tile over a K range. `a` is row-major with leading dimension
 * lda (>= the K range), `b` row-major with leading dimension ldb,
 * `c` row-major with leading dimension ldc; C += A * B. `prefetch`
 * is a software-prefetch distance in k iterations (0 = none).
 */
struct MicroKernel
{
    KernelTier tier = KernelTier::Portable;
    std::size_t mr = 0; ///< C tile rows held in registers
    std::size_t nr = 0; ///< C tile columns held in registers

    using FullFn = void (*)(std::size_t k, const float *a,
                            std::size_t lda, const float *b,
                            std::size_t ldb, float *c, std::size_t ldc,
                            std::size_t prefetch);
    FullFn full = nullptr;
};

/** Largest mr/nr any compiled tier uses (edge-kernel scratch bound). */
constexpr std::size_t kMaxMicroMR = 8;
constexpr std::size_t kMaxMicroNR = 32;

/**
 * True when `tier` is both compiled into this binary and executable
 * on the running host (cpuid for the x86 tiers).
 */
bool kernelTierSupported(KernelTier tier);

/** Every supported tier, portable first. Never empty. */
std::vector<KernelTier> supportedKernelTiers();

/** The preferred supported tier (widest vectors win). */
KernelTier bestKernelTier();

/**
 * The tier the next sgemm call will dispatch to. Resolution order:
 * setKernelTier() override > PCNN_KERNEL_TIER (read once; unknown or
 * unsupported values warn and fall through) > bestKernelTier().
 */
KernelTier activeKernelTier();

/**
 * True when PCNN_KERNEL_TIER pinned the active tier. The autotuner
 * respects the pin: a tune-cache tier never overrides the operator.
 */
bool kernelTierForcedByEnv();

/** Pin the dispatch tier (tests, tuner). Must be supported. */
void setKernelTier(KernelTier tier);

/** Drop a setKernelTier() pin; env/auto resolution applies again. */
void resetKernelTier();

/** True while a setKernelTier() pin is in force. */
bool kernelTierPinned();

/** Micro-kernel implementing `tier` (which must be supported). */
const MicroKernel &microKernelFor(KernelTier tier);

/**
 * Cache-blocking hierarchy above the register tile: the K dimension
 * is processed in Kc-deep chunks so a Kc x Nc B slab stays L2/L3
 * resident across the M sweep, M in Mc-tall blocks so an Mc x Kc A
 * block stays near-L1, and N in Nc-wide panels. `prefetch` is the
 * micro-kernel's B-row software-prefetch distance in k iterations.
 * Values are re-aligned to the active tier's mr/nr at dispatch time,
 * so one configuration is meaningful for every tier.
 */
struct GemmBlocking
{
    std::size_t kc = 0; ///< K chunk depth
    std::size_t mc = 0; ///< M block height
    std::size_t nc = 0; ///< N panel width
    std::size_t prefetch = 0;

    bool operator==(const GemmBlocking &o) const
    {
        return kc == o.kc && mc == o.mc && nc == o.nc &&
               prefetch == o.prefetch;
    }
};

/**
 * Blocking derived from the detected cache sizes for `tier`:
 * kc sized so a kc x nr B sliver holds half of L1d, nc so the kc x nc
 * slab holds half of L2, mc so an mc x kc A block holds a quarter of
 * L2 — the textbook GotoBLAS occupancy split, clamped to sane floors
 * when cache detection fails.
 */
GemmBlocking defaultBlocking(KernelTier tier);

/** Blocking the next sgemm call uses (override or tier default). */
GemmBlocking activeBlocking();

/** Pin the blocking (tuner, tests). Fields are clamped at use. */
void setBlocking(const GemmBlocking &blk);

/** Drop a setBlocking() pin; per-tier defaults apply again. */
void resetBlocking();

/** True while a setBlocking() pin is in force. */
bool blockingPinned();

} // namespace pcnn

#endif // PCNN_TENSOR_MICROKERNEL_HH
