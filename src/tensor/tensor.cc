#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

namespace pcnn {

std::string
Shape::str() const
{
    std::ostringstream os;
    os << "[" << n << "," << c << "," << h << "," << w << "]";
    return os.str();
}

Tensor::Tensor() : shp{1, 1, 1, 1}, buf(1, 0.0f) {}

Tensor::Tensor(Shape s) : shp(s), buf(s.size(), 0.0f)
{
    pcnn_assert(s.size() > 0, "tensor shape must be non-empty: ", s.str());
}

Tensor::Tensor(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
    : Tensor(Shape{n, c, h, w})
{
}

Tensor::Tensor(const Tensor &o) : shp(o.shp)
{
    // Deep-copy into owned storage even when `o` is a view: a copy
    // must never silently alias arena memory it does not manage.
    buf.assign(o.data(), o.data() + o.size());
}

Tensor &
Tensor::operator=(const Tensor &o)
{
    if (this == &o)
        return *this;
    shp = o.shp;
    ext = nullptr;
    extCap = 0;
    buf.assign(o.data(), o.data() + o.size());
    return *this;
}

Tensor::Tensor(Tensor &&o) noexcept
    : shp(o.shp), buf(std::move(o.buf)), ext(o.ext), extCap(o.extCap)
{
    // Leave the source empty without touching the allocator (moves
    // happen on the zero-alloc hot path): size() == 0, no view.
    o.shp = Shape{0, 0, 0, 0};
    o.ext = nullptr;
    o.extCap = 0;
}

Tensor &
Tensor::operator=(Tensor &&o) noexcept
{
    if (this == &o)
        return *this;
    shp = o.shp;
    buf = std::move(o.buf);
    ext = o.ext;
    extCap = o.extCap;
    o.shp = Shape{0, 0, 0, 0};
    o.ext = nullptr;
    o.extCap = 0;
    return *this;
}

void
Tensor::bindView(float *p, std::size_t cap, Shape s)
{
    pcnn_assert(p != nullptr && s.size() <= cap, "bindView: shape ",
                s.str(), " exceeds window capacity ", cap);
    buf.clear();
    buf.shrink_to_fit();
    ext = p;
    extCap = cap;
    shp = s;
}

void
Tensor::unbind()
{
    ext = nullptr;
    extCap = 0;
    shp = Shape{1, 1, 1, 1};
    buf.assign(1, 0.0f);
}

float &
Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
{
    // Per-element hot path: bounds contract compiles out only in an
    // explicit -DPCNN_DCHECKS=OFF release build.
    PCNN_DCHECK(n < shp.n && c < shp.c && h < shp.h && w < shp.w,
                "index (", n, ",", c, ",", h, ",", w, ") out of ",
                shp.str());
    return data()[((n * shp.c + c) * shp.h + h) * shp.w + w];
}

float
Tensor::at(std::size_t n, std::size_t c, std::size_t h,
           std::size_t w) const
{
    return const_cast<Tensor *>(this)->at(n, c, h, w);
}

void
Tensor::fill(float v)
{
    std::fill(data(), data() + size(), v);
}

void
Tensor::fillGaussian(Rng &rng, float mean, float stddev)
{
    float *d = data();
    for (std::size_t i = 0, e = size(); i < e; ++i)
        d[i] = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    float *d = data();
    for (std::size_t i = 0, e = size(); i < e; ++i)
        d[i] = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::reshape(Shape s)
{
    pcnn_assert(s.size() == size(), "reshape ", shp.str(), " -> ",
                s.str(), " changes element count");
    shp = s;
}

void
Tensor::resize(Shape s)
{
    if (ext != nullptr) {
        // View: re-shape within the bound window; the planner sized
        // it, and the bytes belong to whoever wrote them (bindView).
        PCNN_CHECK(s.size() <= extCap, "resize ", s.str(),
                   " exceeds bound view capacity ", extCap);
        shp = s;
        return;
    }
    shp = s;
    buf.assign(s.size(), 0.0f);
}

Tensor
Tensor::item(std::size_t i) const
{
    pcnn_assert(i < shp.n, "item ", i, " out of batch ", shp.n);
    Tensor out(Shape{1, shp.c, shp.h, shp.w});
    const std::size_t stride = shp.itemSize();
    std::copy(data() + i * stride, data() + (i + 1) * stride,
              out.data());
    return out;
}

double
Tensor::sum() const
{
    double s = 0.0;
    const float *d = data();
    for (std::size_t i = 0, e = size(); i < e; ++i)
        s += d[i];
    return s;
}

double
Tensor::maxAbsDiff(const Tensor &o) const
{
    pcnn_assert(shp == o.shp, "maxAbsDiff shape mismatch ", shp.str(),
                " vs ", o.shp.str());
    double m = 0.0;
    const float *a = data();
    const float *b = o.data();
    for (std::size_t i = 0, e = size(); i < e; ++i)
        m = std::max(m, std::abs(double(a[i]) - double(b[i])));
    return m;
}

} // namespace pcnn
