#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

namespace pcnn {

std::string
Shape::str() const
{
    std::ostringstream os;
    os << "[" << n << "," << c << "," << h << "," << w << "]";
    return os.str();
}

Tensor::Tensor() : shp{1, 1, 1, 1}, buf(1, 0.0f) {}

Tensor::Tensor(Shape s) : shp(s), buf(s.size(), 0.0f)
{
    pcnn_assert(s.size() > 0, "tensor shape must be non-empty: ", s.str());
}

Tensor::Tensor(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
    : Tensor(Shape{n, c, h, w})
{
}

float &
Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
{
    // Per-element hot path: bounds contract compiles out only in an
    // explicit -DPCNN_DCHECKS=OFF release build.
    PCNN_DCHECK(n < shp.n && c < shp.c && h < shp.h && w < shp.w,
                "index (", n, ",", c, ",", h, ",", w, ") out of ",
                shp.str());
    return buf[((n * shp.c + c) * shp.h + h) * shp.w + w];
}

float
Tensor::at(std::size_t n, std::size_t c, std::size_t h,
           std::size_t w) const
{
    return const_cast<Tensor *>(this)->at(n, c, h, w);
}

void
Tensor::fill(float v)
{
    std::fill(buf.begin(), buf.end(), v);
}

void
Tensor::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &x : buf)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &x : buf)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::reshape(Shape s)
{
    pcnn_assert(s.size() == buf.size(), "reshape ", shp.str(), " -> ",
                s.str(), " changes element count");
    shp = s;
}

void
Tensor::resize(Shape s)
{
    shp = s;
    buf.assign(s.size(), 0.0f);
}

Tensor
Tensor::item(std::size_t i) const
{
    pcnn_assert(i < shp.n, "item ", i, " out of batch ", shp.n);
    Tensor out(Shape{1, shp.c, shp.h, shp.w});
    const std::size_t stride = shp.itemSize();
    std::copy(buf.begin() + i * stride, buf.begin() + (i + 1) * stride,
              out.buf.begin());
    return out;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float x : buf)
        s += x;
    return s;
}

double
Tensor::maxAbsDiff(const Tensor &o) const
{
    pcnn_assert(shp == o.shp, "maxAbsDiff shape mismatch ", shp.str(),
                " vs ", o.shp.str());
    double m = 0.0;
    for (std::size_t i = 0; i < buf.size(); ++i)
        m = std::max(m, std::abs(double(buf[i]) - double(o.buf[i])));
    return m;
}

} // namespace pcnn
