/**
 * @file
 * Int8 quantized GEMM implementation: activation/weight
 * quantization, the k4-interleaved panels, and the tiered
 * int8 micro-kernels with the fused dequant epilogue.
 *
 * Every tier computes the same exact int32 dot products (the u7 x
 * s8 operand ranges make the pairwise i16 sums saturation-free and
 * qgemm bounds K so the i32 accumulator cannot wrap) and applies
 * the identical scalar float epilogue sequence, so the fp32 output
 * is bitwise identical across tiers, thread counts, and blocking —
 * see the contract in quant.hh.
 */

#include "tensor/quant.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/check.hh"
#include "common/parallel.hh"
#include "common/tags.hh"
#include "tensor/tensor_ops.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define PCNN_QUANT_X86_TIERS 1
#include <immintrin.h>
#else
#define PCNN_QUANT_X86_TIERS 0
#endif

#if defined(__ARM_NEON)
#define PCNN_QUANT_NEON_TIER 1
#include <arm_neon.h>
#else
#define PCNN_QUANT_NEON_TIER 0
#endif

namespace pcnn {

namespace {

/// Quantize one activation: round-to-nearest, shift by the zero
/// point, clamp to the unsigned 7-bit range [0, 127].
inline std::uint8_t
quantizeAct(float v, float inv, std::int32_t zero)
{
    long q = std::lrintf(v * inv) + zero;
    if (q < 0)
        q = 0;
    if (q > 127)
        q = 127;
    return static_cast<std::uint8_t>(q);
}

/// process-wide quantizeWeights() counter (see header)
std::atomic<std::uint64_t> &
quantPackCounter()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

/// Scalar quantize+interleave of one k4 group row: source row `s`
/// lands at dst[4j + t] for its interleave slot t.
inline void
qpackRowScalar(const float *s, std::size_t n, float inv,
               std::int32_t zero, std::uint8_t *dst)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[4 * j] = quantizeAct(s[j], inv, zero);
}

#if PCNN_QUANT_X86_TIERS

/// AVX2 quantize+interleave of a full k4 group (4 source rows x n
/// columns) into 4-byte column groups. Eight columns per step: each
/// row quantizes to eight i32 lanes (cvtps rounds per MXCSR —
/// round-to-nearest-even, the same rounding lrintf applies in the
/// scalar path, so the bytes match it exactly for any |q| < 2^31;
/// beyond that both routes clamp, which only a profile miscalibrated
/// by ~7 orders of magnitude could reach), then two i32->i16 packs,
/// one i16->u8 pack, and an in-lane byte shuffle transpose the 4x8
/// block straight into the interleaved layout.
__attribute__((target("avx2")))
PCNN_HOT_PATH
void
qpackGroupAvx2(const float *s0, const float *s1, const float *s2,
               const float *s3, std::size_t n, float inv,
               std::int32_t zero, std::uint8_t *dst)
{
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256i vzero = _mm256_set1_epi32(zero);
    const __m256i lo = _mm256_setzero_si256();
    const __m256i hi = _mm256_set1_epi32(127);
    const __m256i shuf = _mm256_setr_epi8(
        0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,
        0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
    const auto quant8 = [&](const float *s, std::size_t j) {
        __m256i v = _mm256_cvtps_epi32(
            _mm256_mul_ps(_mm256_loadu_ps(s + j), vinv));
        v = _mm256_add_epi32(v, vzero);
        return _mm256_min_epi32(_mm256_max_epi32(v, lo), hi);
    };
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        // Per 128-bit lane: [r0c0..3 r1c0..3 | r2c0..3 r3c0..3]
        // bytes after the packs; the shuffle regroups them into
        // [c0: r0 r1 r2 r3][c1: ...] — the panel's column groups.
        const __m256i a01 =
            _mm256_packs_epi32(quant8(s0, j), quant8(s1, j));
        const __m256i a23 =
            _mm256_packs_epi32(quant8(s2, j), quant8(s3, j));
        const __m256i bytes =
            _mm256_shuffle_epi8(_mm256_packus_epi16(a01, a23), shuf);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + 4 * j),
                            bytes);
    }
    for (; j < n; ++j) {
        dst[4 * j + 0] = quantizeAct(s0[j], inv, zero);
        dst[4 * j + 1] = quantizeAct(s1[j], inv, zero);
        dst[4 * j + 2] = quantizeAct(s2[j], inv, zero);
        dst[4 * j + 3] = quantizeAct(s3[j], inv, zero);
    }
}

#endif // PCNN_QUANT_X86_TIERS

} // namespace

std::uint64_t
quantPackCount()
{
    return quantPackCounter().load(std::memory_order_relaxed);
}

PCNN_HOT_PATH
QuantParams
computeQuantParams(const float *x, std::size_t count)
{
    float mn = 0.0f; // include 0 so padding/ReLU zeros are exact
    float mx = 0.0f;
    bool finite = true;
    for (std::size_t i = 0; i < count; ++i) {
        const float v = x[i];
        // NaNs fail both comparisons below, so without this they
        // would silently vanish from the range instead of marking
        // the tensor degenerate.
        finite = finite && std::isfinite(v);
        if (v < mn)
            mn = v;
        if (v > mx)
            mx = v;
    }
    QuantParams qp;
    const float range = mx - mn;
    if (!finite || !(range > 0.0f) || !std::isfinite(range))
        return qp; // degenerate tensor: identity params
    qp.scale = range / 127.0f;
    long z = std::lrintf(-mn / qp.scale);
    if (z < 0)
        z = 0;
    if (z > 127)
        z = 127;
    qp.zero = static_cast<std::uint8_t>(z);
    return qp;
}

PCNN_HOT_PATH
void
quantizeWeights(std::size_t rows, std::size_t cols, const float *w,
                QuantizedPanel &panel)
{
    PCNN_CHECK(rows * cols == 0 || w != nullptr,
               "quantizeWeights: null source for ", rows, "x", cols);
    const std::size_t kp = (cols + 3) & ~std::size_t(3);
    quantPackCounter().fetch_add(1, std::memory_order_relaxed);
    // pcnn-analyze: allow(hot-path-alloc): generation-gated weight
    // quantization; callers only invoke this when the source
    // weights changed.
    if (panel.data.size() < rows * kp)
        panel.data.resize(rows * kp);
    // pcnn-analyze: allow(hot-path-alloc): generation-gated, as above.
    if (panel.scales.size() < rows)
        panel.scales.resize(rows);
    // pcnn-analyze: allow(hot-path-alloc): generation-gated, as above.
    if (panel.rowSums.size() < rows)
        panel.rowSums.resize(rows);
    panel.rows = rows;
    panel.cols = cols;
    panel.kp = kp;
    if (rows == 0)
        return;
    parallelFor(rows, [&](std::size_t r0, std::size_t r1, std::size_t) {
        for (std::size_t i = r0; i < r1; ++i) {
            const float *src = w + i * cols;
            float maxabs = 0.0f;
            for (std::size_t p = 0; p < cols; ++p) {
                const float a = std::fabs(src[p]);
                if (a > maxabs)
                    maxabs = a;
            }
            const float scale =
                (maxabs > 0.0f && std::isfinite(maxabs))
                    ? maxabs / 127.0f
                    : 1.0f;
            const float inv = 1.0f / scale;
            std::int8_t *dst = panel.data.data() + i * kp;
            std::int32_t sum = 0;
            for (std::size_t p = 0; p < cols; ++p) {
                long q = std::lrintf(src[p] * inv);
                if (q < -127)
                    q = -127;
                if (q > 127)
                    q = 127;
                dst[p] = static_cast<std::int8_t>(q);
                sum += static_cast<std::int32_t>(q);
            }
            for (std::size_t p = cols; p < kp; ++p)
                dst[p] = 0; // meets the B pad bytes: contributes 0
            panel.scales[i] = scale;
            panel.rowSums[i] = sum;
        }
    });
}

PCNN_HOT_PATH
void
quantizePackActivations(const float *x, std::size_t k, std::size_t n,
                        std::size_t ld, bool trans, const QuantParams &qp,
                        std::vector<std::uint8_t> &out)
{
    PCNN_CHECK(k * n == 0 || x != nullptr,
               "quantizePackActivations: null source for ", k, "x", n);
    PCNN_CHECK(qp.scale > 0.0f && std::isfinite(qp.scale),
               "quantizePackActivations: bad scale ", qp.scale);
    const std::size_t groups = (k + 3) / 4;
    const std::size_t np = quantPackedCols(n);
    const std::size_t stride = 4 * np;
    // pcnn-analyze: allow(hot-path-alloc): grow-only activation
    // panel owned by the calling layer's scratch.
    if (out.size() < groups * stride)
        out.resize(groups * stride);
    if (groups == 0 || n == 0)
        return;
    const float inv = 1.0f / qp.scale;
    const std::int32_t zero = qp.zero;
    const std::uint8_t zb = qp.zero;
#if PCNN_QUANT_X86_TIERS
    const bool vec = cpuFeatures().avx2;
#else
    const bool vec = false;
#endif
    parallelFor(groups, [&](std::size_t g0, std::size_t g1, std::size_t) {
        for (std::size_t g = g0; g < g1; ++g) {
            std::uint8_t *dst = out.data() + g * stride;
            // Pad columns [n, np): every byte is the zero point, so
            // a full-width tile over them dequantizes to values the
            // staged edge store simply discards.
            if (np != n)
                std::memset(dst + 4 * n, zb, 4 * (np - n));
#if PCNN_QUANT_X86_TIERS
            if (vec && !trans && 4 * g + 3 < k) {
                const float *src = x + 4 * g * ld;
                qpackGroupAvx2(src, src + ld, src + 2 * ld,
                               src + 3 * ld, n, inv, zero, dst);
                continue;
            }
#else
            (void)vec;
#endif
            for (std::size_t t = 0; t < 4; ++t) {
                const std::size_t p = 4 * g + t;
                if (p >= k) { // pad k-row: any value cancels against
                    for (std::size_t j = 0; j < n; ++j) // zero weight
                        dst[4 * j + t] = zb;            // pad bytes
                    continue;
                }
                if (!trans) {
                    qpackRowScalar(x + p * ld, n, inv, zero, dst + t);
                } else {
                    for (std::size_t j = 0; j < n; ++j)
                        dst[4 * j + t] =
                            quantizeAct(x[j * ld + p], inv, zero);
                }
            }
        }
    });
}

// --------------------------------------------------- micro-kernels

namespace {

/// The fixed dequant sequence every tier must reproduce bitwise:
/// convert, multiply, add bias, clamp — no FMA.
inline void
storeQuantCell(float *c, std::int32_t acc, std::size_t row,
               const QuantEpilogue &epi)
{
    const std::int32_t adj = acc - epi.actZero * epi.rowSums[row];
    float v = static_cast<float>(adj) * (epi.scales[row] * epi.actScale);
    if (epi.bias != nullptr)
        v += epi.bias[row];
    if (epi.relu && v < 0.0f)
        v = 0.0f;
    *c = v;
}

constexpr std::size_t kQPortableMR = 4;
constexpr std::size_t kQPortableNR = 8;

/// Portable 4x8 full tile — the exact-arithmetic reference every
/// SIMD tier must match bitwise.
PCNN_HOT_PATH
void
qFullPortable(std::size_t groups, const std::int8_t *a, std::size_t lda,
              const std::uint8_t *b, std::size_t ldb, float *c,
              std::size_t ldc, std::size_t row0, const QuantEpilogue &epi)
{
    std::int32_t acc[kQPortableMR][kQPortableNR] = {};
    for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t *bg = b + g * ldb;
        for (std::size_t i = 0; i < kQPortableMR; ++i) {
            const std::int8_t *ag = a + i * lda + 4 * g;
            const std::int32_t w0 = ag[0], w1 = ag[1];
            const std::int32_t w2 = ag[2], w3 = ag[3];
            for (std::size_t j = 0; j < kQPortableNR; ++j) {
                const std::uint8_t *bc = bg + 4 * j;
                acc[i][j] += w0 * bc[0] + w1 * bc[1] +
                             w2 * bc[2] + w3 * bc[3];
            }
        }
    }
    for (std::size_t i = 0; i < kQPortableMR; ++i)
        for (std::size_t j = 0; j < kQPortableNR; ++j)
            storeQuantCell(c + i * ldc + j, acc[i][j], row0 + i, epi);
}

/// Generic edge tile (mi x nj remainders), shared by all tiers so
/// edges are tier-invariant by construction.
PCNN_HOT_PATH
void
qEdge(std::size_t groups, std::size_t mi, std::size_t nj,
      const std::int8_t *a, std::size_t lda, const std::uint8_t *b,
      std::size_t ldb, float *c, std::size_t ldc, std::size_t row0,
      const QuantEpilogue &epi)
{
    std::int32_t acc[kMaxMicroMR][kMaxMicroNR] = {};
    for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t *bg = b + g * ldb;
        for (std::size_t i = 0; i < mi; ++i) {
            const std::int8_t *ag = a + i * lda + 4 * g;
            const std::int32_t w0 = ag[0], w1 = ag[1];
            const std::int32_t w2 = ag[2], w3 = ag[3];
            for (std::size_t j = 0; j < nj; ++j) {
                const std::uint8_t *bc = bg + 4 * j;
                acc[i][j] += w0 * bc[0] + w1 * bc[1] +
                             w2 * bc[2] + w3 * bc[3];
            }
        }
    }
    for (std::size_t i = 0; i < mi; ++i)
        for (std::size_t j = 0; j < nj; ++j)
            storeQuantCell(c + i * ldc + j, acc[i][j], row0 + i, epi);
}

#if PCNN_QUANT_X86_TIERS

/// AVX2 6x16: per k4 group, two 32-byte column loads (8 columns of
/// 4 interleaved bytes each) against a broadcast 4-byte weight
/// group; maddubs (u8 x s8 -> pairwise i16, saturation-free for u7
/// operands) then madd(+1) folds each column's 4-term dot into one
/// exact i32 lane.
__attribute__((target("avx2")))
PCNN_HOT_PATH
void
qFullAvx2(std::size_t groups, const std::int8_t *a, std::size_t lda,
          const std::uint8_t *b, std::size_t ldb, float *c,
          std::size_t ldc, std::size_t row0, const QuantEpilogue &epi)
{
    constexpr std::size_t MR = 6;
    __m256i acc[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
        acc[i][0] = _mm256_setzero_si256();
        acc[i][1] = _mm256_setzero_si256();
    }
    const __m256i ones = _mm256_set1_epi16(1);
    for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t *bg = b + g * ldb;
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bg));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bg + 32));
        for (std::size_t i = 0; i < MR; ++i) {
            std::int32_t wbits;
            std::memcpy(&wbits, a + i * lda + 4 * g, 4);
            const __m256i wv = _mm256_set1_epi32(wbits);
            const __m256i p0 = _mm256_maddubs_epi16(b0, wv);
            const __m256i p1 = _mm256_maddubs_epi16(b1, wv);
            acc[i][0] =
                _mm256_add_epi32(acc[i][0], _mm256_madd_epi16(p0, ones));
            acc[i][1] =
                _mm256_add_epi32(acc[i][1], _mm256_madd_epi16(p1, ones));
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        const std::size_t row = row0 + i;
        const __m256i comp =
            _mm256_set1_epi32(epi.actZero * epi.rowSums[row]);
        const __m256 rs = _mm256_set1_ps(epi.scales[row] * epi.actScale);
        for (std::size_t l = 0; l < 2; ++l) {
            __m256 v = _mm256_cvtepi32_ps(
                _mm256_sub_epi32(acc[i][l], comp));
            v = _mm256_mul_ps(v, rs);
            if (epi.bias != nullptr)
                v = _mm256_add_ps(v, _mm256_set1_ps(epi.bias[row]));
            if (epi.relu)
                v = _mm256_max_ps(v, _mm256_setzero_ps());
            _mm256_storeu_ps(c + i * ldc + 8 * l, v);
        }
    }
}

/// AVX-512 8x32 (needs AVX-512BW for the 512-bit maddubs); same
/// exact-arithmetic structure as the AVX2 tile, twice as wide.
#if defined(__GNUC__) && !defined(__clang__)
// GCC lowers _mm512_max_ps through _mm512_undefined_ps(), whose
// deliberately-uninitialized pass-through operand trips
// -Wmaybe-uninitialized at -O3 despite being masked out.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
__attribute__((target("avx512f,avx512bw")))
PCNN_HOT_PATH
void
qFullAvx512(std::size_t groups, const std::int8_t *a, std::size_t lda,
            const std::uint8_t *b, std::size_t ldb, float *c,
            std::size_t ldc, std::size_t row0, const QuantEpilogue &epi)
{
    constexpr std::size_t MR = 8;
    __m512i acc[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
        acc[i][0] = _mm512_setzero_si512();
        acc[i][1] = _mm512_setzero_si512();
    }
    const __m512i ones = _mm512_set1_epi16(1);
    for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t *bg = b + g * ldb;
        const __m512i b0 = _mm512_loadu_si512(
            reinterpret_cast<const void *>(bg));
        const __m512i b1 = _mm512_loadu_si512(
            reinterpret_cast<const void *>(bg + 64));
        for (std::size_t i = 0; i < MR; ++i) {
            std::int32_t wbits;
            std::memcpy(&wbits, a + i * lda + 4 * g, 4);
            const __m512i wv = _mm512_set1_epi32(wbits);
            const __m512i p0 = _mm512_maddubs_epi16(b0, wv);
            const __m512i p1 = _mm512_maddubs_epi16(b1, wv);
            acc[i][0] =
                _mm512_add_epi32(acc[i][0], _mm512_madd_epi16(p0, ones));
            acc[i][1] =
                _mm512_add_epi32(acc[i][1], _mm512_madd_epi16(p1, ones));
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        const std::size_t row = row0 + i;
        const __m512i comp =
            _mm512_set1_epi32(epi.actZero * epi.rowSums[row]);
        const __m512 rs = _mm512_set1_ps(epi.scales[row] * epi.actScale);
        for (std::size_t l = 0; l < 2; ++l) {
            __m512 v = _mm512_cvtepi32_ps(
                _mm512_sub_epi32(acc[i][l], comp));
            v = _mm512_mul_ps(v, rs);
            if (epi.bias != nullptr)
                v = _mm512_add_ps(v, _mm512_set1_ps(epi.bias[row]));
            if (epi.relu)
                v = _mm512_max_ps(v, _mm512_setzero_ps());
            _mm512_storeu_ps(c + i * ldc + 16 * l, v);
        }
    }
}

/// AVX-512 VNNI variant of the 8x32 tile: vpdpbusd fuses the
/// maddubs/madd/add accumulation chain into one u8 x s8
/// dot-accumulate per b vector. The int32 tile it produces is the
/// identical exact sum (integer dot products have one value), so
/// dispatching on the host's VNNI support cannot change any output
/// bit — only the instruction count.
__attribute__((target("avx512f,avx512bw,avx512vnni")))
PCNN_HOT_PATH
void
qFullAvx512Vnni(std::size_t groups, const std::int8_t *a,
                std::size_t lda, const std::uint8_t *b, std::size_t ldb,
                float *c, std::size_t ldc, std::size_t row0,
                const QuantEpilogue &epi)
{
    constexpr std::size_t MR = 8;
    __m512i acc[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
        acc[i][0] = _mm512_setzero_si512();
        acc[i][1] = _mm512_setzero_si512();
    }
    for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t *bg = b + g * ldb;
        const __m512i b0 = _mm512_loadu_si512(
            reinterpret_cast<const void *>(bg));
        const __m512i b1 = _mm512_loadu_si512(
            reinterpret_cast<const void *>(bg + 64));
        for (std::size_t i = 0; i < MR; ++i) {
            std::int32_t wbits;
            std::memcpy(&wbits, a + i * lda + 4 * g, 4);
            const __m512i wv = _mm512_set1_epi32(wbits);
            acc[i][0] = _mm512_dpbusd_epi32(acc[i][0], b0, wv);
            acc[i][1] = _mm512_dpbusd_epi32(acc[i][1], b1, wv);
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        const std::size_t row = row0 + i;
        const __m512i comp =
            _mm512_set1_epi32(epi.actZero * epi.rowSums[row]);
        const __m512 rs = _mm512_set1_ps(epi.scales[row] * epi.actScale);
        for (std::size_t l = 0; l < 2; ++l) {
            __m512 v = _mm512_cvtepi32_ps(
                _mm512_sub_epi32(acc[i][l], comp));
            v = _mm512_mul_ps(v, rs);
            if (epi.bias != nullptr)
                v = _mm512_add_ps(v, _mm512_set1_ps(epi.bias[row]));
            if (epi.relu)
                v = _mm512_max_ps(v, _mm512_setzero_ps());
            _mm512_storeu_ps(c + i * ldc + 16 * l, v);
        }
    }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif // PCNN_QUANT_X86_TIERS

#if PCNN_QUANT_NEON_TIER

/// NEON 4x8: per k4 group, vmull_s8 multiplies two interleaved
/// columns (activations are <= 127, so the u8 panel reinterprets
/// safely as s8) and two pairwise adds fold each column's 4-term
/// dot into an exact i32 lane.
PCNN_HOT_PATH
void
qFullNeon(std::size_t groups, const std::int8_t *a, std::size_t lda,
          const std::uint8_t *b, std::size_t ldb, float *c,
          std::size_t ldc, std::size_t row0, const QuantEpilogue &epi)
{
    int32x2_t acc[4][4]; // [row][column pair]
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t p = 0; p < 4; ++p)
            acc[i][p] = vdup_n_s32(0);
    for (std::size_t g = 0; g < groups; ++g) {
        const std::int8_t *bg =
            reinterpret_cast<const std::int8_t *>(b + g * ldb);
        int8x8_t bb[4];
        for (std::size_t p = 0; p < 4; ++p)
            bb[p] = vld1_s8(bg + 8 * p);
        for (std::size_t i = 0; i < 4; ++i) {
            std::int32_t wbits;
            std::memcpy(&wbits, a + i * lda + 4 * g, 4);
            const int8x8_t wv = vreinterpret_s8_s32(vdup_n_s32(wbits));
            for (std::size_t p = 0; p < 4; ++p) {
                const int16x8_t prod = vmull_s8(bb[p], wv);
                const int32x4_t s = vpaddlq_s16(prod);
                acc[i][p] = vadd_s32(
                    acc[i][p],
                    vpadd_s32(vget_low_s32(s), vget_high_s32(s)));
            }
        }
    }
    for (std::size_t i = 0; i < 4; ++i) {
        const std::size_t row = row0 + i;
        const int32x4_t comp = vdupq_n_s32(epi.actZero * epi.rowSums[row]);
        const float rs = epi.scales[row] * epi.actScale;
        const int32x4_t lo32 = vcombine_s32(acc[i][0], acc[i][1]);
        const int32x4_t hi32 = vcombine_s32(acc[i][2], acc[i][3]);
        float32x4_t lo = vcvtq_f32_s32(vsubq_s32(lo32, comp));
        float32x4_t hi = vcvtq_f32_s32(vsubq_s32(hi32, comp));
        lo = vmulq_n_f32(lo, rs);
        hi = vmulq_n_f32(hi, rs);
        if (epi.bias != nullptr) {
            const float32x4_t bv = vdupq_n_f32(epi.bias[row]);
            lo = vaddq_f32(lo, bv);
            hi = vaddq_f32(hi, bv);
        }
        if (epi.relu) {
            const float32x4_t zv = vdupq_n_f32(0.0f);
            lo = vmaxq_f32(lo, zv);
            hi = vmaxq_f32(hi, zv);
        }
        vst1q_f32(c + i * ldc, lo);
        vst1q_f32(c + i * ldc + 4, hi);
    }
}

#endif // PCNN_QUANT_NEON_TIER

} // namespace

// ------------------------------------------------------- dispatch

bool
quantKernelTierSupported(KernelTier tier)
{
    switch (tier) {
    case KernelTier::Portable:
        return true;
#if PCNN_QUANT_X86_TIERS
    case KernelTier::Avx2:
        return cpuFeatures().avx2;
    case KernelTier::Avx512:
        return cpuFeatures().avx512f && cpuFeatures().avx512bw;
#endif
#if PCNN_QUANT_NEON_TIER
    case KernelTier::Neon:
        return true;
#endif
    default:
        return false;
    }
}

const QuantKernel &
quantKernelFor(KernelTier tier)
{
    PCNN_CHECK(quantKernelTierSupported(tier),
               "int8 kernel tier ", kernelTierName(tier),
               " not supported on this host/build");
    switch (tier) {
#if PCNN_QUANT_X86_TIERS
    case KernelTier::Avx2: {
        static const QuantKernel k{KernelTier::Avx2, 6, 16, qFullAvx2};
        return k;
    }
    case KernelTier::Avx512: {
        // Same exact int32 tile either way (see qFullAvx512Vnni);
        // VNNI hosts just spend a third of the vector ops on it.
        static const QuantKernel k{KernelTier::Avx512, 8, 32,
                                   cpuFeatures().avx512vnni
                                       ? qFullAvx512Vnni
                                       : qFullAvx512};
        return k;
    }
#endif
#if PCNN_QUANT_NEON_TIER
    case KernelTier::Neon: {
        static const QuantKernel k{KernelTier::Neon, 4, 8, qFullNeon};
        return k;
    }
#endif
    default: {
        static const QuantKernel k{KernelTier::Portable, kQPortableMR,
                                   kQPortableNR, qFullPortable};
        return k;
    }
    }
}

KernelTier
activeQuantKernelTier()
{
    KernelTier t = activeKernelTier();
    while (!quantKernelTierSupported(t)) {
        switch (t) {
        case KernelTier::Avx512:
            t = KernelTier::Avx2;
            break;
        default: // Avx2 / Neon downgrade straight to portable,
            t = KernelTier::Portable; // which is always supported
            break;
        }
    }
    return t;
}

// --------------------------------------------------------- driver

namespace {

/// Resolved kernel + cache blocking for one qgemm call. No Kc: the
/// int32 register tile is exact, so staging partial K sums would
/// cost stores without buying determinism, and the u8 panel is 4x
/// smaller than fp32 B anyway. Mc/Nc reuse activeBlocking().
struct QTiled
{
    const QuantKernel *qk = nullptr;
    std::size_t mc = 0;
    std::size_t nc = 0;
};

QTiled
resolveQgemm(std::size_t n)
{
    QTiled t;
    t.qk = &quantKernelFor(activeQuantKernelTier());
    if (n < t.qk->nr) // narrow output: portable tile wastes less
        t.qk = &quantKernelFor(KernelTier::Portable);
    const GemmBlocking blk = activeBlocking();
    t.mc = std::max(t.qk->mr, blk.mc - blk.mc % t.qk->mr);
    t.nc = std::max(t.qk->nr, blk.nc - blk.nc % t.qk->nr);
    return t;
}

PCNN_HOT_PATH
void
qSweep(const QTiled &t, std::size_t groups, const QuantizedPanel &a,
       const std::uint8_t *b, std::size_t ldb, float *c, std::size_t ldc,
       std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1,
       const QuantEpilogue &epi)
{
    const std::size_t mr = t.qk->mr;
    const std::size_t nr = t.qk->nr;
    const std::size_t lda = a.kp;
    for (std::size_t jc = c0; jc < c1; jc += t.nc) {
        const std::size_t jce = std::min(c1, jc + t.nc);
        for (std::size_t ic = r0; ic < r1; ic += t.mc) {
            const std::size_t ice = std::min(r1, ic + t.mc);
            for (std::size_t i = ic; i < ice; i += mr) {
                const std::size_t mi = std::min(mr, ice - i);
                const std::int8_t *at = a.ptr() + i * lda;
                float *ci = c + i * ldc;
                for (std::size_t j = jc; j < jce; j += nr) {
                    const std::size_t nj = std::min(nr, jce - j);
                    if (mi == mr && nj == nr) {
                        t.qk->full(groups, at, lda, b + 4 * j, ldb,
                                   ci + j, ldc, i, epi);
                    } else if (mi == mr) {
                        // Column edge: the panel is padded to
                        // quantPackedCols, so the full-width kernel
                        // can run against real bytes; stage its tile
                        // and copy out the valid columns. Same
                        // epilogue, same bits, no scalar edge on the
                        // panel's long dimension.
                        float ct[kMaxMicroMR * kMaxMicroNR];
                        t.qk->full(groups, at, lda, b + 4 * j, ldb, ct,
                                   nr, i, epi);
                        for (std::size_t r = 0; r < mr; ++r)
                            std::memcpy(ci + r * ldc + j, ct + r * nr,
                                        nj * sizeof(float));
                    } else {
                        // Row edge (< mr rows, so cheap): the weight
                        // panel has no pad rows to lean on.
                        qEdge(groups, mi, nj, at, lda, b + 4 * j, ldb,
                              ci + j, ldc, i, epi);
                    }
                }
            }
        }
    }
}

} // namespace

PCNN_HOT_PATH
void
qgemm(std::size_t m, std::size_t n, std::size_t k, const QuantizedPanel &a,
      const std::uint8_t *b, const QuantParams &bq, float *c,
      const float *bias, bool relu)
{
    if (m == 0 || n == 0)
        return;
    noteGemmRan();
    PCNN_CHECK(c != nullptr, "qgemm: null output");
    PCNN_CHECK(a.rows == m && a.cols == k, "qgemm: panel ", a.rows, "x",
               a.cols, " mismatches m=", m, " k=", k);
    PCNN_CHECK_LE(k, kQuantMaxK,
                  "qgemm: K exceeds the exact-int32 accumulation bound");
    PCNN_CHECK(k == 0 || b != nullptr, "qgemm: null activation panel");
    const std::size_t groups = (k + 3) / 4;
    QuantEpilogue epi;
    epi.scales = a.scales.data();
    epi.rowSums = a.rowSums.data();
    epi.actScale = bq.scale;
    epi.actZero = bq.zero;
    epi.bias = bias;
    epi.relu = relu;
    const QTiled t = resolveQgemm(n);
    const std::size_t ldb = 4 * quantPackedCols(n);
    const std::size_t ldc = n;
    const std::size_t mr = t.qk->mr;
    const std::size_t nr = t.qk->nr;
    const std::size_t row_blocks = (m + mr - 1) / mr;
    const std::size_t col_blocks = (n + nr - 1) / nr;
    if (row_blocks >= col_blocks) {
        parallelFor(row_blocks,
                    [&](std::size_t b0, std::size_t b1, std::size_t) {
                        qSweep(t, groups, a, b, ldb, c, ldc, b0 * mr,
                               std::min(m, b1 * mr), 0, n, epi);
                    });
    } else {
        parallelFor(col_blocks,
                    [&](std::size_t b0, std::size_t b1, std::size_t) {
                        qSweep(t, groups, a, b, ldb, c, ldc, 0, m,
                               b0 * nr, std::min(n, b1 * nr), epi);
                    });
    }
}

} // namespace pcnn
