/**
 * @file
 * Tensor primitives: CPU SGEMM, im2col/col2im, softmax, entropy.
 *
 * These are the building blocks the nn:: layers compose. The SGEMM
 * here is the *functional* counterpart of the GPU kernels the
 * analytical model in gpu:: reasons about — the paper lowers every
 * convolution to SGEMM via im2col (Section II.A, Fig. 2), and so do
 * we.
 */

#ifndef PCNN_TENSOR_TENSOR_OPS_HH
#define PCNN_TENSOR_TENSOR_OPS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace pcnn {

/** Dimensions of a C = op(A) x op(B) matrix product. */
struct GemmShape
{
    std::size_t m = 0; ///< rows of C
    std::size_t n = 0; ///< cols of C
    std::size_t k = 0; ///< inner dimension

    /** FLOPs of the product (one multiply-accumulate = 2 FLOPs). */
    double flops() const { return 2.0 * double(m) * double(n) * double(k); }
};

/** Fused post-GEMM operation (DESIGN.md §5e). */
enum class EpilogueOp : std::uint8_t
{
    None,     ///< plain C = op(A) op(B) + beta C
    Bias,     ///< add a per-row (or per-column) bias vector
    BiasRelu, ///< bias add followed by max(0, x)
};

/**
 * Epilogue applied to every C cell in the micro-kernel's store pass,
 * after the full-K accumulation and the beta term: the fused form of
 * the bias add and/or ReLU that would otherwise be a second full pass
 * over C. A cell's final value is epi(beta*c + sum) with the same
 * beta*c + sum bits as the unfused route, and max(0, x) is exact, so
 * fusing never changes results bitwise.
 *
 * `bias` may be null with BiasRelu to fuse a pure ReLU (the caller
 * already seeded C with the bias and runs beta = 1).
 */
struct Epilogue
{
    EpilogueOp op = EpilogueOp::None;
    const float *bias = nullptr; ///< length m (row) or n (colBias)
    bool colBias = false;        ///< index bias by column (FC layout)

    /** True when the store pass has work to do. */
    bool active() const { return op != EpilogueOp::None; }
};

/**
 * Single-precision GEMM: C = epi(op(A) * op(B) + beta * C).
 *
 * All matrices are dense row-major. op(A) is m x k, op(B) is k x n.
 * Transposed operands are packed into contiguous panels and fed to
 * the active SIMD micro-kernel tier (tensor/microkernel.hh: portable
 * Vec8 8x8, AVX2 6x16, AVX-512 8x32, NEON 8x8, runtime-dispatched
 * and overridable with PCNN_KERNEL_TIER) under a Kc/Mc/Nc
 * cache-blocking hierarchy; the M (or, for single-block-row shapes,
 * N) dimension is parallelized over the pcnn thread pool in
 * register-block-aligned bands, so results are bitwise identical for
 * every PCNN_THREADS value at a fixed tier and blocking. The
 * epilogue runs once per cell, on the final Kc chunk of the band
 * that owns it, while the tile is still cache-hot.
 * @param trans_a interpret A as transposed (A stored k x m)
 * @param trans_b interpret B as transposed (B stored n x k)
 */
void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, const float *a, const float *b, float *c,
           float beta = 0.0f, const Epilogue &epi = {});

/**
 * True once any GEMM (sgemm, sgemmPrepacked, or qgemm) has executed
 * in this process. Configuration hooks that would change the kernel
 * tier or blocking — and with them the bitwise result of later
 * fp32 GEMMs — consult this to refuse to flip dispatch state
 * mid-process: results computed before the flip could never be
 * reproduced after it (tests/test_serve.cc EngineMatchesPrototype*).
 * Monotone; never resets.
 */
bool gemmHasRun() noexcept;

/** Internal: GEMM entry points latch gemmHasRun(). */
void noteGemmRan() noexcept;

/**
 * A matrix operand materialized in the exact row-major layout the
 * SGEMM micro-kernel consumes: op(X) stored dense, rows x cols.
 *
 * `sgemm` builds such panels internally — and throws them away — on
 * every call with a transposed operand. Packing a *constant* operand
 * (layer weights) into a persistent PackedPanel once and reusing it
 * via sgemmPrepacked() removes that per-call copy entirely; this is
 * the zero-repack inference hot path of DESIGN.md §5d.
 *
 * Because the panel is an ordinary row-major matrix, `data.data()`
 * may equally be fed to sgemm() as a plain non-transposed operand on
 * either side of the product (the conv backward pass does this for
 * its packed W^T panels).
 *
 * `generation` tags which Param::generation() the panel was packed
 * from; 0 (never packed) is always stale.
 */
struct PackedPanel
{
    std::vector<float> data;      ///< grow-only backing store
    std::size_t rows = 0;         ///< rows of op(X)
    std::size_t cols = 0;         ///< cols of op(X)
    std::uint64_t generation = 0; ///< source Param generation

    /** Kernel-ready pointer to the packed rows x cols matrix. */
    const float *ptr() const { return data.data(); }
};

/**
 * Materialize op(W) into `panel` as a row-major rows x cols matrix.
 * @param trans if true, w is stored transposed (cols x rows) and is
 *        repacked; if false, w is copied verbatim
 * @param rows rows of op(W)
 * @param cols cols of op(W)
 *
 * The caller owns `panel.generation`; packWeights only fills data and
 * dimensions (the backing store grows but never shrinks).
 */
void packWeights(bool trans, std::size_t rows, std::size_t cols,
                 const float *w, PackedPanel &panel);

/**
 * Process-wide count of packWeights() panel materializations since
 * start-up (atomic, any thread). Serving tests pin the weight-sharing
 * contract with it: after a multi-replica engine warms up, steady
 * state must not move this counter — one pack serves every replica
 * (DESIGN.md §5f).
 */
std::uint64_t weightPackCount();

/**
 * C = epi(A * B + beta * C) with a prepacked B panel: A is row-major
 * m x k, `b` must hold a k x n panel. Bitwise identical to
 * sgemm(false, trans, m, n, k, a, w, c, beta, epi) where `b` was
 * packed from w with packWeights(trans, ...) — same micro-kernels,
 * same per-cell accumulation order — minus the per-call packing pass.
 */
void sgemmPrepacked(std::size_t m, std::size_t n, std::size_t k,
                    const float *a, const PackedPanel &b, float *c,
                    float beta = 0.0f, const Epilogue &epi = {});

/** Geometry of a convolution viewed from one input item. */
struct ConvGeom
{
    std::size_t inC = 0;
    std::size_t inH = 0;
    std::size_t inW = 0;
    std::size_t kernel = 0; ///< square filter side S_f
    std::size_t stride = 1;
    std::size_t pad = 0;

    /** Output height for this geometry. */
    std::size_t outH() const;

    /** Output width for this geometry. */
    std::size_t outW() const;

    /** Rows of the im2col matrix: S_f^2 * N_c. */
    std::size_t colRows() const { return kernel * kernel * inC; }
};

/**
 * im2col for one batch item: expands local receptive fields into a
 * (S_f^2 N_c) x (W_o H_o) column-major-of-patches matrix (stored
 * row-major, one row per filter element).
 *
 * The output layout doubles as a ready-to-consume SGEMM B panel
 * (row-major colRows() x positions): the conv forward path feeds it
 * to the kernel directly, with no intermediate packing pass.
 *
 * @param x input tensor (any batch size)
 * @param item which batch item to expand
 * @param g convolution geometry
 * @param cols output buffer, grown (never shrunk) to at least
 *        colRows() x (outH*outW); the result occupies that prefix
 * @param chan_off first input channel to read (grouped convolution
 *        reads a g.inC-wide channel window of a wider tensor)
 */
void im2col(const Tensor &x, std::size_t item, const ConvGeom &g,
            std::vector<float> &cols, std::size_t chan_off = 0);

/**
 * Partial im2col used by perforated convolution: only the given
 * output positions (indices into the flattened outH*outW grid) are
 * expanded, producing a colRows() x positions.size() matrix.
 */
void im2colAt(const Tensor &x, std::size_t item, const ConvGeom &g,
              const std::vector<std::size_t> &positions,
              std::vector<float> &cols, std::size_t chan_off = 0);

/**
 * col2im scatter-add: inverse of im2col, used by the conv backward
 * pass. Accumulates into dx (which must be pre-sized and may hold
 * other items' gradients), starting at channel chan_off.
 */
void col2im(const std::vector<float> &cols, std::size_t item,
            const ConvGeom &g, Tensor &dx, std::size_t chan_off = 0);

/**
 * Row-wise softmax over a logits tensor shaped [n, k, 1, 1].
 * Numerically stabilized by max subtraction.
 */
Tensor softmax(const Tensor &logits);

/**
 * Discrete entropy of one probability row (Eq. 2 of the paper):
 * H(Y) = -sum_i p_i log(p_i), natural log, 0 log 0 := 0.
 */
double entropy(const float *probs, std::size_t k);

/**
 * Mean entropy across a batch of probability rows [n, k, 1, 1].
 * This is the paper's CNN_entropy signal used for accuracy tuning.
 */
double batchEntropy(const Tensor &probs);

/** Index of the largest value in a row of k floats. */
std::size_t argmax(const float *row, std::size_t k);

/** Per-item argmax of a [n, k, 1, 1] probability/logit tensor. */
std::vector<std::size_t> argmaxRows(const Tensor &t);

} // namespace pcnn

#endif // PCNN_TENSOR_TENSOR_OPS_HH
