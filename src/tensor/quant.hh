/**
 * @file
 * Int8 quantized GEMM: per-channel weight panels, activation
 * quantization, and the tiered int8 micro-kernel family.
 *
 * Scheme (DESIGN.md section 5i): weights are per-output-channel
 * symmetric int8 in [-127, 127] with one fp32 scale per row;
 * activations are per-tensor asymmetric *unsigned 7-bit* in
 * [0, 127] with a single scale and zero point. Restricting the
 * unsigned operand to 7 bits makes the AVX2 `maddubs` pairwise
 * i16 sums (max 2 * 127 * 127 = 32258 < 32767) saturation-free,
 * so every tier computes the identical exact int32 dot product.
 *
 * Determinism contract — stronger than fp32's: int32 accumulation
 * is exact and associative within bounds (qgemm checks
 * k <= kQuantMaxK), and the dequant+bias+ReLU epilogue applies a
 * fixed scalar float sequence (convert, multiply, add, clamp — no
 * FMA) in every tier, so quantized results are bitwise identical
 * across *all* kernel tiers, thread counts, and blocking choices,
 * not just within a tier.
 */

#ifndef PCNN_TENSOR_QUANT_HH
#define PCNN_TENSOR_QUANT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/microkernel.hh"

namespace pcnn {

/** Per-tensor asymmetric activation quantization parameters.
 *
 * real = scale * (q - zero), with q restricted to [0, 127]. The
 * defaults (scale 1, zero 0) quantize a non-negative identity
 * range and are always valid.
 */
struct QuantParams
{
    float scale = 1.0f;    ///< dequantization step (finite, > 0)
    std::uint8_t zero = 0; ///< zero point, in [0, 127]
};

/** Compute per-tensor activation quantization parameters from the
 * min/max of `count` floats. The range is widened to include 0 so
 * zero padding and ReLU outputs are exactly representable; a
 * degenerate or non-finite range yields the identity params. */
QuantParams computeQuantParams(const float *x, std::size_t count);

/** Packed per-output-channel int8 weight panel for qgemm's A side.
 *
 * `data` holds rows x kp row-major int8, where kp is cols rounded
 * up to a multiple of 4 and the pad bytes are zero (they meet the
 * activation panel's pad bytes, contributing exactly 0). `scales`
 * and `rowSums` carry one entry per row: the symmetric dequant
 * scale and the sum of the quantized weights (used to fold the
 * activation zero point out of the int32 accumulator). Like
 * PackedPanel, `generation` tags the Param generation the panel
 * was quantized from so weight updates invalidate it.
 */
struct QuantizedPanel
{
    std::vector<std::int8_t> data;     ///< rows x kp, row-major
    std::vector<float> scales;         ///< per-row dequant scale
    std::vector<std::int32_t> rowSums; ///< per-row sum of int8 weights
    std::size_t rows = 0;              ///< output channels (M)
    std::size_t cols = 0;              ///< real inner dimension (K)
    std::size_t kp = 0;                ///< padded K (multiple of 4)
    std::uint64_t generation = 0;      ///< source Param generation

    const std::int8_t *ptr() const { return data.data(); }
};

/** Quantize a rows x cols row-major fp32 weight matrix into `panel`
 * (per-row symmetric, scale = maxabs / 127, all-zero rows get scale
 * 1). Grow-only on repeated calls; bumps quantPackCount(). The
 * caller stamps `panel.generation`. */
void quantizeWeights(std::size_t rows, std::size_t cols, const float *w,
                     QuantizedPanel &panel);

/** Process-wide count of weight-panel quantizations, the int8
 * counterpart of weightPackCount(). Serving asserts it stays flat
 * across replica forwards (panels are shared, never re-quantized). */
std::uint64_t quantPackCount();

/** Activation-panel column count after padding: n rounded up to a
 * multiple of 32 (the widest tier's nr), so qgemm's column-edge
 * tiles can always run the full-width vector kernel and stage the
 * valid columns out — no scalar column edges. Pad columns hold the
 * zero point; their outputs are never stored. */
constexpr std::size_t
quantPackedCols(std::size_t n)
{
    return (n + 31) & ~std::size_t(31);
}

/** Quantize and pack an fp32 activation matrix into qgemm's B-side
 * u8 panel: k4-interleaved with np = quantPackedCols(n) columns,
 * group g of 4 k-rows stores column j as 4 consecutive bytes at
 * g*4np + 4j. When `trans` is false the source is k x n row-major
 * with leading dimension `ld` (>= n); when true it is n x k
 * row-major (B[p][j] = x[j*ld + p]), which packs an FC batch
 * without materializing x^T. Pad k-rows and pad columns are filled
 * with the zero point. Grow-only resize of `out`. */
void quantizePackActivations(const float *x, std::size_t k, std::size_t n,
                             std::size_t ld, bool trans,
                             const QuantParams &qp,
                             std::vector<std::uint8_t> &out);

/** Fused dequant epilogue parameters, applied per register tile:
 *   adj = acc - actZero * rowSums[row]
 *   v   = float(adj) * (scales[row] * actScale)  [+ bias[row]] [ReLU]
 * Every tier performs this exact scalar sequence (element-wise in
 * the vector tiers, no FMA), so the fp32 outputs are bitwise
 * identical across tiers. */
struct QuantEpilogue
{
    const float *scales = nullptr;        ///< per-row weight scales
    const std::int32_t *rowSums = nullptr;///< per-row weight sums
    float actScale = 1.0f;                ///< activation scale
    std::int32_t actZero = 0;             ///< activation zero point
    const float *bias = nullptr;          ///< per-row bias, may be null
    bool relu = false;                    ///< clamp negatives to +0
};

/** Full-tile int8 micro-kernel: mr x nr register tile over `groups`
 * k4 groups. `a` points at the tile's rows (stride `lda` = panel
 * kp), `b` at the tile's columns within the interleaved panel
 * (stride `ldb` = 4 * panel width, column c at b + g*ldb + 4*c),
 * `c` at the fp32 output tile (overwrite-store), and `row0` is the
 * tile's global row for indexing the epilogue arrays. */
using QuantFullFn = void (*)(std::size_t groups, const std::int8_t *a,
                             std::size_t lda, const std::uint8_t *b,
                             std::size_t ldb, float *c, std::size_t ldc,
                             std::size_t row0, const QuantEpilogue &epi);

/** One int8 micro-kernel implementation. */
struct QuantKernel
{
    KernelTier tier = KernelTier::Portable;
    std::size_t mr = 0;
    std::size_t nr = 0;
    QuantFullFn full = nullptr;
};

/** Whether this build/host can run the tier's int8 kernel. The
 * AVX-512 int8 tier additionally needs AVX-512BW (for the 512-bit
 * maddubs), which some AVX-512F hosts lack. */
bool quantKernelTierSupported(KernelTier tier);

/** The int8 micro-kernel for a tier; PCNN_CHECK-fails when
 * unsupported. */
const QuantKernel &quantKernelFor(KernelTier tier);

/** The int8 tier qgemm dispatches to: activeKernelTier() downgraded
 * along avx512 -> avx2 -> portable (neon -> portable) until the
 * int8 kernel is supported. Respects PCNN_KERNEL_TIER pins. */
KernelTier activeQuantKernelTier();

/** qgemm rejects K beyond this bound: 4 * 127 * 127 per k4 group
 * times 2^17 / 4 groups stays below 2^31, keeping the int32
 * accumulator exact (and therefore tier/thread invariant). */
constexpr std::size_t kQuantMaxK = std::size_t(1) << 17;

/** Quantized GEMM with fused dequant epilogue:
 *   C (m x n fp32, row-major, ldc = n) =
 *     dequant(A_q x B_q) [+ bias] [ReLU]
 * `a` is the prequantized weight panel (a.rows == m, a.cols == k),
 * `b` the interleaved activation panel from
 * quantizePackActivations, `bq` its params. Accumulates the full K
 * in registers (no Kc pass — the int32 tile is exact, so staging
 * is pure overhead), reuses activeBlocking()'s Mc/Nc for cache
 * footprint, and splits work across the pool by row or column
 * bands exactly like sgemm. Alloc-free. */
void qgemm(std::size_t m, std::size_t n, std::size_t k,
           const QuantizedPanel &a, const std::uint8_t *b,
           const QuantParams &bq, float *c, const float *bias, bool relu);

} // namespace pcnn

#endif // PCNN_TENSOR_QUANT_HH
