/**
 * @file
 * Winograd F(2x2,3x3) fast convolution (DESIGN.md §5e).
 *
 * For stride-1 3x3 convolutions the minimal-filtering algorithm of
 * Lavin & Gray replaces the 36 multiply-accumulates of a 2x2 output
 * tile (im2col route) with 16: inputs and weights are mapped into a
 * 4x4 "transform domain", multiplied pointwise there, and the 2x2
 * result mapped back. Batched over all tiles of an image, the
 * pointwise products become 16 small GEMMs — one per transform point
 * — which reuse the pcnn SGEMM micro-kernels and thread pool.
 *
 * The weight-side transform is input-independent, so it is computed
 * once per weight generation and cached (Param generation-counter
 * invalidation protocol, DESIGN.md §5d) as 16 ready-to-use SGEMM B
 * operands; the inference hot path performs zero weight-side work.
 *
 * Numerics: the transforms re-associate the inner sum, so results are
 * NOT bitwise identical to the im2col route — agreement is bounded by
 * a small relative error (tests pin max-rel-err budgets). Results ARE
 * bitwise identical across PCNN_THREADS values: tile transforms
 * partition disjoint tiles and the per-point GEMMs inherit the sgemm
 * determinism contract.
 */

#ifndef PCNN_TENSOR_WINOGRAD_HH
#define PCNN_TENSOR_WINOGRAD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

/** True when the geometry can take the F(2x2,3x3) fast path. */
inline bool
winogradApplicable(const ConvGeom &g)
{
    return g.kernel == 3 && g.stride == 1;
}

/** 2x2-output tile grid covering an outH x outW plane (edge tiles
 *  may be clipped to 1 valid row/column on odd extents). */
inline std::size_t
winogradTileRows(std::size_t out_h)
{
    return (out_h + 1) / 2;
}

inline std::size_t
winogradTileCols(std::size_t out_w)
{
    return (out_w + 1) / 2;
}

/**
 * Pre-transformed weights U = G g G^T for one convolution group,
 * laid out as 16 persistent SGEMM B operands: point(p) is the
 * row-major inC x outC matrix U^T[p], consumed by the tile-GEMM
 * M_p[tiles x outC] = V_p[tiles x inC] * U^T[p] with no per-call
 * packing (the PackedPanel philosophy of DESIGN.md §5d).
 */
struct WinogradWeights
{
    std::vector<float> data;      ///< grow-only, [16][inC][outC]
    std::size_t inC = 0;
    std::size_t outC = 0;
    std::uint64_t generation = 0; ///< source Param generation; 0 = stale

    /** B operand for transform point p in [0, 16). */
    const float *point(std::size_t p) const
    {
        return data.data() + p * inC * outC;
    }
};

/**
 * Transform one group's filters into `out`. `w` is the group's slice
 * of the conv weight tensor, row-major [outC][inC][3][3]. The caller
 * owns `out.generation`.
 */
void winogradTransformWeights(const float *w, std::size_t in_c,
                              std::size_t out_c, WinogradWeights &out);

/**
 * Process-wide count of winogradTransformWeights() materializations
 * since start-up (atomic, any thread) — the winograd-side companion
 * of weightPackCount(), pinned by the serving weight-sharing tests
 * (DESIGN.md §5f).
 */
std::uint64_t winogradPackCount();

/** Grow-only transform-domain scratch, pooled per worker lane. */
struct WinogradScratch
{
    std::vector<float> v; ///< input transforms, [16][tiles][inC]
    std::vector<float> m; ///< products, [16][tiles][outC]
};

/**
 * F(2x2,3x3) forward convolution for one batch item and one group.
 *
 * Reads g.inC channels of `x` starting at `chan_off`, writes
 * wts.outC channels of `y` starting at `out_chan_off`. `bias`, when
 * non-null, holds wts.outC per-channel biases added in the output
 * transform; `fuse_relu` additionally clamps at zero there (the
 * epilogue-fusion protocol of DESIGN.md §5e).
 *
 * Requires winogradApplicable(g) and wts.inC == g.inC.
 */
void winogradForward(const Tensor &x, std::size_t item,
                     const ConvGeom &g, std::size_t chan_off,
                     const WinogradWeights &wts, const float *bias,
                     Tensor &y, std::size_t out_chan_off,
                     bool fuse_relu, WinogradScratch &scratch);

} // namespace pcnn

#endif // PCNN_TENSOR_WINOGRAD_HH
