#include "tensor/tensor_ops.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/tags.hh"
#include "tensor/microkernel.hh"

namespace pcnn {

namespace {

// Row-block granule of the k == 0 epilogue-only pass. Elementwise, so
// any partition yields identical bits; 8 matches the portable tile.
constexpr std::size_t kEpiBlock = 8;

/**
 * Edge micro-tile for mr x nr remainders (mr <= kMaxMicroMR,
 * nr <= kMaxMicroNR), shared by every tier. Accumulation per cell is
 * the same pure k-order as the full kernels, and the full/edge split
 * depends only on (m, n) and the blocking, so a cell's value never
 * depends on the thread count.
 */
inline void
microEdge(std::size_t k, std::size_t mr, std::size_t nr, const float *a,
          std::size_t lda, const float *b, std::size_t ldb, float *c,
          std::size_t ldc)
{
    float acc[kMaxMicroMR][kMaxMicroNR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = a[i * lda + p];
            for (std::size_t j = 0; j < nr; ++j)
                acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < mr; ++i)
        for (std::size_t j = 0; j < nr; ++j)
            c[i * ldc + j] += acc[i][j];
}

/**
 * Epilogue store pass over the tile C[0..mr)x[0..nr): bias add
 * (row- or column-indexed) and/or ReLU, applied to the final
 * accumulated values while the tile is still cache-hot. `row0`/`col0`
 * are the tile's global C coordinates, used to index the bias vector.
 */
inline void
applyEpilogue(const Epilogue &epi, std::size_t row0, std::size_t col0,
              std::size_t mr, std::size_t nr, float *c,
              std::size_t ldc)
{
    const bool relu = epi.op == EpilogueOp::BiasRelu;
    for (std::size_t i = 0; i < mr; ++i) {
        float *crow = c + i * ldc;
        const float rb =
            (epi.bias && !epi.colBias) ? epi.bias[row0 + i] : 0.0f;
        if (epi.bias && epi.colBias) {
            const float *cb = epi.bias + col0;
            for (std::size_t j = 0; j < nr; ++j) {
                float v = crow[j] + cb[j];
                crow[j] = (relu && v < 0.0f) ? 0.0f : v;
            }
        } else if (epi.bias) {
            for (std::size_t j = 0; j < nr; ++j) {
                float v = crow[j] + rb;
                crow[j] = (relu && v < 0.0f) ? 0.0f : v;
            }
        } else {
            for (std::size_t j = 0; j < nr; ++j)
                crow[j] = crow[j] < 0.0f ? 0.0f : crow[j];
        }
    }
}

/**
 * Per-call resolution of the dispatch state: the active micro-kernel
 * plus the blocking hierarchy re-aligned to its register tile. The
 * narrow-N fallback keeps panels thinner than the tier's register
 * tile (winograd tile-GEMMs run n = 8..32, FC heads can be narrower
 * still) on the portable 8-wide kernel instead of pushing every
 * column into the scalar edge path. All of this depends only on the
 * shape and the pinned tier/blocking — never on the thread count.
 */
struct TiledGemm
{
    const MicroKernel *mk;
    std::size_t kc, mc, nc, pf;
};

TiledGemm
resolveGemm(std::size_t n)
{
    const MicroKernel *mk = &microKernelFor(activeKernelTier());
    if (n < mk->nr)
        mk = &microKernelFor(KernelTier::Portable);
    const GemmBlocking blk = activeBlocking();
    TiledGemm t;
    t.mk = mk;
    t.kc = std::max<std::size_t>(blk.kc, 1);
    t.mc = std::max(mk->mr, blk.mc - blk.mc % mk->mr);
    t.nc = std::max(mk->nr, blk.nc - blk.nc % mk->nr);
    t.pf = blk.prefetch;
    return t;
}

/**
 * Register-tile sweep of C rows [i0, i1) x cols [j0, j1) over the K
 * range [p0, p1): the innermost stop of the blocking hierarchy.
 * i0/j0 are mr/nr-aligned by construction of the partitions in
 * rangeSweep (thread bands, Mc blocks and Nc panels are all
 * register-tile multiples), so the full/edge kernel split depends
 * only on (m, n) and the blocking, not on the thread count. `epi` is
 * non-null only on the final K chunk; each cell belongs to exactly
 * one tile of that chunk, so the epilogue runs exactly once per cell
 * after its full-K accumulation. `row_off` maps tile rows to global
 * C rows for the bias indexing of packed row bands; columns are
 * always global.
 */
void
tileSweep(const TiledGemm &t, std::size_t i0, std::size_t i1,
          std::size_t j0, std::size_t j1, std::size_t p0,
          std::size_t p1, const float *a, std::size_t lda,
          const float *b, std::size_t ldb, float *c, std::size_t ldc,
          const Epilogue *epi, std::size_t row_off)
{
    const std::size_t mr = t.mk->mr, nr = t.mk->nr;
    const std::size_t kk = p1 - p0;
    const float *bbase = b + p0 * ldb;
    for (std::size_t i = i0; i < i1; i += mr) {
        const std::size_t mi = std::min(mr, i1 - i);
        const float *arow = a + i * lda + p0;
        for (std::size_t j = j0; j < j1; j += nr) {
            const std::size_t nj = std::min(nr, j1 - j);
            if (mi == mr && nj == nr)
                t.mk->full(kk, arow, lda, bbase + j, ldb,
                           c + i * ldc + j, ldc, t.pf);
            else
                microEdge(kk, mi, nj, arow, lda, bbase + j, ldb,
                          c + i * ldc + j, ldc);
            if (epi != nullptr)
                applyEpilogue(*epi, row_off + i, j, mi, nj,
                              c + i * ldc + j, ldc);
        }
    }
}

/**
 * Cache-blocked sweep of C rows [r0, r1) x cols [c0, c1): Nc panels
 * outermost (the Kc x Nc B slab stays L2-resident across the row
 * sweep), Kc chunks next (ascending, so every C cell accumulates its
 * K range in pure ascending order regardless of the blocking), Mc
 * row blocks innermost (the Mc x Kc A block stays near-L1 across the
 * panel). One thread owns the whole range, so per-cell accumulation
 * order is fixed for every thread count; the epilogue rides the last
 * Kc chunk. A is row-major with leading dimension lda >= k; rows are
 * relative to `a` (callers pass packed bands with row_off mapping
 * back to global C rows).
 */
void
rangeSweep(const TiledGemm &t, std::size_t r0, std::size_t r1,
           std::size_t c0, std::size_t c1, std::size_t k,
           const float *a, std::size_t lda, const float *b,
           std::size_t ldb, float *c, std::size_t ldc,
           const Epilogue &epi, std::size_t row_off)
{
    for (std::size_t jc = c0; jc < c1; jc += t.nc) {
        const std::size_t j1 = std::min(c1, jc + t.nc);
        for (std::size_t pc = 0; pc < k; pc += t.kc) {
            const std::size_t p1 = std::min(k, pc + t.kc);
            const Epilogue *e =
                (p1 == k && epi.active()) ? &epi : nullptr;
            for (std::size_t ic = r0; ic < r1; ic += t.mc)
                tileSweep(t, ic, std::min(r1, ic + t.mc), jc, j1, pc,
                          p1, a, lda, b, ldb, c, ldc, e, row_off);
        }
    }
}

/** Pack op(B) into a row-major k x n panel (cache-blocked transpose). */
void
packB(std::size_t n, std::size_t k, const float *b, float *bp)
{
    // b is stored n x k (trans_b); bp[p * n + j] = b[j * k + p].
    constexpr std::size_t kTile = 32;
    parallelFor((k + kTile - 1) / kTile,
                [&](std::size_t t0, std::size_t t1, std::size_t) {
                    for (std::size_t t = t0; t < t1; ++t) {
                        const std::size_t p0 = t * kTile;
                        const std::size_t p1 = std::min(k, p0 + kTile);
                        for (std::size_t jj = 0; jj < n; jj += kTile) {
                            const std::size_t j1 =
                                std::min(n, jj + kTile);
                            for (std::size_t j = jj; j < j1; ++j)
                                for (std::size_t p = p0; p < p1; ++p)
                                    bp[p * n + j] = b[j * k + p];
                        }
                    }
                });
}

/** Pack op(A) rows [r0, r1) into a row-major (r1-r0) x k panel. */
void
packA(std::size_t r0, std::size_t r1, std::size_t m, std::size_t k,
      const float *a, float *ap)
{
    // a is stored k x m (trans_a); ap[(i - r0) * k + p] = a[p * m + i].
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = a + p * m;
        for (std::size_t i = r0; i < r1; ++i)
            ap[(i - r0) * k + p] = arow[i];
    }
}

/** Per-thread packing scratch, reused across sgemm calls. */
thread_local std::vector<float> tlPackA;
thread_local std::vector<float> tlPackB;

/** Latched by the first GEMM of the process; see gemmHasRun(). */
std::atomic<bool> &
gemmRanFlag() noexcept
{
    static std::atomic<bool> ran{false};
    return ran;
}

} // namespace

bool
gemmHasRun() noexcept
{
    return gemmRanFlag().load(std::memory_order_relaxed);
}

void
noteGemmRan() noexcept
{
    gemmRanFlag().store(true, std::memory_order_relaxed);
}

PCNN_HOT_PATH
void
sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
      std::size_t k, const float *a, const float *b, float *c,
      float beta, const Epilogue &epi)
{
    if (m == 0 || n == 0)
        return;
    noteGemmRan();
    PCNN_CHECK(c != nullptr, "sgemm: null C for m=", m, " n=", n);
    PCNN_CHECK(k == 0 || (a != nullptr && b != nullptr),
               "sgemm: null operand for m=", m, " n=", n, " k=", k);
    PCNN_CHECK(epi.op != EpilogueOp::Bias || epi.bias != nullptr,
               "sgemm: Bias epilogue without a bias vector");
    if (beta == 0.0f) {
        std::fill(c, c + m * n, 0.0f);
    } else if (beta != 1.0f) {
        for (std::size_t i = 0; i < m * n; ++i)
            c[i] *= beta;
    }
    if (k == 0) {
        // No accumulation pass will run, so apply the epilogue to the
        // beta-scaled C directly (elementwise, so the partition
        // cannot change bits).
        if (epi.active())
            parallelFor((m + kEpiBlock - 1) / kEpiBlock,
                        [&](std::size_t b0, std::size_t b1,
                            std::size_t) {
                            const std::size_t r0 = b0 * kEpiBlock;
                            const std::size_t r1 =
                                std::min(m, b1 * kEpiBlock);
                            applyEpilogue(epi, r0, 0, r1 - r0, n,
                                          c + r0 * n, n);
                        });
        return;
    }

    // Operand packing normalizes all four transpose cases to the one
    // row-major blocked sweep above.
    const float *bmat = b;
    if (trans_b) {
        std::vector<float> &bp = tlPackB;
        // pcnn-analyze: allow(hot-path-alloc): grow-only
        // thread-local packing scratch.
        if (bp.size() < k * n)
            bp.resize(k * n);
        packB(n, k, b, bp.data());
        bmat = bp.data();
    }

    const TiledGemm t = resolveGemm(n);
    const std::size_t mr = t.mk->mr, nr = t.mk->nr;
    const std::size_t row_blocks = (m + mr - 1) / mr;
    const std::size_t col_blocks = (n + nr - 1) / nr;

    // Row-band parallelism over M; when M is a single block-row,
    // partition the N dimension instead. Both partitions are aligned
    // to the active tier's register blocking and every band runs its
    // own cache-blocked sweep with a fixed per-cell accumulation
    // order, so results are bitwise identical for every thread count
    // (per tier/blocking).
    if (row_blocks >= col_blocks || trans_a) {
        parallelFor(
            row_blocks,
            [&](std::size_t b0, std::size_t b1, std::size_t) {
                const std::size_t r0 = b0 * mr;
                const std::size_t r1 = std::min(m, b1 * mr);
                const float *amat = a + r0 * k;
                if (trans_a) {
                    std::vector<float> &ap = tlPackA;
                    // pcnn-analyze: allow(hot-path-alloc): grow-only
                    // thread-local packing scratch.
                    if (ap.size() < (r1 - r0) * k)
                        ap.resize((r1 - r0) * k);
                    packA(r0, r1, m, k, a, ap.data());
                    amat = ap.data();
                }
                rangeSweep(t, 0, r1 - r0, 0, n, k, amat, k, bmat, n,
                           c + r0 * n, n, epi, r0);
            });
    } else {
        parallelFor(col_blocks,
                    [&](std::size_t b0, std::size_t b1, std::size_t) {
                        const std::size_t j0 = b0 * nr;
                        const std::size_t j1 = std::min(n, b1 * nr);
                        rangeSweep(t, 0, m, j0, j1, k, a, k, bmat, n,
                                   c, n, epi, 0);
                    });
    }
}

namespace {

/// process-wide packWeights() materialization counter (see header)
std::atomic<std::uint64_t> &
packCounter()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

} // namespace

std::uint64_t
weightPackCount()
{
    return packCounter().load(std::memory_order_relaxed);
}

void
packWeights(bool trans, std::size_t rows, std::size_t cols,
            const float *w, PackedPanel &panel)
{
    PCNN_CHECK(rows * cols == 0 || w != nullptr,
               "packWeights: null source for ", rows, "x", cols);
    packCounter().fetch_add(1, std::memory_order_relaxed);
    // pcnn-analyze: allow(hot-path-alloc): generation-gated
    // weight repack; callers only invoke this when the source
    // weights changed.
    if (panel.data.size() < rows * cols)
        panel.data.resize(rows * cols);
    panel.rows = rows;
    panel.cols = cols;
    if (rows * cols == 0)
        return;
    if (trans)
        packB(cols, rows, w, panel.data.data());
    else
        std::memcpy(panel.data.data(), w,
                    rows * cols * sizeof(float));
}

PCNN_HOT_PATH
void
sgemmPrepacked(std::size_t m, std::size_t n, std::size_t k,
               const float *a, const PackedPanel &b, float *c,
               float beta, const Epilogue &epi)
{
    PCNN_CHECK(b.rows == k && b.cols == n, "sgemmPrepacked: panel ",
               b.rows, "x", b.cols, " mismatches k=", k, " n=", n);
    // A packed panel is the row-major k x n matrix the kernel wants;
    // the non-transposed sgemm path consumes it with zero copies and
    // the identical micro-kernel schedule.
    sgemm(false, false, m, n, k, a, b.ptr(), c, beta, epi);
}

std::size_t
ConvGeom::outH() const
{
    PCNN_CHECK_GT(kernel, 0u, "conv geometry: zero kernel");
    PCNN_CHECK_GT(stride, 0u, "conv geometry: zero stride");
    PCNN_CHECK_GE(inH + 2 * pad, kernel, "conv geometry under-sized: inH ",
                  inH, " pad ", pad, " kernel ", kernel);
    return (inH + 2 * pad - kernel) / stride + 1;
}

std::size_t
ConvGeom::outW() const
{
    PCNN_CHECK_GT(kernel, 0u, "conv geometry: zero kernel");
    PCNN_CHECK_GT(stride, 0u, "conv geometry: zero stride");
    PCNN_CHECK_GE(inW + 2 * pad, kernel, "conv geometry under-sized: inW ",
                  inW, " pad ", pad, " kernel ", kernel);
    return (inW + 2 * pad - kernel) / stride + 1;
}

namespace {

/**
 * The output columns [lo, hi) whose input tap ix = ox*stride + kx - pad
 * lands inside [0, inW); everything outside is padding.
 */
inline void
validColRange(std::size_t ow, std::size_t stride, std::size_t kx,
              std::size_t pad, std::size_t in_w, std::size_t &lo,
              std::size_t &hi)
{
    lo = (pad > kx) ? (pad - kx + stride - 1) / stride : 0;
    const long last = long(in_w) - 1 - long(kx) + long(pad);
    hi = last < 0 ? 0 : std::min<std::size_t>(ow, std::size_t(last) /
                                                      stride + 1);
    lo = std::min(lo, hi);
}

} // namespace

void
im2col(const Tensor &x, std::size_t item, const ConvGeom &g,
       std::vector<float> &cols, std::size_t chan_off)
{
    pcnn_assert(x.shape().c >= chan_off + g.inC &&
                    x.shape().h == g.inH && x.shape().w == g.inW,
                "im2col input ", x.shape().str(),
                " mismatches geometry at channel offset ", chan_off);
    const std::size_t oh = g.outH(), ow = g.outW();
    const std::size_t n_cols = oh * ow;
    const std::size_t rows = g.colRows();
    // Grow-only: alternating geometries (perforated vs. full layers
    // sharing one scratch pool) must not shrink and regrow the
    // allocation on every call.
    // pcnn-analyze: allow(hot-path-alloc): the grow-only
    // policy stated above.
    if (cols.size() < rows * n_cols)
        cols.resize(rows * n_cols);

    const std::size_t plane = g.inH * g.inW;
    const float *xbase =
        x.data() + (item * x.shape().c + chan_off) * plane;
    const std::size_t taps = g.kernel * g.kernel;

    // One thread per band of cols-matrix rows: each row (c, ky, kx)
    // is a shifted copy of one input plane, written contiguously.
    parallelFor(rows, [&](std::size_t r0, std::size_t r1,
                          std::size_t) {
        for (std::size_t r = r0; r < r1; ++r) {
            const std::size_t c = r / taps;
            const std::size_t ky = (r % taps) / g.kernel;
            const std::size_t kx = r % g.kernel;
            const float *src_plane = xbase + c * plane;
            float *out = cols.data() + r * n_cols;
            std::size_t lo, hi;
            validColRange(ow, g.stride, kx, g.pad, g.inW, lo, hi);
            for (std::size_t oy = 0; oy < oh; ++oy) {
                float *orow = out + oy * ow;
                const long iy =
                    long(oy * g.stride + ky) - long(g.pad);
                if (iy < 0 || iy >= long(g.inH)) {
                    std::memset(orow, 0, ow * sizeof(float));
                    continue;
                }
                const float *src = src_plane + std::size_t(iy) * g.inW;
                if (lo > 0)
                    std::memset(orow, 0, lo * sizeof(float));
                if (g.stride == 1) {
                    std::memcpy(orow + lo, src + lo + kx - g.pad,
                                (hi - lo) * sizeof(float));
                } else {
                    for (std::size_t ox = lo; ox < hi; ++ox)
                        orow[ox] =
                            src[ox * g.stride + kx - g.pad];
                }
                if (hi < ow)
                    std::memset(orow + hi, 0,
                                (ow - hi) * sizeof(float));
            }
        }
    });
}

void
im2colAt(const Tensor &x, std::size_t item, const ConvGeom &g,
         const std::vector<std::size_t> &positions,
         std::vector<float> &cols, std::size_t chan_off)
{
    pcnn_assert(x.shape().c >= chan_off + g.inC &&
                    x.shape().h == g.inH && x.shape().w == g.inW,
                "im2colAt input ", x.shape().str(),
                " mismatches geometry at channel offset ", chan_off);
    const std::size_t ow = g.outW();
    const std::size_t full = g.outH() * ow;
    for (std::size_t pos : positions)
        pcnn_assert(pos < full, "perforation position ", pos,
                    " outside output grid");
    const std::size_t n_cols = positions.size();
    const std::size_t rows = g.colRows();
    // pcnn-analyze: allow(hot-path-alloc): grow-only scratch
    // shared with im2col above.
    if (cols.size() < rows * n_cols)
        cols.resize(rows * n_cols);

    const std::size_t plane = g.inH * g.inW;
    const float *xbase =
        x.data() + (item * x.shape().c + chan_off) * plane;

    parallelFor(n_cols, [&](std::size_t i0, std::size_t i1,
                            std::size_t) {
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t oy = positions[i] / ow;
            const std::size_t ox = positions[i] % ow;
            std::size_t row = 0;
            for (std::size_t c = 0; c < g.inC; ++c) {
                const float *src_plane = xbase + c * plane;
                for (std::size_t ky = 0; ky < g.kernel; ++ky) {
                    const long iy =
                        long(oy * g.stride + ky) - long(g.pad);
                    const bool y_in = iy >= 0 && iy < long(g.inH);
                    const float *src =
                        y_in ? src_plane + std::size_t(iy) * g.inW
                             : nullptr;
                    for (std::size_t kx = 0; kx < g.kernel;
                         ++kx, ++row) {
                        const long ix =
                            long(ox * g.stride + kx) - long(g.pad);
                        const bool in =
                            y_in && ix >= 0 && ix < long(g.inW);
                        cols[row * n_cols + i] =
                            in ? src[std::size_t(ix)] : 0.0f;
                    }
                }
            }
        }
    });
}

void
col2im(const std::vector<float> &cols, std::size_t item,
       const ConvGeom &g, Tensor &dx, std::size_t chan_off)
{
    pcnn_assert(dx.shape().c >= chan_off + g.inC &&
                    dx.shape().h == g.inH && dx.shape().w == g.inW,
                "col2im output ", dx.shape().str(),
                " mismatches geometry at channel offset ", chan_off);
    const std::size_t oh = g.outH(), ow = g.outW();
    const std::size_t n_cols = oh * ow;
    pcnn_assert(cols.size() >= g.colRows() * n_cols,
                "col2im buffer size mismatch");

    const std::size_t plane = g.inH * g.inW;
    float *dbase = dx.data() + (item * dx.shape().c + chan_off) * plane;
    const std::size_t taps = g.kernel * g.kernel;

    // Channels scatter into disjoint input planes, so the channel
    // dimension parallelizes; within a channel the (ky, kx, oy, ox)
    // accumulation order is fixed regardless of the partition.
    parallelFor(g.inC, [&](std::size_t c0, std::size_t c1,
                           std::size_t) {
        for (std::size_t c = c0; c < c1; ++c) {
            float *dst_plane = dbase + c * plane;
            for (std::size_t t = 0; t < taps; ++t) {
                const std::size_t ky = t / g.kernel;
                const std::size_t kx = t % g.kernel;
                const float *srow =
                    cols.data() + (c * taps + t) * n_cols;
                std::size_t lo, hi;
                validColRange(ow, g.stride, kx, g.pad, g.inW, lo, hi);
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    const long iy =
                        long(oy * g.stride + ky) - long(g.pad);
                    if (iy < 0 || iy >= long(g.inH))
                        continue;
                    float *drow = dst_plane + std::size_t(iy) * g.inW;
                    const float *sr = srow + oy * ow;
                    for (std::size_t ox = lo; ox < hi; ++ox)
                        drow[ox * g.stride + kx - g.pad] += sr[ox];
                }
            }
        }
    });
}

Tensor
softmax(const Tensor &logits)
{
    const Shape &s = logits.shape();
    pcnn_assert(s.h == 1 && s.w == 1, "softmax expects [n,k,1,1], got ",
                s.str());
    Tensor out(s);
    const std::size_t k = s.c;
    parallelFor(s.n, [&](std::size_t i0, std::size_t i1, std::size_t) {
        for (std::size_t i = i0; i < i1; ++i) {
            const float *row = logits.data() + i * k;
            float *orow = out.data() + i * k;
            const float mx = *std::max_element(row, row + k);
            double denom = 0.0;
            for (std::size_t j = 0; j < k; ++j) {
                orow[j] = std::exp(row[j] - mx);
                denom += orow[j];
            }
            for (std::size_t j = 0; j < k; ++j)
                orow[j] = float(orow[j] / denom);
        }
    });
    return out;
}

double
entropy(const float *probs, std::size_t k)
{
    double h = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
        const double p = probs[j];
        if (p > 0.0)
            h -= p * std::log(p);
    }
    return h;
}

double
batchEntropy(const Tensor &probs)
{
    const Shape &s = probs.shape();
    pcnn_assert(s.h == 1 && s.w == 1, "batchEntropy expects [n,k,1,1]");
    double h = 0.0;
    for (std::size_t i = 0; i < s.n; ++i)
        h += entropy(probs.data() + i * s.c, s.c);
    return h / double(s.n);
}

std::size_t
argmax(const float *row, std::size_t k)
{
    pcnn_assert(k > 0, "argmax of empty row");
    return std::size_t(std::max_element(row, row + k) - row);
}

std::vector<std::size_t>
argmaxRows(const Tensor &t)
{
    const Shape &s = t.shape();
    pcnn_assert(s.h == 1 && s.w == 1, "argmaxRows expects [n,k,1,1]");
    std::vector<std::size_t> out(s.n);
    for (std::size_t i = 0; i < s.n; ++i)
        out[i] = argmax(t.data() + i * s.c, s.c);
    return out;
}

} // namespace pcnn
