#include "tensor/tensor_ops.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pcnn {

namespace {

/** Inner kernel for the no-transpose case, blocked for locality. */
void
sgemmNN(std::size_t m, std::size_t n, std::size_t k, const float *a,
        const float *b, float *c)
{
    constexpr std::size_t kBlock = 64;
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
        const std::size_t k_end = std::min(k, kk + kBlock);
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t p = kk; p < k_end; ++p) {
                const float aval = a[i * k + p];
                if (aval == 0.0f)
                    continue;
                const float *brow = b + p * n;
                float *crow = c + i * n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += aval * brow[j];
            }
        }
    }
}

} // namespace

void
sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
      std::size_t k, const float *a, const float *b, float *c,
      float beta)
{
    if (beta == 0.0f) {
        std::fill(c, c + m * n, 0.0f);
    } else if (beta != 1.0f) {
        for (std::size_t i = 0; i < m * n; ++i)
            c[i] *= beta;
    }

    if (!trans_a && !trans_b) {
        sgemmNN(m, n, k, a, b, c);
        return;
    }

    // Generic fallback for transposed operands (used in backward
    // passes, which are not performance critical).
    auto at = [&](std::size_t i, std::size_t p) {
        return trans_a ? a[p * m + i] : a[i * k + p];
    };
    auto bt = [&](std::size_t p, std::size_t j) {
        return trans_b ? b[j * k + p] : b[p * n + j];
    };
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += at(i, p) * bt(p, j);
            c[i * n + j] += acc;
        }
    }
}

std::size_t
ConvGeom::outH() const
{
    pcnn_assert(inH + 2 * pad >= kernel, "conv geometry under-sized: inH ",
                inH, " pad ", pad, " kernel ", kernel);
    return (inH + 2 * pad - kernel) / stride + 1;
}

std::size_t
ConvGeom::outW() const
{
    pcnn_assert(inW + 2 * pad >= kernel, "conv geometry under-sized: inW ",
                inW, " pad ", pad, " kernel ", kernel);
    return (inW + 2 * pad - kernel) / stride + 1;
}

namespace {

/**
 * Shared expansion core: fills column `col` of the cols matrix with
 * the receptive field of output position (oy, ox).
 */
void
expandPosition(const Tensor &x, std::size_t item, const ConvGeom &g,
               std::size_t oy, std::size_t ox, std::size_t col,
               std::size_t n_cols, std::vector<float> &cols)
{
    const std::size_t rows = g.colRows();
    (void)rows;
    std::size_t row = 0;
    for (std::size_t c = 0; c < g.inC; ++c) {
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const long iy = long(oy * g.stride + ky) - long(g.pad);
            for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
                const long ix = long(ox * g.stride + kx) - long(g.pad);
                float v = 0.0f;
                if (iy >= 0 && iy < long(g.inH) && ix >= 0 &&
                    ix < long(g.inW)) {
                    v = x.at(item, c, std::size_t(iy), std::size_t(ix));
                }
                cols[row * n_cols + col] = v;
            }
        }
    }
}

} // namespace

void
im2col(const Tensor &x, std::size_t item, const ConvGeom &g,
       std::vector<float> &cols)
{
    pcnn_assert(x.shape().c == g.inC && x.shape().h == g.inH &&
                    x.shape().w == g.inW,
                "im2col input ", x.shape().str(), " mismatches geometry");
    const std::size_t oh = g.outH(), ow = g.outW();
    const std::size_t n_cols = oh * ow;
    cols.assign(g.colRows() * n_cols, 0.0f);
    for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox)
            expandPosition(x, item, g, oy, ox, oy * ow + ox, n_cols, cols);
}

void
im2colAt(const Tensor &x, std::size_t item, const ConvGeom &g,
         const std::vector<std::size_t> &positions,
         std::vector<float> &cols)
{
    const std::size_t ow = g.outW();
    const std::size_t n_cols = positions.size();
    cols.assign(g.colRows() * n_cols, 0.0f);
    for (std::size_t i = 0; i < positions.size(); ++i) {
        const std::size_t pos = positions[i];
        pcnn_assert(pos < g.outH() * ow, "perforation position ", pos,
                    " outside output grid");
        expandPosition(x, item, g, pos / ow, pos % ow, i, n_cols, cols);
    }
}

void
col2im(const std::vector<float> &cols, std::size_t item,
       const ConvGeom &g, Tensor &dx)
{
    const std::size_t oh = g.outH(), ow = g.outW();
    const std::size_t n_cols = oh * ow;
    pcnn_assert(cols.size() == g.colRows() * n_cols,
                "col2im buffer size mismatch");
    for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::size_t col = oy * ow + ox;
            std::size_t row = 0;
            for (std::size_t c = 0; c < g.inC; ++c) {
                for (std::size_t ky = 0; ky < g.kernel; ++ky) {
                    const long iy = long(oy * g.stride + ky) - long(g.pad);
                    for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
                        const long ix =
                            long(ox * g.stride + kx) - long(g.pad);
                        if (iy < 0 || iy >= long(g.inH) || ix < 0 ||
                            ix >= long(g.inW)) {
                            continue;
                        }
                        dx.at(item, c, std::size_t(iy), std::size_t(ix)) +=
                            cols[row * n_cols + col];
                    }
                }
            }
        }
    }
}

Tensor
softmax(const Tensor &logits)
{
    const Shape &s = logits.shape();
    pcnn_assert(s.h == 1 && s.w == 1, "softmax expects [n,k,1,1], got ",
                s.str());
    Tensor out(s);
    const std::size_t k = s.c;
    for (std::size_t i = 0; i < s.n; ++i) {
        const float *row = logits.data() + i * k;
        float *orow = out.data() + i * k;
        const float mx = *std::max_element(row, row + k);
        double denom = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
            orow[j] = std::exp(row[j] - mx);
            denom += orow[j];
        }
        for (std::size_t j = 0; j < k; ++j)
            orow[j] = float(orow[j] / denom);
    }
    return out;
}

double
entropy(const float *probs, std::size_t k)
{
    double h = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
        const double p = probs[j];
        if (p > 0.0)
            h -= p * std::log(p);
    }
    return h;
}

double
batchEntropy(const Tensor &probs)
{
    const Shape &s = probs.shape();
    pcnn_assert(s.h == 1 && s.w == 1, "batchEntropy expects [n,k,1,1]");
    double h = 0.0;
    for (std::size_t i = 0; i < s.n; ++i)
        h += entropy(probs.data() + i * s.c, s.c);
    return h / double(s.n);
}

std::size_t
argmax(const float *row, std::size_t k)
{
    pcnn_assert(k > 0, "argmax of empty row");
    return std::size_t(std::max_element(row, row + k) - row);
}

std::vector<std::size_t>
argmaxRows(const Tensor &t)
{
    const Shape &s = t.shape();
    pcnn_assert(s.h == 1 && s.w == 1, "argmaxRows expects [n,k,1,1]");
    std::vector<std::size_t> out(s.n);
    for (std::size_t i = 0; i < s.n; ++i)
        out[i] = argmax(t.data() + i * s.c, s.c);
    return out;
}

} // namespace pcnn
