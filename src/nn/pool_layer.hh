/**
 * @file
 * Max-pooling layer.
 */

#ifndef PCNN_NN_POOL_LAYER_HH
#define PCNN_NN_POOL_LAYER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace pcnn {

/**
 * 2-D max pooling with a square window. Overlapping windows (stride
 * smaller than the window, as in AlexNet's 3x3/2 pools) and zero
 * padding (needed by GoogLeNet's same-size 3x3/1 inception pools)
 * are supported; padded taps never win the max.
 */
class MaxPoolLayer : public Layer
{
  public:
    /**
     * @param name stable layer name
     * @param window square pooling window side
     * @param stride window stride
     * @param pad zero padding on each border
     */
    MaxPoolLayer(std::string name, std::size_t window,
                 std::size_t stride, std::size_t pad = 0);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "maxpool"; }
    Shape outputShape(const Shape &in) const override;
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;

    std::unique_ptr<Layer>
    cloneShared() override
    {
        auto c = std::make_unique<MaxPoolLayer>(*this);
        c->argmaxIdx.clear();
        c->haveCache = false;
        return c;
    }

  private:
    std::string layerName;
    std::size_t window;
    std::size_t stride;
    std::size_t pad;

    Shape inShape;
    /// flat input index of each output's max element
    std::vector<std::size_t> argmaxIdx;
    bool haveCache = false;
};

} // namespace pcnn

#endif // PCNN_NN_POOL_LAYER_HH
