#include "nn/dropout_layer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

DropoutLayer::DropoutLayer(std::string name, double p, Rng &rng)
    : layerName(std::move(name)), prob(p), rng(rng.fork())
{
    pcnn_assert(p >= 0.0 && p < 1.0, "dropout ", layerName,
                ": p must be in [0,1), got ", p);
}

void
DropoutLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    if (!train) {
        // Inference is the identity; copy through into the caller's
        // buffer (no allocation once y has grown to shape).
        haveCache = false;
        // pcnn-analyze: allow(hot-path-alloc): grow-only
        // output buffer; capacity is reused once warm.
        y.resize(x.shape());
        std::copy(x.data(), x.data() + x.size(), y.data());
        return;
    }
    // pcnn-analyze: allow(hot-path-alloc): training-only path;
    // both buffers are grow-only and inference never gets here.
    mask.resize(x.shape());
    // pcnn-analyze: allow(hot-path-alloc): see above.
    y.resize(x.shape());
    const float scale = float(1.0 / (1.0 - prob));
    for (std::size_t i = 0; i < x.size(); ++i) {
        const bool keep = !rng.chance(prob);
        mask[i] = keep ? scale : 0.0f;
        y[i] = x[i] * mask[i];
    }
    haveCache = true;
}

Tensor
DropoutLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "dropout ", layerName,
                ": backward without forward(train)");
    Tensor dx(dy.shape());
    for (std::size_t i = 0; i < dy.size(); ++i)
        dx[i] = dy[i] * mask[i];
    return dx;
}

} // namespace pcnn
