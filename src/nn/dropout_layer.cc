#include "nn/dropout_layer.hh"

#include "common/logging.hh"

namespace pcnn {

DropoutLayer::DropoutLayer(std::string name, double p, Rng &rng)
    : layerName(std::move(name)), prob(p), rng(rng.fork())
{
    pcnn_assert(p >= 0.0 && p < 1.0, "dropout ", layerName,
                ": p must be in [0,1), got ", p);
}

Tensor
DropoutLayer::forward(const Tensor &x, bool train)
{
    if (!train) {
        haveCache = false;
        return x;
    }
    mask.resize(x.shape());
    Tensor y(x.shape());
    const float scale = float(1.0 / (1.0 - prob));
    for (std::size_t i = 0; i < x.size(); ++i) {
        const bool keep = !rng.chance(prob);
        mask[i] = keep ? scale : 0.0f;
        y[i] = x[i] * mask[i];
    }
    haveCache = true;
    return y;
}

Tensor
DropoutLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "dropout ", layerName,
                ": backward without forward(train)");
    Tensor dx(dy.shape());
    for (std::size_t i = 0; i < dy.size(); ++i)
        dx[i] = dy[i] * mask[i];
    return dx;
}

} // namespace pcnn
