#include "nn/avgpool_layer.hh"

#include "common/logging.hh"

namespace pcnn {

AvgPoolLayer::AvgPoolLayer(std::string name, std::size_t window,
                           std::size_t stride)
    : layerName(std::move(name)), window(window), stride(stride)
{
    pcnn_assert(stride > 0, "avgpool ", layerName,
                ": stride must be positive");
}

std::size_t
AvgPoolLayer::effectiveWindow(const Shape &in) const
{
    if (!global())
        return window;
    pcnn_assert(in.h == in.w, "avgpool ", layerName,
                ": global mode expects square input, got ", in.str());
    return in.h;
}

Shape
AvgPoolLayer::outputShape(const Shape &in) const
{
    const std::size_t w = effectiveWindow(in);
    pcnn_assert(in.h >= w && in.w >= w, "avgpool ", layerName,
                ": input ", in.str(), " smaller than window ", w);
    if (global())
        return Shape{in.n, in.c, 1, 1};
    return Shape{in.n, in.c, (in.h - w) / stride + 1,
                 (in.w - w) / stride + 1};
}

Tensor
AvgPoolLayer::forward(const Tensor &x, bool train)
{
    const Shape out = outputShape(x.shape());
    const Shape &in = x.shape();
    const std::size_t w = effectiveWindow(in);
    const float inv = 1.0f / float(w * w);

    Tensor y(out);
    for (std::size_t n = 0; n < in.n; ++n) {
        for (std::size_t c = 0; c < in.c; ++c) {
            for (std::size_t oy = 0; oy < out.h; ++oy) {
                for (std::size_t ox = 0; ox < out.w; ++ox) {
                    double acc = 0.0;
                    for (std::size_t ky = 0; ky < w; ++ky)
                        for (std::size_t kx = 0; kx < w; ++kx)
                            acc += x.at(n, c, oy * stride + ky,
                                        ox * stride + kx);
                    y.at(n, c, oy, ox) = float(acc) * inv;
                }
            }
        }
    }
    if (train) {
        inShape = in;
        haveCache = true;
    }
    return y;
}

Tensor
AvgPoolLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "avgpool ", layerName,
                ": backward without forward(train)");
    const Shape out = outputShape(inShape);
    pcnn_assert(dy.shape() == out, "avgpool ", layerName,
                ": gradient shape mismatch");
    const std::size_t w = effectiveWindow(inShape);
    const float inv = 1.0f / float(w * w);

    Tensor dx(inShape);
    for (std::size_t n = 0; n < out.n; ++n) {
        for (std::size_t c = 0; c < out.c; ++c) {
            for (std::size_t oy = 0; oy < out.h; ++oy) {
                for (std::size_t ox = 0; ox < out.w; ++ox) {
                    const float g = dy.at(n, c, oy, ox) * inv;
                    for (std::size_t ky = 0; ky < w; ++ky)
                        for (std::size_t kx = 0; kx < w; ++kx)
                            dx.at(n, c, oy * stride + ky,
                                  ox * stride + kx) += g;
                }
            }
        }
    }
    return dx;
}

} // namespace pcnn
