#include "nn/avgpool_layer.hh"

#include "common/logging.hh"

namespace pcnn {

AvgPoolLayer::AvgPoolLayer(std::string name, std::size_t window,
                           std::size_t stride)
    : layerName(std::move(name)), window(window), stride(stride)
{
    pcnn_assert(stride > 0, "avgpool ", layerName,
                ": stride must be positive");
}

std::size_t
AvgPoolLayer::effectiveWindow(const Shape &in) const
{
    if (!global())
        return window;
    pcnn_assert(in.h == in.w, "avgpool ", layerName,
                ": global mode expects square input, got ", in.str());
    return in.h;
}

Shape
AvgPoolLayer::outputShape(const Shape &in) const
{
    const std::size_t w = effectiveWindow(in);
    pcnn_assert(in.h >= w && in.w >= w, "avgpool ", layerName,
                ": input ", in.str(), " smaller than window ", w);
    if (global())
        return Shape{in.n, in.c, 1, 1};
    return Shape{in.n, in.c, (in.h - w) / stride + 1,
                 (in.w - w) / stride + 1};
}

void
AvgPoolLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    const Shape out = outputShape(x.shape());
    const Shape &in = x.shape();
    const std::size_t w = effectiveWindow(in);
    const float inv = 1.0f / float(w * w);

    // Raw row scans per (n, c) plane: the window accumulates in the
    // same (ky, kx) order as the index-checked form, just without a
    // four-index bounds-checked call per element.
    // pcnn-analyze: allow(hot-path-alloc): grow-only output
    // buffer; capacity is reused once warm (DESIGN.md §5h).
    y.resize(out);
    const std::size_t planes = in.n * in.c;
    for (std::size_t plane = 0; plane < planes; ++plane) {
        const float *src = x.data() + plane * in.h * in.w;
        float *dst = y.data() + plane * out.h * out.w;
        for (std::size_t oy = 0; oy < out.h; ++oy) {
            for (std::size_t ox = 0; ox < out.w; ++ox) {
                double acc = 0.0;
                for (std::size_t ky = 0; ky < w; ++ky) {
                    const float *row =
                        src + (oy * stride + ky) * in.w + ox * stride;
                    for (std::size_t kx = 0; kx < w; ++kx)
                        acc += row[kx];
                }
                dst[oy * out.w + ox] = float(acc) * inv;
            }
        }
    }
    if (train) {
        inShape = in;
        haveCache = true;
    }
}

Tensor
AvgPoolLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "avgpool ", layerName,
                ": backward without forward(train)");
    const Shape out = outputShape(inShape);
    pcnn_assert(dy.shape() == out, "avgpool ", layerName,
                ": gradient shape mismatch");
    const std::size_t w = effectiveWindow(inShape);
    const float inv = 1.0f / float(w * w);

    Tensor dx(inShape);
    const std::size_t planes = out.n * out.c;
    for (std::size_t plane = 0; plane < planes; ++plane) {
        const float *gsrc = dy.data() + plane * out.h * out.w;
        float *dst = dx.data() + plane * inShape.h * inShape.w;
        for (std::size_t oy = 0; oy < out.h; ++oy) {
            for (std::size_t ox = 0; ox < out.w; ++ox) {
                const float g = gsrc[oy * out.w + ox] * inv;
                for (std::size_t ky = 0; ky < w; ++ky) {
                    float *row = dst + (oy * stride + ky) * inShape.w +
                                 ox * stride;
                    for (std::size_t kx = 0; kx < w; ++kx)
                        row[kx] += g;
                }
            }
        }
    }
    return dx;
}

} // namespace pcnn
