/**
 * @file
 * Convolutional layer with run-time perforation support.
 *
 * Implements the paper's perforation/interpolation approximation
 * (Section IV.C, Fig. 11): instead of computing all W_o x H_o output
 * positions, only a uniform W'_o x H'_o subset is computed (shrinking
 * the N dimension of the underlying SGEMM) and the remaining values
 * are filled in by nearest-neighbour interpolation, leaving the
 * network architecture — and hence all downstream shapes — unchanged.
 */

#ifndef PCNN_NN_CONV_LAYER_HH
#define PCNN_NN_CONV_LAYER_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv_spec.hh"
#include "nn/layer.hh"
#include "tensor/quant.hh"
#include "tensor/winograd.hh"

namespace pcnn {

struct ConvScratchPool;

/** How perforated (non-computed) output positions are filled. */
enum class InterpolationMode
{
    Nearest, ///< copy the nearest computed position
    Average, ///< average the surrounding computed grid points
};

/**
 * 2-D convolution lowered to im2col + SGEMM, with optional grouped
 * convolution (AlexNet-style) and perforation.
 */
class ConvLayer : public Layer
{
  public:
    /**
     * Construct with a shape spec and initialize weights.
     * @param spec layer geometry; inH/inW must be set
     * @param rng weight-initialization stream (He-style init)
     */
    ConvLayer(ConvSpec spec, Rng &rng);

    std::string name() const override { return spc.name; }
    std::string kind() const override { return "conv"; }
    Shape outputShape(const Shape &in) const override;
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    double flopsPerImage(const Shape &in) const override;
    bool canFuseRelu() const override { return true; }
    void forwardFusedReluInto(const Tensor &x, Tensor &y) override;
    std::unique_ptr<Layer> cloneShared() override;

    /** The architecture-level spec this layer realizes. */
    const ConvSpec &spec() const { return spc; }

    /**
     * Pin the conv algorithm (normally from an offline plan's
     * per-layer field); must be eligible for this geometry.
     */
    void setAlgo(ConvAlgo a);

    /** Remove a pinned algorithm; dispatch returns to the cost model. */
    void clearAlgo();

    /** Pinned algorithm, or the cost-model choice when unpinned. */
    ConvAlgo plannedAlgo() const;

    /**
     * The algorithm the next forward will actually run: the
     * PCNN_CONV_ALGO force (where eligible) beats the pinned plan
     * choice beats the cost model; training and perforated forwards
     * always take the exact im2col/1x1 route.
     */
    ConvAlgo effectiveAlgo(bool train) const;

    /**
     * Set the number of *computed* output positions per image.
     * 0 or the full grid size disables perforation. The effective
     * value is clamped to at least 1.
     *
     * Perforation is an inference-time approximation; backward()
     * refuses to run while it is active.
     */
    void setComputedPositions(std::size_t positions);

    /** Currently computed positions per image (full grid if intact). */
    std::size_t computedPositions() const;

    /** Full output grid size W_o * H_o. */
    std::size_t fullPositions() const { return spc.outH() * spc.outW(); }

    /** Perforation rate 1 - W'_o H'_o / W_o H_o (0 when intact). */
    double perforationRate() const;

    /** True when a reduced position set is active. */
    bool perforated() const { return computed < fullPositions(); }

    /** Select how non-computed positions are filled (Fig. 11). */
    void setInterpolationMode(InterpolationMode mode);

    /** Current interpolation mode. */
    InterpolationMode interpolationMode() const { return interpMode; }

    /**
     * Route inference forwards through the int8 path (quant.hh):
     * im2col output quantized per-tensor, per-channel int8 weight
     * panels, qgemm with the fused dequant+bias+ReLU epilogue.
     * Training forwards always stay fp32. Like the winograd panels,
     * the quantized panels materialize lazily on the next forward —
     * for serving, enable before cloneSharingWeights() so the
     * warm-up forward builds them while the bundle is still
     * single-threaded and replicas then share them read-only.
     */
    void setQuantized(bool on) { quantOn = on; }

    /** True when the int8 route is enabled on this layer. */
    bool quantizedEnabled() const { return quantOn; }

    /**
     * True when a forward with this `train` flag runs int8: enabled
     * per layer (plan v3 / precision tuning) or forced process-wide
     * by PCNN_QUANTIZE=1; never during training.
     */
    bool effectiveQuantized(bool train) const;

    /**
     * Pin offline-calibrated input-activation quantization params
     * (from a QuantProfile). Without them the forward derives
     * params from the live input's min/max — still deterministic
     * per input batch, but batch-composition dependent.
     */
    void
    setInputQuant(const QuantParams &qp)
    {
        inQuant = qp;
        haveInQuant = true;
    }

    /** Drop pinned input params; revert to dynamic ranges. */
    void clearInputQuant() { haveInQuant = false; }

    /** True when offline-calibrated input params are pinned. */
    bool hasInputQuant() const { return haveInQuant; }

    /**
     * Per-lane scratch (fused im2col/packed-B panel + SGEMM output),
     * pooled and grow-only so the hot path performs no per-forward
     * allocations once warm, even when full-resolution and perforated
     * layers alternate on the same lane.
     */
    struct Scratch
    {
        std::vector<float> cols;
        std::vector<float> gemmOut;
        std::vector<std::uint8_t> qcols; ///< int8 activation panel
        WinogradScratch wino;
    };

    /**
     * True when this layer's convolution is a pure channel mixer
     * (1x1 kernel, stride 1, no padding): its im2col matrix is
     * bit-for-bit the input channel window, so forward feeds SGEMM
     * the input tensor directly with no im2col at all.
     */
    bool
    is1x1Passthrough() const
    {
        return spc.kernel == 1 && spc.stride == 1 && spc.pad == 0;
    }

    /**
     * Point this layer at an external per-lane scratch pool (owned
     * by a CompiledGraph, DESIGN.md §5j). While the pool is active,
     * forwards use its lanes instead of the layer's own `scratch`,
     * so the footprint across all convs is the *max* of any one
     * layer's need rather than the sum. While inactive (legacy path,
     * training) the layer's own scratch is used and the baseline
     * memory story is unchanged. Pass nullptr to detach.
     */
    void setScratchPool(ConvScratchPool *p) { pool = p; }

    std::size_t steadyStateScratchBytes() const override;

  private:
    /**
     * Parameters plus every persistent weight-derived panel, bundled
     * so serving replicas share one copy (DESIGN.md §5f). In shared
     * mode the bundle is read-only: the engine warm-up forward
     * materializes the panels the inference route needs before any
     * worker thread exists, and because shared Params refuse
     * markUpdated() the generation checks never re-pack afterwards.
     */
    struct ConvWeights
    {
        Param weight; ///< [outC, inC/groups, k, k]
        Param bias;   ///< [1, outC, 1, 1]

        /// per-group W^T panels (colRows x outC/groups) reused across
        /// the backward item loop; invalidated by weight generation
        /// bumps
        std::vector<PackedPanel> wtPack;

        /// per-group winograd U^T panels (16 x inC/g x outC/g),
        /// persistent across forwards; invalidated by weight
        /// generation bumps
        std::vector<WinogradWeights> winoPack;

        /// per-group int8 weight panels (outC/g x colRows,
        /// per-channel scales), persistent across forwards;
        /// invalidated by weight generation bumps
        std::vector<QuantizedPanel> qPack;
    };

    /** Weight-sharing replica constructor (see cloneShared). */
    ConvLayer(const ConvLayer &) = default;

    /** Lazily build the sampled-position set and interpolation map. */
    void rebuildSampling();

    /** Shared forward body; fuse_relu folds a ReLU into the output. */
    void forwardImpl(const Tensor &x, bool train, bool fuse_relu,
                     Tensor &y);

    /** Forward for one batch item and one group. `quant` selects
     * the int8 route, `aq` carries the batch's activation params
     * (resolved once in forwardImpl so every job agrees). */
    void forwardItemGroup(const Tensor &x, Tensor &y, std::size_t item,
                          std::size_t group, ConvAlgo algo,
                          bool fuse_relu, bool quant,
                          const QuantParams &aq, Scratch &scr);

    /** Per-group packed W^T panels for backward, gen-checked. */
    const PackedPanel &packedWeightT(std::size_t group);

    /**
     * Per-group pre-transformed winograd weights, gen-checked. Not
     * thread-safe: forwardImpl materializes every group before the
     * (item, group) fan-out so workers only read.
     */
    const WinogradWeights &winogradGroupWeights(std::size_t group);

    /**
     * Per-group int8 weight panels, gen-checked. Same threading
     * contract as winogradGroupWeights: forwardImpl materializes
     * every group before the (item, group) fan-out.
     */
    const QuantizedPanel &quantizedGroupWeights(std::size_t group);

    ConvSpec spc;
    std::shared_ptr<ConvWeights> w; ///< shared across replicas

    std::size_t computed;            ///< computed positions per image
    InterpolationMode interpMode = InterpolationMode::Nearest;
    std::vector<std::size_t> sample; ///< computed position indices
    /// for every output position, the computed position to copy from
    /// (nearest mode)
    std::vector<std::size_t> fillFrom;
    /// for every output position, up to four computed-grid sources
    /// plus a weight (average mode); stored flat as 4 indices with
    /// npos-style sentinel of sample.size()
    std::vector<std::array<std::size_t, 4>> fillAvg;

    // Training caches.
    Tensor lastInput;
    bool haveCache = false;

    // Per-lane scratch pool, sized to the thread count on demand.
    std::vector<Scratch> scratch;

    bool algoPinned = false; ///< plan pinned a specific algorithm
    ConvAlgo algoSel = ConvAlgo::Im2col; ///< the pinned choice

    bool quantOn = false;     ///< int8 inference route enabled
    bool haveInQuant = false; ///< calibrated input params pinned
    QuantParams inQuant;      ///< the pinned input params

    /// external shared scratch (CompiledGraph); never owned, never
    /// carried across cloneShared
    ConvScratchPool *pool = nullptr;
};

/**
 * Per-lane conv scratch shared across every conv layer of one
 * compiled graph (DESIGN.md §5j). The lanes grow lazily inside conv
 * forwards exactly like per-layer scratch; `active` gates use so the
 * legacy chain and training keep per-layer buffers (and baseline
 * accounting) even after a graph has installed the pool.
 */
struct ConvScratchPool
{
    std::vector<ConvLayer::Scratch> lanes;
    bool active = false; ///< set for the duration of a graph run

    /** Current bytes held across all lanes. */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const ConvLayer::Scratch &s : lanes) {
            total += (s.cols.capacity() + s.gemmOut.capacity()) *
                     sizeof(float);
            total += s.qcols.capacity();
            total += (s.wino.v.capacity() + s.wino.m.capacity()) *
                     sizeof(float);
        }
        return total;
    }
};

} // namespace pcnn

#endif // PCNN_NN_CONV_LAYER_HH
