#include "nn/model_zoo.hh"

#include "common/logging.hh"
#include "nn/avgpool_layer.hh"
#include "nn/dropout_layer.hh"
#include "nn/fc_layer.hh"
#include "nn/inception_layer.hh"
#include "nn/lrn_layer.hh"
#include "nn/pool_layer.hh"
#include "nn/relu_layer.hh"

namespace pcnn {

double
NetDescriptor::convFlopsPerImage() const
{
    double total = 0.0;
    for (const auto &c : convs)
        total += c.flopsPerImage();
    return total;
}

double
NetDescriptor::fcFlopsPerImage() const
{
    double total = 0.0;
    for (const auto &[in, out] : fcs)
        total += 2.0 * double(in) * double(out);
    return total;
}

double
NetDescriptor::totalFlopsPerImage() const
{
    return convFlopsPerImage() + fcFlopsPerImage();
}

std::size_t
NetDescriptor::weightCount() const
{
    std::size_t total = 0;
    for (const auto &c : convs)
        total += c.weightCount();
    for (const auto &[in, out] : fcs)
        total += in * out + out;
    return total;
}

std::size_t
NetDescriptor::activationElemsPerImage() const
{
    std::size_t total = inputShape.itemSize();
    for (const auto &c : convs)
        total += c.outputSizePerImage();
    for (const auto &[in, out] : fcs) {
        (void)in;
        total += out;
    }
    return total;
}

namespace {

/** Shorthand ConvSpec builder. */
ConvSpec
conv(std::string name, std::size_t in_c, std::size_t out_c,
     std::size_t kernel, std::size_t stride, std::size_t pad,
     std::size_t in_hw, std::size_t groups = 1)
{
    ConvSpec s;
    s.name = std::move(name);
    s.inC = in_c;
    s.outC = out_c;
    s.kernel = kernel;
    s.stride = stride;
    s.pad = pad;
    s.inH = in_hw;
    s.inW = in_hw;
    s.groups = groups;
    return s;
}

/**
 * Append the four branches of one GoogLeNet inception module.
 * @param hw spatial side at the module input
 * @param in_c input channel count
 * @returns output channel count of the concatenated module
 */
std::size_t
inception(std::vector<ConvSpec> &out, const std::string &tag,
          std::size_t hw, std::size_t in_c, std::size_t ch1,
          std::size_t ch3r, std::size_t ch3, std::size_t ch5r,
          std::size_t ch5, std::size_t pool_proj)
{
    out.push_back(conv(tag + "/1x1", in_c, ch1, 1, 1, 0, hw));
    out.push_back(conv(tag + "/3x3_reduce", in_c, ch3r, 1, 1, 0, hw));
    out.push_back(conv(tag + "/3x3", ch3r, ch3, 3, 1, 1, hw));
    out.push_back(conv(tag + "/5x5_reduce", in_c, ch5r, 1, 1, 0, hw));
    out.push_back(conv(tag + "/5x5", ch5r, ch5, 5, 1, 2, hw));
    out.push_back(conv(tag + "/pool_proj", in_c, pool_proj, 1, 1, 0, hw));
    return ch1 + ch3 + ch5 + pool_proj;
}

} // namespace

NetDescriptor
alexNet()
{
    NetDescriptor d;
    d.name = "AlexNet";
    d.inputShape = Shape{1, 3, 227, 227};
    d.paperBatch = 128;
    d.convs = {
        conv("CONV1", 3, 96, 11, 4, 0, 227),
        conv("CONV2", 96, 256, 5, 1, 2, 27, 2),
        conv("CONV3", 256, 384, 3, 1, 1, 13),
        conv("CONV4", 384, 384, 3, 1, 1, 13, 2),
        conv("CONV5", 384, 256, 3, 1, 1, 13, 2),
    };
    d.fcs = {{9216, 4096}, {4096, 4096}, {4096, 1000}};
    return d;
}

NetDescriptor
vgg16()
{
    NetDescriptor d;
    d.name = "VGGNet";
    d.inputShape = Shape{1, 3, 224, 224};
    d.paperBatch = 32;
    auto block = [&](int idx, std::size_t in_c, std::size_t out_c,
                     std::size_t hw, int reps) {
        for (int r = 0; r < reps; ++r) {
            d.convs.push_back(conv("CONV" + std::to_string(idx) + "_" +
                                       std::to_string(r + 1),
                                   r == 0 ? in_c : out_c, out_c, 3, 1, 1,
                                   hw));
        }
    };
    block(1, 3, 64, 224, 2);
    block(2, 64, 128, 112, 2);
    block(3, 128, 256, 56, 3);
    block(4, 256, 512, 28, 3);
    block(5, 512, 512, 14, 3);
    d.fcs = {{25088, 4096}, {4096, 4096}, {4096, 1000}};
    return d;
}

NetDescriptor
googleNet()
{
    NetDescriptor d;
    d.name = "GoogLeNet";
    d.inputShape = Shape{1, 3, 224, 224};
    d.paperBatch = 64;
    d.convs.push_back(conv("conv1/7x7_s2", 3, 64, 7, 2, 3, 224));
    d.convs.push_back(conv("conv2/3x3_reduce", 64, 64, 1, 1, 0, 56));
    d.convs.push_back(conv("conv2/3x3", 64, 192, 3, 1, 1, 56));

    std::size_t c = 192;
    c = inception(d.convs, "3a", 28, c, 64, 96, 128, 16, 32, 32);
    c = inception(d.convs, "3b", 28, c, 128, 128, 192, 32, 96, 64);
    c = inception(d.convs, "4a", 14, c, 192, 96, 208, 16, 48, 64);
    c = inception(d.convs, "4b", 14, c, 160, 112, 224, 24, 64, 64);
    c = inception(d.convs, "4c", 14, c, 128, 128, 256, 24, 64, 64);
    c = inception(d.convs, "4d", 14, c, 112, 144, 288, 32, 64, 64);
    c = inception(d.convs, "4e", 14, c, 256, 160, 320, 32, 128, 128);
    c = inception(d.convs, "5a", 7, c, 256, 160, 320, 32, 128, 128);
    c = inception(d.convs, "5b", 7, c, 384, 192, 384, 48, 128, 128);
    pcnn_assert(c == 1024, "GoogLeNet channel bookkeeping broke: ", c);

    d.fcs = {{1024, 1000}};
    return d;
}

std::vector<NetDescriptor>
paperNetworks()
{
    return {alexNet(), googleNet(), vgg16()};
}

std::string
miniSizeName(MiniSize size)
{
    switch (size) {
      case MiniSize::Small:
        return "MiniNet-S";
      case MiniSize::Medium:
        return "MiniNet-M";
      case MiniSize::Large:
        return "MiniNet-L";
    }
    pcnn_panic("unknown MiniSize");
}

Network
makeMiniNet(MiniSize size, Rng &rng, std::size_t classes)
{
    const Shape in{1, 1, 16, 16};
    Network net(miniSizeName(size), in);
    switch (size) {
      case MiniSize::Small:
        net.add<ConvLayer>(conv("CONV1", 1, 8, 3, 1, 1, 16), rng);
        net.add<ReluLayer>("RELU1");
        net.add<MaxPoolLayer>("POOL1", 2, 2);
        net.add<ConvLayer>(conv("CONV2", 8, 12, 3, 1, 1, 8), rng);
        net.add<ReluLayer>("RELU2");
        net.add<MaxPoolLayer>("POOL2", 2, 2);
        net.add<FcLayer>("FC1", 12 * 4 * 4, classes, rng);
        break;
      case MiniSize::Medium:
        net.add<ConvLayer>(conv("CONV1", 1, 12, 3, 1, 1, 16), rng);
        net.add<ReluLayer>("RELU1");
        net.add<MaxPoolLayer>("POOL1", 2, 2);
        net.add<ConvLayer>(conv("CONV2", 12, 24, 3, 1, 1, 8), rng);
        net.add<ReluLayer>("RELU2");
        net.add<MaxPoolLayer>("POOL2", 2, 2);
        net.add<FcLayer>("FC1", 24 * 4 * 4, 48, rng);
        net.add<ReluLayer>("RELU3");
        net.add<FcLayer>("FC2", 48, classes, rng);
        break;
      case MiniSize::Large:
        net.add<ConvLayer>(conv("CONV1", 1, 16, 3, 1, 1, 16), rng);
        net.add<ReluLayer>("RELU1");
        net.add<ConvLayer>(conv("CONV2", 16, 16, 3, 1, 1, 16), rng);
        net.add<ReluLayer>("RELU2");
        net.add<MaxPoolLayer>("POOL1", 2, 2);
        net.add<ConvLayer>(conv("CONV3", 16, 32, 3, 1, 1, 8), rng);
        net.add<ReluLayer>("RELU3");
        net.add<MaxPoolLayer>("POOL2", 2, 2);
        net.add<FcLayer>("FC1", 32 * 4 * 4, 64, rng);
        net.add<ReluLayer>("RELU4");
        net.add<DropoutLayer>("DROP1", 0.1, rng);
        net.add<FcLayer>("FC2", 64, classes, rng);
        break;
    }
    return net;
}

Network
makeMiniAlexNet(Rng &rng, std::size_t classes)
{
    const Shape in{1, 1, 16, 16};
    Network net("MiniAlexNet", in);
    net.add<ConvLayer>(conv("CONV1", 1, 12, 3, 1, 1, 16), rng);
    net.add<ReluLayer>("RELU1");
    net.add<LrnLayer>("LRN1", 5, 1e-3, 0.75, 2.0);
    net.add<MaxPoolLayer>("POOL1", 3, 2); // overlapping: 16 -> 7
    net.add<ConvLayer>(conv("CONV2", 12, 24, 3, 1, 1, 7, 2), rng);
    net.add<ReluLayer>("RELU2");
    net.add<MaxPoolLayer>("POOL2", 3, 2); // 7 -> 3
    net.add<FcLayer>("FC1", 24 * 3 * 3, 48, rng);
    net.add<ReluLayer>("RELU3");
    net.add<FcLayer>("FC2", 48, classes, rng);
    return net;
}

Network
makeMiniVgg(Rng &rng, std::size_t classes)
{
    const Shape in{1, 1, 16, 16};
    Network net("MiniVgg", in);
    net.add<ConvLayer>(conv("CONV1_1", 1, 12, 3, 1, 1, 16), rng);
    net.add<ReluLayer>("RELU1_1");
    net.add<ConvLayer>(conv("CONV1_2", 12, 12, 3, 1, 1, 16), rng);
    net.add<ReluLayer>("RELU1_2");
    net.add<MaxPoolLayer>("POOL1", 2, 2); // 16 -> 8
    net.add<ConvLayer>(conv("CONV2_1", 12, 24, 3, 1, 1, 8), rng);
    net.add<ReluLayer>("RELU2_1");
    net.add<ConvLayer>(conv("CONV2_2", 24, 24, 3, 1, 1, 8), rng);
    net.add<ReluLayer>("RELU2_2");
    net.add<MaxPoolLayer>("POOL2", 2, 2); // 8 -> 4
    net.add<FcLayer>("FC1", 24 * 4 * 4, 48, rng);
    net.add<ReluLayer>("RELU_FC1");
    net.add<FcLayer>("FC2", 48, classes, rng);
    return net;
}

Network
makeMiniInception(Rng &rng, std::size_t classes)
{
    const Shape in{1, 1, 16, 16};
    Network net("MiniInception", in);
    net.add<ConvLayer>(conv("STEM", 1, 16, 3, 1, 1, 16), rng);
    net.add<ReluLayer>("STEM_RELU");
    net.add<MaxPoolLayer>("STEM_POOL", 2, 2); // 16 -> 8
    // Four-branch module: 8 + 16 + 8 + 8 = 40 output channels.
    net.addLayer(InceptionLayer::standard("INC1", 16, 8, 8, 8, 16, 4,
                                          8, 8, rng));
    net.add<AvgPoolLayer>("GAP", 0); // global: 8x8 -> 1x1
    net.add<FcLayer>("FC", 40, classes, rng);
    return net;
}

NetDescriptor
describe(const Network &net)
{
    NetDescriptor d;
    d.name = net.name();
    d.inputShape = net.inputShape();
    d.convs = net.convSpecs();
    for (const FcLayer *fc : net.fcLayers())
        d.fcs.emplace_back(fc->inFeatures(), fc->outFeatures());
    d.paperBatch = 1;
    return d;
}

} // namespace pcnn
