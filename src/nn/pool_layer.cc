#include "nn/pool_layer.hh"

#include "common/logging.hh"
#include "common/parallel.hh"

namespace pcnn {

MaxPoolLayer::MaxPoolLayer(std::string name, std::size_t window,
                           std::size_t stride, std::size_t pad)
    : layerName(std::move(name)), window(window), stride(stride),
      pad(pad)
{
    pcnn_assert(window > 0 && stride > 0,
                "pool ", layerName, ": window/stride must be positive");
    pcnn_assert(pad < window,
                "pool ", layerName, ": padding must be under window");
}

Shape
MaxPoolLayer::outputShape(const Shape &in) const
{
    pcnn_assert(in.h + 2 * pad >= window && in.w + 2 * pad >= window,
                "pool ", layerName, ": input ", in.str(),
                " smaller than window ", window);
    return Shape{in.n, in.c, (in.h + 2 * pad - window) / stride + 1,
                 (in.w + 2 * pad - window) / stride + 1};
}

Tensor
MaxPoolLayer::forward(const Tensor &x, bool train)
{
    const Shape out = outputShape(x.shape());
    Tensor y(out);
    if (train) {
        inShape = x.shape();
        argmaxIdx.assign(out.size(), 0);
    }

    const Shape &in = x.shape();
    // Each (n, c) plane pools independently — fan out over the pool.
    parallelFor(in.n * in.c, [&](std::size_t p0, std::size_t p1,
                                 std::size_t) {
        for (std::size_t plane = p0; plane < p1; ++plane) {
            const std::size_t n = plane / in.c;
            const std::size_t c = plane % in.c;
            const float *src = x.data() + plane * in.h * in.w;
            for (std::size_t oy = 0; oy < out.h; ++oy) {
                for (std::size_t ox = 0; ox < out.w; ++ox) {
                    float best = -1e30f;
                    std::size_t best_idx = 0;
                    for (std::size_t ky = 0; ky < window; ++ky) {
                        for (std::size_t kx = 0; kx < window; ++kx) {
                            const long iy =
                                long(oy * stride + ky) - long(pad);
                            const long ix =
                                long(ox * stride + kx) - long(pad);
                            if (iy < 0 || iy >= long(in.h) || ix < 0 ||
                                ix >= long(in.w)) {
                                continue; // padding never wins
                            }
                            const float v =
                                src[std::size_t(iy) * in.w +
                                    std::size_t(ix)];
                            if (v > best) {
                                best = v;
                                best_idx = ((n * in.c + c) * in.h +
                                            std::size_t(iy)) *
                                               in.w +
                                           std::size_t(ix);
                            }
                        }
                    }
                    y.data()[((n * out.c + c) * out.h + oy) * out.w +
                             ox] = best;
                    if (train) {
                        argmaxIdx[((n * out.c + c) * out.h + oy) * out.w +
                                  ox] = best_idx;
                    }
                }
            }
        }
    });
    haveCache = train;
    return y;
}

Tensor
MaxPoolLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "pool ", layerName,
                ": backward without forward(train)");
    Tensor dx(inShape);
    for (std::size_t i = 0; i < dy.size(); ++i)
        dx[argmaxIdx[i]] += dy[i];
    return dx;
}

} // namespace pcnn
