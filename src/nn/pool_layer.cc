#include "nn/pool_layer.hh"

#include "common/logging.hh"
#include "common/parallel.hh"

namespace pcnn {

MaxPoolLayer::MaxPoolLayer(std::string name, std::size_t window,
                           std::size_t stride, std::size_t pad)
    : layerName(std::move(name)), window(window), stride(stride),
      pad(pad)
{
    pcnn_assert(window > 0 && stride > 0,
                "pool ", layerName, ": window/stride must be positive");
    pcnn_assert(pad < window,
                "pool ", layerName, ": padding must be under window");
}

Shape
MaxPoolLayer::outputShape(const Shape &in) const
{
    pcnn_assert(in.h + 2 * pad >= window && in.w + 2 * pad >= window,
                "pool ", layerName, ": input ", in.str(),
                " smaller than window ", window);
    return Shape{in.n, in.c, (in.h + 2 * pad - window) / stride + 1,
                 (in.w + 2 * pad - window) / stride + 1};
}

void
MaxPoolLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    const Shape out = outputShape(x.shape());
    // pcnn-analyze: allow(hot-path-alloc): grow-only output
    // buffer; capacity is reused once warm (DESIGN.md §5h).
    y.resize(out);
    if (train) {
        inShape = x.shape();
        // pcnn-analyze: allow(hot-path-alloc): training-only
        // bookkeeping; inference never takes this branch.
        argmaxIdx.assign(out.size(), 0);
    }

    const Shape &in = x.shape();
    // Each (n, c) plane pools independently — fan out over the pool.
    // The valid tap window is clipped once per output coordinate
    // (padding never wins), so the inner loops scan raw rows with no
    // per-tap bounds tests; the scan order over valid taps is the
    // same (ky, kx) order as before, so `v > best` picks identical
    // winners. Inference skips the argmax bookkeeping entirely.
    parallelFor(in.n * in.c, [&](std::size_t p0, std::size_t p1,
                                 std::size_t) {
        for (std::size_t plane = p0; plane < p1; ++plane) {
            const float *src = x.data() + plane * in.h * in.w;
            float *dst = y.data() + plane * out.h * out.w;
            for (std::size_t oy = 0; oy < out.h; ++oy) {
                const std::size_t y0 =
                    oy * stride >= pad ? oy * stride - pad : 0;
                const std::size_t y1 = std::min<std::size_t>(
                    in.h, oy * stride + window - pad);
                for (std::size_t ox = 0; ox < out.w; ++ox) {
                    const std::size_t x0 =
                        ox * stride >= pad ? ox * stride - pad : 0;
                    const std::size_t x1 = std::min<std::size_t>(
                        in.w, ox * stride + window - pad);
                    float best = -1e30f;
                    std::size_t best_idx = 0;
                    for (std::size_t iy = y0; iy < y1; ++iy) {
                        const float *row = src + iy * in.w;
                        if (train) {
                            for (std::size_t ix = x0; ix < x1; ++ix) {
                                if (row[ix] > best) {
                                    best = row[ix];
                                    best_idx = plane * in.h * in.w +
                                               iy * in.w + ix;
                                }
                            }
                        } else {
                            for (std::size_t ix = x0; ix < x1; ++ix)
                                best = row[ix] > best ? row[ix] : best;
                        }
                    }
                    dst[oy * out.w + ox] = best;
                    if (train)
                        argmaxIdx[plane * out.h * out.w + oy * out.w +
                                  ox] = best_idx;
                }
            }
        }
    });
    haveCache = train;
}

Tensor
MaxPoolLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "pool ", layerName,
                ": backward without forward(train)");
    Tensor dx(inShape);
    for (std::size_t i = 0; i < dy.size(); ++i)
        dx[argmaxIdx[i]] += dy[i];
    return dx;
}

} // namespace pcnn
