/**
 * @file
 * Architecture-level description of one convolutional layer.
 *
 * ConvSpec carries exactly the parameters the paper's analytical
 * models consume: N_f, S_f, N_c, W_o, H_o, stride, padding and group
 * count. It is shared between the functional nn:: layers and the
 * gpu:: kernel models, and is how the published AlexNet / VGGNet /
 * GoogLeNet architectures enter the system without trained weights.
 */

#ifndef PCNN_NN_CONV_SPEC_HH
#define PCNN_NN_CONV_SPEC_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "tensor/tensor_ops.hh"

namespace pcnn {

/**
 * Algorithm realizing a convolution on the CPU substrate
 * (DESIGN.md §5e). The numeric values are the on-disk encoding of
 * the per-layer algorithm field in version-2 kernel plans — never
 * renumber.
 */
enum class ConvAlgo : std::uint8_t
{
    Im2col = 0,    ///< im2col expansion + SGEMM (always applicable)
    Direct1x1 = 1, ///< in-place channel-mixer GEMM (1x1/s1/p0 only)
    Winograd = 2,  ///< F(2x2,3x3) transform domain (3x3/s1 only)
};

/** Stable lower-case name, e.g. for plans, benches and env parsing. */
const char *convAlgoName(ConvAlgo a);

/**
 * Parse a convAlgoName() string (also accepts "1x1" for Direct1x1).
 * Returns false — leaving `out` untouched — on unknown input.
 */
bool parseConvAlgo(const std::string &s, ConvAlgo &out);

/**
 * Shape-level description of a convolutional layer.
 *
 * Grouped convolutions (AlexNet CONV2/4/5) lower to `groups`
 * independent SGEMMs whose M dimension is N_f / groups — this is why
 * the paper's Table IV lists AlexNet CONV2 as a 128 x 729 result
 * matrix even though the layer has 256 filters.
 */
struct ConvSpec
{
    std::string name;      ///< e.g. "CONV2"
    std::size_t inC = 0;   ///< input channels (total, all groups)
    std::size_t outC = 0;  ///< filters N_f (total, all groups)
    std::size_t kernel = 0;///< square filter side S_f
    std::size_t stride = 1;
    std::size_t pad = 0;
    std::size_t inH = 0;
    std::size_t inW = 0;
    std::size_t groups = 1;

    /** Convolution geometry for one input item. */
    ConvGeom geom() const;

    /** Output height W.r.t. stride/pad. */
    std::size_t outH() const { return geom().outH(); }

    /** Output width. */
    std::size_t outW() const { return geom().outW(); }

    /**
     * FLOPs of the layer for one image (Eq. 1):
     * 2 N_f S_f^2 N_c W_o H_o (group-corrected).
     */
    double flopsPerImage() const;

    /**
     * The SGEMM this layer lowers to, for a given batch size and an
     * (optionally perforated) number of computed output positions per
     * image. The batch extends the N dimension, as in the deep
     * learning libraries the paper characterizes.
     *
     * @param batch batch size
     * @param positions_per_image computed output positions; defaults
     *        to the full W_o * H_o grid
     */
    GemmShape gemmShape(std::size_t batch,
                        std::size_t positions_per_image = 0) const;

    /** Number of independent SGEMMs (the group count). */
    std::size_t gemmCount() const { return groups; }

    /** True when `a` can realize this layer's geometry. */
    bool algoEligible(ConvAlgo a) const;

    /** Winograd F(2x2,3x3) tile count per image (2x2-output tiles). */
    std::size_t winogradTiles() const;

    /**
     * The per-transform-point GEMM the winograd lowering performs:
     * M = tiles * batch, N = N_f / groups, K = N_c / groups. There
     * are 16 such products per group (one per transform point), so
     * winograd's gemmCount() analogue is 16 * groups.
     */
    GemmShape winogradGemmShape(std::size_t batch) const;

    /**
     * Elements streamed by the winograd input/output transforms for
     * one batch: the 16-point transform-domain tensors plus one read
     * of the input and one write of the output. Used by the time
     * model to price the algorithm choice (DESIGN.md §5e).
     */
    double winogradTransformElems(std::size_t batch) const;

    /** Weight parameter count (including groups). */
    std::size_t weightCount() const;

    /** Output activation element count per image. */
    std::size_t outputSizePerImage() const { return outC * outH() * outW(); }

    /** Input activation element count per image. */
    std::size_t inputSizePerImage() const { return inC * inH * inW; }
};

/**
 * CPU-calibrated cost model choosing the fastest eligible algorithm
 * for a layer shape (the plan-time default; an offline plan or the
 * PCNN_CONV_ALGO override can pin a different choice). Constants are
 * fit against the per-algorithm latency sweep in BENCH_pr4.json.
 */
ConvAlgo selectConvAlgo(const ConvSpec &spec);

} // namespace pcnn

#endif // PCNN_NN_CONV_SPEC_HH
