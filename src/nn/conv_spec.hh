/**
 * @file
 * Architecture-level description of one convolutional layer.
 *
 * ConvSpec carries exactly the parameters the paper's analytical
 * models consume: N_f, S_f, N_c, W_o, H_o, stride, padding and group
 * count. It is shared between the functional nn:: layers and the
 * gpu:: kernel models, and is how the published AlexNet / VGGNet /
 * GoogLeNet architectures enter the system without trained weights.
 */

#ifndef PCNN_NN_CONV_SPEC_HH
#define PCNN_NN_CONV_SPEC_HH

#include <cstddef>
#include <string>

#include "tensor/tensor_ops.hh"

namespace pcnn {

/**
 * Shape-level description of a convolutional layer.
 *
 * Grouped convolutions (AlexNet CONV2/4/5) lower to `groups`
 * independent SGEMMs whose M dimension is N_f / groups — this is why
 * the paper's Table IV lists AlexNet CONV2 as a 128 x 729 result
 * matrix even though the layer has 256 filters.
 */
struct ConvSpec
{
    std::string name;      ///< e.g. "CONV2"
    std::size_t inC = 0;   ///< input channels (total, all groups)
    std::size_t outC = 0;  ///< filters N_f (total, all groups)
    std::size_t kernel = 0;///< square filter side S_f
    std::size_t stride = 1;
    std::size_t pad = 0;
    std::size_t inH = 0;
    std::size_t inW = 0;
    std::size_t groups = 1;

    /** Convolution geometry for one input item. */
    ConvGeom geom() const;

    /** Output height W.r.t. stride/pad. */
    std::size_t outH() const { return geom().outH(); }

    /** Output width. */
    std::size_t outW() const { return geom().outW(); }

    /**
     * FLOPs of the layer for one image (Eq. 1):
     * 2 N_f S_f^2 N_c W_o H_o (group-corrected).
     */
    double flopsPerImage() const;

    /**
     * The SGEMM this layer lowers to, for a given batch size and an
     * (optionally perforated) number of computed output positions per
     * image. The batch extends the N dimension, as in the deep
     * learning libraries the paper characterizes.
     *
     * @param batch batch size
     * @param positions_per_image computed output positions; defaults
     *        to the full W_o * H_o grid
     */
    GemmShape gemmShape(std::size_t batch,
                        std::size_t positions_per_image = 0) const;

    /** Number of independent SGEMMs (the group count). */
    std::size_t gemmCount() const { return groups; }

    /** Weight parameter count (including groups). */
    std::size_t weightCount() const;

    /** Output activation element count per image. */
    std::size_t outputSizePerImage() const { return outC * outH() * outW(); }

    /** Input activation element count per image. */
    std::size_t inputSizePerImage() const { return inC * inH * inW; }
};

} // namespace pcnn

#endif // PCNN_NN_CONV_SPEC_HH
