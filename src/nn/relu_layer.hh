/**
 * @file
 * Rectified linear unit activation layer.
 */

#ifndef PCNN_NN_RELU_LAYER_HH
#define PCNN_NN_RELU_LAYER_HH

#include <memory>
#include <string>

#include "nn/layer.hh"

namespace pcnn {

/** Element-wise max(0, x). */
class ReluLayer : public Layer
{
  public:
    /** @param name stable layer name for reports */
    explicit ReluLayer(std::string name);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "relu"; }
    Shape outputShape(const Shape &in) const override { return in; }
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;

    std::unique_ptr<Layer>
    cloneShared() override
    {
        auto c = std::make_unique<ReluLayer>(*this);
        c->mask = Tensor();
        c->haveCache = false;
        return c;
    }

  private:
    std::string layerName;
    /// 1.0 where the forward input was positive, else 0.0
    Tensor mask;
    bool haveCache = false;
};

} // namespace pcnn

#endif // PCNN_NN_RELU_LAYER_HH
