#include "nn/conv_spec.hh"

#include "common/logging.hh"

namespace pcnn {

ConvGeom
ConvSpec::geom() const
{
    pcnn_assert(groups >= 1 && inC % groups == 0 && outC % groups == 0,
                "layer ", name, ": channels not divisible by groups");
    return ConvGeom{inC, inH, inW, kernel, stride, pad};
}

double
ConvSpec::flopsPerImage() const
{
    // Eq. 1, applied per group: each group's GEMM is
    // (N_f/g) x (S_f^2 N_c/g) x (W_o H_o), and there are g of them.
    const double m = double(outC) / double(groups);
    const double k =
        double(kernel) * double(kernel) * double(inC) / double(groups);
    const double n = double(outH()) * double(outW());
    return 2.0 * m * k * n * double(groups);
}

GemmShape
ConvSpec::gemmShape(std::size_t batch,
                    std::size_t positions_per_image) const
{
    const std::size_t full = outH() * outW();
    const std::size_t pos =
        positions_per_image == 0 ? full : positions_per_image;
    pcnn_assert(pos <= full, "layer ", name, ": ", pos,
                " computed positions exceed output grid ", full);
    GemmShape g;
    g.m = outC / groups;
    g.k = kernel * kernel * (inC / groups);
    g.n = pos * batch;
    return g;
}

std::size_t
ConvSpec::weightCount() const
{
    return outC * (inC / groups) * kernel * kernel + outC;
}

} // namespace pcnn
