#include "nn/conv_spec.hh"

#include "common/logging.hh"
#include "tensor/winograd.hh"

namespace pcnn {

const char *
convAlgoName(ConvAlgo a)
{
    switch (a) {
    case ConvAlgo::Im2col:
        return "im2col";
    case ConvAlgo::Direct1x1:
        return "direct1x1";
    case ConvAlgo::Winograd:
        return "winograd";
    }
    return "invalid";
}

bool
parseConvAlgo(const std::string &s, ConvAlgo &out)
{
    if (s == "im2col") {
        out = ConvAlgo::Im2col;
    } else if (s == "direct1x1" || s == "1x1") {
        out = ConvAlgo::Direct1x1;
    } else if (s == "winograd") {
        out = ConvAlgo::Winograd;
    } else {
        return false;
    }
    return true;
}

ConvGeom
ConvSpec::geom() const
{
    pcnn_assert(groups >= 1 && inC % groups == 0 && outC % groups == 0,
                "layer ", name, ": channels not divisible by groups");
    return ConvGeom{inC, inH, inW, kernel, stride, pad};
}

double
ConvSpec::flopsPerImage() const
{
    // Eq. 1, applied per group: each group's GEMM is
    // (N_f/g) x (S_f^2 N_c/g) x (W_o H_o), and there are g of them.
    const double m = double(outC) / double(groups);
    const double k =
        double(kernel) * double(kernel) * double(inC) / double(groups);
    const double n = double(outH()) * double(outW());
    return 2.0 * m * k * n * double(groups);
}

GemmShape
ConvSpec::gemmShape(std::size_t batch,
                    std::size_t positions_per_image) const
{
    const std::size_t full = outH() * outW();
    const std::size_t pos =
        positions_per_image == 0 ? full : positions_per_image;
    pcnn_assert(pos <= full, "layer ", name, ": ", pos,
                " computed positions exceed output grid ", full);
    GemmShape g;
    g.m = outC / groups;
    g.k = kernel * kernel * (inC / groups);
    g.n = pos * batch;
    return g;
}

std::size_t
ConvSpec::weightCount() const
{
    return outC * (inC / groups) * kernel * kernel + outC;
}

bool
ConvSpec::algoEligible(ConvAlgo a) const
{
    switch (a) {
    case ConvAlgo::Im2col:
        return true;
    case ConvAlgo::Direct1x1:
        return kernel == 1 && stride == 1 && pad == 0;
    case ConvAlgo::Winograd:
        return winogradApplicable(geom());
    }
    return false;
}

std::size_t
ConvSpec::winogradTiles() const
{
    return winogradTileRows(outH()) * winogradTileCols(outW());
}

GemmShape
ConvSpec::winogradGemmShape(std::size_t batch) const
{
    GemmShape g;
    g.m = winogradTiles() * batch;
    g.n = outC / groups;
    g.k = inC / groups;
    return g;
}

double
ConvSpec::winogradTransformElems(std::size_t batch) const
{
    const double per_group = 16.0 * double(winogradTiles()) *
                             (double(inC) + double(outC)) /
                             double(groups);
    return double(batch) *
           (per_group * double(groups) +
            double(inputSizePerImage()) +
            double(outputSizePerImage()));
}

ConvAlgo
selectConvAlgo(const ConvSpec &spec)
{
    // A 1x1 channel mixer is the im2col GEMM minus the im2col pass:
    // strictly cheaper whenever it applies.
    if (spec.algoEligible(ConvAlgo::Direct1x1))
        return ConvAlgo::Direct1x1;
    if (!spec.algoEligible(ConvAlgo::Winograd))
        return ConvAlgo::Im2col;

    // im2col vs winograd. A pure MAC-count model (winograd replaces
    // 36 MACs per 2x2 output tile with 16) mispredicts badly on the
    // CPU substrate, because the two lowerings sit in different
    // efficiency regimes; the per-algorithm conv-layer sweep in
    // BENCH_pr4.json shows three of them:
    //
    //  - Small output grids (few SGEMM columns): im2col's narrow-N
    //    GEMM amortizes its panel packing poorly and the expansion
    //    pass is pure overhead, while winograd's handful of tiles
    //    transform out of L1. Winograd wins 1.4-1.8x.
    //  - Deep inputs: the 2.25x MAC saving dominates everything
    //    else. Winograd wins 1.5-3.5x.
    //  - In between, im2col's single deep-K GEMM runs near peak out
    //    of cache and winograd's 16 shallow tile-GEMMs plus strided
    //    transforms cannot keep up: im2col wins up to 1.8x.
    //
    // The thresholds below are the calibrated regime boundaries;
    // they are intentionally coarse (the measured landscape is not a
    // smooth function of the shape), and shallow inputs never take
    // winograd — the transforms outweigh a K <= 8 tile-GEMM.
    const std::size_t in_cg = spec.inC / spec.groups;
    const std::size_t pos = spec.outH() * spec.outW();

    constexpr std::size_t kWinoMinDepth = 8;   // K floor, channels
    constexpr std::size_t kWinoSmallGrid = 128; // positions/group
    constexpr std::size_t kWinoDeepDepth = 64; // channels

    if (in_cg < kWinoMinDepth)
        return ConvAlgo::Im2col;
    if (pos <= kWinoSmallGrid || in_cg >= kWinoDeepDepth)
        return ConvAlgo::Winograd;
    return ConvAlgo::Im2col;
}

} // namespace pcnn
