/**
 * @file
 * Fully connected (classifier) layer.
 */

#ifndef PCNN_NN_FC_LAYER_HH
#define PCNN_NN_FC_LAYER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "tensor/quant.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

/**
 * y = W x + b over flattened input items. The input may carry any
 * [c,h,w] factorization as long as c*h*w == inFeatures; the output is
 * [n, outFeatures, 1, 1].
 */
class FcLayer : public Layer
{
  public:
    /**
     * @param name stable layer name
     * @param in_features flattened input feature count
     * @param out_features output feature count
     * @param rng weight-initialization stream
     */
    FcLayer(std::string name, std::size_t in_features,
            std::size_t out_features, Rng &rng);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "fc"; }
    Shape outputShape(const Shape &in) const override;
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    double flopsPerImage(const Shape &in) const override;
    bool canFuseRelu() const override { return true; }
    void forwardFusedReluInto(const Tensor &x, Tensor &y) override;
    std::unique_ptr<Layer> cloneShared() override;

    /** Input feature count. */
    std::size_t inFeatures() const { return nIn; }

    /** Output feature count. */
    std::size_t outFeatures() const { return nOut; }

    /**
     * Route inference forwards through the int8 path (quant.hh):
     * per-channel int8 weight panel, per-tensor input quantization,
     * qgemm with the fused dequant+bias+ReLU epilogue. Training
     * forwards always stay fp32. For serving, enable before
     * cloneSharingWeights() so the warm-up forward materializes the
     * shared panel single-threaded.
     */
    void setQuantized(bool on) { quantOn = on; }

    /** True when the int8 route is enabled on this layer. */
    bool quantizedEnabled() const { return quantOn; }

    /** True when a forward with this `train` flag runs int8 (layer
     * flag or PCNN_QUANTIZE=1; never during training). */
    bool effectiveQuantized(bool train) const;

    /** Pin offline-calibrated input-activation quant params (from a
     * QuantProfile); without them the forward derives params from
     * the live input's min/max. */
    void
    setInputQuant(const QuantParams &qp)
    {
        inQuant = qp;
        haveInQuant = true;
    }

    /** Drop pinned input params; revert to dynamic ranges. */
    void clearInputQuant() { haveInQuant = false; }

    /** True when offline-calibrated input params are pinned. */
    bool hasInputQuant() const { return haveInQuant; }

    std::size_t
    steadyStateScratchBytes() const override
    {
        return qx.capacity() + yT.capacity() * sizeof(float);
    }

  private:
    /**
     * Parameters and the persistent packed panel derived from them,
     * bundled so serving replicas can share one copy
     * (Network::cloneSharingWeights, DESIGN.md §5f). Shared-mode
     * access is read-only: the panel is materialized before worker
     * threads exist (engine warm-up) and the generation check then
     * never re-packs because shared Params refuse markUpdated().
     */
    struct FcWeights
    {
        Param weight; ///< [outFeatures, inFeatures, 1, 1]
        Param bias;   ///< [1, outFeatures, 1, 1]

        /// persistent packed W^T (nIn x nOut), generation-tagged
        /// against `weight` so SGD steps and weight loads invalidate
        /// it
        PackedPanel wPack;

        /// persistent int8 weight panel (nOut x nIn, per-channel
        /// scales), generation-tagged like wPack
        QuantizedPanel qPack;
    };

    /** Weight-sharing replica constructor (see cloneShared). */
    FcLayer(const FcLayer &) = default;

    /** W^T panel for forward, rebuilt when `weight` changes. */
    const PackedPanel &packedWeightT();

    /** Int8 weight panel, rebuilt when `weight` changes. */
    const QuantizedPanel &quantizedWeight();

    /** Shared forward body; fuse_relu folds a ReLU into the store. */
    void forwardImpl(const Tensor &x, bool train, bool fuse_relu,
                     Tensor &y);

    std::string layerName;
    std::size_t nIn;
    std::size_t nOut;
    std::shared_ptr<FcWeights> w; ///< shared across replicas

    Tensor lastInput; ///< flattened to [n, nIn, 1, 1]
    bool haveCache = false;

    bool quantOn = false;     ///< int8 inference route enabled
    bool haveInQuant = false; ///< calibrated input params pinned
    QuantParams inQuant;      ///< the pinned input params

    // Per-replica int8 scratch (grow-only, cleared by cloneShared).
    std::vector<std::uint8_t> qx; ///< interleaved x^T panel
    std::vector<float> yT;        ///< nOut x batch staging (batch>1)
};

} // namespace pcnn

#endif // PCNN_NN_FC_LAYER_HH
