/**
 * @file
 * Fully connected (classifier) layer.
 */

#ifndef PCNN_NN_FC_LAYER_HH
#define PCNN_NN_FC_LAYER_HH

#include <cstddef>
#include <memory>
#include <string>

#include "nn/layer.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

/**
 * y = W x + b over flattened input items. The input may carry any
 * [c,h,w] factorization as long as c*h*w == inFeatures; the output is
 * [n, outFeatures, 1, 1].
 */
class FcLayer : public Layer
{
  public:
    /**
     * @param name stable layer name
     * @param in_features flattened input feature count
     * @param out_features output feature count
     * @param rng weight-initialization stream
     */
    FcLayer(std::string name, std::size_t in_features,
            std::size_t out_features, Rng &rng);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "fc"; }
    Shape outputShape(const Shape &in) const override;
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    double flopsPerImage(const Shape &in) const override;
    bool canFuseRelu() const override { return true; }
    void forwardFusedReluInto(const Tensor &x, Tensor &y) override;
    std::unique_ptr<Layer> cloneShared() override;

    /** Input feature count. */
    std::size_t inFeatures() const { return nIn; }

    /** Output feature count. */
    std::size_t outFeatures() const { return nOut; }

  private:
    /**
     * Parameters and the persistent packed panel derived from them,
     * bundled so serving replicas can share one copy
     * (Network::cloneSharingWeights, DESIGN.md §5f). Shared-mode
     * access is read-only: the panel is materialized before worker
     * threads exist (engine warm-up) and the generation check then
     * never re-packs because shared Params refuse markUpdated().
     */
    struct FcWeights
    {
        Param weight; ///< [outFeatures, inFeatures, 1, 1]
        Param bias;   ///< [1, outFeatures, 1, 1]

        /// persistent packed W^T (nIn x nOut), generation-tagged
        /// against `weight` so SGD steps and weight loads invalidate
        /// it
        PackedPanel wPack;
    };

    /** Weight-sharing replica constructor (see cloneShared). */
    FcLayer(const FcLayer &) = default;

    /** W^T panel for forward, rebuilt when `weight` changes. */
    const PackedPanel &packedWeightT();

    /** Shared forward body; fuse_relu folds a ReLU into the store. */
    void forwardImpl(const Tensor &x, bool train, bool fuse_relu,
                     Tensor &y);

    std::string layerName;
    std::size_t nIn;
    std::size_t nOut;
    std::shared_ptr<FcWeights> w; ///< shared across replicas

    Tensor lastInput; ///< flattened to [n, nIn, 1, 1]
    bool haveCache = false;
};

} // namespace pcnn

#endif // PCNN_NN_FC_LAYER_HH
