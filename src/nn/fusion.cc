#include "nn/fusion.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"

namespace pcnn {

namespace {

/** ReLU-folding flag, seeded from PCNN_FOLD_RELU ("0" disables). */
bool &
reluFoldSlot()
{
    static bool on = [] {
        const char *e = std::getenv("PCNN_FOLD_RELU");
        return !(e != nullptr && std::string(e) == "0");
    }();
    return on;
}

struct ForcedAlgo
{
    bool active = false;
    ConvAlgo algo = ConvAlgo::Im2col;
};

/** Forced-algorithm slot, seeded from PCNN_CONV_ALGO on first use. */
ForcedAlgo &
forcedAlgoSlot()
{
    static ForcedAlgo slot = [] {
        ForcedAlgo f;
        const char *e = std::getenv("PCNN_CONV_ALGO");
        if (e == nullptr || *e == '\0' || std::string(e) == "auto")
            return f;
        ConvAlgo a;
        if (parseConvAlgo(e, a)) {
            f.active = true;
            f.algo = a;
        } else {
            pcnn_warn("PCNN_CONV_ALGO=", e,
                      " is not a known algorithm (want im2col | "
                      "direct1x1 | winograd | auto); ignoring");
        }
        return f;
    }();
    return slot;
}

/**
 * PCNN_QUANTIZE environment seed ("1"/"true" forces int8). Reached
 * from quantized forwards, so the comparison stays allocation-free
 * (the hot-path analyzer walks through the one-time static init).
 */
bool
quantizeEnvSeed()
{
    static const bool on = [] {
        const char *e = std::getenv("PCNN_QUANTIZE");
        return e != nullptr && (std::strcmp(e, "1") == 0 ||
                                std::strcmp(e, "true") == 0);
    }();
    return on;
}

/** Forced-quantization slot, seeded from PCNN_QUANTIZE. */
bool &
quantizeSlot()
{
    static bool on = quantizeEnvSeed();
    return on;
}

/** PCNN_GRAPH environment seed ("1"/"true" enables). */
bool
graphEnvSeed()
{
    static const bool on = [] {
        const char *e = std::getenv("PCNN_GRAPH");
        return e != nullptr && (std::strcmp(e, "1") == 0 ||
                                std::strcmp(e, "true") == 0);
    }();
    return on;
}

/** Compiled-graph dispatch slot, seeded from PCNN_GRAPH. */
bool &
graphSlot()
{
    static bool on = graphEnvSeed();
    return on;
}

} // namespace

bool
reluFoldingEnabled()
{
    return reluFoldSlot();
}

void
setReluFolding(bool on)
{
    reluFoldSlot() = on;
}

bool
forcedConvAlgo(ConvAlgo &out)
{
    const ForcedAlgo &f = forcedAlgoSlot();
    if (f.active)
        out = f.algo;
    return f.active;
}

void
setForcedConvAlgo(ConvAlgo algo)
{
    forcedAlgoSlot() = ForcedAlgo{true, algo};
}

void
clearForcedConvAlgo()
{
    forcedAlgoSlot() = ForcedAlgo{};
}

bool
quantizeForced()
{
    return quantizeSlot();
}

void
setQuantizeForced(bool on)
{
    quantizeSlot() = on;
}

void
clearQuantizeForced()
{
    quantizeSlot() = quantizeEnvSeed();
}

bool
graphEnabled()
{
    return graphSlot();
}

void
setGraphEnabled(bool on)
{
    graphSlot() = on;
}

void
clearGraphEnabled()
{
    graphSlot() = graphEnvSeed();
}

} // namespace pcnn
