/**
 * @file
 * Local response normalization (AlexNet-style, across channels).
 */

#ifndef PCNN_NN_LRN_LAYER_HH
#define PCNN_NN_LRN_LAYER_HH

#include <cstddef>
#include <memory>
#include <string>

#include "nn/layer.hh"

namespace pcnn {

/**
 * Cross-channel LRN:
 *   y_c = x_c / (k + (alpha/n) * sum_{c' in window} x_{c'}^2)^beta
 * with the window of n channels centered on c (AlexNet Section 3.3).
 */
class LrnLayer : public Layer
{
  public:
    /**
     * @param name stable layer name
     * @param size channel window n (AlexNet: 5)
     * @param alpha scale (AlexNet: 1e-4)
     * @param beta exponent (AlexNet: 0.75)
     * @param k bias (AlexNet: 2)
     */
    LrnLayer(std::string name, std::size_t size = 5,
             double alpha = 1e-4, double beta = 0.75, double k = 2.0);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "lrn"; }
    Shape outputShape(const Shape &in) const override { return in; }
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;

    std::unique_ptr<Layer>
    cloneShared() override
    {
        auto c = std::make_unique<LrnLayer>(*this);
        c->lastInput = Tensor();
        c->lastScale = Tensor();
        c->scaleScratch = Tensor();
        c->haveCache = false;
        return c;
    }

  private:
    std::string layerName;
    std::size_t size;
    float alpha;
    float beta;
    float k;

    Tensor lastInput;
    Tensor lastScale; ///< the (k + alpha/n * sum) term per element
    /// grow-only per-call scale buffer (forwardInto stays alloc-free)
    Tensor scaleScratch;
    bool haveCache = false;
};

} // namespace pcnn

#endif // PCNN_NN_LRN_LAYER_HH
