/**
 * @file
 * Sequential network container.
 */

#ifndef PCNN_NN_NETWORK_HH
#define PCNN_NN_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/conv_layer.hh"
#include "nn/fc_layer.hh"
#include "nn/inception_layer.hh"
#include "nn/layer.hh"

namespace pcnn {

class CompiledGraph;
struct GraphSchedule;

/**
 * A feed-forward chain of layers ending in classifier logits.
 *
 * Owns its layers. Provides the hooks the P-CNN runtime needs:
 * direct access to the conv layers (for per-layer perforation
 * control) and batch entropy of the output distribution (the paper's
 * CNN_entropy accuracy surrogate).
 */
class Network
{
  public:
    /**
     * @param name network name, e.g. "MiniNet-M"
     * @param input_shape expected single-item input shape (n ignored)
     */
    Network(std::string name, Shape input_shape);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;
    // Out of line: the compiled-graph member's type is incomplete
    // here (unique_ptr needs it complete at destroy).
    Network(Network &&) noexcept;
    Network &operator=(Network &&) noexcept;
    ~Network();

    /** Append a pre-built layer (for composites built elsewhere). */
    Layer *
    addLayer(std::unique_ptr<Layer> layer)
    {
        Layer *raw = layer.get();
        layers.push_back(std::move(layer));
        registerLayer(raw);
        return raw;
    }

    /** Append a layer; returns a typed pointer for convenience. */
    template <typename L, typename... Args>
    L *
    add(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L *raw = layer.get();
        layers.push_back(std::move(layer));
        registerLayer(raw);
        return raw;
    }

  private:
    /** Index conv/fc layers (recursing into composites). */
    void
    registerLayer(Layer *raw)
    {
        if (auto *conv = dynamic_cast<ConvLayer *>(raw))
            convs.push_back(conv);
        if (auto *inception = dynamic_cast<InceptionLayer *>(raw)) {
            for (ConvLayer *c : inception->convLayers())
                convs.push_back(c);
        }
        if (auto *fc = dynamic_cast<FcLayer *>(raw))
            fcs.push_back(fc);
    }

  public:

    /** Network name. */
    const std::string &name() const { return netName; }

    /** Expected per-item input shape. */
    const Shape &inputShape() const { return inShape; }

    /** Number of layers. */
    std::size_t size() const { return layers.size(); }

    /** Layer access by position. */
    Layer &layer(std::size_t i) { return *layers.at(i); }

    /** Conv layers in network order (for perforation control). */
    const std::vector<ConvLayer *> &convLayers() const { return convs; }

    /** Fully connected layers in network order. */
    const std::vector<FcLayer *> &fcLayers() const { return fcs; }

    /**
     * Run the network and return classifier logits [n, k, 1, 1].
     * @param x input batch matching inputShape() except n
     * @param train enables training-mode caching in every layer
     */
    Tensor forward(const Tensor &x, bool train = false);

    /**
     * Run the network, writing the logits into `out` (resized as
     * needed). Repeated calls with the same `out` tensor reuse its
     * buffer and the network's internal ping-pong activation
     * scratch, so a steady-state inference forward performs zero
     * allocations (DESIGN.md §5h). `out` must not alias `x`.
     */
    void forwardInto(const Tensor &x, bool train, Tensor &out);

    /** Softmax of forward(x): class probabilities. */
    Tensor predict(const Tensor &x);

    /**
     * Back-propagate d(logits) through the whole chain.
     * @pre forward(x, true) ran immediately before
     */
    Tensor backward(const Tensor &dlogits);

    /** All trainable parameters in network order. */
    std::vector<Param *> params();

    /** Zero every parameter gradient. */
    void zeroGrads();

    /** Total forward FLOPs for one image. */
    double flopsPerImage() const;

    /** Conv specs of this network (for the GPU-side models). */
    std::vector<ConvSpec> convSpecs() const;

    /** Reset all conv layers to unperforated execution. */
    void clearPerforation();

    /** Reset all conv/fc layers to the fp32 inference route. */
    void clearQuantization();

    /**
     * Replicate the network for a concurrent serving worker
     * (DESIGN.md §5f). The replica shares parameter storage and the
     * persistent packed/winograd panels with this network; per-forward
     * state (activations, scratch) is per-replica. Sharing freezes the
     * parameters of *both* networks permanently: any later SGD step,
     * weight load, or markUpdated() on either fails a PCNN_CHECK.
     *
     * Thread safety: run one warm-up forward on the prototype (to
     * materialize the panels the inference route needs) before any
     * other thread touches a replica; after that all replicas may run
     * forward() concurrently, and results are bitwise identical to
     * the prototype's.
     */
    Network cloneSharingWeights();

    /**
     * Compile (or recompile) the graph-dispatch schedule for batches
     * up to `batch` (DESIGN.md §5j). forwardInto does this lazily
     * when graphEnabled(); calling it up front — as ServeEngine does
     * per replica at maxBatch — moves the one arena allocation out
     * of the serving hot path. No-op when a compatible graph exists.
     */
    void ensureCompiledGraph(std::size_t batch);

    /**
     * Adopt a deserialized plan-v4 schedule (offline compiler) as
     * this network's compiled graph; fails a PCNN_CHECK loudly when
     * the schedule does not match this network.
     */
    void adoptGraphSchedule(const GraphSchedule &s);

    /** Drop the compiled graph; next graph forward recompiles. */
    void clearCompiledGraph();

    /** The active compiled graph, or nullptr. */
    const CompiledGraph *compiledGraph() const { return graph.get(); }

    /**
     * How many times a graph (and hence its arena) was compiled on
     * this network. Serving asserts exactly one per replica.
     */
    std::size_t graphCompileCount() const { return graphCompiles; }

    /**
     * Current bytes of steady-state inference working memory:
     * ping-pong activation capacity, per-layer grow-only scratch,
     * and — when a graph is compiled — its arena and shared conv
     * scratch pool. Parameters and caller tensors excluded. This is
     * the `peak_arena_bytes` metric the ≥30% reduction criterion is
     * measured on.
     */
    std::size_t steadyMemoryBytes() const;

  private:
    std::string netName;
    Shape inShape;
    std::vector<std::unique_ptr<Layer>> layers;
    std::vector<ConvLayer *> convs;
    std::vector<FcLayer *> fcs;
    /// forwardInto ping-pong activation scratch; grow-only,
    /// per-network (replicas get their own via cloneSharingWeights)
    Tensor actA, actB;
    /// compiled-graph executable (graphEnabled() dispatch); never
    /// carried by cloneSharingWeights — each replica compiles its own
    std::unique_ptr<CompiledGraph> graph;
    std::size_t graphCompiles = 0; ///< arena allocations performed
};

} // namespace pcnn

#endif // PCNN_NN_NETWORK_HH
