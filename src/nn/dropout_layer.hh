/**
 * @file
 * Inverted dropout layer (identity at inference time).
 */

#ifndef PCNN_NN_DROPOUT_LAYER_HH
#define PCNN_NN_DROPOUT_LAYER_HH

#include <memory>
#include <string>

#include "nn/layer.hh"

namespace pcnn {

/**
 * Inverted dropout: during training each activation is zeroed with
 * probability p and survivors are scaled by 1/(1-p); at inference the
 * layer is the identity, so no test-time rescaling is needed.
 */
class DropoutLayer : public Layer
{
  public:
    /**
     * @param name stable layer name
     * @param p drop probability in [0, 1)
     * @param rng mask-sampling stream
     */
    DropoutLayer(std::string name, double p, Rng &rng);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "dropout"; }
    Shape outputShape(const Shape &in) const override { return in; }
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;

    /// Identity at inference; the replica keeps its own rng copy so a
    /// (contract-violating) training forward cannot race the original.
    std::unique_ptr<Layer>
    cloneShared() override
    {
        auto c = std::make_unique<DropoutLayer>(*this);
        c->mask = Tensor();
        c->haveCache = false;
        return c;
    }

  private:
    std::string layerName;
    double prob;
    Rng rng;
    Tensor mask;
    bool haveCache = false;
};

} // namespace pcnn

#endif // PCNN_NN_DROPOUT_LAYER_HH
