/**
 * @file
 * Abstract Layer interface for the functional CNN substrate.
 *
 * Layers support forward execution (inference and training mode) and
 * a backward pass for the built-in trainer. The GPU-side analytical
 * models never execute layers; they consume ConvSpec shapes instead.
 */

#ifndef PCNN_NN_LAYER_HH
#define PCNN_NN_LAYER_HH

#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace pcnn {

/** A trainable parameter: value and accumulated gradient. */
struct Param
{
    Tensor value;
    Tensor grad;

    /** Zero the gradient buffer. */
    void
    zeroGrad()
    {
        grad.fill(0.0f);
    }
};

/**
 * Base class of all network layers.
 *
 * Contract: backward(dy) may only be called after forward(x, true)
 * with the matching activation, and returns the gradient with respect
 * to that x. Parameter gradients are *accumulated* into Param::grad.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Stable layer name, e.g. "CONV2". */
    virtual std::string name() const = 0;

    /** Layer kind, e.g. "conv", "relu". */
    virtual std::string kind() const = 0;

    /** Output shape for a given input shape. */
    virtual Shape outputShape(const Shape &in) const = 0;

    /**
     * Run the layer.
     * @param x input activations
     * @param train true during training (enables caching for
     *        backward and stochastic behaviour such as dropout)
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /** Back-propagate; see class contract. */
    virtual Tensor backward(const Tensor &dy) = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }

    /** Forward FLOPs per image given an input shape; 0 if negligible. */
    virtual double flopsPerImage(const Shape &in) const
    {
        (void)in;
        return 0.0;
    }
};

} // namespace pcnn

#endif // PCNN_NN_LAYER_HH
