/**
 * @file
 * Abstract Layer interface for the functional CNN substrate.
 *
 * Layers support forward execution (inference and training mode) and
 * a backward pass for the built-in trainer. The GPU-side analytical
 * models never execute layers; they consume ConvSpec shapes instead.
 */

#ifndef PCNN_NN_LAYER_HH
#define PCNN_NN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace pcnn {

/**
 * A trainable parameter: value and accumulated gradient.
 *
 * `value` carries a generation counter so layers can cache derived
 * forms of a parameter (packed SGEMM panels, DESIGN.md §5d) and
 * rebuild them only when the parameter actually changed. Every code
 * path that writes `value` after construction must call
 * markUpdated(): the optimizer does after each step, weight
 * deserialization does after each load, and test code that perturbs
 * weights by hand must as well.
 */
struct Param
{
    Tensor value;
    Tensor grad;

    /** Zero the gradient buffer. */
    void
    zeroGrad()
    {
        grad.fill(0.0f);
    }

    /**
     * Monotone counter identifying the current contents of `value`.
     * Starts at 1 so a zero-initialized cache generation is always
     * stale.
     */
    std::uint64_t generation() const { return gen; }

    /** Record that `value` changed; invalidates packed caches. */
    void markUpdated() { ++gen; }

  private:
    std::uint64_t gen = 1;
};

/**
 * Base class of all network layers.
 *
 * Contract: backward(dy) may only be called after forward(x, true)
 * with the matching activation, and returns the gradient with respect
 * to that x. Parameter gradients are *accumulated* into Param::grad.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Stable layer name, e.g. "CONV2". */
    virtual std::string name() const = 0;

    /** Layer kind, e.g. "conv", "relu". */
    virtual std::string kind() const = 0;

    /** Output shape for a given input shape. */
    virtual Shape outputShape(const Shape &in) const = 0;

    /**
     * Run the layer.
     * @param x input activations
     * @param train true during training (enables caching for
     *        backward and stochastic behaviour such as dropout)
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /** Back-propagate; see class contract. */
    virtual Tensor backward(const Tensor &dy) = 0;

    /**
     * True when the layer has a fused forward that folds an
     * immediately following ReLU into its own output pass
     * (DESIGN.md §5e). The Network inference peephole only fuses
     * into layers that opt in.
     */
    virtual bool canFuseRelu() const { return false; }

    /**
     * Inference forward with a folded ReLU: must return exactly
     * relu(forward(x, false)). The default realizes that contract
     * literally (forward, then clamp) so overriding canFuseRelu()
     * alone is never unsound; layers with a real fused path override
     * both.
     */
    virtual Tensor
    forwardFusedRelu(const Tensor &x)
    {
        Tensor y = forward(x, false);
        float *d = y.data();
        for (std::size_t i = 0; i < y.size(); ++i)
            d[i] = d[i] < 0.0f ? 0.0f : d[i];
        return y;
    }

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }

    /** Forward FLOPs per image given an input shape; 0 if negligible. */
    virtual double flopsPerImage(const Shape &in) const
    {
        (void)in;
        return 0.0;
    }
};

} // namespace pcnn

#endif // PCNN_NN_LAYER_HH
