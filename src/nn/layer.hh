/**
 * @file
 * Abstract Layer interface for the functional CNN substrate.
 *
 * Layers support forward execution (inference and training mode) and
 * a backward pass for the built-in trainer. The GPU-side analytical
 * models never execute layers; they consume ConvSpec shapes instead.
 */

#ifndef PCNN_NN_LAYER_HH
#define PCNN_NN_LAYER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hh"
#include "tensor/tensor.hh"

namespace pcnn {

/**
 * A trainable parameter: value and accumulated gradient.
 *
 * `value` carries a generation counter so layers can cache derived
 * forms of a parameter (packed SGEMM panels, DESIGN.md §5d) and
 * rebuild them only when the parameter actually changed. Every code
 * path that writes `value` after construction must call
 * markUpdated(): the optimizer does after each step, weight
 * deserialization does after each load, and test code that perturbs
 * weights by hand must as well.
 *
 * A parameter whose storage is shared across serving replicas
 * (Network::cloneSharingWeights, DESIGN.md §5f) is frozen:
 * setShared() marks it, and from then on markUpdated() — and hence
 * every protocol-abiding mutation path (SGD step, weight
 * deserialization, hand edits) — fails a PCNN_CHECK instead of
 * silently corrupting the weights other replicas are concurrently
 * reading. Sharing is permanent for the life of the parameter.
 */
struct Param
{
    Tensor value;
    Tensor grad;

    /** Zero the gradient buffer. */
    void
    zeroGrad()
    {
        grad.fill(0.0f);
    }

    /**
     * Monotone counter identifying the current contents of `value`.
     * Starts at 1 so a zero-initialized cache generation is always
     * stale.
     */
    std::uint64_t generation() const { return gen; }

    /** Record that `value` changed; invalidates packed caches. */
    void
    markUpdated()
    {
        PCNN_CHECK(!sharedRO,
                   "Param::markUpdated on a parameter shared across "
                   "replicas: shared weights are read-only at "
                   "inference (DESIGN.md §5f)");
        ++gen;
    }

    /**
     * Freeze the parameter: its storage is (about to be) shared
     * across replica networks and must never change again.
     */
    void setShared() { sharedRO = true; }

    /** True once the parameter is shared across replicas. */
    bool isShared() const { return sharedRO; }

  private:
    std::uint64_t gen = 1;
    bool sharedRO = false;
};

/**
 * Base class of all network layers.
 *
 * Contract: backward(dy) may only be called after forward(x, true)
 * with the matching activation, and returns the gradient with respect
 * to that x. Parameter gradients are *accumulated* into Param::grad.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Stable layer name, e.g. "CONV2". */
    virtual std::string name() const = 0;

    /** Layer kind, e.g. "conv", "relu". */
    virtual std::string kind() const = 0;

    /** Output shape for a given input shape. */
    virtual Shape outputShape(const Shape &in) const = 0;

    /**
     * Run the layer, writing the output into a caller-provided
     * tensor (resized to the output shape; prior contents
     * discarded). Reusing `y` across calls is how the inference hot
     * path stays allocation-free: Tensor::resize never shrinks
     * capacity, so after the first call on the largest shape the
     * layer performs no allocator traffic (DESIGN.md §5h).
     * @param x input activations; must not alias y
     * @param train true during training (enables caching for
     *        backward and stochastic behaviour such as dropout)
     * @param y output destination; distinct object from x
     */
    virtual void forwardInto(const Tensor &x, bool train,
                             Tensor &y) = 0;

    /**
     * Run the layer into a fresh tensor (allocating convenience
     * wrapper over forwardInto).
     */
    Tensor
    forward(const Tensor &x, bool train)
    {
        Tensor y;
        forwardInto(x, train, y);
        return y;
    }

    /** Back-propagate; see class contract. */
    virtual Tensor backward(const Tensor &dy) = 0;

    /**
     * True when the layer has a fused forward that folds an
     * immediately following ReLU into its own output pass
     * (DESIGN.md §5e). The Network inference peephole only fuses
     * into layers that opt in.
     */
    virtual bool canFuseRelu() const { return false; }

    /**
     * Inference forward with a folded ReLU: must produce exactly
     * relu(forward(x, false)) in y. The default realizes that
     * contract literally (forward, then clamp) so overriding
     * canFuseRelu() alone is never unsound; layers with a real fused
     * path override both.
     * @param x input activations; must not alias y
     */
    virtual void
    forwardFusedReluInto(const Tensor &x, Tensor &y)
    {
        forwardInto(x, false, y);
        float *d = y.data();
        for (std::size_t i = 0; i < y.size(); ++i)
            d[i] = d[i] < 0.0f ? 0.0f : d[i];
    }

    /** Allocating convenience wrapper over forwardFusedReluInto. */
    Tensor
    forwardFusedRelu(const Tensor &x)
    {
        Tensor y;
        forwardFusedReluInto(x, y);
        return y;
    }

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }

    /**
     * Replicate the layer for a concurrent serving worker
     * (DESIGN.md §5f): configuration and trainable state are carried
     * over, with parameter storage and the persistent packed/winograd
     * panels *shared* with this layer (marked read-only via
     * Param::setShared — the clone and the original both refuse
     * mutation afterwards). Transient training caches are not
     * carried. Stateless layers return an independent copy.
     *
     * The base implementation rejects: every in-tree layer overrides
     * it, and out-of-tree layers must opt in explicitly before their
     * networks can be replicated.
     */
    virtual std::unique_ptr<Layer>
    cloneShared()
    {
        PCNN_CHECK(false, "layer kind '", kind(),
                   "' does not support weight-sharing replication");
        return nullptr;
    }

    /** Forward FLOPs per image given an input shape; 0 if negligible. */
    virtual double flopsPerImage(const Shape &in) const
    {
        (void)in;
        return 0.0;
    }

    /**
     * Bytes of grow-only per-replica scratch this layer currently
     * holds for inference forwards (not parameters, not caller
     * activations). Feeds Network::steadyMemoryBytes(), the footprint
     * the arena planner is benchmarked against; layers whose scratch
     * lives in a shared pool (DESIGN.md §5j) report 0 while pooled.
     */
    virtual std::size_t steadyStateScratchBytes() const { return 0; }
};

} // namespace pcnn

#endif // PCNN_NN_LAYER_HH
