#include "nn/inception_layer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "nn/fusion.hh"
#include "nn/pool_layer.hh"
#include "nn/relu_layer.hh"

namespace pcnn {

InceptionLayer::InceptionLayer(std::string name,
                               std::vector<Branch> branch_list)
    : layerName(std::move(name)), branches(std::move(branch_list))
{
    pcnn_assert(!branches.empty(), "inception ", layerName,
                ": needs at least one branch");
    for (const Branch &b : branches) {
        pcnn_assert(!b.empty(), "inception ", layerName,
                    ": empty branch");
        for (const auto &layer : b)
            if (auto *conv = dynamic_cast<ConvLayer *>(layer.get()))
                convs.push_back(conv);
    }
}

std::unique_ptr<Layer>
InceptionLayer::cloneShared()
{
    // Replicate branch by branch; the ctor revalidates and rebuilds
    // the inner-conv index over the cloned layers.
    std::vector<Branch> cloned;
    cloned.reserve(branches.size());
    for (Branch &br : branches) {
        Branch cb;
        cb.reserve(br.size());
        for (auto &layer : br)
            cb.push_back(layer->cloneShared());
        cloned.push_back(std::move(cb));
    }
    auto c = std::make_unique<InceptionLayer>(layerName,
                                              std::move(cloned));
    return c;
}

std::unique_ptr<InceptionLayer>
InceptionLayer::standard(std::string name, std::size_t in_c,
                         std::size_t hw, std::size_t ch1,
                         std::size_t ch3r, std::size_t ch3,
                         std::size_t ch5r, std::size_t ch5,
                         std::size_t pool_proj, Rng &rng)
{
    auto conv = [&](const std::string &tag, std::size_t ic,
                    std::size_t oc, std::size_t k, std::size_t pad) {
        ConvSpec s;
        s.name = name + "/" + tag;
        s.inC = ic;
        s.outC = oc;
        s.kernel = k;
        s.stride = 1;
        s.pad = pad;
        s.inH = hw;
        s.inW = hw;
        return std::make_unique<ConvLayer>(s, rng);
    };
    auto relu = [&](const std::string &tag) {
        return std::make_unique<ReluLayer>(name + "/" + tag);
    };

    std::vector<Branch> branches;
    {
        Branch b;
        b.push_back(conv("1x1", in_c, ch1, 1, 0));
        b.push_back(relu("relu_1x1"));
        branches.push_back(std::move(b));
    }
    {
        Branch b;
        b.push_back(conv("3x3_reduce", in_c, ch3r, 1, 0));
        b.push_back(relu("relu_3x3_reduce"));
        b.push_back(conv("3x3", ch3r, ch3, 3, 1));
        b.push_back(relu("relu_3x3"));
        branches.push_back(std::move(b));
    }
    {
        Branch b;
        b.push_back(conv("5x5_reduce", in_c, ch5r, 1, 0));
        b.push_back(relu("relu_5x5_reduce"));
        b.push_back(conv("5x5", ch5r, ch5, 5, 2));
        b.push_back(relu("relu_5x5"));
        branches.push_back(std::move(b));
    }
    {
        Branch b;
        b.push_back(std::make_unique<MaxPoolLayer>(name + "/pool", 3,
                                                   1, 1));
        b.push_back(conv("pool_proj", in_c, pool_proj, 1, 0));
        b.push_back(relu("relu_pool_proj"));
        branches.push_back(std::move(b));
    }
    return std::make_unique<InceptionLayer>(std::move(name),
                                            std::move(branches));
}

Shape
InceptionLayer::branchOutputShape(std::size_t b, const Shape &in) const
{
    Shape s = in;
    for (const auto &layer : branches[b])
        s = layer->outputShape(s);
    return s;
}

Shape
InceptionLayer::outputShape(const Shape &in) const
{
    Shape first = branchOutputShape(0, in);
    std::size_t channels = first.c;
    for (std::size_t b = 1; b < branches.size(); ++b) {
        const Shape s = branchOutputShape(b, in);
        pcnn_assert(s.h == first.h && s.w == first.w, "inception ",
                    layerName, ": branch ", b,
                    " spatial size mismatch (", s.str(), " vs ",
                    first.str(), ")");
        channels += s.c;
    }
    return Shape{in.n, channels, first.h, first.w};
}

void
InceptionLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    const Shape out = outputShape(x.shape());
    // pcnn-analyze: allow(hot-path-alloc): grow-only output
    // buffer; capacity is reused once warm (DESIGN.md §5h).
    y.resize(out);

    std::size_t c_off = 0;
    const std::size_t plane = out.h * out.w;
    const bool fold = !train && reluFoldingEnabled();
    for (auto &branch : branches) {
        // Feed the shared input to each branch head by reference —
        // no per-branch copy of x. Branch activations ping-pong
        // between two persistent scratch tensors, so the whole block
        // allocates nothing once they have grown. The same
        // ReLU-folding peephole as Network::forward applies within
        // each branch chain.
        const Tensor *cur = &x;
        Tensor *nxt = &actA;
        for (std::size_t li = 0; li < branch.size(); ++li) {
            Layer *layer = branch[li].get();
            Tensor *dst = nxt;
            if (fold && li + 1 < branch.size() &&
                layer->canFuseRelu() &&
                branch[li + 1]->kind() == "relu") {
                layer->forwardFusedReluInto(*cur, *dst);
                ++li;
            } else {
                layer->forwardInto(*cur, train, *dst);
            }
            nxt = dst == &actA ? &actB : &actA;
            cur = dst;
        }
        // Concatenate along channels.
        const Shape &bs = cur->shape();
        for (std::size_t n = 0; n < bs.n; ++n) {
            const float *src = cur->data() + n * bs.itemSize();
            float *dst =
                y.data() + (n * out.c + c_off) * plane;
            std::copy(src, src + bs.itemSize(), dst);
        }
        c_off += bs.c;
    }

    if (train) {
        lastInShape = x.shape();
        haveCache = true;
    }
}

Tensor
InceptionLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "inception ", layerName,
                ": backward without forward(train)");
    const Shape out = outputShape(lastInShape);
    pcnn_assert(dy.shape() == out, "inception ", layerName,
                ": gradient shape mismatch");

    Tensor dx(lastInShape);
    const std::size_t plane = out.h * out.w;
    std::size_t c_off = 0;
    for (auto &branch : branches) {
        const Shape bs = branchOutputShape(
            std::size_t(&branch - branches.data()), lastInShape);

        // Slice this branch's share of dy.
        Tensor dyb(Shape{dy.shape().n, bs.c, bs.h, bs.w});
        for (std::size_t n = 0; n < dy.shape().n; ++n) {
            const float *src =
                dy.data() + (n * out.c + c_off) * plane;
            float *dst = dyb.data() + n * dyb.shape().itemSize();
            std::copy(src, src + dyb.shape().itemSize(), dst);
        }

        Tensor g = dyb;
        for (auto it = branch.rbegin(); it != branch.rend(); ++it)
            g = (*it)->backward(g);
        pcnn_assert(g.shape() == lastInShape, "inception ", layerName,
                    ": branch input-gradient shape mismatch");
        for (std::size_t i = 0; i < dx.size(); ++i)
            dx[i] += g[i];
        c_off += bs.c;
    }
    return dx;
}

std::size_t
InceptionLayer::steadyStateScratchBytes() const
{
    // Inner ping-pong staging plus whatever the branch layers hold.
    // The compiled-graph path never touches actA/actB (branches write
    // arena values directly), so on a graph-only replica these stay
    // at zero capacity.
    std::size_t total =
        (actA.capacityFloats() + actB.capacityFloats()) * sizeof(float);
    for (const Branch &branch : branches)
        for (const auto &layer : branch)
            total += layer->steadyStateScratchBytes();
    return total;
}

std::vector<Param *>
InceptionLayer::params()
{
    std::vector<Param *> out;
    for (auto &branch : branches)
        for (auto &layer : branch)
            for (Param *p : layer->params())
                out.push_back(p);
    return out;
}

double
InceptionLayer::flopsPerImage(const Shape &in) const
{
    double total = 0.0;
    for (const auto &branch : branches) {
        Shape s = in;
        for (const auto &layer : branch) {
            total += layer->flopsPerImage(s);
            s = layer->outputShape(s);
        }
    }
    return total;
}

} // namespace pcnn
