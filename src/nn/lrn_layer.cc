#include "nn/lrn_layer.hh"

#include <cmath>

#include "common/logging.hh"

namespace pcnn {

LrnLayer::LrnLayer(std::string name, std::size_t size, double alpha,
                   double beta, double k)
    : layerName(std::move(name)), size(size), alpha(float(alpha)),
      beta(float(beta)), k(float(k))
{
    pcnn_assert(size >= 1, "lrn ", layerName, ": window must be >= 1");
}

void
LrnLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    const Shape &s = x.shape();
    // pcnn-analyze: allow(hot-path-alloc): grow-only output
    // buffer; capacity is reused once warm (DESIGN.md §5h).
    y.resize(s);
    // Persistent scratch: the normalization scales are recomputed
    // every call but the buffer grows once and is then reused.
    Tensor &scale = scaleScratch;
    // pcnn-analyze: allow(hot-path-alloc): grow-only
    // persistent scratch (the comment above).
    scale.resize(s);
    const long half = long(size / 2);
    const float a_over_n = alpha / float(size);

    for (std::size_t n = 0; n < s.n; ++n) {
        for (std::size_t h = 0; h < s.h; ++h) {
            for (std::size_t w = 0; w < s.w; ++w) {
                for (std::size_t c = 0; c < s.c; ++c) {
                    double sum = 0.0;
                    for (long dc = -half; dc <= half; ++dc) {
                        const long cc = long(c) + dc;
                        if (cc < 0 || cc >= long(s.c))
                            continue;
                        const double v =
                            x.at(n, std::size_t(cc), h, w);
                        sum += v * v;
                    }
                    const float sc = k + a_over_n * float(sum);
                    scale.at(n, c, h, w) = sc;
                    y.at(n, c, h, w) =
                        x.at(n, c, h, w) * std::pow(sc, -beta);
                }
            }
        }
    }
    if (train) {
        lastInput = x;
        lastScale = scale;
        haveCache = true;
    }
}

Tensor
LrnLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "lrn ", layerName,
                ": backward without forward(train)");
    const Shape &s = lastInput.shape();
    pcnn_assert(dy.shape() == s, "lrn ", layerName,
                ": gradient shape mismatch");

    // dL/dx_c = dy_c * scale_c^-beta
    //   - (2*alpha*beta/n) * x_c *
    //     sum_{c' : c in window(c')} dy_{c'} * x_{c'} *
    //     scale_{c'}^{-beta-1}
    Tensor dx(s);
    const long half = long(size / 2);
    const float a_over_n = alpha / float(size);

    for (std::size_t n = 0; n < s.n; ++n) {
        for (std::size_t h = 0; h < s.h; ++h) {
            for (std::size_t w = 0; w < s.w; ++w) {
                for (std::size_t c = 0; c < s.c; ++c) {
                    const float sc = lastScale.at(n, c, h, w);
                    double g = double(dy.at(n, c, h, w)) *
                               std::pow(sc, -beta);
                    double cross = 0.0;
                    for (long dc = -half; dc <= half; ++dc) {
                        const long cc = long(c) + dc;
                        if (cc < 0 || cc >= long(s.c))
                            continue;
                        const float sc2 =
                            lastScale.at(n, std::size_t(cc), h, w);
                        cross += double(dy.at(n, std::size_t(cc), h,
                                              w)) *
                                 double(lastInput.at(
                                     n, std::size_t(cc), h, w)) *
                                 std::pow(sc2, -beta - 1.0f);
                    }
                    g -= 2.0 * a_over_n * beta *
                         double(lastInput.at(n, c, h, w)) * cross;
                    dx.at(n, c, h, w) = float(g);
                }
            }
        }
    }
    return dx;
}

} // namespace pcnn
