/**
 * @file
 * Published network architectures and trainable mini networks.
 *
 * The three ImageNet winners the paper characterizes (AlexNet,
 * VGGNet-16, GoogLeNet) are provided as shape-level descriptors: the
 * GPU analytical models only ever need layer geometry, never trained
 * weights. The trainable MiniNet family substitutes for the
 * ImageNet-trained models in the accuracy/entropy experiments (see
 * DESIGN.md, substitution table).
 */

#ifndef PCNN_NN_MODEL_ZOO_HH
#define PCNN_NN_MODEL_ZOO_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "nn/conv_spec.hh"
#include "nn/network.hh"

namespace pcnn {

/**
 * Shape-level description of a full CNN: conv layers plus the fully
 * connected classifier tail. Sufficient for every GPU-side model in
 * the paper (time, resource, memory footprint).
 */
struct NetDescriptor
{
    std::string name;
    Shape inputShape;              ///< single-item input (n == 1)
    std::vector<ConvSpec> convs;   ///< in network order
    /// fully connected tail as (inFeatures, outFeatures) pairs
    std::vector<std::pair<std::size_t, std::size_t>> fcs;
    std::size_t paperBatch = 1;    ///< batch size used in Table III

    /** Total conv FLOPs per image (Eq. 1 summed over layers). */
    double convFlopsPerImage() const;

    /** FC tail FLOPs per image. */
    double fcFlopsPerImage() const;

    /** convFlopsPerImage() + fcFlopsPerImage(). */
    double totalFlopsPerImage() const;

    /** Total parameter count (conv + fc, including biases). */
    std::size_t weightCount() const;

    /**
     * Sum of activation elements produced per image across all conv
     * and fc layers — the paper's reason batching runs out of memory
     * on mobile GPUs (Section III.B).
     */
    std::size_t activationElemsPerImage() const;
};

/** AlexNet (Krizhevsky et al.), Caffe single-tower shapes, 227x227. */
NetDescriptor alexNet();

/** VGGNet-16 (Simonyan & Zisserman), 224x224. */
NetDescriptor vgg16();

/** GoogLeNet (Szegedy et al.), all inception branches, 224x224. */
NetDescriptor googleNet();

/** The three paper networks in the order they appear in Table III. */
std::vector<NetDescriptor> paperNetworks();

/** Capacity tiers of the trainable substitute network. */
enum class MiniSize { Small, Medium, Large };

/** Name of a MiniSize tier ("MiniNet-S" etc.). */
std::string miniSizeName(MiniSize size);

/**
 * Build a trainable MiniNet over 1x16x16 inputs.
 *
 * Capacity rises from Small to Large; once trained on the synthetic
 * task, accuracy rises and output entropy falls with capacity,
 * reproducing the Table I relationship.
 *
 * @param size capacity tier
 * @param rng weight-initialization stream
 * @param classes classifier width
 */
Network makeMiniNet(MiniSize size, Rng &rng, std::size_t classes = 8);

/**
 * Build a trainable AlexNet-style network over 1x16x16 inputs:
 * conv + LRN + overlapping 3x3/2 max pool, a grouped conv, then the
 * classifier — the AlexNet-specific mechanisms (cross-channel LRN,
 * grouped convolution, overlapping pooling) in a trainable package.
 */
Network makeMiniAlexNet(Rng &rng, std::size_t classes = 8);

/**
 * Build a trainable VGG-style network over 1x16x16 inputs: two
 * stacked-3x3 conv blocks with 2x2 pooling and a two-layer classifier
 * — the VGGNet pattern (uniform small filters, depth over width) in a
 * trainable package.
 */
Network makeMiniVgg(Rng &rng, std::size_t classes = 8);

/**
 * Build a trainable inception-style network over 1x16x16 inputs:
 * stem conv, one standard four-branch inception module, global
 * average pooling, classifier. Exercises the branched functional
 * substrate (concat, padded pooling, global avg pool) end to end.
 */
Network makeMiniInception(Rng &rng, std::size_t classes = 8);

/** Shape-level descriptor of a functional network. */
NetDescriptor describe(const Network &net);

} // namespace pcnn

#endif // PCNN_NN_MODEL_ZOO_HH
