/**
 * @file
 * GoogLeNet-style inception module as a composite layer.
 *
 * An inception module runs several branches (1x1, 3x3-reduce + 3x3,
 * 5x5-reduce + 5x5, pool + projection) on the same input and
 * concatenates their outputs along the channel axis. Implementing it
 * as one composite Layer keeps Network a simple chain while fully
 * supporting branched functional networks — including per-branch
 * perforation control through the exposed inner conv layers.
 */

#ifndef PCNN_NN_INCEPTION_LAYER_HH
#define PCNN_NN_INCEPTION_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/conv_layer.hh"
#include "nn/layer.hh"

namespace pcnn {

/** Composite layer: parallel branches concatenated channel-wise. */
class InceptionLayer : public Layer
{
  public:
    /** One branch: an owned sequence of layers applied in order. */
    using Branch = std::vector<std::unique_ptr<Layer>>;

    /**
     * @param name stable layer name, e.g. "3a"
     * @param branches at least one branch; every branch must map the
     *        same input to outputs of identical spatial size
     */
    InceptionLayer(std::string name, std::vector<Branch> branches);

    /**
     * Build the standard four-branch GoogLeNet module:
     * 1x1 conv | 1x1 reduce + 3x3 conv | 1x1 reduce + 5x5 conv |
     * 3x3/1 max pool + 1x1 projection, each followed by ReLU.
     *
     * @param in_c input channels
     * @param hw spatial side at the module input
     */
    static std::unique_ptr<InceptionLayer>
    standard(std::string name, std::size_t in_c, std::size_t hw,
             std::size_t ch1, std::size_t ch3r, std::size_t ch3,
             std::size_t ch5r, std::size_t ch5, std::size_t pool_proj,
             Rng &rng);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "inception"; }
    Shape outputShape(const Shape &in) const override;
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    double flopsPerImage(const Shape &in) const override;
    std::unique_ptr<Layer> cloneShared() override;

    /** Number of branches. */
    std::size_t branchCount() const { return branches.size(); }

    /** Inner conv layers across all branches (for perforation). */
    const std::vector<ConvLayer *> &convLayers() const { return convs; }

    /**
     * The branch chains themselves, for the graph compiler's
     * lowering (DESIGN.md §5j): a branch's layers execute in order
     * on the module input and its terminal output occupies the next
     * chanOff window of the concat output. The layers stay owned by
     * this module.
     */
    const std::vector<Branch> &branchList() const { return branches; }

    std::size_t steadyStateScratchBytes() const override;

  private:
    /** Output channels of one branch for a given input shape. */
    Shape branchOutputShape(std::size_t b, const Shape &in) const;

    std::string layerName;
    std::vector<Branch> branches;
    std::vector<ConvLayer *> convs;

    /// per-layer ping-pong activation scratch for forwardInto;
    /// grow-only, per-replica (never carried by cloneShared)
    Tensor actA, actB;

    // Training cache: per-branch outputs' channel offsets.
    Shape lastInShape;
    bool haveCache = false;
};

} // namespace pcnn

#endif // PCNN_NN_INCEPTION_LAYER_HH
