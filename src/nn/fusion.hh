/**
 * @file
 * Process-wide inference-fusion and algorithm-dispatch controls
 * (DESIGN.md §5e).
 *
 * Process-wide switches steer the inference hot path:
 *
 *  - ReLU folding: Network (and InceptionLayer branch chains) fold a
 *    ReLU layer into the producing Conv/Fc layer's fused-epilogue
 *    forward at inference. On by default; PCNN_FOLD_RELU=0 or
 *    setReluFolding(false) disables it (A/B benching, bitwise-parity
 *    tests). Training-mode forwards never fold.
 *
 *  - Forced conv algorithm: PCNN_CONV_ALGO=im2col|direct1x1|winograd
 *    (or setForcedConvAlgo()) overrides both the offline plan's
 *    per-layer choice and the cost model, wherever the forced
 *    algorithm is eligible for the layer geometry. `auto` / unset
 *    restores normal dispatch.
 *
 *  - Forced quantization: PCNN_QUANTIZE=1 (or setQuantizeForced())
 *    routes every Conv/Fc inference forward through the int8 path
 *    regardless of per-layer flags — the quantized analogue of the
 *    tier/algorithm forcing legs in CI. Training forwards are never
 *    quantized.
 *
 *  - Compiled-graph dispatch: PCNN_GRAPH=1 (or setGraphEnabled())
 *    routes inference forwards through the compiled graph and its
 *    static arena (DESIGN.md §5j) instead of the legacy ping-pong
 *    chain. Off by default; bitwise identical results either way.
 *
 * Both are plain process-wide toggles, not per-network state: they
 * exist for benchmarking and testing, and the hot path reads them
 * without synchronization (set them before running inference).
 */

#ifndef PCNN_NN_FUSION_HH
#define PCNN_NN_FUSION_HH

#include "nn/conv_spec.hh"

namespace pcnn {

/** True when inference may fold ReLU layers into producers. */
bool reluFoldingEnabled();

/** Enable/disable ReLU folding (overrides PCNN_FOLD_RELU). */
void setReluFolding(bool on);

/**
 * Forced conv algorithm override, if active: returns true and sets
 * `out`. Seeded from PCNN_CONV_ALGO on first use.
 */
bool forcedConvAlgo(ConvAlgo &out);

/** Force every eligible conv layer onto `algo`. */
void setForcedConvAlgo(ConvAlgo algo);

/** Drop the forced algorithm; dispatch returns to plan/cost-model. */
void clearForcedConvAlgo();

/** True when every inference forward is forced onto the int8 path. */
bool quantizeForced();

/** Force (or un-force) int8 inference process-wide. */
void setQuantizeForced(bool on);

/** Restore the PCNN_QUANTIZE environment default. */
void clearQuantizeForced();

/**
 * True when inference forwards route through the compiled graph
 * (pass-manager + static arena, DESIGN.md §5j) instead of the legacy
 * layer chain. Off by default; PCNN_GRAPH=1 (or setGraphEnabled)
 * turns it on. Results are bitwise identical either way — the switch
 * exists for A/B verification and staged rollout.
 */
bool graphEnabled();

/** Enable/disable the compiled-graph path (overrides PCNN_GRAPH). */
void setGraphEnabled(bool on);

/** Restore the PCNN_GRAPH environment default. */
void clearGraphEnabled();

} // namespace pcnn

#endif // PCNN_NN_FUSION_HH
