#include "nn/conv_layer.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/tags.hh"
#include "nn/fusion.hh"
#include "tensor/winograd.hh"

namespace pcnn {

ConvLayer::ConvLayer(ConvSpec spec, Rng &rng)
    : spc(std::move(spec)), w(std::make_shared<ConvWeights>()),
      computed(0)
{
    pcnn_assert(spc.inC % spc.groups == 0 && spc.outC % spc.groups == 0,
                "layer ", spc.name, ": groups must divide channels");
    const std::size_t in_cg = spc.inC / spc.groups;
    w->weight.value.resize(
        Shape{spc.outC, in_cg, spc.kernel, spc.kernel});
    w->weight.grad.resize(w->weight.value.shape());
    w->bias.value.resize(Shape{1, spc.outC, 1, 1});
    w->bias.grad.resize(w->bias.value.shape());

    // He initialization: stddev = sqrt(2 / fan_in).
    const double fan_in = double(in_cg * spc.kernel * spc.kernel);
    w->weight.value.fillGaussian(rng, 0.0f,
                                 float(std::sqrt(2.0 / fan_in)));

    computed = fullPositions();
    rebuildSampling();
}

std::unique_ptr<Layer>
ConvLayer::cloneShared()
{
    // Freeze first so no mutation can slip between clone and serve.
    w->weight.setShared();
    w->bias.setShared();
    auto clone = std::unique_ptr<ConvLayer>(new ConvLayer(*this));
    clone->lastInput = Tensor();
    clone->haveCache = false;
    clone->scratch.clear(); // activations stay per-replica
    clone->pool = nullptr;  // the replica's own graph installs one
    return clone;
}

std::size_t
ConvLayer::steadyStateScratchBytes() const
{
    // Own lanes only: when a shared pool is serving this layer the
    // bytes are counted once at the pool (CompiledGraph), not per
    // conv — that max-instead-of-sum is the point of pooling.
    std::size_t total = 0;
    for (const Scratch &s : scratch) {
        total += (s.cols.capacity() + s.gemmOut.capacity()) *
                 sizeof(float);
        total += s.qcols.capacity();
        total += (s.wino.v.capacity() + s.wino.m.capacity()) *
                 sizeof(float);
    }
    return total;
}

Shape
ConvLayer::outputShape(const Shape &in) const
{
    PCNN_CHECK(in.c == spc.inC && in.h == spc.inH && in.w == spc.inW,
               "layer ", spc.name, ": input ", in.str(),
               " mismatches spec [", spc.inC, ",", spc.inH, ",",
               spc.inW, "]");
    return Shape{in.n, spc.outC, spc.outH(), spc.outW()};
}

std::vector<Param *>
ConvLayer::params()
{
    return {&w->weight, &w->bias};
}

double
ConvLayer::flopsPerImage(const Shape &in) const
{
    (void)in;
    return spc.flopsPerImage();
}

void
ConvLayer::setComputedPositions(std::size_t positions)
{
    const std::size_t full = fullPositions();
    if (positions == 0 || positions > full)
        positions = full;
    positions = std::max<std::size_t>(positions, 1);
    if (positions == computed)
        return;
    computed = positions;
    rebuildSampling();
}

std::size_t
ConvLayer::computedPositions() const
{
    return computed;
}

double
ConvLayer::perforationRate() const
{
    return 1.0 - double(computed) / double(fullPositions());
}

void
ConvLayer::setInterpolationMode(InterpolationMode mode)
{
    interpMode = mode;
}

void
ConvLayer::setAlgo(ConvAlgo a)
{
    PCNN_CHECK(spc.algoEligible(a), "layer ", spc.name, ": algorithm ",
               convAlgoName(a), " is not eligible for kernel=",
               spc.kernel, " stride=", spc.stride, " pad=", spc.pad);
    algoPinned = true;
    algoSel = a;
}

void
ConvLayer::clearAlgo()
{
    algoPinned = false;
    algoSel = ConvAlgo::Im2col;
}

ConvAlgo
ConvLayer::plannedAlgo() const
{
    return algoPinned ? algoSel : selectConvAlgo(spc);
}

bool
ConvLayer::effectiveQuantized(bool train) const
{
    // Training always runs fp32: backward needs exact activations,
    // and quantization is an inference-time approximation like
    // perforation.
    return !train && (quantOn || quantizeForced());
}

ConvAlgo
ConvLayer::effectiveAlgo(bool train) const
{
    // Training and perforated forwards stay on the exact route: the
    // backward pass caches im2col-consumable activations, and the
    // perforated path computes scattered positions winograd tiles
    // cannot express. The 1x1 shortcut is bitwise equal to im2col,
    // so it remains in force for both.
    if (train || perforated())
        return is1x1Passthrough() ? ConvAlgo::Direct1x1
                                  : ConvAlgo::Im2col;
    ConvAlgo forced;
    if (forcedConvAlgo(forced) && spc.algoEligible(forced))
        return forced;
    return plannedAlgo();
}

void
ConvLayer::rebuildSampling()
{
    const std::size_t oh = spc.outH(), ow = spc.outW();
    const std::size_t full = oh * ow;
    if (computed >= full) {
        computed = full;
        sample.clear();
        fillFrom.clear();
        fillAvg.clear();
        return;
    }

    // Realize the request as a uniform r_h x r_w stratified grid; the
    // achieved count (r_h * r_w) becomes the effective `computed`.
    const double frac = double(computed) / double(full);
    const double f = std::sqrt(frac);
    std::size_t rh = std::clamp<std::size_t>(
        std::size_t(std::lround(double(oh) * f)), 1, oh);
    std::size_t rw = std::clamp<std::size_t>(
        std::size_t(std::lround(double(computed) / double(rh))), 1, ow);
    computed = rh * rw;

    std::vector<std::size_t> ys(rh), xs(rw);
    for (std::size_t r = 0; r < rh; ++r)
        ys[r] = std::min<std::size_t>(oh - 1, (2 * r + 1) * oh / (2 * rh));
    for (std::size_t c = 0; c < rw; ++c)
        xs[c] = std::min<std::size_t>(ow - 1, (2 * c + 1) * ow / (2 * rw));

    sample.resize(computed);
    for (std::size_t r = 0; r < rh; ++r)
        for (std::size_t c = 0; c < rw; ++c)
            sample[r * rw + c] = ys[r] * ow + xs[c];

    // Nearest sampled coordinate along each axis, then compose: the
    // fill source of (y, x) is (nearest ys, nearest xs), which is the
    // nearest sampled point in L1 on a separable grid.
    auto nearest_index = [](const std::vector<std::size_t> &coords,
                            std::size_t extent) {
        std::vector<std::size_t> nearest(extent);
        std::size_t j = 0;
        for (std::size_t v = 0; v < extent; ++v) {
            while (j + 1 < coords.size() &&
                   (coords[j + 1] > v
                        ? coords[j + 1] - v
                        : v - coords[j + 1]) <=
                       (coords[j] > v ? coords[j] - v : v - coords[j])) {
                ++j;
            }
            nearest[v] = j;
        }
        return nearest;
    };
    const auto near_y = nearest_index(ys, oh);
    const auto near_x = nearest_index(xs, ow);

    fillFrom.resize(full);
    for (std::size_t y = 0; y < oh; ++y)
        for (std::size_t x = 0; x < ow; ++x)
            fillFrom[y * ow + x] = near_y[y] * rw + near_x[x];

    // Average-mode map: for every output position, the four
    // surrounding sampled grid corners (floor/ceil along each axis;
    // duplicates at the borders or on sampled lines are fine — the
    // unweighted mean then naturally upweights the exact source).
    auto bracket = [](const std::vector<std::size_t> &coords,
                      std::size_t extent) {
        std::vector<std::pair<std::size_t, std::size_t>> out(extent);
        std::size_t hi = 0;
        for (std::size_t v = 0; v < extent; ++v) {
            while (hi + 1 < coords.size() && coords[hi] < v)
                ++hi;
            const std::size_t lo = (coords[hi] > v && hi > 0)
                                       ? hi - 1
                                       : hi;
            out[v] = {lo, hi};
        }
        return out;
    };
    const auto by = bracket(ys, oh);
    const auto bx = bracket(xs, ow);
    fillAvg.resize(full);
    for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
            fillAvg[y * ow + x] = {
                by[y].first * rw + bx[x].first,
                by[y].first * rw + bx[x].second,
                by[y].second * rw + bx[x].first,
                by[y].second * rw + bx[x].second,
            };
        }
    }
}

PCNN_HOT_PATH
void
ConvLayer::forwardItemGroup(const Tensor &x, Tensor &y, std::size_t item,
                            std::size_t group, ConvAlgo algo,
                            bool fuse_relu, bool quant,
                            const QuantParams &aq, Scratch &scr)
{
    const std::size_t in_cg = spc.inC / spc.groups;
    const std::size_t out_cg = spc.outC / spc.groups;
    const std::size_t oh = spc.outH(), ow = spc.outW();
    const std::size_t full = oh * ow;
    const bool perf = perforated();
    const std::size_t n_pos = perf ? computed : full;

    ConvGeom g = spc.geom();
    g.inC = in_cg;
    const std::size_t k = g.colRows();
    const float *wg = w->weight.value.data() +
                      group * out_cg * in_cg * spc.kernel * spc.kernel;
    float *ybase = y.data() + (item * spc.outC + group * out_cg) * full;
    const float *bvals = w->bias.value.data() + group * out_cg;

    if (!perf && algo == ConvAlgo::Winograd) {
        // Transform-domain fast path; bias and the folded ReLU are
        // applied in the output transform (winoPack was materialized
        // before the fan-out, so this only reads it).
        winogradForward(x, item, g, group * in_cg, w->winoPack[group],
                        bvals, y, group * out_cg, fuse_relu, scr.wino);
        return;
    }

    if (!perf) {
        const float *bmat;
        if (algo == ConvAlgo::Direct1x1) {
            // A 1x1/stride-1/pad-0 conv's im2col matrix is exactly
            // the input channel window (in_cg rows of one contiguous
            // plane each): skip im2col and read the input in place.
            bmat = x.data() +
                   (item * x.shape().c + group * in_cg) * full;
        } else {
            // im2col writes the packed-B panel layout the kernel
            // consumes (row-major k x full), fused: there is no
            // second packing pass between expansion and SGEMM.
            im2col(x, item, g, scr.cols, group * in_cg);
            bmat = scr.cols.data();
        }
        if (quant) {
            // Int8 route: quantize+interleave the panel, then qgemm
            // overwrite-stores dequant(+bias)(+ReLU) straight into
            // y — bias/ReLU ride the fused epilogue, so no seeding.
            quantizePackActivations(bmat, k, full, full, false, aq,
                                    scr.qcols);
            qgemm(out_cg, full, k, w->qPack[group], scr.qcols.data(),
                  aq, ybase, bvals, fuse_relu);
            return;
        }
        // Zero-copy output path: seed each output plane with its
        // bias, then let SGEMM accumulate the product straight into y
        // (beta = 1) — no gemmOut staging buffer, no final add+copy.
        // Per cell this computes b + sum(k-order), bitwise equal to
        // the staged sum(k-order) + b (float add is commutative).
        for (std::size_t f = 0; f < out_cg; ++f)
            std::fill(ybase + f * full, ybase + (f + 1) * full,
                      bvals[f]);
        // The folded ReLU rides the epilogue's store pass (bias is
        // already seeded, so the epilogue clamps only): bitwise equal
        // to a separate ReLU sweep over the same sums.
        Epilogue epi;
        if (fuse_relu)
            epi.op = EpilogueOp::BiasRelu;
        sgemm(false, false, out_cg, full, k, wg, bmat, ybase, 1.0f,
              epi);
        return;
    }

    // Perforated path: compute the sampled positions densely, then
    // interpolate into y (clamping in the fill loop when a ReLU was
    // folded — same values as clamping afterwards).
    im2colAt(x, item, g, sample, scr.cols, group * in_cg);
    // pcnn-analyze: allow(hot-path-alloc): grow-only per-lane
    // scratch; sized by the largest geometry seen, then reused.
    if (scr.gemmOut.size() < out_cg * n_pos)
        scr.gemmOut.resize(out_cg * n_pos);
    if (quant) {
        // Bias and the folded ReLU stay in the interpolation loop
        // below (as in fp32), so the epilogue only dequantizes.
        quantizePackActivations(scr.cols.data(), k, n_pos, n_pos,
                                false, aq, scr.qcols);
        qgemm(out_cg, n_pos, k, w->qPack[group], scr.qcols.data(),
              aq, scr.gemmOut.data(), nullptr, false);
    } else {
        sgemm(false, false, out_cg, n_pos, k, wg, scr.cols.data(),
              scr.gemmOut.data());
    }

    for (std::size_t f = 0; f < out_cg; ++f) {
        float *yplane = ybase + f * full;
        const float *orow = scr.gemmOut.data() + f * n_pos;
        const float b = bvals[f];
        if (interpMode == InterpolationMode::Nearest) {
            // Scatter computed positions, then interpolate the rest
            // from their nearest computed neighbour.
            for (std::size_t p = 0; p < full; ++p) {
                const float v = orow[fillFrom[p]] + b;
                yplane[p] = (fuse_relu && v < 0.0f) ? 0.0f : v;
            }
        } else {
            // Average the surrounding computed grid corners.
            for (std::size_t p = 0; p < full; ++p) {
                const auto &src = fillAvg[p];
                const float v =
                    0.25f * (orow[src[0]] + orow[src[1]] +
                             orow[src[2]] + orow[src[3]]) +
                    b;
                yplane[p] = (fuse_relu && v < 0.0f) ? 0.0f : v;
            }
        }
    }
}

void
ConvLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    forwardImpl(x, train, false, y);
}

void
ConvLayer::forwardFusedReluInto(const Tensor &x, Tensor &y)
{
    forwardImpl(x, false, true, y);
}

PCNN_HOT_PATH
void
ConvLayer::forwardImpl(const Tensor &x, bool train, bool fuse_relu,
                       Tensor &y)
{
    const Shape out_shape = outputShape(x.shape());
    // pcnn-analyze: allow(hot-path-alloc): grow-only output
    // buffer; capacity is reused once warm (DESIGN.md §5h).
    y.resize(out_shape);
    // An active shared pool (compiled-graph run, DESIGN.md §5j)
    // substitutes its lanes for the per-layer ones; either vector is
    // grow-only, and lane indexing is identical, so results do not
    // depend on which backing store the bytes live in.
    std::vector<Scratch> &lanes =
        (pool != nullptr && pool->active) ? pool->lanes : scratch;
    // pcnn-analyze: allow(hot-path-alloc): per-thread scratch
    // pool grows to the lane count once, then stays.
    if (lanes.size() < threadCount())
        lanes.resize(threadCount());

    // The int8 route always lowers through im2col/1x1 (winograd's
    // transform domain has no integer analogue here).
    const bool quant = effectiveQuantized(train);
    const ConvAlgo algo =
        quant ? (is1x1Passthrough() ? ConvAlgo::Direct1x1
                                    : ConvAlgo::Im2col)
              : effectiveAlgo(train);
    if (algo == ConvAlgo::Winograd) {
        // Materialize every group's transformed weights before the
        // fan-out: the cache is shared mutable state, the jobs only
        // read it.
        for (std::size_t gp = 0; gp < spc.groups; ++gp)
            winogradGroupWeights(gp);
    }
    QuantParams aq;
    if (quant) {
        // Same pre-fan-out contract for the int8 panels, and one
        // set of activation params for the whole batch: derived
        // from the full input tensor before any partitioning, so
        // every job — and every thread count — quantizes
        // identically.
        for (std::size_t gp = 0; gp < spc.groups; ++gp)
            quantizedGroupWeights(gp);
        aq = haveInQuant ? inQuant
                         : computeQuantParams(x.data(), x.size());
    }

    // One job per (item, group) pair; each job writes a disjoint
    // output slab, so any static partition yields identical results.
    // When there are fewer jobs than lanes, run the job loop serially
    // and let the inner im2col/SGEMM parallelize instead.
    const std::size_t jobs = x.shape().n * spc.groups;
    auto run_job = [&](std::size_t job, std::size_t lane) {
        forwardItemGroup(x, y, job / spc.groups, job % spc.groups,
                         algo, fuse_relu, quant, aq, lanes[lane]);
    };
    if (jobs >= threadCount() && !inParallelRegion()) {
        parallelFor(jobs, [&](std::size_t j0, std::size_t j1,
                              std::size_t lane) {
            for (std::size_t j = j0; j < j1; ++j)
                run_job(j, lane);
        });
    } else {
        for (std::size_t j = 0; j < jobs; ++j)
            run_job(j, currentLane());
    }

    if (train) {
        pcnn_assert(!perforated(), "layer ", spc.name,
                    ": training with perforation active is unsupported");
        lastInput = x;
        haveCache = true;
    }
}

const WinogradWeights &
ConvLayer::winogradGroupWeights(std::size_t group)
{
    const std::size_t in_cg = spc.inC / spc.groups;
    const std::size_t out_cg = spc.outC / spc.groups;
    // pcnn-analyze: allow(hot-path-alloc): generation-gated
    // repack: runs only when the weights changed, never in a
    // steady-state forward.
    if (w->winoPack.size() < spc.groups)
        w->winoPack.resize(spc.groups);
    WinogradWeights &wts = w->winoPack[group];
    if (wts.generation != w->weight.generation()) {
        const float *wg =
            w->weight.value.data() + group * out_cg * in_cg * 9;
        winogradTransformWeights(wg, in_cg, out_cg, wts);
        wts.generation = w->weight.generation();
    }
    return wts;
}

const QuantizedPanel &
ConvLayer::quantizedGroupWeights(std::size_t group)
{
    const std::size_t in_cg = spc.inC / spc.groups;
    const std::size_t out_cg = spc.outC / spc.groups;
    const std::size_t k = in_cg * spc.kernel * spc.kernel;
    // pcnn-analyze: allow(hot-path-alloc): generation-gated
    // quantization: runs only when the weights changed, never in
    // a steady-state forward.
    if (w->qPack.size() < spc.groups)
        w->qPack.resize(spc.groups);
    QuantizedPanel &panel = w->qPack[group];
    if (panel.generation != w->weight.generation()) {
        const float *wg = w->weight.value.data() + group * out_cg * k;
        quantizeWeights(out_cg, k, wg, panel);
        panel.generation = w->weight.generation();
    }
    return panel;
}

const PackedPanel &
ConvLayer::packedWeightT(std::size_t group)
{
    const std::size_t in_cg = spc.inC / spc.groups;
    const std::size_t out_cg = spc.outC / spc.groups;
    const std::size_t k = in_cg * spc.kernel * spc.kernel;
    // pcnn-analyze: allow(hot-path-alloc): generation-gated
    // repack (same argument as winogradGroupWeights above).
    if (w->wtPack.size() < spc.groups)
        w->wtPack.resize(spc.groups);
    PackedPanel &panel = w->wtPack[group];
    if (panel.generation != w->weight.generation()) {
        const float *wg = w->weight.value.data() + group * out_cg * k;
        packWeights(true, k, out_cg, wg, panel);
        panel.generation = w->weight.generation();
    }
    return panel;
}

Tensor
ConvLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "layer ", spc.name,
                ": backward without forward(train)");
    pcnn_assert(!perforated(), "layer ", spc.name,
                ": backward with perforation active");
    PCNN_CHECK(dy.shape() == outputShape(lastInput.shape()),
               "layer ", spc.name, ": gradient ", dy.shape().str(),
               " mismatches forward output");

    const Shape &in_shape = lastInput.shape();
    Tensor dx(in_shape);
    const std::size_t in_cg = spc.inC / spc.groups;
    const std::size_t out_cg = spc.outC / spc.groups;
    const std::size_t oh = spc.outH(), ow = spc.outW();
    const std::size_t full = oh * ow;
    ConvGeom g = spc.geom();
    g.inC = in_cg;
    const std::size_t k = g.colRows();

    // The item/group loop stays serial — weight gradients accumulate
    // across it — while the inner im2col/SGEMM/col2im parallelize.
    if (scratch.empty())
        scratch.resize(threadCount());
    std::vector<float> &cols = scratch[0].cols;
    std::vector<float> dcols(k * full);

    for (std::size_t i = 0; i < in_shape.n; ++i) {
        for (std::size_t gp = 0; gp < spc.groups; ++gp) {
            // Recompute this item/group's im2col from the cached input.
            im2col(lastInput, i, g, cols, gp * in_cg);

            const float *dyg =
                dy.data() + (i * spc.outC + gp * out_cg) * full;
            float *wgrad = w->weight.grad.data() +
                           gp * out_cg * in_cg * spc.kernel *
                               spc.kernel;

            // dW += dY * cols^T  (out_cg x full) * (full x k)
            sgemm(false, true, out_cg, k, full, dyg, cols.data(),
                  wgrad, 1.0f);

            // dcols = W^T * dY  (k x out_cg) * (out_cg x full).
            // W^T comes from the per-group packed panel: the weight
            // is constant across the item loop, so it is materialized
            // once per generation instead of repacked per item.
            sgemm(false, false, k, full, out_cg,
                  packedWeightT(gp).ptr(), dyg, dcols.data());

            // Scatter-add straight into this group's channel window.
            col2im(dcols, i, g, dx, gp * in_cg);

            // db += column sums of dY.
            float *bgrad = w->bias.grad.data() + gp * out_cg;
            for (std::size_t f = 0; f < out_cg; ++f) {
                double s = 0.0;
                for (std::size_t p = 0; p < full; ++p)
                    s += dyg[f * full + p];
                bgrad[f] += float(s);
            }
        }
    }
    return dx;
}

} // namespace pcnn
