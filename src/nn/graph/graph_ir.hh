/**
 * @file
 * Flat op-graph IR for the compiled inference path (DESIGN.md §5j).
 *
 * A frozen Network lowers into a linear schedule of single-input ops
 * over a set of values (activation tensors) whose storage is
 * offset-assigned inside one static arena. The schedule is pure
 * data: it serializes into plan format v4 (plan_io.cc) and executes
 * through CompiledGraph (compiled_graph.hh), which resolves layer
 * indices against the live Network.
 *
 * Two structural ideas carry the memory plan:
 *
 *  - Window writes. Concatenation is not an op: a value may have
 *    several writers, each covering a disjoint channel window
 *    (chanOff / chanCount). An inception branch terminal then writes
 *    directly at its offset in the concat output and the per-branch
 *    staging buffer disappears (the concat-elimination pass).
 *
 *  - Item tiling. Ops in the prefix [0, tiledOps) run once per batch
 *    item over per-item values (GraphValue::perItem), so the arena
 *    holds one item's activations for the convolutional trunk
 *    instead of the whole batch's. The boundary into the batch-wide
 *    tail is a per-item window write at the item's offset.
 */

#ifndef PCNN_NN_GRAPH_GRAPH_IR_HH
#define PCNN_NN_GRAPH_GRAPH_IR_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pcnn {

/** How a graph op executes. */
enum class GraphOpExec : std::uint8_t
{
    Layer = 0,      ///< layer->forwardInto(x, false, y)
    LayerFusedRelu, ///< layer->forwardFusedReluInto(x, y) (fuse pass)
    CopyWindow,     ///< per-item channel-window copy (concat staging)
};

/** Sentinel input id: the op reads the network input tensor. */
constexpr int kGraphInputValue = -1;

/** One scheduled operation. */
struct GraphOp
{
    GraphOpExec exec = GraphOpExec::Layer;
    /// flat layer index (network order, inception branches inlined);
    /// unused for CopyWindow
    std::size_t layer = 0;
    int input = kGraphInputValue; ///< value read, or the network input
    int output = 0;               ///< value written
    /// channel window written in the output value; chanCount == the
    /// output value's channel count when the op covers it whole
    std::size_t chanOff = 0;
    std::size_t chanCount = 0;
    bool tiled = false; ///< runs inside the per-item loop
    /// layer identity for plan-adoption validation (empty for
    /// CopyWindow); not used during execution
    std::string layerKind;
    std::string layerName;
};

/** One activation value with its arena placement and lifetime. */
struct GraphValue
{
    std::size_t c = 0, h = 0, w = 0; ///< per-item extents
    /// true: holds ONE item (tiled trunk); false: holds the whole
    /// compiled batch
    bool perItem = false;
    /// network output: lives in the caller's tensor, not the arena
    bool isOutput = false;
    std::size_t offset = 0; ///< arena offset in floats
    std::size_t extent = 0; ///< arena floats reserved
    int def = 0;            ///< first op index whose run may write it
    int lastUse = 0;        ///< last op index that reads or writes it
};

/**
 * A compiled execution schedule: op order, value placement, arena
 * size. Serializes as the plan-v4 schedule section.
 */
struct GraphSchedule
{
    std::size_t batch = 1;       ///< compiled batch capacity
    std::size_t arenaFloats = 0; ///< one allocation of this many floats
    std::size_t tiledOps = 0;    ///< ops [0, tiledOps) run per item
    std::vector<GraphOp> ops;
    std::vector<GraphValue> values;

    /** Floats a value needs at the compiled batch. */
    std::size_t
    valueFloats(const GraphValue &v) const
    {
        return (v.perItem ? 1 : batch) * v.c * v.h * v.w;
    }
};

/**
 * Structural validation: every invariant the executor relies on.
 * Returns false (with no side effects) on any violation — op/value
 * ids out of range, lifetimes inconsistent with the op list, arena
 * offsets out of bounds, simultaneously-live values overlapping in
 * the arena, or channel windows that fail to partition their value.
 * Plan deserialization calls this on hostile bytes; compile() calls
 * it on its own output as a self-check.
 */
bool validateGraphSchedule(const GraphSchedule &s);

} // namespace pcnn

#endif // PCNN_NN_GRAPH_GRAPH_IR_HH
