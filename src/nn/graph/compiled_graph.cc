/**
 * @file
 * CompiledGraph materialization and execution (DESIGN.md §5j).
 *
 * Execution invokes the exact same layer forwards as the legacy
 * chain, in the same order, on inputs holding the same bytes — the
 * only differences are *where* outputs land (offset-assigned arena
 * views instead of ping-pong buffers) and that per-item ops run in
 * an item loop. Both are bitwise-neutral: conv forwards fan out per
 * (item, group) anyway, every other tiled layer is item-separable by
 * construction, and arena views guarantee the address-disjointness
 * the layer contracts require via the lifetime plan.
 */

#include "nn/graph/compiled_graph.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/tags.hh"
#include "nn/fusion.hh"
#include "nn/graph/graph_internal.hh"
#include "nn/network.hh"

namespace pcnn {

CompiledGraph::~CompiledGraph()
{
    // Detach the pool so layer forwards never chase a dangling
    // pointer; layers fall back to their own scratch. (Network
    // resets the old graph before compiling a replacement, so this
    // cannot clobber a newer graph's installation.)
    for (Layer *l : flat)
        if (auto *conv = dynamic_cast<ConvLayer *>(l))
            conv->setScratchPool(nullptr);
}

std::size_t
CompiledGraph::scratchPoolBytes() const
{
    return pool.capacityBytes();
}

std::unique_ptr<CompiledGraph>
CompiledGraph::materialize(Network &net, GraphSchedule schedule,
                           std::vector<Layer *> layer_table)
{
    PCNN_CHECK(validateGraphSchedule(schedule), net.name(),
               ": graph schedule failed structural validation");

    // Check the schedule against the live network: every op must
    // name the layer it was compiled from and produce exactly the
    // shape the plan reserved. A stale or foreign plan fails here,
    // loudly, before any execution state exists.
    for (const GraphOp &op : schedule.ops) {
        if (op.exec == GraphOpExec::CopyWindow)
            continue;
        PCNN_CHECK(op.layer < layer_table.size(), net.name(),
                   ": schedule op references layer ", op.layer,
                   " but the network flattens to ",
                   layer_table.size());
        Layer *l = layer_table[op.layer];
        PCNN_CHECK(l->kind() == op.layerKind &&
                       l->name() == op.layerName,
                   net.name(), ": schedule op expects layer '",
                   op.layerName, "' (", op.layerKind, ") but slot ",
                   op.layer, " holds '", l->name(), "' (", l->kind(),
                   ")");
        const GraphValue &ov = schedule.values[std::size_t(op.output)];
        Shape in = net.inputShape();
        if (op.input != kGraphInputValue) {
            const GraphValue &iv =
                schedule.values[std::size_t(op.input)];
            in = Shape{1, iv.c, iv.h, iv.w};
        }
        const Shape out = l->outputShape(in);
        PCNN_CHECK(out.c == op.chanCount && out.h == ov.h &&
                       out.w == ov.w,
                   net.name(), ": layer '", op.layerName,
                   "' produces ", out.str(),
                   " but the schedule reserved [", op.chanCount, ",",
                   ov.h, ",", ov.w, "]");
    }

    // Item tiling is only compiled for pure-fp32 networks (dynamic
    // activation-quant params are batch-coupled); a tiled schedule
    // adopted onto a quantized network would change results.
    PCNN_CHECK(schedule.tiledOps == 0 || !graphQuantFingerprint(net),
               net.name(),
               ": item-tiled schedule adopted onto a quantized "
               "network (stale plan)");

    auto g = std::unique_ptr<CompiledGraph>(new CompiledGraph());
    g->sched = std::move(schedule);
    g->flat = std::move(layer_table);

    // The single arena allocation this replica's activations live in.
    g->arena.resize(g->sched.arenaFloats);
    g->valBind.resize(g->sched.values.size());
    for (std::size_t v = 0; v < g->sched.values.size(); ++v) {
        const GraphValue &val = g->sched.values[v];
        if (val.isOutput) {
            g->outputValue = int(v);
            continue;
        }
        // Per-item views never change shape; bind them once.
        // Batch-wide views are rebound per run at the live n.
        if (val.perItem)
            g->valBind[v].bindView(g->arena.data() + val.offset,
                                   val.extent,
                                   Shape{1, val.c, val.h, val.w});
    }

    const GraphValue &ov =
        g->sched.values[std::size_t(g->outputValue)];
    std::size_t writers = 0;
    const GraphOp *w0 = nullptr;
    for (const GraphOp &op : g->sched.ops)
        if (op.output == g->outputValue) {
            ++writers;
            w0 = &op;
        }
    g->directOut = writers == 1 && !w0->tiled &&
                   w0->exec != GraphOpExec::CopyWindow &&
                   w0->chanOff == 0 && w0->chanCount == ov.c;

    // Install the shared scratch pool on every conv; it only takes
    // effect while a run is active, so the legacy path and training
    // keep per-layer scratch.
    for (Layer *l : g->flat)
        if (auto *conv = dynamic_cast<ConvLayer *>(l))
            conv->setScratchPool(&g->pool);

    g->foldSnap = reluFoldingEnabled();
    g->quantSnap = graphQuantFingerprint(net);
    return g;
}

std::unique_ptr<CompiledGraph>
CompiledGraph::compile(Network &net, std::size_t batch)
{
    LoweredGraph lowered = lowerAndOptimize(net, batch);
    planGraphArena(lowered.sched);
    return materialize(net, std::move(lowered.sched),
                       std::move(lowered.flat));
}

std::unique_ptr<CompiledGraph>
CompiledGraph::adopt(Network &net, const GraphSchedule &s)
{
    return materialize(net, s, flattenNetworkLayers(net));
}

PCNN_HOT_PATH
void
CompiledGraph::execOp(std::size_t k, std::size_t item,
                      const Tensor &x, Tensor &out, std::size_t n)
{
    const GraphOp &op = sched.ops[k];

    // Source: the network input (whole, or this item's window) or a
    // bound arena view.
    const Tensor *src;
    if (op.input == kGraphInputValue)
        src = op.tiled ? &itemIn : &x;
    else
        src = &valBind[std::size_t(op.input)];

    const GraphValue &dv = sched.values[std::size_t(op.output)];
    const std::size_t plane = dv.h * dv.w;

    if (op.exec == GraphOpExec::CopyWindow) {
        // Residual concat staging copy (batch-wide, non-tiled):
        // byte-for-byte the legacy InceptionLayer concat loop.
        float *base = dv.isOutput ? out.data()
                                  : arena.data() + dv.offset;
        const std::size_t item_floats = src->shape().itemSize();
        const float *sp = src->data();
        for (std::size_t i = 0; i < n; ++i)
            std::copy(sp + i * item_floats,
                      sp + (i + 1) * item_floats,
                      base + (i * dv.c + op.chanOff) * plane);
        return;
    }

    Layer *l = flat[op.layer];
    Tensor *dst;
    if (dv.isOutput && directOut) {
        dst = &out;
    } else {
        const bool whole = !dv.isOutput && op.chanOff == 0 &&
                           op.chanCount == dv.c &&
                           (dv.perItem || !op.tiled);
        if (whole) {
            dst = &valBind[std::size_t(op.output)];
        } else {
            // Channel (and, for tiled writers of batch-wide values,
            // item) window: a [1, chanCount, h, w] view at the
            // window's offset. Contiguous because windows span whole
            // channel planes of one item.
            float *base = dv.isOutput ? out.data()
                                      : arena.data() + dv.offset;
            const std::size_t item_idx =
                (!dv.perItem && op.tiled) ? item : 0;
            dstHdr.bindView(
                base + (item_idx * dv.c + op.chanOff) * plane,
                op.chanCount * plane,
                Shape{1, op.chanCount, dv.h, dv.w});
            dst = &dstHdr;
        }
    }

    if (op.exec == GraphOpExec::LayerFusedRelu)
        l->forwardFusedReluInto(*src, *dst);
    else
        // pcnn-analyze: allow(hot-path-alloc): virtual layer
        // dispatch; the conv/fc forwards are tagged hot-path roots
        // themselves, and the name would otherwise also resolve to
        // Network::forwardInto (unreachable from here).
        l->forwardInto(*src, false, *dst);
}

PCNN_HOT_PATH
void
CompiledGraph::run(const Tensor &x, Tensor &out)
{
    const Shape xs = x.shape();
    const std::size_t n = xs.n;
    PCNN_CHECK(n >= 1 && n <= sched.batch,
               "compiled graph capacity is batch ", sched.batch,
               " but the input has n=", n);

    // Scratch-pool activation is scoped to the run so training and
    // legacy forwards on the same layers keep their own buffers.
    struct PoolGuard
    {
        ConvScratchPool &p;
        ~PoolGuard() { p.active = false; }
    } guard{pool};
    pool.active = true;

    const GraphValue &ov = sched.values[std::size_t(outputValue)];
    if (!directOut) {
        // Window writers fill every byte; the resize matches the
        // legacy last layer's own y.resize on the caller's tensor.
        // pcnn-analyze: allow(hot-path-alloc): grow-only caller
        // buffer; capacity is reused once warm (DESIGN.md §5h).
        out.resize(Shape{n, ov.c, ov.h, ov.w});
    }

    // Rebind batch-wide views at the live batch. Arena addresses are
    // fixed; only the Tensor headers change, with no allocator
    // traffic.
    for (std::size_t v = 0; v < sched.values.size(); ++v) {
        const GraphValue &val = sched.values[v];
        if (!val.isOutput && !val.perItem)
            valBind[v].bindView(arena.data() + val.offset, val.extent,
                                Shape{n, val.c, val.h, val.w});
    }

    if (sched.tiledOps > 0) {
        const std::size_t item_floats = xs.itemSize();
        // The views only ever read the input; Tensor views have no
        // const flavour, hence the cast.
        float *xbase = const_cast<float *>(x.data());
        for (std::size_t i = 0; i < n; ++i) {
            itemIn.bindView(xbase + i * item_floats, item_floats,
                            Shape{1, xs.c, xs.h, xs.w});
            for (std::size_t k = 0; k < sched.tiledOps; ++k)
                execOp(k, i, x, out, n);
        }
    }
    for (std::size_t k = sched.tiledOps; k < sched.ops.size(); ++k)
        execOp(k, 0, x, out, n);
}

} // namespace pcnn
