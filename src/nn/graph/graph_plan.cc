/**
 * @file
 * Lifetime analysis, static arena assignment, and schedule
 * validation (DESIGN.md §5j).
 *
 * Lifetimes are op-index intervals [def, lastUse]. The one twist is
 * item tiling: ops in [0, tiledOps) re-run once per batch item, so a
 * batch-wide value they write (the tiled/batch boundary) holds item
 * i's slice while items i+1.. are still executing — its def is
 * pinned to op 0 so every per-item value's interval overlaps it and
 * first-fit can never place them on the same bytes. Per-item values
 * may share bytes across item iterations: an interval that ends at
 * op k is dead for the rest of its own item, and the next item
 * rewrites it before any read.
 *
 * Arena assignment is greedy first-fit over values sorted by
 * descending extent: each value takes the lowest 16-float-aligned
 * offset that avoids address overlap with every already-placed value
 * whose lifetime overlaps its own. The arena size is the resulting
 * high-water mark — the max of live sets rather than the sum of all
 * buffers, which is the memory win over the ping-pong chain.
 *
 * validateGraphSchedule re-derives everything derivable and checks
 * the rest for consistency; it is the gate hostile plan-v4 bytes
 * must pass before an executor will touch a schedule.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "nn/graph/graph_internal.hh"

namespace pcnn {

namespace {

constexpr std::size_t kMaxGraphOps = 4096;
constexpr std::size_t kMaxGraphValues = 4096;
constexpr std::size_t kGraphDimCap = std::size_t(1) << 20;
/// cap on any float count (extent, offset, arena size): generous for
/// real models, tight enough that sums cannot overflow size_t
constexpr std::size_t kGraphFloatCap = std::size_t(1) << 40;
constexpr std::size_t kArenaAlignFloats = 16;

/** [def,lastUse] intervals overlap. */
bool
liveOverlap(const GraphValue &a, const GraphValue &b)
{
    return a.def <= b.lastUse && b.def <= a.lastUse;
}

/** Address ranges [offset, offset+extent) overlap. */
bool
addressOverlap(const GraphValue &a, const GraphValue &b)
{
    return a.offset < b.offset + b.extent &&
           b.offset < a.offset + a.extent;
}

} // namespace

std::vector<std::pair<int, int>>
computeGraphLiveness(const GraphSchedule &s)
{
    std::vector<std::pair<int, int>> live(s.values.size(), {-1, -1});
    for (std::size_t k = 0; k < s.ops.size(); ++k) {
        const GraphOp &op = s.ops[k];
        if (op.output >= 0 &&
            std::size_t(op.output) < s.values.size()) {
            auto &lv = live[std::size_t(op.output)];
            // Tiled writer of a batch-wide value: pinned live across
            // the whole item loop (see file comment).
            const int def =
                (op.tiled && !s.values[std::size_t(op.output)].perItem)
                    ? 0
                    : int(k);
            lv.first = lv.first < 0 ? def : std::min(lv.first, def);
            lv.second = std::max(lv.second, int(k));
        }
        if (op.input >= 0 && std::size_t(op.input) < s.values.size())
            live[std::size_t(op.input)].second = std::max(
                live[std::size_t(op.input)].second, int(k));
    }
    return live;
}

void
planGraphArena(GraphSchedule &s)
{
    const auto live = computeGraphLiveness(s);
    for (std::size_t v = 0; v < s.values.size(); ++v) {
        s.values[v].def = live[v].first;
        s.values[v].lastUse = live[v].second;
        if (s.values[v].isOutput) {
            s.values[v].offset = 0;
            s.values[v].extent = 0;
        } else {
            const std::size_t need = s.valueFloats(s.values[v]);
            s.values[v].extent =
                (need + kArenaAlignFloats - 1) / kArenaAlignFloats *
                kArenaAlignFloats;
        }
    }

    std::vector<std::size_t> order;
    for (std::size_t v = 0; v < s.values.size(); ++v)
        if (!s.values[v].isOutput)
            order.push_back(v);
    std::sort(order.begin(), order.end(),
              [&s](std::size_t a, std::size_t b) {
                  if (s.values[a].extent != s.values[b].extent)
                      return s.values[a].extent > s.values[b].extent;
                  return a < b;
              });

    s.arenaFloats = 0;
    std::vector<std::size_t> placed;
    for (std::size_t v : order) {
        GraphValue &val = s.values[std::size_t(v)];
        // Conflicting placed intervals, sorted by offset; slide past
        // each one the candidate range would collide with.
        std::vector<std::pair<std::size_t, std::size_t>> busy;
        for (std::size_t u : placed)
            if (liveOverlap(s.values[u], val))
                busy.emplace_back(s.values[u].offset,
                                  s.values[u].extent);
        std::sort(busy.begin(), busy.end());
        std::size_t offset = 0;
        for (const auto &[bo, be] : busy) {
            if (offset + val.extent <= bo)
                break;
            offset = std::max(offset, bo + be);
        }
        val.offset = offset;
        placed.push_back(v);
        s.arenaFloats = std::max(s.arenaFloats, offset + val.extent);
    }
}

bool
validateGraphSchedule(const GraphSchedule &s)
{
    // Global caps first, so later arithmetic cannot overflow.
    if (s.batch < 1 || s.batch > kGraphDimCap)
        return false;
    if (s.ops.empty() || s.ops.size() > kMaxGraphOps)
        return false;
    if (s.values.empty() || s.values.size() > kMaxGraphValues)
        return false;
    if (s.tiledOps > s.ops.size())
        return false;
    if (s.arenaFloats > kGraphFloatCap)
        return false;

    const int nv = int(s.values.size());
    std::size_t outputs = 0;
    for (const GraphValue &v : s.values) {
        if (v.c < 1 || v.c > kGraphDimCap || v.h < 1 ||
            v.h > kGraphDimCap || v.w < 1 || v.w > kGraphDimCap)
            return false;
        if (v.c * v.h * v.w > kGraphFloatCap / s.batch)
            return false;
        if (v.extent > kGraphFloatCap || v.offset > kGraphFloatCap)
            return false;
        if (v.isOutput) {
            ++outputs;
            // The output lives in the caller's tensor, never the
            // arena, and the executor materializes it batch-wide.
            if (v.perItem || v.extent != 0)
                return false;
        }
    }
    if (outputs != 1)
        return false;

    // Per-op structure.
    for (std::size_t k = 0; k < s.ops.size(); ++k) {
        const GraphOp &op = s.ops[k];
        if (op.tiled != (k < s.tiledOps))
            return false;
        if (op.output < 0 || op.output >= nv)
            return false;
        if (op.input < kGraphInputValue || op.input >= nv ||
            op.input == op.output)
            return false;
        const GraphValue &out = s.values[std::size_t(op.output)];
        if (op.chanCount < 1 || op.chanOff > out.c ||
            op.chanCount > out.c - op.chanOff)
            return false;
        if (!op.tiled && out.perItem)
            return false;
        if (op.input >= 0) {
            const GraphValue &in = s.values[std::size_t(op.input)];
            // Reading the network output, or a tiled op reading
            // batch-wide data (it would see one stale item), is
            // never emitted.
            if (in.isOutput)
                return false;
            if (op.tiled != in.perItem)
                return false;
        }
        if (op.exec == GraphOpExec::CopyWindow) {
            // Concat staging copy: whole source into a window;
            // tiled copies are always eliminated at compile.
            if (op.tiled || op.input < 0 || !op.layerKind.empty())
                return false;
            const GraphValue &in = s.values[std::size_t(op.input)];
            if (in.c != op.chanCount || in.h != out.h ||
                in.w != out.w)
                return false;
        } else {
            if (op.layerKind.empty() || op.layer > kMaxGraphOps)
                return false;
            if (out.h < 1 || out.w < 1)
                return false;
        }
    }

    // Channel windows of each value's writers must partition [0, c)
    // exactly, and all writers must agree on tiledness (mixed
    // writers would interleave per-item and batch stores).
    for (int v = 0; v < nv; ++v) {
        std::vector<std::pair<std::size_t, std::size_t>> windows;
        bool tiled = false;
        for (const GraphOp &op : s.ops)
            if (op.output == v) {
                if (!windows.empty() && op.tiled != tiled)
                    return false;
                tiled = op.tiled;
                windows.emplace_back(op.chanOff, op.chanCount);
            }
        if (windows.empty())
            return false; // every value needs a writer
        std::sort(windows.begin(), windows.end());
        std::size_t next = 0;
        for (const auto &[off, cnt] : windows) {
            if (off != next)
                return false;
            next = off + cnt;
        }
        if (next != s.values[std::size_t(v)].c)
            return false;
    }

    // Stored lifetimes must equal the recomputed ones: an attacker
    // cannot shorten a lifetime to sneak two live tensors onto the
    // same bytes past the overlap check below.
    const auto live = computeGraphLiveness(s);
    for (int v = 0; v < nv; ++v) {
        if (s.values[std::size_t(v)].def != live[std::size_t(v)].first ||
            s.values[std::size_t(v)].lastUse !=
                live[std::size_t(v)].second)
            return false;
        // Non-output values must also be read, or the op writing
        // them is dead weight the compiler would have swept.
        if (!s.values[std::size_t(v)].isOutput &&
            live[std::size_t(v)].second <=
                live[std::size_t(v)].first)
            return false;
    }

    // Arena plan: capacity, bounds, and pairwise exclusivity of
    // simultaneously-live values.
    for (int v = 0; v < nv; ++v) {
        const GraphValue &val = s.values[std::size_t(v)];
        if (val.isOutput)
            continue;
        if (val.extent < s.valueFloats(val))
            return false;
        if (val.offset + val.extent > s.arenaFloats)
            return false;
    }
    for (int a = 0; a < nv; ++a) {
        const GraphValue &va = s.values[std::size_t(a)];
        if (va.isOutput)
            continue;
        for (int b = a + 1; b < nv; ++b) {
            const GraphValue &vb = s.values[std::size_t(b)];
            if (vb.isOutput)
                continue;
            if (liveOverlap(va, vb) && addressOverlap(va, vb))
                return false;
        }
    }
    return true;
}

} // namespace pcnn
