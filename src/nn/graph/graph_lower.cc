/**
 * @file
 * Network -> GraphSchedule lowering and the optimization passes
 * (DESIGN.md §5j).
 *
 * Lowering walks the layer chain in order, inlining every top-level
 * inception module into its branch chains: each branch gets a staged
 * terminal value plus a CopyWindow op into the module's concat value,
 * reproducing the legacy per-branch ping-pong + concat copy exactly.
 * The passes then rewrite the op list:
 *
 *  1. prune-dropout   — inference dropout is an identity copy;
 *                       consumers read the dropout's input directly.
 *  2. fuse-relu       — a ReLU whose sole producer opts into epilogue
 *                       fusion merges into that producer
 *                       (forwardFusedReluInto), subsuming the legacy
 *                       PCNN_FOLD_RELU peephole. Skipped when ReLU
 *                       folding is disabled, keeping A/B parity with
 *                       the unfused chain.
 *  3. concat-elim     — a staged branch terminal with one producer
 *                       and one CopyWindow consumer is rewritten to
 *                       write its channel window of the concat value
 *                       directly; the staging value and the copy die.
 *  4. dce             — ops writing unread values, and the values
 *                       themselves, are swept; value ids compact.
 *
 * Item tiling is decided here too: when the compiled batch exceeds 1
 * and no conv/fc takes the int8 route (whose dynamic activation
 * quantization reads the whole batch tensor and is therefore not
 * item-separable), the longest prefix of item-separable layers runs
 * per batch item over per-item values. Every layer except the FC
 * tail qualifies: conv forwards fan out per (item, group), and
 * relu/pool/LRN are per-item by construction, so per-item execution
 * is bitwise identical to the batch call. Values that cross from the
 * tiled prefix into the batch-wide tail are flipped to batch-wide
 * and written per item at their item offset.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hh"
#include "nn/fusion.hh"
#include "nn/graph/compiled_graph.hh"
#include "nn/graph/graph_internal.hh"
#include "nn/inception_layer.hh"
#include "nn/network.hh"

namespace pcnn {

namespace {

/** True when `kind` runs item-by-item with bitwise-equal results. */
bool
separableKind(const std::string &kind)
{
    return kind == "conv" || kind == "relu" || kind == "maxpool" ||
           kind == "avgpool" || kind == "lrn" || kind == "dropout";
}

/** Item separability of a whole layer (inception: all inner layers). */
bool
itemSeparable(Layer &l)
{
    if (auto *inc = dynamic_cast<InceptionLayer *>(&l)) {
        for (const InceptionLayer::Branch &b : inc->branchList())
            for (const auto &inner : b)
                if (!separableKind(inner->kind()))
                    return false;
        return true;
    }
    return separableKind(l.kind());
}

/** Number of ops writing value `v`. */
std::size_t
writerCount(const GraphSchedule &s, int v)
{
    std::size_t n = 0;
    for (const GraphOp &op : s.ops)
        n += op.output == v ? 1 : 0;
    return n;
}

/** Number of ops reading value `v`. */
std::size_t
readerCount(const GraphSchedule &s, int v)
{
    std::size_t n = 0;
    for (const GraphOp &op : s.ops)
        n += op.input == v ? 1 : 0;
    return n;
}

/** Append a value for a per-item shape; returns its id. */
int
addValue(GraphSchedule &s, const Shape &item_shape, bool per_item)
{
    GraphValue v;
    v.c = item_shape.c;
    v.h = item_shape.h;
    v.w = item_shape.w;
    v.perItem = per_item;
    s.values.push_back(v);
    return int(s.values.size()) - 1;
}

/** Append a Layer op covering the whole output value. */
void
addLayerOp(GraphSchedule &s, std::size_t flat_idx, Layer &l, int in,
           int out, bool tiled)
{
    GraphOp op;
    op.exec = GraphOpExec::Layer;
    op.layer = flat_idx;
    op.input = in;
    op.output = out;
    op.chanOff = 0;
    op.chanCount = s.values[std::size_t(out)].c;
    op.tiled = tiled;
    op.layerKind = l.kind();
    op.layerName = l.name();
    s.ops.push_back(std::move(op));
}

/**
 * Pass 1: drop inference-mode dropout ops, rewiring consumers to the
 * dropout's input. A dropout producing the network output from the
 * network input has nothing to rewire into and stays (degenerate
 * single-layer nets; the identity copy is still correct).
 */
void
pruneDropout(GraphSchedule &s)
{
    for (std::size_t k = 0; k < s.ops.size();) {
        const GraphOp &op = s.ops[k];
        if (op.exec != GraphOpExec::Layer || op.layerKind != "dropout" ||
            (op.input == kGraphInputValue &&
             s.values[std::size_t(op.output)].isOutput)) {
            ++k;
            continue;
        }
        const int in = op.input;
        const int out = op.output;
        if (s.values[std::size_t(out)].isOutput)
            s.values[std::size_t(in)].isOutput = true;
        s.ops.erase(s.ops.begin() + long(k));
        for (GraphOp &o : s.ops)
            if (o.input == out)
                o.input = in;
    }
}

/**
 * Pass 2: merge a producer + adjacent ReLU pair into one fused op.
 * Conditions mirror the legacy peephole (adjacency, producer opts
 * in) plus single-producer/single-consumer ownership of the
 * intermediate value, which lowering guarantees and rewrites keep.
 */
void
fuseRelu(GraphSchedule &s, const std::vector<Layer *> &flat)
{
    for (std::size_t k = 0; k + 1 < s.ops.size();) {
        GraphOp &a = s.ops[k];
        const GraphOp &b = s.ops[k + 1];
        const bool eligible =
            a.exec == GraphOpExec::Layer &&
            flat[a.layer]->canFuseRelu() &&
            b.exec == GraphOpExec::Layer && b.layerKind == "relu" &&
            b.input == a.output && a.tiled == b.tiled &&
            !s.values[std::size_t(a.output)].isOutput &&
            writerCount(s, a.output) == 1 &&
            readerCount(s, a.output) == 1 &&
            writerCount(s, b.output) == 1;
        if (!eligible) {
            ++k;
            continue;
        }
        a.exec = GraphOpExec::LayerFusedRelu;
        a.output = b.output;
        a.chanOff = b.chanOff;
        a.chanCount = b.chanCount;
        s.ops.erase(s.ops.begin() + long(k) + 1);
    }
}

/**
 * Pass 3: inline a staged branch terminal into its concat window.
 * The producer must own the staging value outright and cover it
 * whole; the window write must be expressible as a contiguous
 * [1, chanCount, h, w] destination, which holds when the concat
 * value is per-item, the producer is tiled (per-item window of a
 * batch-wide value), or the batch is 1. A batch-wide non-tiled
 * producer would need a strided per-item destination no layer
 * forward can produce, so its copy stays — bitwise equal either way.
 */
void
concatElim(GraphSchedule &s)
{
    for (std::size_t k = 0; k < s.ops.size();) {
        const GraphOp cw = s.ops[k];
        if (cw.exec != GraphOpExec::CopyWindow ||
            cw.input == kGraphInputValue) {
            ++k;
            continue;
        }
        const GraphValue &sv = s.values[std::size_t(cw.input)];
        const GraphValue &cv = s.values[std::size_t(cw.output)];
        const bool windowable =
            cv.perItem || cw.tiled || s.batch == 1;
        if (!windowable || sv.isOutput || sv.c != cw.chanCount ||
            writerCount(s, cw.input) != 1 ||
            readerCount(s, cw.input) != 1) {
            ++k;
            continue;
        }
        // Find the sole producer; it must be a whole-value layer op.
        std::size_t pi = s.ops.size();
        for (std::size_t j = 0; j < s.ops.size(); ++j)
            if (s.ops[j].output == cw.input) {
                pi = j;
                break;
            }
        GraphOp &p = s.ops[pi];
        if (p.exec == GraphOpExec::CopyWindow || p.chanOff != 0 ||
            p.chanCount != sv.c || p.tiled != cw.tiled) {
            ++k;
            continue;
        }
        p.output = cw.output;
        p.chanOff = cw.chanOff;
        // chanCount already == sv.c, the window's width.
        s.ops.erase(s.ops.begin() + long(k));
        // k now indexes the next op; pi < k always (producers
        // precede their copy), so no index fixup is needed.
    }
}

/** Pass 4: drop ops writing unread non-output values; compact ids. */
void
deadCodeSweep(GraphSchedule &s)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t k = 0; k < s.ops.size();) {
            const int out = s.ops[k].output;
            if (!s.values[std::size_t(out)].isOutput &&
                readerCount(s, out) == 0) {
                s.ops.erase(s.ops.begin() + long(k));
                changed = true;
            } else {
                ++k;
            }
        }
    }
    // Compact values to those still referenced.
    std::vector<int> remap(s.values.size(), -1);
    std::vector<GraphValue> kept;
    for (std::size_t v = 0; v < s.values.size(); ++v) {
        bool used = s.values[v].isOutput;
        for (const GraphOp &op : s.ops)
            used = used || op.input == int(v) || op.output == int(v);
        if (used) {
            remap[v] = int(kept.size());
            kept.push_back(s.values[v]);
        }
    }
    for (GraphOp &op : s.ops) {
        if (op.input != kGraphInputValue)
            op.input = remap[std::size_t(op.input)];
        op.output = remap[std::size_t(op.output)];
    }
    s.values = std::move(kept);
}

} // namespace

std::vector<std::string>
graphPassNames()
{
    return {"prune-dropout", "fuse-relu", "concat-elim", "dce"};
}

std::vector<Layer *>
flattenNetworkLayers(Network &net)
{
    std::vector<Layer *> flat;
    for (std::size_t i = 0; i < net.size(); ++i) {
        Layer &l = net.layer(i);
        if (auto *inc = dynamic_cast<InceptionLayer *>(&l)) {
            for (const InceptionLayer::Branch &b : inc->branchList())
                for (const auto &inner : b)
                    flat.push_back(inner.get());
        } else {
            flat.push_back(&l);
        }
    }
    return flat;
}

bool
graphQuantFingerprint(const Network &net)
{
    if (quantizeForced())
        return true;
    for (const ConvLayer *c : net.convLayers())
        if (c->quantizedEnabled())
            return true;
    for (const FcLayer *f : net.fcLayers())
        if (f->quantizedEnabled())
            return true;
    return false;
}

LoweredGraph
lowerAndOptimize(Network &net, std::size_t batch)
{
    PCNN_CHECK(net.size() > 0, net.name(),
               ": cannot compile an empty network");
    LoweredGraph g;
    GraphSchedule &s = g.sched;
    s.batch = std::max<std::size_t>(batch, 1);

    // Tiling decision: see the file comment. Batch-1 tiling would be
    // a no-op, and the int8 route's dynamic activation params couple
    // the batch (computeQuantParams over the whole input tensor), so
    // both fall back to batch-wide values.
    const bool tileable = s.batch > 1 && !graphQuantFingerprint(net);
    std::size_t tiled_layers = 0;
    if (tileable)
        while (tiled_layers < net.size() &&
               itemSeparable(net.layer(tiled_layers)))
            ++tiled_layers;

    // Emit ops in network order; per-item shapes throughout (n == 1).
    std::size_t flat_idx = 0;
    int cur = kGraphInputValue;
    Shape shape = net.inputShape();
    for (std::size_t i = 0; i < net.size(); ++i) {
        Layer &l = net.layer(i);
        const bool tiled = i < tiled_layers;
        auto *inc = dynamic_cast<InceptionLayer *>(&l);
        if (inc == nullptr) {
            const Shape out = l.outputShape(shape);
            const int v = addValue(s, out, tiled);
            addLayerOp(s, flat_idx++, l, cur, v, tiled);
            cur = v;
            shape = out;
            continue;
        }
        // Inception: branch chains over staged values, then a
        // CopyWindow per branch into the concat value — exactly the
        // legacy forwardInto structure, ready for concat-elim.
        const Shape out = inc->outputShape(shape);
        const int concat = addValue(s, out, tiled);
        std::size_t c_off = 0;
        for (const InceptionLayer::Branch &b : inc->branchList()) {
            int bcur = cur;
            Shape bshape = shape;
            for (const auto &inner : b) {
                const Shape bout = inner->outputShape(bshape);
                const int v = addValue(s, bout, tiled);
                addLayerOp(s, flat_idx++, *inner, bcur, v, tiled);
                bcur = v;
                bshape = bout;
            }
            GraphOp copy;
            copy.exec = GraphOpExec::CopyWindow;
            copy.input = bcur;
            copy.output = concat;
            copy.chanOff = c_off;
            copy.chanCount = bshape.c;
            copy.tiled = tiled;
            s.ops.push_back(std::move(copy));
            c_off += bshape.c;
        }
        cur = concat;
        shape = out;
    }
    s.values[std::size_t(cur)].isOutput = true;

    // Optimization passes (graphPassNames order).
    pruneDropout(s);
    if (reluFoldingEnabled())
        fuseRelu(s, flattenNetworkLayers(net));
    concatElim(s);
    deadCodeSweep(s);

    // Boundary repair, after the passes so rewires are final: a
    // value read outside the tiled prefix (or the network output)
    // must hold the whole batch; its tiled writers then write per
    // item at the item's offset. (pruneDropout can move a tail
    // reader onto a formerly per-item trunk value — this flip is
    // what keeps that rewrite correct.)
    for (const GraphOp &op : s.ops)
        if (!op.tiled && op.input != kGraphInputValue)
            s.values[std::size_t(op.input)].perItem = false;
    for (GraphValue &v : s.values)
        if (v.isOutput)
            v.perItem = false;

    s.tiledOps = 0;
    for (const GraphOp &op : s.ops)
        s.tiledOps += op.tiled ? 1 : 0;
    g.flat = flattenNetworkLayers(net);
    return g;
}

GraphSchedule
buildGraphSchedule(Network &net, std::size_t batch)
{
    LoweredGraph g = lowerAndOptimize(net, batch);
    planGraphArena(g.sched);
    PCNN_CHECK(validateGraphSchedule(g.sched), net.name(),
               ": compiled graph schedule failed self-validation");
    return std::move(g.sched);
}

} // namespace pcnn
