/**
 * @file
 * Internal interfaces between the graph compiler's stages (lowering
 * and passes in graph_lower.cc, lifetime/arena planning in
 * graph_plan.cc, execution in compiled_graph.cc). Not installed API;
 * tests use the public surface in compiled_graph.hh.
 */

#ifndef PCNN_NN_GRAPH_GRAPH_INTERNAL_HH
#define PCNN_NN_GRAPH_GRAPH_INTERNAL_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "nn/graph/graph_ir.hh"

namespace pcnn {

class Network;
class Layer;

/** Lowered (and optimized) op list plus its layer table. */
struct LoweredGraph
{
    GraphSchedule sched;
    std::vector<Layer *> flat;
};

/**
 * Lower `net` into a schedule and run the optimization passes.
 * Values carry shapes and perItem flags after this; lifetimes and
 * arena offsets are planGraphArena's job.
 */
LoweredGraph lowerAndOptimize(Network &net, std::size_t batch);

/**
 * Recompute def/lastUse for every value from the op list alone,
 * applying the tiling rule: a batch-wide value written inside the
 * per-item loop is pinned live from op 0, so no per-item value can
 * reuse its storage across item iterations.
 */
std::vector<std::pair<int, int>>
computeGraphLiveness(const GraphSchedule &s);

/**
 * Fill in def/lastUse, assign arena offsets (greedy first-fit over
 * descending extents, 16-float aligned) and set arenaFloats.
 */
void planGraphArena(GraphSchedule &s);

} // namespace pcnn

#endif // PCNN_NN_GRAPH_GRAPH_INTERNAL_HH
