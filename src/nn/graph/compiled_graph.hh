/**
 * @file
 * Executable form of a GraphSchedule (DESIGN.md §5j).
 *
 * CompiledGraph owns the one arena allocation a schedule's values
 * live in, the shared per-lane conv scratch pool (max across layers
 * instead of the legacy sum), and the non-owning Tensor views that
 * let unchanged layer forwardInto() code write straight into arena
 * slices. Network::forwardInto dispatches through it when the
 * PCNN_GRAPH toggle is on; results are bitwise identical to the
 * legacy chain because the same layer methods run in the same order
 * on the same bytes.
 */

#ifndef PCNN_NN_GRAPH_COMPILED_GRAPH_HH
#define PCNN_NN_GRAPH_COMPILED_GRAPH_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv_layer.hh"
#include "nn/graph/graph_ir.hh"
#include "tensor/tensor.hh"

namespace pcnn {

class Network;
class Layer;

/**
 * Lower `net` into a flat op list (inception branches inlined, in
 * network order). The returned pointers borrow the network's layers.
 */
std::vector<Layer *> flattenNetworkLayers(Network &net);

/**
 * True when the next inference forward of any conv/fc layer in `net`
 * would take the int8 route (per-layer flag or the PCNN_QUANTIZE
 * force). Dynamic activation-quantization params are derived from
 * the whole input batch, which couples items together — the compiler
 * disables item tiling under this fingerprint, and Network uses it
 * to detect a stale compiled graph.
 */
bool graphQuantFingerprint(const Network &net);

/**
 * Run the pass pipeline over `net` and return the resulting
 * schedule without materializing an executable: lowering, dropout
 * pruning, ReLU fusion, concat elimination, dead-op sweep, then
 * lifetime analysis and arena offset assignment. This is what plan
 * v4 serializes (attachGraphSchedule in the offline compiler).
 */
GraphSchedule buildGraphSchedule(Network &net, std::size_t batch);

/** Names of the optimization passes, in execution order (docs/tests). */
std::vector<std::string> graphPassNames();

/** A compiled, executable inference schedule bound to a Network. */
class CompiledGraph
{
  public:
    /**
     * Compile `net` for batches up to `batch`. Performs the single
     * arena allocation; the per-lane conv scratch pool is installed
     * on every conv layer but its buffers grow lazily on first use,
     * exactly like the legacy per-layer scratch.
     */
    static std::unique_ptr<CompiledGraph> compile(Network &net,
                                                  std::size_t batch);

    /**
     * Materialize an executable from a deserialized plan-v4
     * schedule. Validates the schedule structurally and against the
     * live network (layer kinds/names and shapes) — a stale or
     * mismatched plan fails a PCNN_CHECK loudly, the same contract
     * as setAlgo on a stale per-layer pin.
     */
    static std::unique_ptr<CompiledGraph> adopt(Network &net,
                                                const GraphSchedule &s);

    ~CompiledGraph();

    CompiledGraph(const CompiledGraph &) = delete;
    CompiledGraph &operator=(const CompiledGraph &) = delete;

    /**
     * Execute the schedule. `x` must match the compiled input shape
     * with n <= batchCapacity(); `out` receives the logits exactly
     * as the legacy path would produce them. Steady-state calls are
     * allocation-free.
     */
    void run(const Tensor &x, Tensor &out);

    /**
     * True when this graph no longer matches the run conditions:
     * a larger batch than compiled for, or a flipped fusion /
     * quantization fingerprint (which change the op structure).
     */
    bool staleFor(std::size_t batch, bool fold_relu,
                  bool any_quant) const
    {
        return batch > sched.batch || fold_relu != foldSnap ||
               any_quant != quantSnap;
    }

    /** The schedule this executable realizes. */
    const GraphSchedule &schedule() const { return sched; }

    /** Compiled batch capacity. */
    std::size_t batchCapacity() const { return sched.batch; }

    /** Bytes of the single activation arena allocation. */
    std::size_t arenaBytes() const
    {
        return arena.capacity() * sizeof(float);
    }

    /** Current bytes of the shared per-lane conv scratch pool. */
    std::size_t scratchPoolBytes() const;

  private:
    CompiledGraph() = default;

    /** Shared post-schedule setup for compile() and adopt(). */
    static std::unique_ptr<CompiledGraph>
    materialize(Network &net, GraphSchedule schedule,
                std::vector<Layer *> flat);

    /** Execute op `k` for batch item `item` (0 for tail ops). */
    void execOp(std::size_t k, std::size_t item, const Tensor &x,
                Tensor &out, std::size_t n);

    GraphSchedule sched;
    std::vector<Layer *> flat; ///< borrowed from the Network
    ConvScratchPool pool;      ///< shared conv scratch (max, not sum)
    std::vector<float> arena;  ///< the one arena allocation
    std::vector<Tensor> valBind; ///< per-value view headers
    Tensor itemIn;  ///< per-item input window view
    Tensor dstHdr;  ///< per-op window destination view
    int outputValue = -1;
    /// output has one whole-channel batch-wide writer: it writes the
    /// caller's tensor directly, exactly like the legacy last layer
    bool directOut = false;
    bool foldSnap = false;  ///< reluFoldingEnabled() at compile
    bool quantSnap = false; ///< graphQuantFingerprint() at compile
};

} // namespace pcnn

#endif // PCNN_NN_GRAPH_COMPILED_GRAPH_HH
