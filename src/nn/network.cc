#include "nn/network.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/tags.hh"
#include "nn/fusion.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

Network::Network(std::string name, Shape input_shape)
    : netName(std::move(name)), inShape(input_shape)
{
    inShape.n = 1;
}

Tensor
Network::forward(const Tensor &x, bool train)
{
    Tensor out;
    forwardInto(x, train, out);
    return out;
}

PCNN_HOT_PATH
void
Network::forwardInto(const Tensor &x, bool train, Tensor &out)
{
    PCNN_CHECK(x.shape().c == inShape.c && x.shape().h == inShape.h &&
                   x.shape().w == inShape.w,
               netName, ": input ", x.shape().str(),
               " mismatches expected ", inShape.str());
    PCNN_CHECK(!layers.empty(), netName, ": empty network");
    PCNN_CHECK(&out != &x, netName,
               ": forwardInto output must not alias the input");
    // Activations ping-pong between two persistent per-network
    // buffers (the last layer writes straight into `out`), so a
    // steady-state inference forward performs no allocator traffic
    // once every buffer has grown to its high-water shape
    // (DESIGN.md §5h). The old per-layer fresh-tensor chain (and the
    // input copy it started from) is gone.
    const Tensor *cur = &x;
    Tensor *nxt = &actA;
    // Inference peephole (DESIGN.md §5e): a ReLU directly after a
    // layer that opts into epilogue fusion is folded into that
    // layer's store pass and the ReLU layer itself is skipped.
    // Training-mode forwards never fold (the ReLU must cache its
    // mask for backward).
    const bool fold = !train && reluFoldingEnabled();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        Layer *l = layers[i].get();
        const bool fuse = fold && i + 1 < layers.size() &&
                          l->canFuseRelu() &&
                          layers[i + 1]->kind() == "relu";
        const bool last = i + (fuse ? 2 : 1) >= layers.size();
        Tensor *dst = last ? &out : nxt;
        if (fuse) {
            l->forwardFusedReluInto(*cur, *dst);
            ++i; // the folded ReLU is consumed
        } else {
            l->forwardInto(*cur, train, *dst);
        }
        nxt = dst == &actA ? &actB : &actA;
        cur = dst;
    }
}

Tensor
Network::predict(const Tensor &x)
{
    return softmax(forward(x, false));
}

Tensor
Network::backward(const Tensor &dlogits)
{
    PCNN_CHECK(!layers.empty(), netName, ": empty network");
    Tensor g = dlogits;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Param *>
Network::params()
{
    std::vector<Param *> out;
    for (auto &l : layers)
        for (Param *p : l->params())
            out.push_back(p);
    return out;
}

void
Network::zeroGrads()
{
    for (Param *p : params())
        p->zeroGrad();
}

double
Network::flopsPerImage() const
{
    double total = 0.0;
    Shape s = inShape;
    for (const auto &l : layers) {
        total += l->flopsPerImage(s);
        s = l->outputShape(s);
    }
    return total;
}

std::vector<ConvSpec>
Network::convSpecs() const
{
    std::vector<ConvSpec> out;
    out.reserve(convs.size());
    for (const ConvLayer *c : convs)
        out.push_back(c->spec());
    return out;
}

void
Network::clearPerforation()
{
    for (ConvLayer *c : convs)
        c->setComputedPositions(0);
}

void
Network::clearQuantization()
{
    for (ConvLayer *c : convs)
        c->setQuantized(false);
    for (FcLayer *f : fcs)
        f->setQuantized(false);
}

Network
Network::cloneSharingWeights()
{
    Network replica(netName, inShape);
    for (auto &l : layers)
        replica.addLayer(l->cloneShared());
    return replica;
}

} // namespace pcnn
