#include "nn/network.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

Network::Network(std::string name, Shape input_shape)
    : netName(std::move(name)), inShape(input_shape)
{
    inShape.n = 1;
}

Tensor
Network::forward(const Tensor &x, bool train)
{
    PCNN_CHECK(x.shape().c == inShape.c && x.shape().h == inShape.h &&
                   x.shape().w == inShape.w,
               netName, ": input ", x.shape().str(),
               " mismatches expected ", inShape.str());
    PCNN_CHECK(!layers.empty(), netName, ": empty network");
    Tensor a = x;
    for (auto &l : layers)
        a = l->forward(a, train);
    return a;
}

Tensor
Network::predict(const Tensor &x)
{
    return softmax(forward(x, false));
}

Tensor
Network::backward(const Tensor &dlogits)
{
    PCNN_CHECK(!layers.empty(), netName, ": empty network");
    Tensor g = dlogits;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Param *>
Network::params()
{
    std::vector<Param *> out;
    for (auto &l : layers)
        for (Param *p : l->params())
            out.push_back(p);
    return out;
}

void
Network::zeroGrads()
{
    for (Param *p : params())
        p->zeroGrad();
}

double
Network::flopsPerImage() const
{
    double total = 0.0;
    Shape s = inShape;
    for (const auto &l : layers) {
        total += l->flopsPerImage(s);
        s = l->outputShape(s);
    }
    return total;
}

std::vector<ConvSpec>
Network::convSpecs() const
{
    std::vector<ConvSpec> out;
    out.reserve(convs.size());
    for (const ConvLayer *c : convs)
        out.push_back(c->spec());
    return out;
}

void
Network::clearPerforation()
{
    for (ConvLayer *c : convs)
        c->setComputedPositions(0);
}

} // namespace pcnn
