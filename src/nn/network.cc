#include "nn/network.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/tags.hh"
#include "nn/fusion.hh"
#include "nn/graph/compiled_graph.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

Network::Network(std::string name, Shape input_shape)
    : netName(std::move(name)), inShape(input_shape)
{
    inShape.n = 1;
}

// Defined where CompiledGraph is complete (unique_ptr member).
// Moving a Network keeps the compiled graph valid: it holds raw
// layer pointers and the layers themselves live behind unique_ptrs
// whose pointees do not move.
Network::Network(Network &&) noexcept = default;
Network &Network::operator=(Network &&) noexcept = default;
Network::~Network() = default;

void
Network::ensureCompiledGraph(std::size_t batch)
{
    batch = std::max<std::size_t>(batch, 1);
    const bool fold = reluFoldingEnabled();
    const bool quant = graphQuantFingerprint(*this);
    if (graph && !graph->staleFor(batch, fold, quant))
        return;
    // pcnn-analyze: allow(hot-path-alloc): grow-only recompile —
    // happens on first use or a config flip, never in steady state.
    const std::size_t cap =
        std::max(batch, graph ? graph->batchCapacity() : 0);
    // Destroy the stale graph first: its destructor detaches the
    // conv scratch pool, which must not run after the new graph has
    // installed its own.
    graph.reset();
    graph = CompiledGraph::compile(*this, cap);
    ++graphCompiles;
}

void
Network::adoptGraphSchedule(const GraphSchedule &s)
{
    graph.reset(); // see ensureCompiledGraph on destruction order
    graph = CompiledGraph::adopt(*this, s);
    ++graphCompiles;
}

void
Network::clearCompiledGraph()
{
    graph.reset();
}

std::size_t
Network::steadyMemoryBytes() const
{
    std::size_t total =
        (actA.capacityFloats() + actB.capacityFloats()) * sizeof(float);
    for (const auto &l : layers)
        total += l->steadyStateScratchBytes();
    if (graph)
        total += graph->arenaBytes() + graph->scratchPoolBytes();
    return total;
}

Tensor
Network::forward(const Tensor &x, bool train)
{
    Tensor out;
    forwardInto(x, train, out);
    return out;
}

PCNN_HOT_PATH
void
Network::forwardInto(const Tensor &x, bool train, Tensor &out)
{
    PCNN_CHECK(x.shape().c == inShape.c && x.shape().h == inShape.h &&
                   x.shape().w == inShape.w,
               netName, ": input ", x.shape().str(),
               " mismatches expected ", inShape.str());
    PCNN_CHECK(!layers.empty(), netName, ": empty network");
    PCNN_CHECK(&out != &x, netName,
               ": forwardInto output must not alias the input");
    // Compiled-graph dispatch (DESIGN.md §5j): inference forwards
    // run the static-arena schedule when the toggle is on. The
    // schedule invokes the same layer forwards in the same order on
    // the same bytes, so logits are bitwise equal to the chain
    // below; training always takes the chain (backward needs the
    // layers' own caches and stochastic behaviour).
    if (!train && graphEnabled()) {
        // pcnn-analyze: allow(hot-path-alloc): compile-on-first-use;
        // the graph is cached and steady-state forwards re-use it.
        ensureCompiledGraph(x.shape().n);
        // pcnn-analyze: allow(hot-path-alloc): CompiledGraph::run is
        // itself a tagged hot-path root; the name-based call graph
        // would otherwise drag in every other run() in the tree.
        graph->run(x, out);
        return;
    }
    // Activations ping-pong between two persistent per-network
    // buffers (the last layer writes straight into `out`), so a
    // steady-state inference forward performs no allocator traffic
    // once every buffer has grown to its high-water shape
    // (DESIGN.md §5h). The old per-layer fresh-tensor chain (and the
    // input copy it started from) is gone.
    const Tensor *cur = &x;
    Tensor *nxt = &actA;
    // Inference peephole (DESIGN.md §5e): a ReLU directly after a
    // layer that opts into epilogue fusion is folded into that
    // layer's store pass and the ReLU layer itself is skipped.
    // Training-mode forwards never fold (the ReLU must cache its
    // mask for backward).
    const bool fold = !train && reluFoldingEnabled();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        Layer *l = layers[i].get();
        const bool fuse = fold && i + 1 < layers.size() &&
                          l->canFuseRelu() &&
                          layers[i + 1]->kind() == "relu";
        const bool last = i + (fuse ? 2 : 1) >= layers.size();
        Tensor *dst = last ? &out : nxt;
        if (fuse) {
            l->forwardFusedReluInto(*cur, *dst);
            ++i; // the folded ReLU is consumed
        } else {
            l->forwardInto(*cur, train, *dst);
        }
        nxt = dst == &actA ? &actB : &actA;
        cur = dst;
    }
}

Tensor
Network::predict(const Tensor &x)
{
    return softmax(forward(x, false));
}

Tensor
Network::backward(const Tensor &dlogits)
{
    PCNN_CHECK(!layers.empty(), netName, ": empty network");
    Tensor g = dlogits;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Param *>
Network::params()
{
    std::vector<Param *> out;
    for (auto &l : layers)
        for (Param *p : l->params())
            out.push_back(p);
    return out;
}

void
Network::zeroGrads()
{
    for (Param *p : params())
        p->zeroGrad();
}

double
Network::flopsPerImage() const
{
    double total = 0.0;
    Shape s = inShape;
    for (const auto &l : layers) {
        total += l->flopsPerImage(s);
        s = l->outputShape(s);
    }
    return total;
}

std::vector<ConvSpec>
Network::convSpecs() const
{
    std::vector<ConvSpec> out;
    out.reserve(convs.size());
    for (const ConvLayer *c : convs)
        out.push_back(c->spec());
    return out;
}

void
Network::clearPerforation()
{
    for (ConvLayer *c : convs)
        c->setComputedPositions(0);
}

void
Network::clearQuantization()
{
    for (ConvLayer *c : convs)
        c->setQuantized(false);
    for (FcLayer *f : fcs)
        f->setQuantized(false);
}

Network
Network::cloneSharingWeights()
{
    Network replica(netName, inShape);
    for (auto &l : layers)
        replica.addLayer(l->cloneShared());
    return replica;
}

} // namespace pcnn
