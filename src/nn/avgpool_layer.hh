/**
 * @file
 * Average pooling, including the global mode GoogLeNet's classifier
 * head uses (7x7 global average pooling before the fc layer).
 */

#ifndef PCNN_NN_AVGPOOL_LAYER_HH
#define PCNN_NN_AVGPOOL_LAYER_HH

#include <cstddef>
#include <memory>
#include <string>

#include "nn/layer.hh"

namespace pcnn {

/**
 * 2-D average pooling with a square window; window 0 means global
 * pooling (the window covers the whole plane, output is 1x1).
 */
class AvgPoolLayer : public Layer
{
  public:
    /**
     * @param name stable layer name
     * @param window square window side; 0 = global average pooling
     * @param stride window stride (ignored in global mode)
     */
    AvgPoolLayer(std::string name, std::size_t window,
                 std::size_t stride = 1);

    std::string name() const override { return layerName; }
    std::string kind() const override { return "avgpool"; }
    Shape outputShape(const Shape &in) const override;
    void forwardInto(const Tensor &x, bool train,
                     Tensor &y) override;
    Tensor backward(const Tensor &dy) override;

    /** True when configured as global average pooling. */
    bool global() const { return window == 0; }

    std::unique_ptr<Layer>
    cloneShared() override
    {
        auto c = std::make_unique<AvgPoolLayer>(*this);
        c->haveCache = false;
        return c;
    }

  private:
    /** Effective window side for a given input. */
    std::size_t effectiveWindow(const Shape &in) const;

    std::string layerName;
    std::size_t window;
    std::size_t stride;

    Shape inShape;
    bool haveCache = false;
};

} // namespace pcnn

#endif // PCNN_NN_AVGPOOL_LAYER_HH
