#include "nn/fc_layer.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/tags.hh"
#include "nn/fusion.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

FcLayer::FcLayer(std::string name, std::size_t in_features,
                 std::size_t out_features, Rng &rng)
    : layerName(std::move(name)), nIn(in_features), nOut(out_features),
      w(std::make_shared<FcWeights>())
{
    pcnn_assert(nIn > 0 && nOut > 0, "fc ", layerName,
                ": feature counts must be positive");
    w->weight.value.resize(Shape{nOut, nIn, 1, 1});
    w->weight.grad.resize(w->weight.value.shape());
    w->bias.value.resize(Shape{1, nOut, 1, 1});
    w->bias.grad.resize(w->bias.value.shape());
    w->weight.value.fillGaussian(rng, 0.0f,
                                 float(std::sqrt(2.0 / double(nIn))));
}

std::unique_ptr<Layer>
FcLayer::cloneShared()
{
    // Freeze first so no mutation can slip between clone and serve.
    w->weight.setShared();
    w->bias.setShared();
    auto clone = std::unique_ptr<FcLayer>(new FcLayer(*this));
    clone->lastInput = Tensor();
    clone->haveCache = false;
    clone->qx.clear(); // activations scratch stays per-replica
    clone->yT.clear();
    return clone;
}

Shape
FcLayer::outputShape(const Shape &in) const
{
    PCNN_CHECK_EQ(in.itemSize(), nIn, "fc ", layerName, ": input ",
                  in.str(), " does not flatten to the weight matrix");
    return Shape{in.n, nOut, 1, 1};
}

std::vector<Param *>
FcLayer::params()
{
    return {&w->weight, &w->bias};
}

double
FcLayer::flopsPerImage(const Shape &in) const
{
    (void)in;
    return 2.0 * double(nIn) * double(nOut);
}

const PackedPanel &
FcLayer::packedWeightT()
{
    if (w->wPack.generation != w->weight.generation()) {
        packWeights(true, nIn, nOut, w->weight.value.data(), w->wPack);
        w->wPack.generation = w->weight.generation();
    }
    return w->wPack;
}

const QuantizedPanel &
FcLayer::quantizedWeight()
{
    if (w->qPack.generation != w->weight.generation()) {
        quantizeWeights(nOut, nIn, w->weight.value.data(), w->qPack);
        w->qPack.generation = w->weight.generation();
    }
    return w->qPack;
}

bool
FcLayer::effectiveQuantized(bool train) const
{
    // Training always runs fp32 (backward needs exact activations).
    return !train && (quantOn || quantizeForced());
}

void
FcLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    forwardImpl(x, train, false, y);
}

void
FcLayer::forwardFusedReluInto(const Tensor &x, Tensor &y)
{
    forwardImpl(x, false, true, y);
}

PCNN_HOT_PATH
void
FcLayer::forwardImpl(const Tensor &x, bool train, bool fuse_relu,
                     Tensor &y)
{
    const Shape out = outputShape(x.shape());
    const std::size_t batch = x.shape().n;
    // pcnn-analyze: allow(hot-path-alloc): grow-only output
    // buffer; capacity is reused once warm (DESIGN.md §5h).
    y.resize(out);

    if (effectiveQuantized(train)) {
        // Int8 route: y^T = W_q x_q^T with the dequant+bias+ReLU
        // epilogue fused into the register tile. The trans pack
        // reads x^T without materializing it; at batch 1 (the
        // serving case) y^T is y, so qgemm stores straight into
        // the output and nothing else runs.
        const QuantizedPanel &qp = quantizedWeight();
        const QuantParams aq =
            haveInQuant ? inQuant
                        : computeQuantParams(x.data(), x.size());
        quantizePackActivations(x.data(), nIn, batch, nIn, true, aq,
                                qx);
        const float *bias = w->bias.value.data();
        if (batch == 1) {
            qgemm(nOut, 1, nIn, qp, qx.data(), aq, y.data(), bias,
                  fuse_relu);
            return;
        }
        // pcnn-analyze: allow(hot-path-alloc): grow-only per-layer
        // staging for the y^T -> y transpose.
        if (yT.size() < nOut * batch)
            yT.resize(nOut * batch);
        qgemm(nOut, batch, nIn, qp, qx.data(), aq, yT.data(), bias,
              fuse_relu);
        for (std::size_t i = 0; i < batch; ++i)
            for (std::size_t f = 0; f < nOut; ++f)
                y.data()[i * nOut + f] = yT[f * batch + i];
        return;
    }

    // Seed every output row with the bias, then accumulate the
    // product on top (beta = 1) so y is streamed through only once:
    // y[batch x nOut] = bias + x[batch x nIn] * W^T[nIn x nOut].
    // W^T comes from the persistent packed panel, so the weight is
    // repacked only when it changes — not on every forward call.
    // A folded ReLU rides the epilogue store pass (bias is already
    // seeded, so the epilogue clamps only) — bitwise equal to a
    // separate ReLU sweep.
    for (std::size_t i = 0; i < batch; ++i)
        std::copy(w->bias.value.data(), w->bias.value.data() + nOut,
                  y.data() + i * nOut);
    Epilogue epi;
    if (fuse_relu)
        epi.op = EpilogueOp::BiasRelu;
    sgemmPrepacked(batch, nOut, nIn, x.data(), packedWeightT(),
                   y.data(), 1.0f, epi);

    if (train) {
        lastInput = x;
        lastInput.reshape(Shape{batch, nIn, 1, 1});
        haveCache = true;
    }
}

Tensor
FcLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "fc ", layerName,
                ": backward without forward(train)");
    const std::size_t batch = dy.shape().n;
    PCNN_CHECK_EQ(dy.shape().itemSize(), nOut, "fc ", layerName,
                  ": gradient ", dy.shape().str(), " mismatch");
    PCNN_CHECK_EQ(batch, lastInput.shape().n, "fc ", layerName,
                  ": gradient batch mismatches cached activation");

    // dW += dY^T * X  (nOut x batch) * (batch x nIn)
    sgemm(true, false, nOut, nIn, batch, dy.data(), lastInput.data(),
          w->weight.grad.data(), 1.0f);

    // db += column sums of dY.
    for (std::size_t i = 0; i < batch; ++i)
        for (std::size_t f = 0; f < nOut; ++f)
            w->bias.grad.data()[f] += dy.data()[i * nOut + f];

    // dX = dY * W  (batch x nOut) * (nOut x nIn)
    Tensor dx(Shape{batch, nIn, 1, 1});
    sgemm(false, false, batch, nIn, nOut, dy.data(),
          w->weight.value.data(), dx.data());
    return dx;
}

} // namespace pcnn
