/**
 * @file
 * Weight serialization.
 *
 * Networks are constructed from code (architecture is not
 * serialized); weights are saved/loaded against an already
 * constructed network whose parameter shapes must match. The format
 * is a small self-describing binary: magic, parameter count, then
 * per parameter its shape and float data.
 */

#ifndef PCNN_NN_SERIALIZE_HH
#define PCNN_NN_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hh"

namespace pcnn {

/** Serialize all trainable parameters to a byte buffer. */
std::vector<std::uint8_t> serializeWeights(Network &net);

/**
 * Restore parameters from a byte buffer.
 * @retval true on success; false on malformed data or any
 *         shape/count mismatch (the network is left unmodified on
 *         failure)
 */
bool deserializeWeights(Network &net,
                        const std::vector<std::uint8_t> &bytes);

/** Save weights to a file. @retval true on success */
bool saveWeights(Network &net, const std::string &path);

/** Load weights from a file. @retval true on success */
bool loadWeights(Network &net, const std::string &path);

} // namespace pcnn

#endif // PCNN_NN_SERIALIZE_HH
