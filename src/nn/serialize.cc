#include "nn/serialize.hh"

#include <cstring>
#include <fstream>

#include "common/check.hh"
#include "common/tags.hh"
#include "common/logging.hh"

namespace pcnn {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'N', 'N', 'W', 'T', 'S', '1'};

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

bool
getU64(const std::vector<std::uint8_t> &in, std::size_t &pos,
       std::uint64_t &v)
{
    if (pos + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(in[pos + std::size_t(i)]) << (8 * i);
    pos += 8;
    return true;
}

} // namespace

std::vector<std::uint8_t>
serializeWeights(Network &net)
{
    const auto params = net.params();
    std::vector<std::uint8_t> out;
    // Byte-wise append: vector::insert over a raw range trips a
    // GCC 12 -Wstringop-overflow false positive under sanitizer
    // instrumentation.
    for (char ch : kMagic)
        out.push_back(std::uint8_t(ch));
    putU64(out, params.size());
    for (const Param *p : params) {
        const Shape &s = p->value.shape();
        putU64(out, s.n);
        putU64(out, s.c);
        putU64(out, s.h);
        putU64(out, s.w);
        const auto *raw = reinterpret_cast<const std::uint8_t *>(
            p->value.data());
        out.insert(out.end(), raw, raw + p->value.size() * 4);
    }
    return out;
}

PCNN_BINARY_READER
bool
deserializeWeights(Network &net,
                   const std::vector<std::uint8_t> &bytes)
{
    std::size_t pos = 0;
    if (bytes.size() < 8 ||
        std::memcmp(bytes.data(), kMagic, 8) != 0) {
        return false;
    }
    pos = 8;

    std::uint64_t count = 0;
    if (!getU64(bytes, pos, count))
        return false;
    const auto params = net.params();
    if (count != params.size())
        return false;
    // Loading into a replicated network would corrupt the weights
    // other replicas are concurrently reading; fail before any write
    // (the markUpdated() below would only fire after the memcpy).
    for (Param *p : params)
        PCNN_CHECK(!p->isShared(),
                   "deserializeWeights into a parameter shared across "
                   "serving replicas (DESIGN.md §5f): load weights "
                   "before cloneSharingWeights, never after");

    // Validate everything before touching the network.
    struct Pending
    {
        Param *param;
        std::size_t offset;
        std::size_t count;
    };
    std::vector<Pending> pending;
    for (Param *p : params) {
        std::uint64_t n, c, h, w;
        if (!getU64(bytes, pos, n) || !getU64(bytes, pos, c) ||
            !getU64(bytes, pos, h) || !getU64(bytes, pos, w)) {
            return false;
        }
        const Shape &s = p->value.shape();
        if (s.n != n || s.c != c || s.h != h || s.w != w)
            return false;
        // Overflow-safe remaining-bytes check: `pos + elems * 4` can
        // wrap for a hostile header, `elems > remaining / 4` cannot.
        const std::size_t elems = p->value.size();
        PCNN_DCHECK_LE(pos, bytes.size(), "reader ran past the buffer");
        if (elems > (bytes.size() - pos) / 4)
            return false;
        pending.push_back({p, pos, elems});
        pos += elems * 4;
    }
    if (pos != bytes.size())
        return false;

    for (const Pending &pd : pending) {
        std::memcpy(pd.param->value.data(), bytes.data() + pd.offset,
                    pd.count * 4);
        // Loaded weights replace the packed-panel caches' source:
        // bump the generation so every cache repacks on next use.
        pd.param->markUpdated();
    }
    return true;
}

bool
saveWeights(Network &net, const std::string &path)
{
    const auto bytes = serializeWeights(net);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.write(reinterpret_cast<const char *>(bytes.data()),
            std::streamsize(bytes.size()));
    return static_cast<bool>(f);
}

PCNN_BINARY_READER
bool
loadWeights(Network &net, const std::string &path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f)
        return false;
    const std::streamoff end = f.tellg();
    if (end < 0)
        return false;
    const auto size = std::size_t(end);
    f.seekg(0);
    std::vector<std::uint8_t> bytes(size);
    f.read(reinterpret_cast<char *>(bytes.data()),
           std::streamsize(size));
    if (!f)
        return false;
    return deserializeWeights(net, bytes);
}

} // namespace pcnn
