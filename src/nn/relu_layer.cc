#include "nn/relu_layer.hh"

#include "common/logging.hh"

namespace pcnn {

ReluLayer::ReluLayer(std::string name) : layerName(std::move(name)) {}

Tensor
ReluLayer::forward(const Tensor &x, bool train)
{
    Tensor y(x.shape());
    if (train)
        mask.resize(x.shape());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const bool pos = x[i] > 0.0f;
        y[i] = pos ? x[i] : 0.0f;
        if (train)
            mask[i] = pos ? 1.0f : 0.0f;
    }
    haveCache = train;
    return y;
}

Tensor
ReluLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "relu ", layerName,
                ": backward without forward(train)");
    pcnn_assert(dy.shape() == mask.shape(), "relu ", layerName,
                ": gradient shape mismatch");
    Tensor dx(dy.shape());
    for (std::size_t i = 0; i < dy.size(); ++i)
        dx[i] = dy[i] * mask[i];
    return dx;
}

} // namespace pcnn
