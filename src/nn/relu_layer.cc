#include "nn/relu_layer.hh"

#include "common/logging.hh"
#include "common/parallel.hh"

namespace pcnn {

ReluLayer::ReluLayer(std::string name) : layerName(std::move(name)) {}

void
ReluLayer::forwardInto(const Tensor &x, bool train, Tensor &y)
{
    y.resize(x.shape());
    if (train)
        mask.resize(x.shape());
    // The mask branch is hoisted out of the element loop: the
    // inference body is a pure select the compiler turns into
    // branchless vector code, which matters because post-conv signs
    // are effectively random and a per-element branch mispredicts
    // half the time.
    parallelFor(x.size(), [&](std::size_t i0, std::size_t i1,
                              std::size_t) {
        if (train) {
            for (std::size_t i = i0; i < i1; ++i) {
                const bool pos = x[i] > 0.0f;
                y[i] = pos ? x[i] : 0.0f;
                mask[i] = pos ? 1.0f : 0.0f;
            }
        } else {
            const float *xs = x.data() + i0;
            float *ys = y.data() + i0;
            for (std::size_t i = 0; i < i1 - i0; ++i)
                ys[i] = xs[i] > 0.0f ? xs[i] : 0.0f;
        }
    });
    haveCache = train;
}

Tensor
ReluLayer::backward(const Tensor &dy)
{
    pcnn_assert(haveCache, "relu ", layerName,
                ": backward without forward(train)");
    pcnn_assert(dy.shape() == mask.shape(), "relu ", layerName,
                ": gradient shape mismatch");
    Tensor dx(dy.shape());
    parallelFor(dy.size(), [&](std::size_t i0, std::size_t i1,
                               std::size_t) {
        for (std::size_t i = i0; i < i1; ++i)
            dx[i] = dy[i] * mask[i];
    });
    return dx;
}

} // namespace pcnn
