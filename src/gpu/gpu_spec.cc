#include "gpu/gpu_spec.hh"

#include "common/logging.hh"

namespace pcnn {

double
GpuSpec::peakFlops() const
{
    return 2.0 * coreClockMHz * 1e6 * double(numSMs) * double(coresPerSM);
}

double
GpuSpec::peakFlopsPerSM() const
{
    return 2.0 * coreClockMHz * 1e6 * double(coresPerSM);
}

GpuSpec
k20c()
{
    GpuSpec g;
    g.name = "K20c";
    g.platform = "Server";
    g.numSMs = 13;
    g.coresPerSM = 192;
    g.coreClockMHz = 706.0;
    g.registersPerSM = 65536;
    g.sharedMemPerSM = 49152; // Kepler: 48 KB
    g.maxThreadsPerSM = 2048;
    g.maxCtasPerSM = 16;
    g.dramMB = 5 * 1024.0;
    g.memBandwidthGBs = 208.0;
    g.basePowerW = 45.0;
    g.smStaticPowerW = 7.0;
    g.dynEnergyPerFlopJ = 15e-12;
    return g;
}

GpuSpec
titanX()
{
    GpuSpec g;
    g.name = "TitanX";
    g.platform = "Desktop";
    g.numSMs = 24;
    g.coresPerSM = 128;
    g.coreClockMHz = 1000.0;
    g.registersPerSM = 65536;
    g.sharedMemPerSM = 98304; // Maxwell: 96 KB
    g.maxThreadsPerSM = 2048;
    g.maxCtasPerSM = 32;
    g.dramMB = 12 * 1024.0;
    g.memBandwidthGBs = 336.0;
    g.basePowerW = 50.0;
    g.smStaticPowerW = 5.0;
    g.dynEnergyPerFlopJ = 11e-12;
    return g;
}

GpuSpec
gtx970m()
{
    GpuSpec g;
    g.name = "970m";
    g.platform = "Notebook";
    g.numSMs = 10;
    g.coresPerSM = 128;
    g.coreClockMHz = 924.0;
    g.registersPerSM = 65536;
    g.sharedMemPerSM = 98304;
    g.maxThreadsPerSM = 2048;
    g.maxCtasPerSM = 32;
    g.dramMB = 3 * 1024.0;
    g.memBandwidthGBs = 120.0;
    g.basePowerW = 14.0;
    g.smStaticPowerW = 4.5;
    g.dynEnergyPerFlopJ = 11e-12;
    return g;
}

GpuSpec
jetsonTx1()
{
    GpuSpec g;
    g.name = "TX1";
    g.platform = "Mobile";
    g.numSMs = 2;
    g.coresPerSM = 128;
    g.coreClockMHz = 998.0;
    g.registersPerSM = 65536;
    g.sharedMemPerSM = 98304;
    g.maxThreadsPerSM = 2048;
    g.maxCtasPerSM = 32;
    // 4 GB LPDDR4 shared with the CPU; roughly 2.5 GB is realistically
    // available to CUDA allocations, which is what the Table III
    // out-of-memory failures depend on.
    g.dramMB = 2560.0;
    g.memBandwidthGBs = 25.6;
    g.basePowerW = 2.0;
    g.smStaticPowerW = 1.5;
    g.dynEnergyPerFlopJ = 7e-12;
    return g;
}

std::vector<GpuSpec>
allGpus()
{
    return {k20c(), titanX(), gtx970m(), jetsonTx1()};
}

GpuSpec
gpuByName(const std::string &name)
{
    for (const GpuSpec &g : allGpus())
        if (g.name == name)
            return g;
    pcnn_fatal("unknown GPU preset: ", name);
}

} // namespace pcnn
