/**
 * @file
 * Dynamic voltage/frequency scaling model.
 *
 * Section II.B.1: inside the imperceptible region there is no reason
 * to be fast — "we should try to minimize energy consumption by
 * lowering the performance so that runtime is close to T_i". The
 * DVFS model exposes the frequency levels a GPU can run at and how
 * each level reshapes the GpuSpec: clock and compute throughput scale
 * with f, dynamic energy per FLOP with f^2 (voltage tracks
 * frequency), SM static power with f (leakage falls with voltage),
 * while memory bandwidth is unaffected (separate memory clock).
 */

#ifndef PCNN_GPU_DVFS_HH
#define PCNN_GPU_DVFS_HH

#include <vector>

#include "gpu/gpu_spec.hh"

namespace pcnn {

/** DVFS view over one GPU. */
class DvfsModel
{
  public:
    /** Bind the nominal (level 1.0) specification. */
    explicit DvfsModel(GpuSpec nominal);

    /**
     * Supported frequency levels as fractions of nominal, ascending.
     * The top level is always 1.0.
     */
    static const std::vector<double> &levels();

    /** The nominal specification. */
    const GpuSpec &nominal() const { return base; }

    /**
     * The specification at a frequency fraction.
     * @param level one of levels() (asserted)
     */
    GpuSpec at(double level) const;

    /**
     * Lowest level whose slowdown keeps a nominal-frequency latency
     * within a budget: compute time scales as 1/f (memory-bound time
     * does not shrink, so this is conservative).
     *
     * @param nominal_time_s latency measured/predicted at level 1.0
     * @param budget_s the user's time requirement
     * @return the chosen level (1.0 when the budget is already tight)
     */
    double levelForBudget(double nominal_time_s, double budget_s) const;

  private:
    GpuSpec base;
};

} // namespace pcnn

#endif // PCNN_GPU_DVFS_HH
