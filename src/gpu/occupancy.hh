/**
 * @file
 * CTA occupancy calculator (Eq. 5 extended).
 *
 * The paper's Eq. 5 bounds concurrent blocks by the register file;
 * Table IV additionally lists the shared-memory bound and takes the
 * min. We also apply the hardware thread and CTA-slot limits from
 * Table VI, which matter for small tiles.
 */

#ifndef PCNN_GPU_OCCUPANCY_HH
#define PCNN_GPU_OCCUPANCY_HH

#include <string>

#include "gpu/gpu_spec.hh"
#include "gpu/tile_config.hh"

namespace pcnn {

/** Which resource capped the occupancy. */
enum class OccLimit { Registers, SharedMem, Threads, CtaSlots };

/** Human-readable limit name. */
std::string occLimitName(OccLimit limit);

/** Occupancy of one kernel configuration on one GPU. */
struct Occupancy
{
    std::size_t ctasPerSm = 0; ///< resident CTAs per SM (the TLP)
    OccLimit limit = OccLimit::Registers;

    // Individual bounds, for Table IV style reporting.
    std::size_t byRegisters = 0;
    std::size_t bySharedMem = 0;
    std::size_t byThreads = 0;
    std::size_t byCtaSlots = 0;

    /** Device-wide concurrent blocks: Eq. 5's maxBlocks. */
    std::size_t maxBlocks(const GpuSpec &gpu) const;
};

/**
 * Compute occupancy for a tile executed with a (possibly reduced)
 * register budget per thread.
 *
 * @param gpu target architecture
 * @param tile SGEMM tiling
 * @param regs_per_thread registers per thread after any spilling;
 *        0 means the tile's natural demand
 */
Occupancy occupancy(const GpuSpec &gpu, const TileConfig &tile,
                    std::size_t regs_per_thread = 0);

} // namespace pcnn

#endif // PCNN_GPU_OCCUPANCY_HH
