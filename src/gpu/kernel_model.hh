/**
 * @file
 * Analytical model of a convolutional SGEMM kernel on a GPU.
 *
 * Implements the paper's equation set on one (GPU, tile, register
 * budget) triple: GridSize (Eq. 4), maxBlocks/occupancy (Eq. 5),
 * Util (Eq. 6), register-spill cost (Eq. 7), nInvocations (Eq. 8),
 * rEC (Eq. 9), the S_kernel selection metric (Eq. 10), and the time
 * model (Eq. 12) extended with a latency-hiding term and a memory
 * bandwidth bound so the model is predictive across all four
 * platforms, not just compute-bound ones.
 */

#ifndef PCNN_GPU_KERNEL_MODEL_HH
#define PCNN_GPU_KERNEL_MODEL_HH

#include <cstddef>

#include "gpu/gpu_spec.hh"
#include "gpu/occupancy.hh"
#include "gpu/tile_config.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

/** A concrete kernel choice: tile plus a register budget. */
struct KernelConfig
{
    TileConfig tile;
    /// registers per thread; 0 or >= naturalRegs means unspilled
    std::size_t regsPerThread = 0;

    /** Effective register count after clamping. */
    std::size_t effectiveRegs() const;

    /** "128x64@r79" display form. */
    std::string str() const;
};

/** Register-spill accounting (Eq. 7 inputs and result). */
struct SpillInfo
{
    std::size_t spilledRegs = 0;
    std::size_t toSharedMem = 0; ///< spills landing in spare shmem
    std::size_t toGlobal = 0;    ///< spills landing in global memory

    // Extra instructions per K-tile per thread.
    double extraLds = 0.0;
    double extraLdg = 0.0;
    double extraOther = 0.0;

    /**
     * Eq. 7: Spill_cost = N_global*Cost_global + N_shm*Cost_shm +
     * N_others, with Cost_global = 8 and Cost_shm = 1 issue slots.
     */
    double cost() const;
};

/**
 * Analytical SGEMM kernel model bound to one GPU and one kernel
 * configuration. GEMM shapes are passed per query so one model
 * instance can serve a whole layer sweep.
 */
class SgemmModel
{
  public:
    /**
     * @param gpu target architecture
     * @param cfg tile and register budget; must fit at least one CTA
     */
    SgemmModel(GpuSpec gpu, KernelConfig cfg);

    /** Bound GPU. */
    const GpuSpec &gpu() const { return gpuSpec; }

    /** Bound kernel configuration. */
    const KernelConfig &config() const { return kcfg; }

    /** Occupancy at the configured register budget. */
    const Occupancy &occ() const { return occup; }

    /** Spill accounting at the configured register budget. */
    const SpillInfo &spill() const { return spillInfo; }

    /** Inner-loop instruction mix including spill traffic (Fig. 6). */
    const InstMix &instMix() const { return mix; }

    /** FFMA fraction of issued instructions. */
    double density() const { return mix.density(); }

    /** Global traffic per useful FLOP, including spilled registers. */
    double trafficBytesPerFlop() const { return bytesPerUsefulFlop; }

    /**
     * FFMA share of weighted issue slots (global accesses weighted by
     * ldgIssueWeight); the throughput density used for timing and by
     * the CTA-level simulator.
     */
    double timingDensity() const { return issueDensity; }

    /** Eq. 4: ceil(M/m) * ceil(N/n) CTAs. */
    std::size_t gridSize(const GemmShape &shape) const;

    /** Eq. 6: GridSize / (ceil(GridSize/maxBlocks) * maxBlocks). */
    double util(const GemmShape &shape) const;

    /** Eq. 9: useful fraction of the computed (padded) matrix. */
    double rEC(const GemmShape &shape) const;

    /**
     * Eq. 8: invocation count with a given TLP and SM allocation.
     * @param tlp CTAs per SM (0 = occupancy limit)
     * @param sms SMs used (0 = whole GPU)
     */
    std::size_t nInvocations(const GemmShape &shape, std::size_t tlp = 0,
                             std::size_t sms = 0) const;

    /**
     * Eq. 10 selection metric, smaller is better:
     * (1 - rEC) * Spill_cost * nInvocations, with small floors on the
     * first two factors so a perfect tile or an unspilled kernel does
     * not collapse the product to zero.
     */
    double skernel(const GemmShape &shape, std::size_t tlp = 0,
                   std::size_t sms = 0) const;

    /**
     * Predicted execution time of one SGEMM in seconds (Eq. 12
     * extended): compute-bound term with latency-hiding, bounded
     * below by the memory-traffic time, plus a launch overhead.
     *
     * @param shape the GEMM
     * @param sms SMs allocated (0 = whole GPU)
     * @param tlp CTAs per SM cap (0 = occupancy limit)
     */
    double kernelTime(const GemmShape &shape, std::size_t sms = 0,
                      std::size_t tlp = 0) const;

    /** Eq. 3: achieved/peak throughput at a given execution time. */
    double cpE(const GemmShape &shape, double time_s) const;

    /** FLOPs per CTA (2*m*n*K), including padded output positions. */
    double ctaWorkFlops(const GemmShape &shape) const;

    /** Kernel launch overhead folded into every kernelTime. */
    static constexpr double launchOverheadS = 8e-6;

    /** Threads per SM needed to fully hide pipeline latency. */
    static constexpr double hideThreads = 512.0;

    /** Throughput floor from ILP when very few threads are resident. */
    static constexpr double latencyFloor = 0.35;

    /** Issue-slot weight of one global memory instruction. */
    static constexpr double ldgIssueWeight = 4.0;

  private:
    GpuSpec gpuSpec;
    KernelConfig kcfg;
    Occupancy occup;
    SpillInfo spillInfo;
    InstMix mix;
    double bytesPerUsefulFlop = 0.0;
    double issueDensity = 0.0; ///< ldg-weighted density used in timing
};

} // namespace pcnn

#endif // PCNN_GPU_KERNEL_MODEL_HH
