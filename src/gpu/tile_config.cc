#include "gpu/tile_config.hh"

#include <cmath>

#include "common/logging.hh"

namespace pcnn {

std::size_t
TileConfig::accumulatorsPerThread() const
{
    pcnn_assert(blockSize > 0 && (m * n) % blockSize == 0,
                "tile ", str(), ": m*n must be a multiple of blockSize");
    return m * n / blockSize;
}

std::string
TileConfig::str() const
{
    return std::to_string(m) + "x" + std::to_string(n);
}

double
InstMix::density() const
{
    const double t = total();
    return t > 0.0 ? ffma / t : 0.0;
}

InstMix
baseInstMix(const TileConfig &tile)
{
    const double acc = double(tile.accumulatorsPerThread());
    const double ks = double(tile.kStep);
    InstMix mix;
    // Each thread performs one FMA per accumulator per k.
    mix.ffma = acc * ks;
    // The CTA stages (m+n)*kStep operands from global memory per
    // K-tile, spread across blockSize threads.
    mix.ldg = double(tile.m + tile.n) * ks / double(tile.blockSize);
    // Each thread reloads its row/column fragments from shared
    // memory every k: ~2*sqrt(acc) values.
    mix.lds = 2.0 * std::sqrt(acc) * ks * tile.ldsFactor;
    mix.other = tile.otherInstsPerKtile;
    return mix;
}

double
bytesPerFlop(const TileConfig &tile)
{
    // Per K-tile: 4*(m+n)*kStep bytes fetched, 2*m*n*kStep FLOPs.
    return 2.0 * double(tile.m + tile.n) / (double(tile.m) * double(tile.n));
}

const std::vector<TileConfig> &
tileCatalogue()
{
    static const std::vector<TileConfig> catalogue = [] {
        std::vector<TileConfig> v;
        // m, n, blockSize, kStep, naturalRegs, sharedMemBytes,
        // other, ldsFactor. Register and shared-memory figures for
        // 128x64, 64x64 and 32x32 are the characterized values in the
        // paper's Table IV; 128x128's 127 registers is the curReg of
        // Fig. 9.
        v.push_back({128, 128, 256, 8, 127, 16640, 8.0, 1.0});
        v.push_back({128, 64, 128, 8, 120, 12544, 8.0, 1.0});
        v.push_back({128, 32, 128, 8, 84, 10496, 8.0, 1.0});
        v.push_back({64, 64, 256, 8, 79, 8468, 8.0, 1.0});
        v.push_back({64, 32, 128, 8, 56, 6400, 8.0, 1.0});
        v.push_back({32, 32, 64, 8, 48, 2304, 8.0, 1.0});
        return v;
    }();
    return catalogue;
}

TileConfig
tileByName(std::size_t m, std::size_t n)
{
    for (const TileConfig &t : tileCatalogue())
        if (t.m == m && t.n == n)
            return t;
    pcnn_fatal("no catalogue tile ", m, "x", n);
}

} // namespace pcnn
