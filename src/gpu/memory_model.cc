#include "gpu/memory_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

namespace {

/** im2col element count of one layer for one image: K * W_o H_o. */
double
colElems(const ConvSpec &c)
{
    // The column buffer is per group and reused across groups.
    const double k =
        double(c.kernel) * double(c.kernel) * double(c.inC / c.groups);
    return k * double(c.outH()) * double(c.outW());
}

} // namespace

double
weightBytes(const NetDescriptor &net)
{
    return 4.0 * double(net.weightCount());
}

double
activationBytes(const NetDescriptor &net, std::size_t batch)
{
    pcnn_assert(batch >= 1, "batch must be positive");
    return 4.0 * double(net.activationElemsPerImage()) * double(batch);
}

double
maxSingleImageColBytes(const NetDescriptor &net)
{
    double mx = 0.0;
    for (const auto &c : net.convs)
        mx = std::max(mx, colElems(c));
    return 4.0 * mx;
}

double
maxBatchedColBytes(const NetDescriptor &net, std::size_t batch)
{
    return maxSingleImageColBytes(net) * double(batch);
}

double
sumCappedBatchedColBytes(const NetDescriptor &net, std::size_t batch,
                         double cap_bytes)
{
    double total = 0.0;
    for (const auto &c : net.convs)
        total += std::min(4.0 * colElems(c) * double(batch), cap_bytes);
    return total;
}

double
usableBytes(const GpuSpec &gpu)
{
    // Discrete boards lose ~10% to the driver/context; the
    // shared-memory TX1 preset already subtracts the CPU share, so it
    // keeps a higher fraction of its (reduced) dramMB.
    const double fraction = gpu.name == "TX1" || gpu.name == "970m"
                                ? 0.95
                                : 0.90;
    return gpu.dramBytes() * fraction;
}

bool
fits(const GpuSpec &gpu, const MemoryFootprint &fp)
{
    return fp.total() <= usableBytes(gpu);
}

} // namespace pcnn
