#include "gpu/dvfs.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pcnn {

DvfsModel::DvfsModel(GpuSpec nominal) : base(std::move(nominal)) {}

const std::vector<double> &
DvfsModel::levels()
{
    static const std::vector<double> steps{0.5, 0.62, 0.75, 0.87, 1.0};
    return steps;
}

GpuSpec
DvfsModel::at(double level) const
{
    const auto &ls = levels();
    pcnn_assert(std::any_of(ls.begin(), ls.end(),
                            [&](double l) {
                                return std::abs(l - level) < 1e-9;
                            }),
                "unsupported DVFS level ", level);
    GpuSpec g = base;
    g.coreClockMHz *= level;
    // Voltage tracks frequency: dynamic CV^2 energy scales ~f^2,
    // leakage ~f. The board's base power is uncore and unscaled.
    g.dynEnergyPerFlopJ *= level * level;
    g.smStaticPowerW *= level;
    if (std::abs(level - 1.0) > 1e-9)
        g.name = base.name + "@" + std::to_string(int(level * 100)) +
                 "%";
    return g;
}

double
DvfsModel::levelForBudget(double nominal_time_s,
                          double budget_s) const
{
    pcnn_assert(nominal_time_s > 0.0, "nominal time must be positive");
    for (double level : levels()) {
        if (nominal_time_s / level <= budget_s)
            return level;
    }
    return 1.0;
}

} // namespace pcnn
