/**
 * @file
 * GPU architecture descriptions.
 *
 * Carries every hardware parameter the paper's analytical models and
 * the CTA-level simulator consume. Presets reproduce Table II
 * (platform survey) and Table VI (GPGPU-Sim parameters): Kepler K20c,
 * Maxwell Titan X, GTX 970m and Jetson TX1.
 */

#ifndef PCNN_GPU_GPU_SPEC_HH
#define PCNN_GPU_GPU_SPEC_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pcnn {

/** Static description of one GPU microarchitecture + board. */
struct GpuSpec
{
    std::string name;     ///< e.g. "K20c"
    std::string platform; ///< Server / Desktop / Notebook / Mobile

    // Compute resources.
    std::size_t numSMs = 0;
    std::size_t coresPerSM = 0;
    double coreClockMHz = 0.0;

    // Per-SM occupancy limits (Table VI).
    std::size_t registersPerSM = 65536;  ///< 32-bit registers
    std::size_t sharedMemPerSM = 49152;  ///< bytes
    std::size_t maxThreadsPerSM = 2048;
    std::size_t maxCtasPerSM = 16;
    std::size_t maxThreadsPerCta = 1024;

    // Memory system.
    double dramMB = 0.0;
    double memBandwidthGBs = 0.0;

    // Power model (GPUWattch-style decomposition).
    double basePowerW = 0.0;        ///< board power independent of SMs
    double smStaticPowerW = 0.0;    ///< per active (non-gated) SM
    double dynEnergyPerFlopJ = 0.0; ///< switching energy per FLOP

    /**
     * Peak single-precision throughput in FLOP/s: each core retires
     * one fused multiply-add (2 FLOPs) per cycle (Eq. 3 denominator).
     */
    double peakFlops() const;

    /** Peak FLOP/s of a single SM. */
    double peakFlopsPerSM() const;

    /** Usable device memory in bytes. */
    double dramBytes() const { return dramMB * 1024.0 * 1024.0; }

    /** Memory bandwidth in bytes per second. */
    double bandwidthBytes() const { return memBandwidthGBs * 1e9; }
};

/** NVIDIA Tesla K20c (Kepler GK110), the paper's server GPU. */
GpuSpec k20c();

/** NVIDIA GeForce GTX Titan X (Maxwell GM200), desktop GPU. */
GpuSpec titanX();

/** NVIDIA GeForce GTX 970m (Maxwell GM204), notebook GPU. */
GpuSpec gtx970m();

/** NVIDIA Jetson TX1 (Maxwell GM20B), mobile GPU. */
GpuSpec jetsonTx1();

/** All four platforms in Table II order. */
std::vector<GpuSpec> allGpus();

/** Look up a preset by name; fatal on unknown names. */
GpuSpec gpuByName(const std::string &name);

} // namespace pcnn

#endif // PCNN_GPU_GPU_SPEC_HH
