#include "gpu/occupancy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

std::string
occLimitName(OccLimit limit)
{
    switch (limit) {
      case OccLimit::Registers:
        return "registers";
      case OccLimit::SharedMem:
        return "shared-mem";
      case OccLimit::Threads:
        return "threads";
      case OccLimit::CtaSlots:
        return "cta-slots";
    }
    pcnn_panic("unknown OccLimit");
}

std::size_t
Occupancy::maxBlocks(const GpuSpec &gpu) const
{
    return ctasPerSm * gpu.numSMs;
}

Occupancy
occupancy(const GpuSpec &gpu, const TileConfig &tile,
          std::size_t regs_per_thread)
{
    const std::size_t regs =
        regs_per_thread == 0 ? tile.naturalRegs : regs_per_thread;
    pcnn_assert(regs > 0, "kernel needs at least one register");
    pcnn_assert(tile.blockSize <= gpu.maxThreadsPerCta, "tile ",
                tile.str(), " block size exceeds hardware CTA limit");

    Occupancy o;
    o.byRegisters = gpu.registersPerSM / (tile.blockSize * regs);
    o.bySharedMem = tile.sharedMemBytes > 0
                        ? gpu.sharedMemPerSM / tile.sharedMemBytes
                        : gpu.maxCtasPerSM;
    o.byThreads = gpu.maxThreadsPerSM / tile.blockSize;
    o.byCtaSlots = gpu.maxCtasPerSM;

    o.ctasPerSm = std::min({o.byRegisters, o.bySharedMem, o.byThreads,
                            o.byCtaSlots});
    if (o.ctasPerSm == o.byRegisters)
        o.limit = OccLimit::Registers;
    if (o.ctasPerSm == o.bySharedMem)
        o.limit = OccLimit::SharedMem;
    if (o.ctasPerSm == o.byThreads)
        o.limit = OccLimit::Threads;
    if (o.ctasPerSm == o.byCtaSlots)
        o.limit = OccLimit::CtaSlots;
    // Prefer reporting the paper's two interesting limits when tied.
    if (o.ctasPerSm == o.byRegisters)
        o.limit = OccLimit::Registers;
    return o;
}

} // namespace pcnn
