#include "gpu/kernel_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pcnn {

std::size_t
KernelConfig::effectiveRegs() const
{
    if (regsPerThread == 0 || regsPerThread >= tile.naturalRegs)
        return tile.naturalRegs;
    return regsPerThread;
}

std::string
KernelConfig::str() const
{
    return tile.str() + "@r" + std::to_string(effectiveRegs());
}

double
SpillInfo::cost() const
{
    constexpr double cost_global = 8.0;
    constexpr double cost_shm = 1.0;
    return extraLdg * cost_global + extraLds * cost_shm + extraOther;
}

SgemmModel::SgemmModel(GpuSpec gpu, KernelConfig cfg)
    : gpuSpec(std::move(gpu)), kcfg(cfg)
{
    kcfg.regsPerThread = kcfg.effectiveRegs();
    occup = occupancy(gpuSpec, kcfg.tile, kcfg.regsPerThread);
    pcnn_assert(occup.ctasPerSm >= 1, "kernel ", kcfg.str(),
                " cannot fit a single CTA on ", gpuSpec.name);

    // ---- Spill model (Section IV.B.2) -------------------------------
    // Spilled registers go to *spare* shared memory first (free TLP,
    // cheap access), then to global memory.
    const TileConfig &tile = kcfg.tile;
    spillInfo.spilledRegs = tile.naturalRegs - kcfg.regsPerThread;
    if (spillInfo.spilledRegs > 0) {
        const std::size_t shm_per_cta =
            gpuSpec.sharedMemPerSM / occup.ctasPerSm;
        const std::size_t spare_bytes =
            shm_per_cta > tile.sharedMemBytes
                ? shm_per_cta - tile.sharedMemBytes
                : 0;
        const std::size_t spare_regs =
            spare_bytes / (4 * tile.blockSize);
        spillInfo.toSharedMem =
            std::min(spillInfo.spilledRegs, spare_regs);
        spillInfo.toGlobal =
            spillInfo.spilledRegs - spillInfo.toSharedMem;

        // Each spilled register costs one store + one reload per
        // K-tile, plus address computation (Eq. 7's N_others).
        spillInfo.extraLds = 2.0 * double(spillInfo.toSharedMem);
        spillInfo.extraLdg = 2.0 * double(spillInfo.toGlobal);
        spillInfo.extraOther = 0.5 * double(spillInfo.spilledRegs);
    }

    // ---- Instruction mix and traffic --------------------------------
    mix = baseInstMix(tile);
    mix.lds += spillInfo.extraLds;
    mix.ldg += spillInfo.extraLdg;
    mix.other += spillInfo.extraOther;

    const double flops_per_thread_ktile =
        2.0 * double(tile.accumulatorsPerThread()) * double(tile.kStep);
    bytesPerUsefulFlop =
        bytesPerFlop(tile) +
        4.0 * spillInfo.extraLdg / flops_per_thread_ktile;

    const double weighted = mix.ffma + mix.lds + mix.other +
                            mix.ldg * ldgIssueWeight;
    issueDensity = weighted > 0.0 ? mix.ffma / weighted : 0.0;
}

std::size_t
SgemmModel::gridSize(const GemmShape &shape) const
{
    pcnn_assert(shape.m > 0 && shape.n > 0 && shape.k > 0,
                "degenerate GEMM shape");
    const TileConfig &t = kcfg.tile;
    return ((shape.m + t.m - 1) / t.m) * ((shape.n + t.n - 1) / t.n);
}

double
SgemmModel::util(const GemmShape &shape) const
{
    const std::size_t grid = gridSize(shape);
    const std::size_t max_blocks = occup.maxBlocks(gpuSpec);
    const std::size_t cycles = (grid + max_blocks - 1) / max_blocks;
    return double(grid) / (double(cycles) * double(max_blocks));
}

double
SgemmModel::rEC(const GemmShape &shape) const
{
    const TileConfig &t = kcfg.tile;
    const double padded = double((shape.m + t.m - 1) / t.m) *
                          double((shape.n + t.n - 1) / t.n) *
                          double(t.m) * double(t.n);
    return double(shape.m) * double(shape.n) / padded;
}

std::size_t
SgemmModel::nInvocations(const GemmShape &shape, std::size_t tlp,
                         std::size_t sms) const
{
    if (tlp == 0)
        tlp = occup.ctasPerSm;
    if (sms == 0)
        sms = gpuSpec.numSMs;
    pcnn_assert(tlp >= 1 && sms >= 1, "need at least one CTA slot");
    const std::size_t per_wave = tlp * sms;
    return (gridSize(shape) + per_wave - 1) / per_wave;
}

double
SgemmModel::skernel(const GemmShape &shape, std::size_t tlp,
                    std::size_t sms) const
{
    // Floors keep the Eq. 10 product meaningful when a factor is
    // exactly zero (perfect tiling or no spilling).
    const double waste = std::max(1.0 - rEC(shape), 0.01);
    const double spill_cost = spillInfo.cost() + 1.0;
    return waste * spill_cost * double(nInvocations(shape, tlp, sms));
}

double
SgemmModel::ctaWorkFlops(const GemmShape &shape) const
{
    const TileConfig &t = kcfg.tile;
    return 2.0 * double(t.m) * double(t.n) * double(shape.k);
}

double
SgemmModel::kernelTime(const GemmShape &shape, std::size_t sms,
                       std::size_t tlp) const
{
    if (tlp == 0)
        tlp = occup.ctasPerSm;
    tlp = std::min(tlp, occup.ctasPerSm);
    if (sms == 0)
        sms = gpuSpec.numSMs;
    sms = std::min(sms, gpuSpec.numSMs);

    const std::size_t grid = gridSize(shape);
    const std::size_t busiest = (grid + sms - 1) / sms;
    const std::size_t resident = std::min<std::size_t>(tlp, busiest);

    const double lat_factor = std::clamp(
        double(resident * kcfg.tile.blockSize) / hideThreads,
        latencyFloor, 1.0);
    const double sm_throughput =
        gpuSpec.peakFlopsPerSM() * issueDensity * lat_factor;
    const double compute_time =
        double(busiest) * ctaWorkFlops(shape) / sm_throughput;

    const double traffic = double(grid) * ctaWorkFlops(shape) *
                           bytesPerUsefulFlop;
    const double bw_time = traffic / gpuSpec.bandwidthBytes();

    return std::max(compute_time, bw_time) + launchOverheadS;
}

double
SgemmModel::cpE(const GemmShape &shape, double time_s) const
{
    pcnn_assert(time_s > 0.0, "cpE needs a positive time");
    return shape.flops() / time_s / gpuSpec.peakFlops();
}

} // namespace pcnn
