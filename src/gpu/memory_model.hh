/**
 * @file
 * GPU memory footprint model.
 *
 * CNN inference is memory-intensive (Section III.D.3): device memory
 * holds the trained weights, every layer's activations for the whole
 * batch, and library-specific workspace (im2col buffers). This model
 * decides the out-of-memory failures of Table III and bounds the
 * batch-size selection of the offline compiler.
 */

#ifndef PCNN_GPU_MEMORY_MODEL_HH
#define PCNN_GPU_MEMORY_MODEL_HH

#include <cstddef>

#include "gpu/gpu_spec.hh"
#include "nn/model_zoo.hh"

namespace pcnn {

/** Byte-level footprint decomposition of one deployment. */
struct MemoryFootprint
{
    double weightBytes = 0.0;
    double activationBytes = 0.0;
    double workspaceBytes = 0.0;

    /** Total device bytes required. */
    double total() const
    {
        return weightBytes + activationBytes + workspaceBytes;
    }
};

/** Bytes of trained parameters (fp32). */
double weightBytes(const NetDescriptor &net);

/** Bytes of all layer activations for a batch (fp32, all blobs live). */
double activationBytes(const NetDescriptor &net, std::size_t batch);

/**
 * Largest single-image im2col buffer across layers — the Caffe
 * (cuBLAS) workspace policy: one shared column buffer, reused per
 * image and per layer.
 */
double maxSingleImageColBytes(const NetDescriptor &net);

/**
 * Largest whole-batch im2col buffer across layers — the policy of
 * batched-GEMM libraries that materialize the lowered matrix.
 */
double maxBatchedColBytes(const NetDescriptor &net, std::size_t batch);

/**
 * Sum over layers of the whole-batch im2col buffer, with each layer
 * capped at `cap_bytes` — the per-layer-workspace policy of
 * framework-integrated cuDNN, where every conv layer owns its own
 * bounded workspace.
 */
double sumCappedBatchedColBytes(const NetDescriptor &net,
                                std::size_t batch, double cap_bytes);

/**
 * Device memory a deployment may use. A fraction of DRAM is reserved
 * for the driver/display (and the CPU on the shared-memory TX1).
 */
double usableBytes(const GpuSpec &gpu);

/** True when the footprint fits the GPU. */
bool fits(const GpuSpec &gpu, const MemoryFootprint &fp);

} // namespace pcnn

#endif // PCNN_GPU_MEMORY_MODEL_HH
