/**
 * @file
 * SGEMM sub-matrix (tile) catalogue and instruction-mix model.
 *
 * The paper identifies the sub-matrix size and the registers per
 * thread as the two parameters that dominate convolutional kernel
 * performance (Section III.D). The catalogue entries below carry the
 * characterized values from the paper's Table IV and Fig. 9 (e.g.
 * 64x64 @ 256 threads needs 79 registers and 8468 B of shared
 * memory); tiles the paper does not characterize use the Volkov-style
 * resource formulas.
 */

#ifndef PCNN_GPU_TILE_CONFIG_HH
#define PCNN_GPU_TILE_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pcnn {

/** One SGEMM tiling: the unit of work a CTA computes. */
struct TileConfig
{
    std::size_t m = 0;         ///< sub-matrix rows
    std::size_t n = 0;         ///< sub-matrix cols
    std::size_t blockSize = 0; ///< threads per CTA
    std::size_t kStep = 8;     ///< K-loop tile depth
    std::size_t naturalRegs = 0;    ///< registers/thread, unspilled
    std::size_t sharedMemBytes = 0; ///< shared memory per CTA
    /// instruction overhead per K-tile per thread (loop, addressing,
    /// barriers); hand-written assembly kernels have less
    double otherInstsPerKtile = 8.0;
    /// shared-memory instruction scale; assembly kernels vectorize
    /// fragment loads and get < 1.0
    double ldsFactor = 1.0;

    /** Accumulators per thread: m*n / blockSize. */
    std::size_t accumulatorsPerThread() const;

    /** "128x64" display form. */
    std::string str() const;

    bool operator==(const TileConfig &o) const = default;
};

/**
 * Instruction mix of a kernel's inner loop, per K-tile per thread.
 * This is the Fig. 6 breakdown: the FFMA fraction is the kernel's
 * computation density.
 */
struct InstMix
{
    double ffma = 0.0;  ///< fused multiply-adds
    double ldg = 0.0;   ///< global memory instructions
    double lds = 0.0;   ///< shared memory instructions
    double other = 0.0; ///< control/addressing/barrier

    /** Total issued instructions. */
    double total() const { return ffma + ldg + lds + other; }

    /** FFMA / total — the computation density of Fig. 6. */
    double density() const;
};

/**
 * Instruction mix of a tile's inner loop before any register
 * spilling (spills are added by the kernel model, Eq. 7).
 */
InstMix baseInstMix(const TileConfig &tile);

/**
 * Global memory traffic per FLOP of useful work, in bytes:
 * 2(m+n)/(m*n) for a shared-memory staged kernel. Determines when a
 * tile becomes bandwidth-bound (small tiles on TX1).
 */
double bytesPerFlop(const TileConfig &tile);

/**
 * The common CNN tile catalogue: 128x128, 128x64, 128x32 (the sizes
 * Nervana ships, Section IV.B.2) plus the 64x64 and 32x32 tiles
 * cuBLAS/cuDNN use in Table IV.
 */
const std::vector<TileConfig> &tileCatalogue();

/** Look up a catalogue tile by its m x n size; fatal if absent. */
TileConfig tileByName(std::size_t m, std::size_t n);

} // namespace pcnn

#endif // PCNN_GPU_TILE_CONFIG_HH
