/**
 * @file
 * GPUWattch-style energy accounting.
 *
 * Energy = base board power * time + per-SM static power * time for
 * every non-gated SM + dynamic switching energy per FLOP. Power
 * gating an SM (the P-CNN runtime does this for SMs outside optSM)
 * removes its static term entirely.
 */

#ifndef PCNN_GPU_SIM_ENERGY_MODEL_HH
#define PCNN_GPU_SIM_ENERGY_MODEL_HH

#include <cstddef>

#include "gpu/gpu_spec.hh"

namespace pcnn {

/** Decomposed energy of an execution interval. */
struct EnergyBreakdown
{
    double baseJ = 0.0;    ///< board/uncore energy
    double staticJ = 0.0;  ///< leakage of powered SMs
    double dynamicJ = 0.0; ///< switching energy of executed FLOPs

    /** Total joules. */
    double total() const { return baseJ + staticJ + dynamicJ; }

    /** Accumulate another interval. */
    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
};

/** Energy model bound to one GPU. */
class EnergyModel
{
  public:
    /** Bind the GPU whose power parameters are used. */
    explicit EnergyModel(GpuSpec gpu);

    /**
     * Energy of one interval.
     * @param time_s wall-clock duration
     * @param powered_sms SMs that are not power gated
     * @param flops FLOPs executed during the interval
     */
    EnergyBreakdown interval(double time_s, std::size_t powered_sms,
                             double flops) const;

    /** Average power of an interval in watts. */
    double averagePowerW(const EnergyBreakdown &e, double time_s) const;

  private:
    GpuSpec gpuSpec;
};

} // namespace pcnn

#endif // PCNN_GPU_SIM_ENERGY_MODEL_HH
