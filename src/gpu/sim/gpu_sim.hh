/**
 * @file
 * Event-driven SM/CTA-level GPU simulator.
 *
 * Plays the role GPGPU-Sim plays in the paper's evaluation (Section
 * V): kernels are grids of CTAs with a fixed work quantum; resident
 * CTAs share an SM's issue bandwidth; a pluggable CTA scheduler (RR
 * or PSM) refills freed slots; energy is accounted per interval with
 * optional power gating of unused SMs.
 */

#ifndef PCNN_GPU_SIM_GPU_SIM_HH
#define PCNN_GPU_SIM_GPU_SIM_HH

#include <string>
#include <vector>

#include "gpu/gpu_spec.hh"
#include "gpu/sim/cta_scheduler.hh"
#include "gpu/sim/energy_model.hh"

namespace pcnn {

/** One kernel as the simulator sees it. */
struct KernelDesc
{
    std::string name;
    std::size_t gridSize = 0;    ///< CTAs per launch
    double ctaWorkFlops = 0.0;   ///< FLOPs per CTA (2*m*n*K)
    std::size_t blockSize = 0;   ///< threads per CTA
    double issueDensity = 0.0;   ///< FFMA share of issue slots
    double bytesPerFlop = 0.0;   ///< global traffic per FLOP
    /// identical sequential launches (conv groups, per-image loops)
    std::size_t launches = 1;
};

/** How a kernel is scheduled onto the GPU. */
struct LaunchConfig
{
    SchedKind scheduler = SchedKind::RoundRobin;
    std::size_t tlpLimit = 1;    ///< CTAs per SM (occupancy or optTLP)
    std::size_t smsAllowed = 0;  ///< PSM SM budget (0 = all SMs)
    /// power gate the SMs this launch never occupies
    bool powerGateIdle = false;
};

/** Outcome of one simulated kernel (or sequence). */
struct SimResult
{
    double timeS = 0.0;
    double flops = 0.0;
    EnergyBreakdown energy;
    std::size_t smsUsed = 0;      ///< SMs that ran at least one CTA
    std::size_t smsPowered = 0;   ///< SMs whose static power accrued
    std::vector<double> smBusyS;  ///< per-SM busy time

    /** Aggregate another kernel's result (sequential execution). */
    void accumulate(const SimResult &o);

    /** Average power over the simulated interval. */
    double averagePowerW() const;
};

/** One kernel pinned to an SM range for spatial co-location. */
struct PartitionedKernel
{
    KernelDesc kernel;
    std::size_t smBegin = 0; ///< first SM of the partition
    std::size_t smEnd = 0;   ///< one past the last SM
    std::size_t tlpLimit = 1;
};

/** Outcome of a spatially partitioned multi-kernel run. */
struct PartitionedResult
{
    std::vector<double> kernelTimeS; ///< finish time per kernel
    double timeS = 0.0;              ///< overall (max) finish time
    double flops = 0.0;
    EnergyBreakdown energy;
    std::size_t smsPowered = 0;
};

/**
 * The simulator. Stateless between runs; bind once per GPU.
 */
class GpuSim
{
  public:
    /** Bind the simulated architecture. */
    explicit GpuSim(GpuSpec gpu);

    /** Simulated GPU. */
    const GpuSpec &gpu() const { return gpuSpec; }

    /**
     * Simulate one kernel (all its launches) under a launch config.
     * Bandwidth-bound kernels are stretched to their traffic time.
     */
    SimResult runKernel(const KernelDesc &kernel,
                        const LaunchConfig &cfg) const;

    /**
     * Simulate a sequence of kernels (e.g. the conv layers of one
     * inference) and aggregate time/energy.
     */
    SimResult runSequence(
        const std::vector<std::pair<KernelDesc, LaunchConfig>> &seq)
        const;

    /**
     * Account an analytically-timed interval (memory-bound fc layers,
     * element-wise ops) so sequences carry the right energy.
     * @param powered_sms SMs left powered during the interval
     * @param flops work executed, for dynamic energy
     */
    SimResult fixedInterval(double time_s, std::size_t powered_sms,
                            double flops = 0.0) const;

    /**
     * Spatial multitasking (Section III.D.2 / Fig. 7): run several
     * kernels concurrently, each confined to a disjoint SM range.
     * Each kernel's traffic is bounded by its share of memory
     * bandwidth (proportional to its SM share).
     *
     * @param kernels disjoint partitions; ranges must not overlap
     * @param gate_unused power gate SMs outside every partition
     */
    PartitionedResult
    runPartitioned(const std::vector<PartitionedKernel> &kernels,
                   bool gate_unused = true) const;

  private:
    /** Simulate a single launch; returns time and per-SM busy time. */
    SimResult runOneLaunch(const KernelDesc &kernel,
                           const LaunchConfig &cfg) const;

    GpuSpec gpuSpec;
    EnergyModel energy;
};

} // namespace pcnn

#endif // PCNN_GPU_SIM_GPU_SIM_HH
