#include "gpu/sim/cta_scheduler.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace pcnn {

std::string
schedKindName(SchedKind kind)
{
    switch (kind) {
      case SchedKind::RoundRobin:
        return "RR";
      case SchedKind::PrioritySM:
        return "PSM";
    }
    pcnn_panic("unknown SchedKind");
}

std::size_t
RoundRobinScheduler::place(const std::vector<std::size_t> &resident,
                           std::size_t tlp_limit)
{
    const std::size_t n = resident.size();
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t sm = (cursor + step) % n;
        if (resident[sm] < tlp_limit) {
            cursor = (sm + 1) % n;
            return sm;
        }
    }
    return noSm;
}

PrioritySmScheduler::PrioritySmScheduler(std::size_t sms_allowed)
    : allowed(sms_allowed)
{
    PCNN_CHECK_GE(allowed, 1u, "PSM needs at least one SM");
}

std::size_t
PrioritySmScheduler::place(const std::vector<std::size_t> &resident,
                           std::size_t tlp_limit)
{
    const std::size_t n = std::min(allowed, resident.size());
    for (std::size_t sm = 0; sm < n; ++sm)
        if (resident[sm] < tlp_limit)
            return sm;
    return noSm;
}

std::unique_ptr<CtaScheduler>
makeScheduler(SchedKind kind, std::size_t num_sms,
              std::size_t sms_allowed)
{
    switch (kind) {
      case SchedKind::RoundRobin:
        return std::make_unique<RoundRobinScheduler>();
      case SchedKind::PrioritySM:
        return std::make_unique<PrioritySmScheduler>(
            sms_allowed == 0 ? num_sms : sms_allowed);
    }
    pcnn_panic("unknown SchedKind");
}

} // namespace pcnn
