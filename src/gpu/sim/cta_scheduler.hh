/**
 * @file
 * CTA (thread block) placement policies.
 *
 * The paper contrasts the hardware's Round-Robin CTA scheduler with
 * its Priority-SM scheduler (Fig. 7): PSM packs CTAs onto the
 * lowest-numbered SMs up to the per-SM optTLP, achieving nearly the
 * same performance with half the SMs — the unused SMs can then be
 * power gated or given to other kernels.
 */

#ifndef PCNN_GPU_SIM_CTA_SCHEDULER_HH
#define PCNN_GPU_SIM_CTA_SCHEDULER_HH

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace pcnn {

/** Available placement policies. */
enum class SchedKind { RoundRobin, PrioritySM };

/** Display name of a policy. */
std::string schedKindName(SchedKind kind);

/**
 * Strategy interface: choose the SM for the next ready CTA.
 *
 * `resident` holds the current CTA count of every SM; an SM may
 * receive a CTA only while below `tlp_limit`. A scheduler may
 * restrict itself to a prefix of the SMs (PSM with optSM).
 */
class CtaScheduler
{
  public:
    virtual ~CtaScheduler() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /** Sentinel: no SM can accept a CTA right now. */
    static constexpr std::size_t noSm =
        std::numeric_limits<std::size_t>::max();

    /**
     * Pick the SM for the next CTA.
     * @param resident per-SM resident CTA counts
     * @param tlp_limit max CTAs per SM
     * @return SM index, or noSm when every eligible SM is full
     */
    virtual std::size_t place(const std::vector<std::size_t> &resident,
                              std::size_t tlp_limit) = 0;
};

/**
 * Hardware-style round robin: CTAs are dealt across all SMs in turn,
 * each SM filled to the occupancy limit (Section III.C).
 */
class RoundRobinScheduler : public CtaScheduler
{
  public:
    std::string name() const override { return "RR"; }
    std::size_t place(const std::vector<std::size_t> &resident,
                      std::size_t tlp_limit) override;

  private:
    std::size_t cursor = 0;
};

/**
 * Priority-SM: fill SM 0 to the TLP limit, then SM 1, and so on,
 * never touching SMs beyond `sms_allowed` — those can be gated.
 */
class PrioritySmScheduler : public CtaScheduler
{
  public:
    /** @param sms_allowed SM prefix this kernel may occupy (optSM) */
    explicit PrioritySmScheduler(std::size_t sms_allowed);

    std::string name() const override { return "PSM"; }
    std::size_t place(const std::vector<std::size_t> &resident,
                      std::size_t tlp_limit) override;

    /** SM prefix length this scheduler uses. */
    std::size_t smsAllowed() const { return allowed; }

  private:
    std::size_t allowed;
};

/**
 * Factory.
 * @param kind policy
 * @param num_sms total SMs on the GPU
 * @param sms_allowed SM budget for PSM (0 = all); ignored by RR
 */
std::unique_ptr<CtaScheduler> makeScheduler(SchedKind kind,
                                            std::size_t num_sms,
                                            std::size_t sms_allowed = 0);

} // namespace pcnn

#endif // PCNN_GPU_SIM_CTA_SCHEDULER_HH
