#include "gpu/sim/gpu_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "gpu/kernel_model.hh"

namespace pcnn {

void
SimResult::accumulate(const SimResult &o)
{
    timeS += o.timeS;
    flops += o.flops;
    energy += o.energy;
    smsUsed = std::max(smsUsed, o.smsUsed);
    smsPowered = std::max(smsPowered, o.smsPowered);
    if (smBusyS.size() < o.smBusyS.size())
        smBusyS.resize(o.smBusyS.size(), 0.0);
    for (std::size_t i = 0; i < o.smBusyS.size(); ++i)
        smBusyS[i] += o.smBusyS[i];
}

double
SimResult::averagePowerW() const
{
    return timeS > 0.0 ? energy.total() / timeS : 0.0;
}

GpuSim::GpuSim(GpuSpec gpu) : gpuSpec(gpu), energy(gpu) {}

SimResult
GpuSim::runOneLaunch(const KernelDesc &kernel,
                     const LaunchConfig &cfg) const
{
    pcnn_assert(kernel.gridSize >= 1 && kernel.ctaWorkFlops > 0.0,
                "kernel ", kernel.name, ": empty grid or work");
    pcnn_assert(cfg.tlpLimit >= 1, "kernel ", kernel.name,
                ": TLP limit must be >= 1");

    const std::size_t n_sms = gpuSpec.numSMs;
    auto sched = makeScheduler(cfg.scheduler, n_sms, cfg.smsAllowed);

    // Per-SM list of remaining-work values of resident CTAs.
    std::vector<std::vector<double>> resident(n_sms);
    std::vector<std::size_t> counts(n_sms, 0);
    std::vector<double> busy(n_sms, 0.0);
    std::vector<bool> touched(n_sms, false);

    std::size_t pending = kernel.gridSize;
    std::size_t in_flight = 0;
    std::size_t retired = 0;

    auto refill = [&]() {
        while (pending > 0) {
            const std::size_t sm = sched->place(counts, cfg.tlpLimit);
            if (sm == CtaScheduler::noSm)
                break;
            PCNN_DCHECK_LT(sm, n_sms, "scheduler placed CTA off-chip");
            PCNN_DCHECK_LT(counts[sm], cfg.tlpLimit,
                           "scheduler overfilled an SM");
            resident[sm].push_back(kernel.ctaWorkFlops);
            ++counts[sm];
            touched[sm] = true;
            --pending;
            ++in_flight;
        }
    };
    refill();
    pcnn_assert(in_flight > 0, "kernel ", kernel.name,
                ": scheduler placed no CTAs");

    // Per-SM throughput at a given resident count (latency hiding
    // improves with more resident threads, as in the kernel model).
    auto sm_rate = [&](std::size_t ctas) {
        if (ctas == 0)
            return 0.0;
        const double lat = std::clamp(
            double(ctas * kernel.blockSize) / SgemmModel::hideThreads,
            SgemmModel::latencyFloor, 1.0);
        return gpuSpec.peakFlopsPerSM() * kernel.issueDensity * lat;
    };

    double now = 0.0;
    while (in_flight > 0) {
        // Next event: the earliest CTA completion across all SMs. All
        // CTAs on one SM progress at rate(sm)/count each.
        double dt = std::numeric_limits<double>::infinity();
        for (std::size_t sm = 0; sm < n_sms; ++sm) {
            if (counts[sm] == 0)
                continue;
            const double per_cta =
                sm_rate(counts[sm]) / double(counts[sm]);
            const double least = *std::min_element(
                resident[sm].begin(), resident[sm].end());
            dt = std::min(dt, least / per_cta);
        }
        pcnn_assert(std::isfinite(dt) && dt >= 0.0,
                    "simulator event horizon broke");

        // Advance everyone by dt and retire finished CTAs.
        for (std::size_t sm = 0; sm < n_sms; ++sm) {
            if (counts[sm] == 0)
                continue;
            busy[sm] += dt;
            const double per_cta =
                sm_rate(counts[sm]) / double(counts[sm]);
            auto &list = resident[sm];
            for (auto &work : list)
                work -= per_cta * dt;
            const auto it = std::remove_if(
                list.begin(), list.end(),
                [](double w) { return w <= 1e-6; });
            const std::size_t done = std::size_t(list.end() - it);
            list.erase(it, list.end());
            PCNN_DCHECK_GE(counts[sm], done, "SM retired ghost CTAs");
            counts[sm] -= done;
            in_flight -= done;
            retired += done;
            PCNN_DCHECK_EQ(counts[sm], list.size(),
                           "per-SM CTA count out of sync");
        }
        now += dt;
        // Every CTA is exactly one of pending / resident / retired.
        PCNN_DCHECK_EQ(retired + in_flight + pending, kernel.gridSize,
                       "CTA accounting broke for kernel ", kernel.name);
        refill();
    }
    PCNN_CHECK_EQ(retired, kernel.gridSize, "kernel ", kernel.name,
                  ": simulator lost CTAs");

    SimResult r;
    r.flops = double(kernel.gridSize) * kernel.ctaWorkFlops;

    // Memory bandwidth bound: a traffic-limited kernel stretches to
    // its transfer time.
    const double bw_time =
        r.flops * kernel.bytesPerFlop / gpuSpec.bandwidthBytes();
    r.timeS = std::max(now, bw_time) + SgemmModel::launchOverheadS;

    r.smBusyS = std::move(busy);
    r.smsUsed = std::size_t(
        std::count(touched.begin(), touched.end(), true));

    // Static power: gated SMs accrue nothing. Without gating every SM
    // is powered for the whole launch; with gating only the SMs the
    // scheduler may use (PSM budget) stay powered.
    std::size_t powered = n_sms;
    if (cfg.powerGateIdle) {
        powered = cfg.scheduler == SchedKind::PrioritySM &&
                          cfg.smsAllowed > 0
                      ? std::min(cfg.smsAllowed, n_sms)
                      : r.smsUsed;
    }
    r.smsPowered = powered;
    r.energy = energy.interval(r.timeS, powered, r.flops);
    return r;
}

SimResult
GpuSim::runKernel(const KernelDesc &kernel, const LaunchConfig &cfg) const
{
    SimResult one = runOneLaunch(kernel, cfg);
    if (kernel.launches <= 1)
        return one;

    // Identical launches: scale instead of re-simulating.
    SimResult r = one;
    const double k = double(kernel.launches);
    r.timeS *= k;
    r.flops *= k;
    r.energy.baseJ *= k;
    r.energy.staticJ *= k;
    r.energy.dynamicJ *= k;
    for (auto &b : r.smBusyS)
        b *= k;
    return r;
}

SimResult
GpuSim::runSequence(
    const std::vector<std::pair<KernelDesc, LaunchConfig>> &seq) const
{
    SimResult total;
    total.smBusyS.assign(gpuSpec.numSMs, 0.0);
    for (const auto &[kernel, cfg] : seq)
        total.accumulate(runKernel(kernel, cfg));
    return total;
}

PartitionedResult
GpuSim::runPartitioned(const std::vector<PartitionedKernel> &kernels,
                       bool gate_unused) const
{
    pcnn_assert(!kernels.empty(), "no kernels to partition");
    const std::size_t n_sms = gpuSpec.numSMs;

    // Validate disjoint partitions and build the SM -> kernel map.
    std::vector<int> owner(n_sms, -1);
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        const PartitionedKernel &pk = kernels[k];
        pcnn_assert(pk.smBegin < pk.smEnd && pk.smEnd <= n_sms,
                    "kernel ", pk.kernel.name, ": bad SM range");
        pcnn_assert(pk.tlpLimit >= 1 && pk.kernel.gridSize >= 1,
                    "kernel ", pk.kernel.name, ": empty launch");
        for (std::size_t sm = pk.smBegin; sm < pk.smEnd; ++sm) {
            pcnn_assert(owner[sm] < 0, "SM ", sm,
                        " claimed by two partitions");
            owner[sm] = int(k);
        }
    }

    // Per-SM resident CTA work; per-kernel pending counts.
    std::vector<std::vector<double>> resident(n_sms);
    std::vector<std::size_t> pending(kernels.size());
    std::vector<std::size_t> in_flight(kernels.size(), 0);
    std::vector<double> finish(kernels.size(), 0.0);
    for (std::size_t k = 0; k < kernels.size(); ++k)
        pending[k] = kernels[k].kernel.gridSize;

    auto refill = [&](std::size_t k) {
        const PartitionedKernel &pk = kernels[k];
        for (std::size_t sm = pk.smBegin;
             sm < pk.smEnd && pending[k] > 0; ++sm) {
            while (resident[sm].size() < pk.tlpLimit &&
                   pending[k] > 0) {
                resident[sm].push_back(pk.kernel.ctaWorkFlops);
                --pending[k];
                ++in_flight[k];
            }
        }
    };
    for (std::size_t k = 0; k < kernels.size(); ++k)
        refill(k);

    auto sm_rate = [&](std::size_t sm) {
        const int k = owner[sm];
        const std::size_t ctas = resident[sm].size();
        if (k < 0 || ctas == 0)
            return 0.0;
        const KernelDesc &kd = kernels[std::size_t(k)].kernel;
        const double lat = std::clamp(
            double(ctas * kd.blockSize) / SgemmModel::hideThreads,
            SgemmModel::latencyFloor, 1.0);
        return gpuSpec.peakFlopsPerSM() * kd.issueDensity * lat;
    };

    double now = 0.0;
    auto any_in_flight = [&]() {
        for (std::size_t f : in_flight)
            if (f > 0)
                return true;
        return false;
    };

    while (any_in_flight()) {
        double dt = std::numeric_limits<double>::infinity();
        for (std::size_t sm = 0; sm < n_sms; ++sm) {
            if (resident[sm].empty())
                continue;
            const double per_cta =
                sm_rate(sm) / double(resident[sm].size());
            const double least = *std::min_element(
                resident[sm].begin(), resident[sm].end());
            dt = std::min(dt, least / per_cta);
        }
        pcnn_assert(std::isfinite(dt), "partitioned sim stalled");

        for (std::size_t sm = 0; sm < n_sms; ++sm) {
            if (resident[sm].empty())
                continue;
            const std::size_t k = std::size_t(owner[sm]);
            const double per_cta =
                sm_rate(sm) / double(resident[sm].size());
            auto &list = resident[sm];
            for (auto &work : list)
                work -= per_cta * dt;
            const auto it =
                std::remove_if(list.begin(), list.end(),
                               [](double w) { return w <= 1e-6; });
            const std::size_t done = std::size_t(list.end() - it);
            list.erase(it, list.end());
            in_flight[k] -= done;
            if (done > 0 && in_flight[k] == 0 && pending[k] == 0)
                finish[k] = now + dt;
        }
        now += dt;
        for (std::size_t k = 0; k < kernels.size(); ++k)
            refill(k);
    }

    PartitionedResult r;
    r.kernelTimeS.resize(kernels.size());
    double total_flops = 0.0;
    std::size_t claimed = 0;
    for (int o : owner)
        claimed += o >= 0;
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        const PartitionedKernel &pk = kernels[k];
        const double work = double(pk.kernel.gridSize) *
                            pk.kernel.ctaWorkFlops;
        total_flops += work;
        // Each partition gets a bandwidth share proportional to its
        // SM share (a common spatial-multitasking approximation).
        const double share =
            double(pk.smEnd - pk.smBegin) / double(claimed);
        const double bw_time = work * pk.kernel.bytesPerFlop /
                               (gpuSpec.bandwidthBytes() * share);
        r.kernelTimeS[k] = std::max(finish[k], bw_time) +
                           SgemmModel::launchOverheadS;
        r.timeS = std::max(r.timeS, r.kernelTimeS[k]);
    }
    r.flops = total_flops;
    r.smsPowered = gate_unused ? claimed : n_sms;
    r.energy = energy.interval(r.timeS, r.smsPowered, total_flops);
    return r;
}

SimResult
GpuSim::fixedInterval(double time_s, std::size_t powered_sms,
                      double flops) const
{
    pcnn_assert(time_s >= 0.0, "negative interval");
    SimResult r;
    r.timeS = time_s;
    r.flops = flops;
    r.smBusyS.assign(gpuSpec.numSMs, 0.0);
    r.smsPowered = std::min(powered_sms, gpuSpec.numSMs);
    r.energy = energy.interval(time_s, r.smsPowered, flops);
    return r;
}

} // namespace pcnn
