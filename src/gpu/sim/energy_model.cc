#include "gpu/sim/energy_model.hh"

#include "common/logging.hh"

namespace pcnn {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    baseJ += o.baseJ;
    staticJ += o.staticJ;
    dynamicJ += o.dynamicJ;
    return *this;
}

EnergyModel::EnergyModel(GpuSpec gpu) : gpuSpec(std::move(gpu)) {}

EnergyBreakdown
EnergyModel::interval(double time_s, std::size_t powered_sms,
                      double flops) const
{
    pcnn_assert(time_s >= 0.0 && flops >= 0.0,
                "negative time or work in energy accounting");
    pcnn_assert(powered_sms <= gpuSpec.numSMs, "powered SMs ",
                powered_sms, " exceed ", gpuSpec.numSMs);
    EnergyBreakdown e;
    e.baseJ = gpuSpec.basePowerW * time_s;
    e.staticJ = gpuSpec.smStaticPowerW * double(powered_sms) * time_s;
    e.dynamicJ = gpuSpec.dynEnergyPerFlopJ * flops;
    return e;
}

double
EnergyModel::averagePowerW(const EnergyBreakdown &e, double time_s) const
{
    pcnn_assert(time_s > 0.0, "average power over zero time");
    return e.total() / time_s;
}

} // namespace pcnn
