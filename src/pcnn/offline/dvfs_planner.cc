#include "pcnn/offline/dvfs_planner.hh"

#include "common/logging.hh"

namespace pcnn {

DvfsPlanner::DvfsPlanner(GpuSpec nominal) : dvfs(std::move(nominal)) {}

DvfsPlan
DvfsPlanner::plan(const NetDescriptor &net, const AppSpec &app) const
{
    const UserRequirement req = inferRequirement(app);

    auto make = [&](double level) {
        DvfsPlan p;
        p.level = level;
        p.gpu = dvfs.at(level);
        const OfflineCompiler compiler(p.gpu);
        p.plan = compiler.compile(net, app);
        p.slackS = req.timeInsensitive
                       ? 0.0
                       : req.imperceptibleS - p.plan.latencyS();
        return p;
    };

    // Levels ascend, so the first one meeting the requirement is the
    // lowest (most energy-frugal) legal frequency.
    for (double level : DvfsModel::levels()) {
        DvfsPlan p = make(level);
        if (req.timeInsensitive ||
            p.plan.latencyS() <= req.imperceptibleS) {
            return p;
        }
    }
    // Nothing meets the requirement: run flat out and let run-time
    // accuracy tuning make up the rest.
    return make(1.0);
}

} // namespace pcnn
