/**
 * @file
 * Compiled-plan persistence.
 *
 * Offline compilation is the expensive, per-platform step; the
 * deployed runtime should load a finished plan instead of re-tuning
 * on every start. Plans serialize to a small self-describing binary
 * (magic + versioned fields) and refuse to load against a different
 * tile catalogue or a corrupted file.
 */

#ifndef PCNN_PCNN_OFFLINE_PLAN_IO_HH
#define PCNN_PCNN_OFFLINE_PLAN_IO_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pcnn/offline/compiler.hh"

namespace pcnn {

/** Newest plan format version this build reads and writes. */
constexpr std::uint8_t kPlanFormatVersion = 4;

/** Serialize a compiled plan to bytes (current format version). */
std::vector<std::uint8_t> serializePlan(const CompiledPlan &plan);

/**
 * Serialize in a specific format version: 4 (current: appends the
 * optional compiled-graph schedule section, DESIGN.md §5j), 3 (adds
 * the per-layer int8 `quantized` flag), 2 (explicit version byte +
 * per-layer conv algorithm), or 1 (legacy PR 2 format: no version
 * byte, no algorithm — readers default those layers to im2col).
 * Readers accept all four; older versions load with quantized=false
 * and no schedule. Old-version writing exists for compatibility
 * tests.
 */
std::vector<std::uint8_t> serializePlan(const CompiledPlan &plan,
                                        std::uint8_t version);

/**
 * Restore a plan from bytes.
 * @return the plan, or std::nullopt on malformed/incompatible data
 */
std::optional<CompiledPlan>
deserializePlan(const std::vector<std::uint8_t> &bytes);

/** Save a plan to a file. @retval true on success */
bool savePlan(const CompiledPlan &plan, const std::string &path);

/** Load a plan from a file; std::nullopt on any failure. */
std::optional<CompiledPlan> loadPlan(const std::string &path);

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_PLAN_IO_HH
