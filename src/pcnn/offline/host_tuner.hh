/**
 * @file
 * Per-host SGEMM autotuner with a persistent, versioned tune cache
 * (DESIGN.md §5g).
 *
 * The paper co-tunes tile/register parameters per GPU
 * microarchitecture offline and ships the result with the plan; this
 * is the CPU mirror. The tuner enumerates the host's physical limits
 * (cpuid feature tiers, cache capacities), sweeps micro-kernel tier x
 * Kc/Mc/Nc x prefetch distance over the conv/FC GEMM shapes of the
 * model zoo plus the paper's large-K conv shapes, and persists the
 * winner as a small JSON config keyed to the host identity. A later
 * process — the serving engine's warm-up in particular — loads and
 * pins the winner instead of re-sweeping; a config written on a
 * different host, by a different format version, or corrupted on
 * disk is rejected and the detected defaults stay in force.
 *
 * Cache location: $PCNN_TUNE_CACHE if set, else
 * $HOME/.cache/pcnn/hosttune-v1.json (versioned file name so future
 * formats can coexist).
 */

#ifndef PCNN_PCNN_OFFLINE_HOST_TUNER_HH
#define PCNN_PCNN_OFFLINE_HOST_TUNER_HH

#include <string>
#include <vector>

#include "tensor/microkernel.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

/** Newest tune-cache format version this build reads and writes. */
constexpr int kHostTuneVersion = 1;

/** A swept-and-persisted per-host kernel configuration. */
struct HostTuneConfig
{
    int version = kHostTuneVersion;
    std::string cpuModel;  ///< host identity: /proc/cpuinfo model
    std::string features;  ///< host identity: CpuFeatures::str()
    std::size_t l1d = 0;   ///< detected cache sizes (bytes, 0 unknown)
    std::size_t l2 = 0;
    std::size_t l3 = 0;
    KernelTier tier = KernelTier::Portable;
    GemmBlocking blocking;

    /** Config stamped with this process's detected host identity. */
    static HostTuneConfig forThisHost();

    /** True when cpuModel/features match this host's detection. */
    bool matchesThisHost() const;
};

/**
 * Resolve the tune-cache path: $PCNN_TUNE_CACHE verbatim when set
 * (read per call, so tests can redirect it), else
 * $HOME/.cache/pcnn/hosttune-v1.json, else a bare relative fallback
 * when HOME is unset.
 */
std::string hostTuneCachePath();

/** Serialize `cfg` as the versioned JSON document. */
std::string serializeHostTune(const HostTuneConfig &cfg);

/**
 * Parse a tune-cache document. Strict: malformed JSON, missing or
 * duplicate keys, a version other than kHostTuneVersion, an unknown
 * tier name, or out-of-range blocking values are all rejected.
 * @param err on failure, a one-line reason
 */
bool parseHostTune(const std::string &text, HostTuneConfig &out,
                   std::string &err);

/** Write `cfg` to `path`, creating parent directories. */
bool saveHostTune(const HostTuneConfig &cfg, const std::string &path);

/**
 * Load + validate a tune cache from `path`. Beyond parseHostTune's
 * checks this rejects configs whose host identity does not match the
 * running host (stale caches copied between machines) and tiers the
 * running host cannot execute.
 */
bool loadHostTune(const std::string &path, HostTuneConfig &out,
                  std::string &err);

/**
 * Pin `cfg` on the kernel dispatch state (setKernelTier +
 * setBlocking). A PCNN_KERNEL_TIER operator override outranks the
 * cache: when the env pinned a different tier, the config's tier and
 * blocking are both left alone (the blocking was co-tuned with the
 * tier and is meaningless under another one).
 * @retval true when the config was applied
 */
bool applyHostTune(const HostTuneConfig &cfg);

/**
 * Load-and-apply the default-path tune cache once per process
 * (thread-safe; later calls return the first outcome). Never sweeps:
 * this is the runtime/start-up hook — the serving engine calls it
 * before replicating and freezing weights so every worker inherits
 * the pinned tier/blocking. Missing or invalid caches quietly leave
 * the detected defaults in force, and so does a first call made
 * after any GEMM has already executed (gemmHasRun()): pinning then
 * would change the bitwise value of every later fp32 GEMM relative
 * to results the process already produced.
 * @retval true when a valid cache was applied
 */
bool applyHostTuneCacheOnce();

/** One timed sweep point (reported for benches/logging). */
struct HostTuneTrial
{
    KernelTier tier = KernelTier::Portable;
    GemmBlocking blocking;
    double seconds = 0.0; ///< total time across the shape set
};

/** Autotune options. */
struct HostTuneOptions
{
    bool quick = false;   ///< tiers-only sweep (CI smoke)
    std::size_t reps = 3; ///< timing repetitions (min is kept)
};

/** Sweep result: the winning config plus how it was obtained. */
struct HostTuneResult
{
    HostTuneConfig config;
    bool fromCache = false; ///< loaded, not swept
    std::vector<HostTuneTrial> trials; ///< empty when fromCache
};

/**
 * GEMM shapes the sweep times: every distinct conv GEMM of the
 * model-zoo mini nets at batch 1 plus the paper's large-K conv
 * shapes (AlexNet CONV2, VGG-16 conv2/conv3) — the e2e acceptance
 * shapes of BENCH_pr6.
 */
std::vector<GemmShape> hostTuneShapes();

/**
 * Run the staged sweep on this host: (1) race every supported tier
 * at its default blocking, (2) sweep Kc/Mc/Nc around the winner,
 * (3) sweep the prefetch distance. Deterministic sweep order;
 * timings use the steady clock with `reps` repetitions. Does not
 * touch the dispatch state or the cache file.
 */
HostTuneResult autotuneHost(const HostTuneOptions &opts = {});

/**
 * The offline entry point (tools/pcnn_autotune): load `path` and
 * return it (fromCache = true) when it validates against this host;
 * otherwise sweep, save to `path`, and return the swept winner. The
 * returned config is NOT applied — callers decide (the CLI applies
 * and reports; tests inspect).
 */
HostTuneResult ensureHostTuned(const std::string &path,
                               const HostTuneOptions &opts = {});

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_HOST_TUNER_HH
