#include "pcnn/offline/resource_model.hh"

#include "common/logging.hh"

namespace pcnn {

std::size_t
optimalSms(std::size_t grid_size, std::size_t tlp, std::size_t num_sms)
{
    pcnn_assert(grid_size >= 1 && tlp >= 1 && num_sms >= 1,
                "optimalSms needs positive arguments");
    const std::size_t per_wave = tlp * num_sms;
    const std::size_t invocations =
        (grid_size + per_wave - 1) / per_wave;
    // Smallest s with ceil(grid / (tlp*s)) == invocations, i.e.
    // tlp * s * invocations >= grid.
    const std::size_t s =
        (grid_size + tlp * invocations - 1) / (tlp * invocations);
    pcnn_assert(s >= 1 && s <= num_sms, "Eq. 11 solution out of range");
    return s;
}

} // namespace pcnn
