#include "pcnn/offline/resource_model.hh"

#include "common/check.hh"

namespace pcnn {

std::size_t
optimalSms(std::size_t grid_size, std::size_t tlp, std::size_t num_sms)
{
    PCNN_CHECK_GE(grid_size, 1u, "optimalSms: empty grid");
    PCNN_CHECK_GE(tlp, 1u, "optimalSms: TLP must be positive");
    PCNN_CHECK_GE(num_sms, 1u, "optimalSms: no SMs");
    const std::size_t per_wave = tlp * num_sms;
    const std::size_t invocations =
        (grid_size + per_wave - 1) / per_wave;
    // Smallest s with ceil(grid / (tlp*s)) == invocations, i.e.
    // tlp * s * invocations >= grid.
    const std::size_t s =
        (grid_size + tlp * invocations - 1) / (tlp * invocations);
    PCNN_CHECK(s >= 1 && s <= num_sms,
               "Eq. 11 solution out of range: optSM ", s, " for grid ",
               grid_size, " TLP ", tlp, " on ", num_sms, " SMs");
    return s;
}

} // namespace pcnn
