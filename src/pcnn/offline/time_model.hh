/**
 * @file
 * The platform-independent time model (Eq. 12).
 *
 * Predicts per-layer and end-to-end inference latency for a tuned
 * kernel plan, honoring the optSM allocation. This is the model the
 * offline compiler uses to check the user's time requirement and to
 * adjust the batch size (Eq. 13), and the model the accuracy tuner
 * uses to price perforated layers.
 */

#ifndef PCNN_PCNN_OFFLINE_TIME_MODEL_HH
#define PCNN_PCNN_OFFLINE_TIME_MODEL_HH

#include "nn/model_zoo.hh"
#include "pcnn/offline/kernel_tuner.hh"

namespace pcnn {

/** Latency decomposition of one inference batch. */
struct NetTimeBreakdown
{
    double convS = 0.0;
    double fcS = 0.0;
    double auxS = 0.0;

    /** End-to-end seconds. */
    double total() const { return convS + fcS + auxS; }
};

/** Time model bound to one GPU. */
class TimeModel
{
  public:
    /** Bind the deployment architecture. */
    explicit TimeModel(GpuSpec gpu);

    /** Bound GPU. */
    const GpuSpec &gpu() const { return gpuSpec; }

    /**
     * Predicted time of one conv layer under a tuned kernel.
     * @param layer layer shapes
     * @param kernel tuned kernel (its optSM/optTLP are honored;
     *        optSM == 0 means the whole GPU)
     * @param batch batch size
     * @param positions_per_image perforated output positions
     *        (0 = full grid)
     */
    double layerTime(const ConvSpec &layer, const TunedKernel &kernel,
                     std::size_t batch,
                     std::size_t positions_per_image = 0) const;

    /** Weight-streaming-aware fully connected tail time. */
    double fcTime(const NetDescriptor &net, std::size_t batch) const;

    /** Element-wise layer (pool/relu/concat) streaming time. */
    double auxTime(const NetDescriptor &net, std::size_t batch) const;

  private:
    GpuSpec gpuSpec;
};

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_TIME_MODEL_HH
