/**
 * @file
 * Offline activation-range calibration for the int8 inference path.
 *
 * The quantized forward needs per-tensor activation quantization
 * params for every Conv/Fc layer input. Deriving them dynamically
 * from the live batch works, but makes logits depend on batch
 * composition; the paper-style deployment instead calibrates the
 * ranges once, offline, over training-set inputs and ships them
 * with the plan. A QuantProfile holds those calibrated params keyed
 * by layer name, and serializes to a small hostile-input-hardened
 * binary alongside the compiled plan (DESIGN.md section 5i).
 */

#ifndef PCNN_PCNN_OFFLINE_QUANT_PROFILE_HH
#define PCNN_PCNN_OFFLINE_QUANT_PROFILE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tensor/quant.hh"

namespace pcnn {

class Network;
class Tensor;

/** Calibrated activation quantization params for one network. */
struct QuantProfile
{
    /** Params for one layer's *input* activations. */
    struct Entry
    {
        std::string layer; ///< layer name (Layer::name())
        QuantParams params;
    };

    std::vector<Entry> entries;

    /** Params for `name`, or nullptr when uncalibrated. */
    const QuantParams *find(const std::string &name) const;
};

/**
 * Calibrate a profile by running `inputs` through `net` layer by
 * layer (fp32, inference mode) and recording each top-level Conv/Fc
 * layer's input range. Layers nested inside containers (Inception
 * branches) are not observed separately — they fall back to dynamic
 * ranges at inference.
 */
QuantProfile calibrateQuantProfile(Network &net, const Tensor &inputs);

/**
 * Pin every profiled layer's input params on the matching Conv/Fc
 * layers of `net` (by name); with `enable`, also switch those
 * layers onto the int8 route.
 */
void applyQuantProfile(Network &net, const QuantProfile &profile,
                       bool enable = true);

/** Serialize a profile to bytes ("PCNNQPR1" format). */
std::vector<std::uint8_t>
serializeQuantProfile(const QuantProfile &profile);

/**
 * Restore a profile from bytes.
 * @return the profile, or std::nullopt on malformed/hostile data
 *         (bad magic, truncation, non-finite or non-positive
 *         scales, zero points beyond 127, trailing bytes)
 */
std::optional<QuantProfile>
deserializeQuantProfile(const std::vector<std::uint8_t> &bytes);

/** Save a profile to a file. @retval true on success */
bool saveQuantProfile(const QuantProfile &profile,
                      const std::string &path);

/** Load a profile from a file; std::nullopt on any failure. */
std::optional<QuantProfile> loadQuantProfile(const std::string &path);

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_QUANT_PROFILE_HH
