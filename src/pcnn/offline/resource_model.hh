/**
 * @file
 * The resource model: optimal SM allocation (Eq. 11).
 *
 * Underutilized layers do not need the whole GPU: optSM is the
 * smallest SM count that keeps nInvocations unchanged relative to
 * using every SM, so the freed SMs can be power gated or given to
 * other kernels with no performance loss.
 */

#ifndef PCNN_PCNN_OFFLINE_RESOURCE_MODEL_HH
#define PCNN_PCNN_OFFLINE_RESOURCE_MODEL_HH

#include <cstddef>

#include "gpu/gpu_spec.hh"

namespace pcnn {

/**
 * Eq. 11: minimum SMs such that
 * ceil(grid / (tlp*optSM)) == ceil(grid / (tlp*numSMs)).
 *
 * @param grid_size CTAs of the kernel
 * @param tlp CTAs per SM (optTLP)
 * @param num_sms SMs available on the GPU
 */
std::size_t optimalSms(std::size_t grid_size, std::size_t tlp,
                       std::size_t num_sms);

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_RESOURCE_MODEL_HH
