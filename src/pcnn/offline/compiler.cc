#include "pcnn/offline/compiler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "nn/graph/compiled_graph.hh"
#include "nn/network.hh"
#include "pcnn/offline/resource_model.hh"
#include "pcnn/satisfaction.hh"

namespace pcnn {

OfflineCompiler::OfflineCompiler(GpuSpec gpu, TuneObjective obj,
                                 AlgoSweep sweep)
    : gpuSpec(gpu), objective(obj), algoSweep(sweep), tuner(gpu),
      batches(gpu), timeModel(std::move(gpu))
{
}

CompiledPlan
OfflineCompiler::compileAtBatch(const NetDescriptor &net,
                                std::size_t batch) const
{
    pcnn_assert(batch >= 1, "batch must be positive");
    CompiledPlan plan;
    plan.netName = net.name;
    plan.gpuName = gpuSpec.name;
    plan.batch = batch;

    // Each conv layer tunes independently; fan the per-layer tuning
    // out over the thread pool and assemble the plan in layer order.
    tuner.candidates(); // warm the shared cache outside the fan-out
    std::vector<LayerSchedule> schedules(net.convs.size());
    parallelFor(net.convs.size(), [&](std::size_t l0, std::size_t l1,
                                      std::size_t) {
        for (std::size_t li = l0; li < l1; ++li) {
            const ConvSpec &layer = net.convs[li];
            LayerSchedule ls;
            ls.layer = layer;
            if (algoSweep == AlgoSweep::On) {
                // The algorithm is a tuning knob (DESIGN.md §5e):
                // the recorded GEMM is the chosen algorithm's
                // lowering, so optSM, util and Eq. 12 all see the
                // real kernel shape.
                ls.kernel = tuner.tuneLayer(layer, batch, objective);
                ls.gemm = ls.kernel.algo == ConvAlgo::Winograd
                              ? layer.winogradGemmShape(batch)
                              : layer.gemmShape(batch);
            } else {
                // Paper-fidelity mode: the im2col SGEMM family only.
                // Record the exact route the CPU substrate runs (the
                // 1x1 shortcut is that GEMM minus the expansion).
                ls.gemm = layer.gemmShape(batch);
                ls.kernel = tuner.tune(ls.gemm, objective);
                ls.kernel.algo =
                    layer.algoEligible(ConvAlgo::Direct1x1)
                        ? ConvAlgo::Direct1x1
                        : ConvAlgo::Im2col;
            }

            const SgemmModel model(gpuSpec, ls.kernel.config);
            ls.kernel.optSM =
                optimalSms(model.gridSize(ls.gemm), ls.kernel.optTLP,
                           gpuSpec.numSMs);
            ls.util = model.util(ls.gemm);
            ls.timeS = timeModel.layerTime(layer, ls.kernel, batch);
            schedules[li] = std::move(ls);
        }
    });
    for (LayerSchedule &ls : schedules) {
        plan.time.convS += ls.timeS;
        plan.layers.push_back(std::move(ls));
    }
    plan.time.fcS = timeModel.fcTime(net, batch);
    plan.time.auxS = timeModel.auxTime(net, batch);

    plan.footprint.weightBytes = weightBytes(net);
    plan.footprint.activationBytes = activationBytes(net, batch);
    plan.footprint.workspaceBytes = 0.0; // P-CNN emits its own kernels
    return plan;
}

CompiledPlan
OfflineCompiler::compile(const NetDescriptor &net,
                         const AppSpec &app) const
{
    const UserRequirement req = inferRequirement(app);

    if (req.timeInsensitive) {
        // Background task: maximize throughput, done (Section IV.B.3).
        return compileAtBatch(net, batches.backgroundBatch(net));
    }

    std::size_t batch = batches.initialBatch(net, app, req);
    CompiledPlan plan = compileAtBatch(net, batch);

    // Global decision loop: shrink the batch until the predicted time
    // fits the requirement (Eq. 13). Each new batch changes every
    // layer's computational load, so the kernels are re-tuned.
    for (int iter = 0; iter < 16; ++iter) {
        if (plan.latencyS() <= req.imperceptibleS || plan.batch == 1)
            break;
        const double scale = req.imperceptibleS / plan.latencyS();
        auto next = std::size_t(
            std::floor(double(plan.batch) * scale));
        next = std::clamp<std::size_t>(next, 1, plan.batch - 1);
        plan = compileAtBatch(net, next);
    }
    plan.timeRequirementMissed = plan.latencyS() > req.imperceptibleS;
    return plan;
}

void
attachGraphSchedule(CompiledPlan &plan, Network &net)
{
    pcnn_assert(net.convLayers().size() == plan.layers.size(),
                "plan does not match the network");
    // Mirror the Executor's pinning so the schedule is compiled for
    // exactly the configuration the runtime will execute: the quant
    // fingerprint decides item tiling, and the algorithm selections
    // decide per-layer scratch shapes.
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        net.convLayers()[i]->setAlgo(plan.layers[i].kernel.algo);
        net.convLayers()[i]->setQuantized(
            plan.layers[i].kernel.quantized);
    }
    plan.schedule = buildGraphSchedule(net, plan.batch);
}

} // namespace pcnn
