/**
 * @file
 * DVFS planning for the imperceptible region.
 *
 * The Fig. 3 guidance: inside the imperceptible region, trade the
 * useless speed for energy by lowering the clock until the predicted
 * latency approaches T_i. The planner chooses the lowest DVFS level
 * whose recompiled plan still meets the requirement, and reports the
 * simulated energy saving.
 */

#ifndef PCNN_PCNN_OFFLINE_DVFS_PLANNER_HH
#define PCNN_PCNN_OFFLINE_DVFS_PLANNER_HH

#include "gpu/dvfs.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/task.hh"

namespace pcnn {

/** A frequency decision plus the plan compiled at that frequency. */
struct DvfsPlan
{
    double level = 1.0;   ///< frequency fraction chosen
    GpuSpec gpu;          ///< the scaled specification
    CompiledPlan plan;    ///< compiled against the scaled GPU
    double slackS = 0.0;  ///< T_i minus predicted latency
};

/** DVFS planner bound to one nominal GPU. */
class DvfsPlanner
{
  public:
    /** Bind the nominal GPU. */
    explicit DvfsPlanner(GpuSpec nominal);

    /**
     * Pick the lowest frequency level whose plan still meets the
     * application's time requirement (background tasks, having no
     * requirement, get the lowest level outright). Plans are
     * recompiled per level because kernel choices can shift with the
     * compute/bandwidth balance.
     */
    DvfsPlan plan(const NetDescriptor &net, const AppSpec &app) const;

  private:
    DvfsModel dvfs;
};

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_DVFS_PLANNER_HH
