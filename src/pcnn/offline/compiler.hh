/**
 * @file
 * Cross-platform offline compilation (Section IV.B).
 *
 * Orchestrates batch selection, per-layer kernel tuning, the
 * resource model (optSM/optTLP) and the global decision loop that
 * shrinks the batch until the predicted latency meets the user's
 * requirement (Eq. 13). The output plan carries everything the
 * run-time kernel management needs.
 */

#ifndef PCNN_PCNN_OFFLINE_COMPILER_HH
#define PCNN_PCNN_OFFLINE_COMPILER_HH

#include <optional>
#include <vector>

#include "gpu/memory_model.hh"
#include "nn/graph/graph_ir.hh"
#include "pcnn/offline/batch_selector.hh"
#include "pcnn/offline/kernel_tuner.hh"
#include "pcnn/offline/time_model.hh"
#include "pcnn/task.hh"

namespace pcnn {

/** Per-layer scheduling configuration in a compiled plan. */
struct LayerSchedule
{
    ConvSpec layer;
    TunedKernel kernel; ///< tile, registers, optTLP, optSM
    GemmShape gemm;     ///< at the plan's batch, unperforated
    double timeS = 0.0; ///< predicted layer time at optSM
    double util = 0.0;  ///< Eq. 6 at the plan's batch
};

/** A fully compiled deployment. */
struct CompiledPlan
{
    std::string netName;
    std::string gpuName;
    std::size_t batch = 1;
    std::vector<LayerSchedule> layers;
    NetTimeBreakdown time;
    MemoryFootprint footprint;
    /// true when even batch == 1 misses the user's time requirement;
    /// run-time accuracy tuning is then the only remaining lever
    bool timeRequirementMissed = false;
    /// compiled-graph execution schedule (DESIGN.md §5j): op order,
    /// arena offsets and lifetimes at this plan's batch. Optional —
    /// plans compiled before format v4 (or without a frozen network)
    /// carry none and the runtime compiles one on first forward.
    std::optional<GraphSchedule> schedule;

    /** Predicted end-to-end batch latency in seconds. */
    double latencyS() const { return time.total(); }
};

/**
 * Whether the tuner sweeps conv algorithms (winograd vs. im2col) as
 * a per-layer knob. Off reproduces the paper's kernel family (its
 * latency tables assume im2col-style SGEMM lowering throughout); On
 * adds the DESIGN.md §5e algorithm dimension, recording the choice
 * per layer in the plan for the runtime to apply.
 */
enum class AlgoSweep
{
    Off,
    On,
};

class Network;

/**
 * Build the compiled-graph schedule for `net` at the plan's batch
 * and attach it to the plan (plan format v4, DESIGN.md §5j). Applies
 * the plan's per-layer algorithm and precision pins to `net` first —
 * the same configuration the runtime Executor applies before
 * adopting the schedule — so the compiled op structure (tiling,
 * fusion) matches what will execute.
 */
void attachGraphSchedule(CompiledPlan &plan, Network &net);

/** The offline compiler, bound to one GPU. */
class OfflineCompiler
{
  public:
    /**
     * @param gpu deployment architecture
     * @param objective kernel-ranking objective (Eq. 10 by default)
     * @param sweep conv-algorithm sweep mode (off by default: the
     *        paper's published numbers assume the im2col family)
     */
    explicit OfflineCompiler(GpuSpec gpu,
                             TuneObjective objective =
                                 TuneObjective::SkernelMetric,
                             AlgoSweep sweep = AlgoSweep::Off);

    /**
     * Compile a network for an application on the bound GPU:
     * batch selection -> per-layer tuning -> optSM -> time check ->
     * batch adjustment loop (Eq. 13).
     */
    CompiledPlan compile(const NetDescriptor &net,
                         const AppSpec &app) const;

    /** Compile at a fixed batch (used by baselines and benches). */
    CompiledPlan compileAtBatch(const NetDescriptor &net,
                                std::size_t batch) const;

    /** Bound GPU. */
    const GpuSpec &gpu() const { return gpuSpec; }

  private:
    GpuSpec gpuSpec;
    TuneObjective objective;
    AlgoSweep algoSweep;
    KernelTuner tuner;
    BatchSelector batches;
    TimeModel timeModel;
};

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_COMPILER_HH
