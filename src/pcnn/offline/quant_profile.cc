#include "pcnn/offline/quant_profile.hh"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/tags.hh"
#include "nn/network.hh"

namespace pcnn {

namespace {

// "PCNNQPR1": magic + format version in one token, like the plan
// files. The payload is a u64 entry count followed by (name, f64
// scale, u64 zero) records.
constexpr char kMagic[8] = {'P', 'C', 'N', 'N', 'Q', 'P', 'R', '1'};

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

void
putStr(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &bytes)
        : data(bytes)
    {
    }

    bool
    u64(std::uint64_t &v)
    {
        if (pos + 8 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data[pos + std::size_t(i)]) << (8 * i);
        pos += 8;
        return true;
    }

    bool
    f64(double &v)
    {
        std::uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, 8);
        return true;
    }

    bool
    str(std::string &s)
    {
        // `pos + len` can wrap for a hostile 64-bit length, so the
        // bound is phrased against the bytes actually remaining.
        std::uint64_t len;
        if (!u64(len) || len > data.size() - pos)
            return fail();
        s.assign(data.begin() + std::ptrdiff_t(pos),
                 data.begin() + std::ptrdiff_t(pos + len));
        pos += len;
        return true;
    }

    bool done() const { return ok && pos == data.size(); }

    bool fail()
    {
        ok = false;
        return false;
    }

  private:
    const std::vector<std::uint8_t> &data;
    std::size_t pos = 0;
    bool ok = true;
};

} // namespace

const QuantParams *
QuantProfile::find(const std::string &name) const
{
    for (const Entry &e : entries)
        if (e.layer == name)
            return &e.params;
    return nullptr;
}

QuantProfile
calibrateQuantProfile(Network &net, const Tensor &inputs)
{
    QuantProfile profile;
    // Manual sequential forward: observe each top-level layer's
    // input, then advance through the layer (fp32, inference mode).
    Tensor a = inputs;
    Tensor b;
    for (std::size_t i = 0; i < net.size(); ++i) {
        Layer &l = net.layer(i);
        const bool wants = dynamic_cast<ConvLayer *>(&l) != nullptr ||
                           dynamic_cast<FcLayer *>(&l) != nullptr;
        if (wants)
            profile.entries.push_back(
                {l.name(), computeQuantParams(a.data(), a.size())});
        l.forwardInto(a, false, b);
        std::swap(a, b);
    }
    return profile;
}

void
applyQuantProfile(Network &net, const QuantProfile &profile,
                  bool enable)
{
    for (ConvLayer *c : net.convLayers()) {
        if (const QuantParams *p = profile.find(c->name())) {
            c->setInputQuant(*p);
            if (enable)
                c->setQuantized(true);
        }
    }
    for (FcLayer *f : net.fcLayers()) {
        if (const QuantParams *p = profile.find(f->name())) {
            f->setInputQuant(*p);
            if (enable)
                f->setQuantized(true);
        }
    }
}

std::vector<std::uint8_t>
serializeQuantProfile(const QuantProfile &profile)
{
    std::vector<std::uint8_t> out;
    for (char ch : kMagic)
        out.push_back(std::uint8_t(ch));
    putU64(out, profile.entries.size());
    for (const QuantProfile::Entry &e : profile.entries) {
        putStr(out, e.layer);
        putF64(out, double(e.params.scale));
        putU64(out, e.params.zero);
    }
    return out;
}

PCNN_BINARY_READER
std::optional<QuantProfile>
deserializeQuantProfile(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8 ||
        std::memcmp(bytes.data(), kMagic, 8) != 0)
        return std::nullopt;
    const std::vector<std::uint8_t> body(bytes.begin() + 8,
                                         bytes.end());
    Reader r(body);

    std::uint64_t count = 0;
    if (!r.u64(count))
        return std::nullopt;
    if (count > 4096)
        return std::nullopt; // sanity bound

    QuantProfile profile;
    for (std::uint64_t i = 0; i < count; ++i) {
        QuantProfile::Entry e;
        double scale = 0.0;
        std::uint64_t zero = 0;
        if (!r.str(e.layer) || !r.f64(scale) || !r.u64(zero))
            return std::nullopt;
        // The quantizers divide by the scale and the kernels assume
        // a u7 zero point; a NaN/inf/zero/negative scale or an
        // out-of-range zero point marks a corrupt or hostile file.
        if (!std::isfinite(scale) || scale <= 0.0)
            return std::nullopt;
        if (zero > 127)
            return std::nullopt;
        e.params.scale = float(scale);
        if (!std::isfinite(e.params.scale) || e.params.scale <= 0.0f)
            return std::nullopt; // overflowed the f32 narrowing
        e.params.zero = std::uint8_t(zero);
        profile.entries.push_back(std::move(e));
    }
    if (!r.done())
        return std::nullopt; // trailing bytes
    return profile;
}

bool
saveQuantProfile(const QuantProfile &profile, const std::string &path)
{
    const auto bytes = serializeQuantProfile(profile);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.write(reinterpret_cast<const char *>(bytes.data()),
            std::streamsize(bytes.size()));
    return static_cast<bool>(f);
}

PCNN_BINARY_READER
std::optional<QuantProfile>
loadQuantProfile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f)
        return std::nullopt;
    const std::streamoff end = f.tellg();
    if (end < 0)
        return std::nullopt;
    const auto size = std::size_t(end);
    f.seekg(0);
    std::vector<std::uint8_t> bytes(size);
    f.read(reinterpret_cast<char *>(bytes.data()),
           std::streamsize(size));
    if (!f)
        return std::nullopt;
    return deserializeQuantProfile(bytes);
}

} // namespace pcnn
