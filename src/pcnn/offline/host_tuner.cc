#include "pcnn/offline/host_tuner.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/tags.hh"
#include "common/random.hh"
#include "nn/model_zoo.hh"

namespace pcnn {

namespace {

// Caps a hostile cache file cannot exceed: blocking dimensions far
// beyond any cache hierarchy, prefetch distances beyond any K, cache
// sizes beyond any machine. Values outside these are parse errors.
constexpr std::size_t kBlockCap = 1u << 24;
constexpr std::size_t kPrefetchCap = 4096;
constexpr std::size_t kCacheCap = std::size_t(1) << 40;

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char ch : s) {
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (std::uint8_t(ch) >= 0x20) {
            out += ch;
        }
        // control characters (none occur in cpuinfo strings) dropped
    }
    out += '"';
}

/**
 * Strict scanner for the flat tune-cache document. Same hostile-input
 * stance as plan_io's Reader: any deviation — truncation, unknown
 * escape, non-digit where a number belongs — fails the whole parse
 * rather than guessing.
 */
class JsonScan
{
  public:
    explicit JsonScan(const std::string &text)
        : s(text)
    {
    }

    bool
    lit(char c)
    {
        ws();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    str(std::string &out)
    {
        if (!lit('"'))
            return false;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char ch = s[pos++];
            if (ch == '\\') {
                if (pos >= s.size())
                    return false;
                ch = s[pos++];
                if (ch != '"' && ch != '\\')
                    return false; // only the escapes we ever write
            } else if (std::uint8_t(ch) < 0x20) {
                return false; // raw control char (incl. newline)
            }
            out += ch;
        }
        return pos < s.size() && s[pos++] == '"';
    }

    bool
    uint(std::uint64_t &out)
    {
        ws();
        if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
            return false;
        out = 0;
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
            const std::uint64_t digit = std::uint64_t(s[pos] - '0');
            if (out > (std::numeric_limits<std::uint64_t>::max() -
                       digit) / 10)
                return false; // overflow
            out = out * 10 + digit;
            ++pos;
        }
        return true;
    }

    bool
    done()
    {
        ws();
        return pos == s.size();
    }

  private:
    void
    ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** RAII save/restore of the kernel dispatch state across a sweep. */
class DispatchGuard
{
  public:
    DispatchGuard()
        : tierPinned(kernelTierPinned()), tier(activeKernelTier()),
          blkPinned(blockingPinned()), blk(activeBlocking())
    {
    }

    ~DispatchGuard()
    {
        if (tierPinned)
            setKernelTier(tier);
        else
            resetKernelTier();
        if (blkPinned)
            setBlocking(blk);
        else
            resetBlocking();
    }

    DispatchGuard(const DispatchGuard &) = delete;
    DispatchGuard &operator=(const DispatchGuard &) = delete;

  private:
    bool tierPinned;
    KernelTier tier;
    bool blkPinned;
    GemmBlocking blk;
};

/** One sweep shape with its operand buffers, filled once. */
struct ShapeBuffers
{
    GemmShape g;
    std::vector<float> a, b, c;
};

std::vector<ShapeBuffers>
makeBuffers(const std::vector<GemmShape> &shapes)
{
    Rng rng(0x705e);
    std::vector<ShapeBuffers> bufs;
    bufs.reserve(shapes.size());
    for (const GemmShape &g : shapes) {
        ShapeBuffers sb;
        sb.g = g;
        sb.a.resize(g.m * g.k);
        sb.b.resize(g.k * g.n);
        sb.c.resize(g.m * g.n);
        for (float &v : sb.a)
            v = float(rng.uniform(-1.0, 1.0));
        for (float &v : sb.b)
            v = float(rng.uniform(-1.0, 1.0));
        bufs.push_back(std::move(sb));
    }
    return bufs;
}

/** Minimum across `reps` of the total wall time over the shape set. */
double
timeShapeSet(std::vector<ShapeBuffers> &bufs, std::size_t reps)
{
    using Clock = std::chrono::steady_clock;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        for (ShapeBuffers &sb : bufs)
            sgemm(false, false, sb.g.m, sb.g.n, sb.g.k, sb.a.data(),
                  sb.b.data(), sb.c.data());
        const std::chrono::duration<double> dt = Clock::now() - t0;
        best = std::min(best, dt.count());
    }
    return best;
}

const ConvSpec &
convByName(const NetDescriptor &d, const char *name)
{
    for (const ConvSpec &c : d.convs)
        if (c.name == name)
            return c;
    pcnn_assert(false, "host tuner: ", d.name, " has no layer ", name);
    return d.convs.front(); // unreachable
}

} // namespace

HostTuneConfig
HostTuneConfig::forThisHost()
{
    HostTuneConfig cfg;
    cfg.cpuModel = cpuFeatures().model;
    cfg.features = cpuFeatures().str();
    cfg.l1d = cacheInfo().l1d;
    cfg.l2 = cacheInfo().l2;
    cfg.l3 = cacheInfo().l3;
    cfg.tier = bestKernelTier();
    cfg.blocking = defaultBlocking(cfg.tier);
    return cfg;
}

bool
HostTuneConfig::matchesThisHost() const
{
    return cpuModel == cpuFeatures().model &&
           features == cpuFeatures().str();
}

std::string
hostTuneCachePath()
{
    if (const char *env = std::getenv("PCNN_TUNE_CACHE");
        env != nullptr && *env != '\0')
        return env;
    if (const char *home = std::getenv("HOME");
        home != nullptr && *home != '\0')
        return std::string(home) + "/.cache/pcnn/hosttune-v1.json";
    return "hosttune-v1.json";
}

std::string
serializeHostTune(const HostTuneConfig &cfg)
{
    std::string out = "{\n";
    const auto num = [&](const char *key, std::uint64_t v,
                         bool last = false) {
        out += "  \"";
        out += key;
        out += "\": ";
        out += std::to_string(v);
        out += last ? "\n" : ",\n";
    };
    const auto str = [&](const char *key, const std::string &v) {
        out += "  \"";
        out += key;
        out += "\": ";
        appendJsonString(out, v);
        out += ",\n";
    };
    num("version", std::uint64_t(cfg.version));
    str("cpu_model", cfg.cpuModel);
    str("features", cfg.features);
    num("l1d", cfg.l1d);
    num("l2", cfg.l2);
    num("l3", cfg.l3);
    str("tier", kernelTierName(cfg.tier));
    num("kc", cfg.blocking.kc);
    num("mc", cfg.blocking.mc);
    num("nc", cfg.blocking.nc);
    num("prefetch", cfg.blocking.prefetch, true);
    out += "}\n";
    return out;
}

bool
parseHostTune(const std::string &text, HostTuneConfig &out,
              std::string &err)
{
    const auto fail = [&](const std::string &why) {
        err = why;
        return false;
    };

    JsonScan sc(text);
    if (!sc.lit('{'))
        return fail("not a JSON object");

    // Exactly these keys, each exactly once, in any order.
    std::string cpu_model, features, tier_name;
    std::uint64_t version = 0, l1d = 0, l2 = 0, l3 = 0;
    std::uint64_t kc = 0, mc = 0, nc = 0, prefetch = 0;
    bool seen[11] = {};
    const char *names[11] = {"version",  "cpu_model", "features",
                             "l1d",      "l2",        "l3",
                             "tier",     "kc",        "mc",
                             "nc",       "prefetch"};
    std::uint64_t *nums[11] = {&version, nullptr, nullptr, &l1d,
                               &l2,      &l3,     nullptr, &kc,
                               &mc,      &nc,     &prefetch};
    std::string *strs[11] = {nullptr,     &cpu_model, &features,
                             nullptr,     nullptr,    nullptr,
                             &tier_name,  nullptr,    nullptr,
                             nullptr,     nullptr};

    bool first = true;
    while (!sc.lit('}')) {
        if (!first && !sc.lit(','))
            return fail("missing ',' between members");
        first = false;
        std::string key;
        if (!sc.str(key))
            return fail("malformed member key");
        if (!sc.lit(':'))
            return fail("missing ':' after \"" + key + "\"");
        int idx = -1;
        for (int i = 0; i < 11; ++i)
            if (key == names[i])
                idx = i;
        if (idx < 0)
            return fail("unknown key \"" + key + "\"");
        if (seen[idx])
            return fail("duplicate key \"" + key + "\"");
        seen[idx] = true;
        if (nums[idx] != nullptr) {
            if (!sc.uint(*nums[idx]))
                return fail("key \"" + key +
                            "\" is not an unsigned integer");
        } else if (!sc.str(*strs[idx])) {
            return fail("key \"" + key + "\" is not a string");
        }
    }
    if (!sc.done())
        return fail("trailing content after the object");
    for (int i = 0; i < 11; ++i)
        if (!seen[i])
            return fail(std::string("missing key \"") + names[i] +
                        "\"");

    if (version != std::uint64_t(kHostTuneVersion))
        return fail("format version " + std::to_string(version) +
                    " (this build reads " +
                    std::to_string(kHostTuneVersion) + ")");
    KernelTier tier;
    if (!parseKernelTier(tier_name, tier))
        return fail("unknown tier \"" + tier_name + "\"");
    if (l1d > kCacheCap || l2 > kCacheCap || l3 > kCacheCap)
        return fail("cache size out of range");
    if (kc == 0 || kc > kBlockCap || mc == 0 || mc > kBlockCap ||
        nc == 0 || nc > kBlockCap)
        return fail("blocking value out of range");
    if (prefetch > kPrefetchCap)
        return fail("prefetch distance out of range");

    out.version = int(version);
    out.cpuModel = cpu_model;
    out.features = features;
    out.l1d = l1d;
    out.l2 = l2;
    out.l3 = l3;
    out.tier = tier;
    out.blocking = GemmBlocking{kc, mc, nc, prefetch};
    err.clear();
    return true;
}

bool
saveHostTune(const HostTuneConfig &cfg, const std::string &path)
{
    std::error_code ec;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec); // best effort
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    const std::string doc = serializeHostTune(cfg);
    f.write(doc.data(), std::streamsize(doc.size()));
    return static_cast<bool>(f);
}

PCNN_BINARY_READER
bool
loadHostTune(const std::string &path, HostTuneConfig &out,
             std::string &err)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    if (!parseHostTune(ss.str(), out, err))
        return false;
    if (!out.matchesThisHost()) {
        err = "host mismatch: cache is for \"" + out.cpuModel + "\" (" +
              out.features + "), this host is \"" +
              cpuFeatures().model + "\" (" + cpuFeatures().str() + ")";
        return false;
    }
    if (!kernelTierSupported(out.tier)) {
        err = std::string("tier ") + kernelTierName(out.tier) +
              " is not supported on this host";
        return false;
    }
    return true;
}

bool
applyHostTune(const HostTuneConfig &cfg)
{
    if (kernelTierForcedByEnv() && activeKernelTier() != cfg.tier) {
        pcnn_warn("host tune cache pins tier ",
                  kernelTierName(cfg.tier),
                  " but PCNN_KERNEL_TIER overrides with ",
                  kernelTierName(activeKernelTier()),
                  "; cache ignored");
        return false;
    }
    setKernelTier(cfg.tier);
    setBlocking(cfg.blocking);
    return true;
}

bool
applyHostTuneCacheOnce()
{
    static const bool applied = [] {
        // Refuse to flip tier/blocking once a GEMM has executed:
        // fp32 results computed before the flip (e.g. a prototype
        // forward taken as a bitwise reference) would differ from
        // everything computed after it. Processes that want the
        // tuned config must reach this hook before their first
        // forward; the serving engine's constructor does.
        if (gemmHasRun())
            return false;
        HostTuneConfig cfg;
        std::string err;
        if (!loadHostTune(hostTuneCachePath(), cfg, err))
            return false;
        return applyHostTune(cfg);
    }();
    return applied;
}

std::vector<GemmShape>
hostTuneShapes()
{
    std::vector<GemmShape> shapes;
    const auto add = [&](const GemmShape &g) {
        for (const GemmShape &h : shapes)
            if (h.m == g.m && h.n == g.n && h.k == g.k)
                return;
        shapes.push_back(g);
    };

    // Every distinct conv GEMM plus the FC tail of the trainable zoo
    // at serving batch 1.
    Rng rng(1);
    const NetDescriptor minis[] = {
        describe(makeMiniNet(MiniSize::Medium, rng)),
        describe(makeMiniAlexNet(rng)),
        describe(makeMiniVgg(rng)),
        describe(makeMiniInception(rng)),
    };
    for (const NetDescriptor &d : minis) {
        for (const ConvSpec &c : d.convs)
            add(c.gemmShape(1));
        for (const auto &[in_f, out_f] : d.fcs)
            add(GemmShape{1, out_f, in_f});
    }

    // The paper networks' large-K conv shapes — the BENCH_pr6 e2e
    // acceptance set.
    add(convByName(alexNet(), "CONV2").gemmShape(1));
    const NetDescriptor vgg = vgg16();
    add(convByName(vgg, "CONV2_1").gemmShape(1));
    add(convByName(vgg, "CONV3_1").gemmShape(1));
    return shapes;
}

HostTuneResult
autotuneHost(const HostTuneOptions &opts)
{
    DispatchGuard guard;
    HostTuneResult res;
    res.config = HostTuneConfig::forThisHost();

    std::vector<ShapeBuffers> bufs = makeBuffers(hostTuneShapes());
    const std::size_t reps = std::max<std::size_t>(1, opts.reps);

    KernelTier best_tier = KernelTier::Portable;
    GemmBlocking best_blk = defaultBlocking(best_tier);
    double best_s = std::numeric_limits<double>::infinity();

    const auto trial = [&](KernelTier tier, const GemmBlocking &blk) {
        setKernelTier(tier);
        setBlocking(blk);
        const double s = timeShapeSet(bufs, reps);
        res.trials.push_back(HostTuneTrial{tier, blk, s});
        if (s < best_s) {
            best_s = s;
            best_tier = tier;
            best_blk = blk;
        }
    };

    // Stage 1: race every supported tier at its cache-derived default.
    for (KernelTier t : supportedKernelTiers())
        trial(t, defaultBlocking(t));

    if (!opts.quick) {
        const MicroKernel &mk = microKernelFor(best_tier);
        const auto align_down = [](std::size_t v, std::size_t unit) {
            return std::max(unit, v - v % unit);
        };
        const auto race = [&](std::vector<GemmBlocking> cands) {
            for (const GemmBlocking &blk : cands)
                if (!(blk == best_blk))
                    trial(best_tier, blk);
        };

        // Stage 2: coordinate sweep of Kc, then Nc, then Mc, halving
        // and doubling around the incumbent.
        {
            std::vector<GemmBlocking> c;
            for (std::size_t kc :
                 {best_blk.kc / 2, best_blk.kc * 2}) {
                GemmBlocking b = best_blk;
                b.kc = std::clamp<std::size_t>(kc, 32, 1024);
                c.push_back(b);
            }
            race(std::move(c));
        }
        {
            std::vector<GemmBlocking> c;
            for (std::size_t nc :
                 {best_blk.nc / 2, best_blk.nc * 2}) {
                GemmBlocking b = best_blk;
                b.nc = align_down(nc, mk.nr);
                c.push_back(b);
            }
            race(std::move(c));
        }
        {
            std::vector<GemmBlocking> c;
            for (std::size_t mc :
                 {best_blk.mc / 2, best_blk.mc * 2}) {
                GemmBlocking b = best_blk;
                b.mc = align_down(mc, mk.mr);
                c.push_back(b);
            }
            race(std::move(c));
        }

        // Stage 3: software-prefetch distance on the winner.
        {
            std::vector<GemmBlocking> c;
            for (std::size_t pf : {std::size_t(2), std::size_t(4),
                                   std::size_t(8)}) {
                GemmBlocking b = best_blk;
                b.prefetch = pf;
                c.push_back(b);
            }
            race(std::move(c));
        }
    }

    res.config.tier = best_tier;
    res.config.blocking = best_blk;
    return res;
}

HostTuneResult
ensureHostTuned(const std::string &path, const HostTuneOptions &opts)
{
    {
        HostTuneConfig cfg;
        std::string err;
        if (loadHostTune(path, cfg, err)) {
            HostTuneResult res;
            res.config = cfg;
            res.fromCache = true;
            return res;
        }
    }
    HostTuneResult res = autotuneHost(opts);
    if (!saveHostTune(res.config, path))
        pcnn_warn("host tuner: cannot write tune cache ", path);
    return res;
}

} // namespace pcnn
