/**
 * @file
 * Coordinated sub-matrix / register fine-tuning (Section IV.B.2).
 *
 * For every convolutional layer the tuner sweeps the tile catalogue
 * and, within each tile, the register budget from minReg (register
 * file / max threads) up to the kernel's natural demand. Register
 * counts are pruned to the Fig. 9 staircase: within one TLP stair
 * only the rightmost point (most registers) can win, so only those
 * points are scored. Selection uses the paper's S_kernel metric
 * (Eq. 10); a time-model-based selection is also provided for the
 * ablation bench.
 */

#ifndef PCNN_PCNN_OFFLINE_KERNEL_TUNER_HH
#define PCNN_PCNN_OFFLINE_KERNEL_TUNER_HH

#include <mutex>
#include <vector>

#include "gpu/kernel_model.hh"
#include "nn/conv_spec.hh"

namespace pcnn {

/** Outcome of tuning one layer. */
struct TunedKernel
{
    KernelConfig config;
    std::size_t optTLP = 0;       ///< CTAs per SM the config sustains
    std::size_t optSM = 0;        ///< Eq. 11, filled by ResourceModel
    double skernel = 0.0;         ///< Eq. 10 score of the winner
    double predictedTimeS = 0.0;  ///< time-model estimate, whole GPU
    ConvAlgo algo = ConvAlgo::Im2col; ///< chosen conv algorithm
    bool quantized = false; ///< run this layer's forward int8 (v3)
};

/** How the tuner ranks candidate kernels. */
enum class TuneObjective
{
    SkernelMetric, ///< the paper's Eq. 10 metric
    TimeModel,     ///< direct predicted-time minimization (ablation)
};

/**
 * The offline kernel tuner, bound to one GPU.
 */
class KernelTuner
{
  public:
    /** Bind the deployment architecture. */
    explicit KernelTuner(GpuSpec gpu);

    /**
     * Smallest useful register budget: register file divided by the
     * maximum resident threads (32 on all modeled parts).
     */
    std::size_t minReg() const;

    /**
     * The Fig. 9 staircase for a tile: one candidate per distinct
     * TLP value, keeping the largest register count on each stair.
     * Ordered by decreasing registers (increasing TLP).
     */
    std::vector<KernelConfig> staircase(const TileConfig &tile) const;

    /**
     * All candidate kernels for a layer: the staircases of every
     * catalogue tile. The set depends only on the GPU, so it is
     * computed once and cached; the accessor is thread-safe and may
     * be called from parallel batch/layer sweeps.
     */
    const std::vector<KernelConfig> &candidates() const;

    /**
     * Tune one layer's GEMM: pick the candidate with the smallest
     * objective. TLP is the candidate's occupancy. Candidates are
     * scored in parallel; the winner is chosen by a sequential scan
     * in catalogue order, so the result (including tie-breaks) is
     * identical to the serial sweep at any thread count.
     */
    TunedKernel tune(const GemmShape &gemm,
                     TuneObjective objective =
                         TuneObjective::SkernelMetric) const;

    /**
     * Tune one conv layer with the algorithm as a first-class knob
     * (DESIGN.md §5e): tile/register-tune each eligible algorithm's
     * GEMM lowering independently (im2col: one S_f^2 N_c-deep GEMM
     * per group; winograd: 16 N_c-deep tile-GEMMs per group), then
     * pick the algorithm with the smaller predicted whole-layer time
     * — the Eq. 12 model extended with the winograd transform
     * streaming cost. Ties break toward im2col.
     */
    TunedKernel tuneLayer(const ConvSpec &layer, std::size_t batch,
                          TuneObjective objective =
                              TuneObjective::SkernelMetric) const;

    /**
     * Predicted whole-layer time of a tuned kernel on the whole GPU
     * (no optSM cap yet): per-launch kernel time x launch count,
     * plus the transform streaming overhead for winograd.
     */
    double layerPredictedTime(const ConvSpec &layer,
                              const TunedKernel &kernel,
                              std::size_t batch) const;

  private:
    GpuSpec gpuSpec;
    /// lazy cache: the candidate set depends only on the GPU.
    /// Initialized exactly once under cacheOnce, immutable after —
    /// candidates() may hand out references without a lock.
    mutable std::once_flag cacheOnce;
    mutable std::vector<KernelConfig> candidateCache;
};

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_KERNEL_TUNER_HH
