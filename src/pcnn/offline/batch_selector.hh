/**
 * @file
 * Batch-size selection (Section IV.B.1).
 *
 * Background tasks use the smallest batch that fully utilizes the GPU
 * in the least-utilized (last) layer; latency-sensitive tasks start
 * from the data available inside the time requirement and are later
 * shrunk by the global decision loop (Eq. 13).
 */

#ifndef PCNN_PCNN_OFFLINE_BATCH_SELECTOR_HH
#define PCNN_PCNN_OFFLINE_BATCH_SELECTOR_HH

#include <cstddef>
#include <vector>

#include "nn/model_zoo.hh"
#include "pcnn/offline/kernel_tuner.hh"
#include "pcnn/task.hh"

namespace pcnn {

/** Batch selection policy bound to one GPU. */
class BatchSelector
{
  public:
    /** Bind the deployment architecture. */
    explicit BatchSelector(GpuSpec gpu);

    /** Largest batch whose footprint fits device memory. */
    std::size_t memoryCap(const NetDescriptor &net) const;

    /**
     * Background-task batch: the smallest batch that drives the last
     * conv layer's Util to 1 (its GridSize becomes a multiple of the
     * tuned kernel's maxBlocks), capped by device memory. Falls back
     * to the highest-Util batch under the cap if no batch reaches
     * Util == 1.
     */
    std::size_t backgroundBatch(const NetDescriptor &net) const;

    /**
     * The smallest batch whose last-layer Util reaches 1 — the
     * paper's "optimal batch size" marker in Fig. 8, which varies
     * across GPU platforms. Returns 0 when no batch under the cap
     * reaches full utilization.
     */
    std::size_t smallestFullUtilBatch(const NetDescriptor &net) const;

    /**
     * Initial batch of a latency-sensitive task: the data generated
     * within the time requirement (rate * T), at least 1, capped by
     * device memory.
     */
    std::size_t initialBatch(const NetDescriptor &net,
                             const AppSpec &app,
                             const UserRequirement &req) const;

    /** Search ceiling of the background batch sweep. */
    static constexpr std::size_t maxBatch = 512;

  private:
    /**
     * Last-layer Util for every batch in [1, cap], tuned per batch.
     * The batch sweep is embarrassingly parallel and fans out over
     * the thread pool; utils[b - 1] is the Util of batch b.
     */
    std::vector<double> lastLayerUtils(const ConvSpec &last,
                                       std::size_t cap) const;

    GpuSpec gpuSpec;
    KernelTuner tuner;
};

} // namespace pcnn

#endif // PCNN_PCNN_OFFLINE_BATCH_SELECTOR_HH
