#include "pcnn/offline/plan_io.hh"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/logging.hh"
#include "common/tags.hh"

namespace pcnn {

namespace {

// Format history: "PCNNPLN1" (PR 2) has no version byte and no
// per-layer algorithm; "PCNNPLN2" is followed by an explicit format
// version byte, and each layer record carries its conv algorithm.
// Version 3 keeps the V2 magic (the version byte discriminates) and
// appends a per-layer int8 `quantized` flag after the algorithm.
// Old plans keep loading (algorithm defaults to im2col, quantized
// to false).
constexpr char kMagicV1[8] = {'P', 'C', 'N', 'N', 'P', 'L', 'N', '1'};
constexpr char kMagicV2[8] = {'P', 'C', 'N', 'N', 'P', 'L', 'N', '2'};

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

void
putStr(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &bytes)
        : data(bytes)
    {
    }

    bool
    u64(std::uint64_t &v)
    {
        if (pos + 8 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data[pos + std::size_t(i)]) << (8 * i);
        pos += 8;
        return true;
    }

    bool
    f64(double &v)
    {
        std::uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, 8);
        return true;
    }

    bool
    str(std::string &s)
    {
        // `pos + len` can wrap for a hostile 64-bit length, so the
        // bound is phrased against the bytes actually remaining.
        std::uint64_t len;
        if (!u64(len) || len > data.size() - pos)
            return fail();
        s.assign(data.begin() + std::ptrdiff_t(pos),
                 data.begin() + std::ptrdiff_t(pos + len));
        pos += len;
        return true;
    }

    bool done() const { return ok && pos == data.size(); }

    bool fail()
    {
        ok = false;
        return false;
    }

  private:
    const std::vector<std::uint8_t> &data;
    std::size_t pos = 0;
    bool ok = true;
};

} // namespace

std::vector<std::uint8_t>
serializePlan(const CompiledPlan &plan)
{
    return serializePlan(plan, kPlanFormatVersion);
}

std::vector<std::uint8_t>
serializePlan(const CompiledPlan &plan, std::uint8_t version)
{
    pcnn_assert(version >= 1 && version <= kPlanFormatVersion,
                "unsupported plan format version ", version);
    const bool v2 = version >= 2;
    const bool v3 = version >= 3;
    std::vector<std::uint8_t> out;
    // Byte-wise append: vector::insert over a raw range trips a
    // GCC 12 -Wstringop-overflow false positive under sanitizer
    // instrumentation.
    for (char ch : v2 ? kMagicV2 : kMagicV1)
        out.push_back(std::uint8_t(ch));
    if (v2)
        out.push_back(version);
    putStr(out, plan.netName);
    putStr(out, plan.gpuName);
    putU64(out, plan.batch);
    putU64(out, plan.timeRequirementMissed ? 1 : 0);
    putF64(out, plan.time.convS);
    putF64(out, plan.time.fcS);
    putF64(out, plan.time.auxS);
    putF64(out, plan.footprint.weightBytes);
    putF64(out, plan.footprint.activationBytes);
    putF64(out, plan.footprint.workspaceBytes);

    putU64(out, plan.layers.size());
    for (const LayerSchedule &ls : plan.layers) {
        const ConvSpec &c = ls.layer;
        putStr(out, c.name);
        putU64(out, c.inC);
        putU64(out, c.outC);
        putU64(out, c.kernel);
        putU64(out, c.stride);
        putU64(out, c.pad);
        putU64(out, c.inH);
        putU64(out, c.inW);
        putU64(out, c.groups);

        putU64(out, ls.kernel.config.tile.m);
        putU64(out, ls.kernel.config.tile.n);
        putU64(out, ls.kernel.config.regsPerThread);
        putU64(out, ls.kernel.optTLP);
        putU64(out, ls.kernel.optSM);
        if (v2)
            putU64(out, std::uint64_t(ls.kernel.algo));
        if (v3)
            putU64(out, ls.kernel.quantized ? 1 : 0);
        putF64(out, ls.kernel.skernel);
        putF64(out, ls.kernel.predictedTimeS);
        putF64(out, ls.timeS);
        putF64(out, ls.util);
    }
    return out;
}

PCNN_BINARY_READER
std::optional<CompiledPlan>
deserializePlan(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8)
        return std::nullopt;
    bool v2 = false;
    if (std::memcmp(bytes.data(), kMagicV2, 8) == 0)
        v2 = true;
    else if (std::memcmp(bytes.data(), kMagicV1, 8) != 0)
        return std::nullopt;
    std::size_t header = 8;
    bool v3 = false;
    if (v2) {
        // Explicit format-version byte; anything newer than this
        // build understands is rejected rather than misparsed.
        if (bytes.size() < 9 || bytes[8] < 2 ||
            bytes[8] > kPlanFormatVersion)
            return std::nullopt;
        v3 = bytes[8] >= 3;
        header = 9;
    }
    const std::vector<std::uint8_t> body(
        bytes.begin() + std::ptrdiff_t(header), bytes.end());
    Reader r(body);

    CompiledPlan plan;
    std::uint64_t missed = 0, n_layers = 0, batch = 0;
    if (!r.str(plan.netName) || !r.str(plan.gpuName) ||
        !r.u64(batch) || !r.u64(missed) || !r.f64(plan.time.convS) ||
        !r.f64(plan.time.fcS) || !r.f64(plan.time.auxS) ||
        !r.f64(plan.footprint.weightBytes) ||
        !r.f64(plan.footprint.activationBytes) ||
        !r.f64(plan.footprint.workspaceBytes) || !r.u64(n_layers)) {
        return std::nullopt;
    }
    // Sanity bounds on everything the rest of the system treats as
    // an invariant: a truncated or hostile plan file must surface as
    // a clean nullopt here, never as an assertion or UB downstream.
    constexpr std::uint64_t kDimCap = 1u << 20;
    const auto finite_nonneg = [](double v) {
        return std::isfinite(v) && v >= 0.0;
    };
    if (batch == 0 || batch > kDimCap)
        return std::nullopt;
    if (!finite_nonneg(plan.time.convS) ||
        !finite_nonneg(plan.time.fcS) ||
        !finite_nonneg(plan.time.auxS) ||
        !finite_nonneg(plan.footprint.weightBytes) ||
        !finite_nonneg(plan.footprint.activationBytes) ||
        !finite_nonneg(plan.footprint.workspaceBytes)) {
        return std::nullopt;
    }
    plan.batch = batch;
    plan.timeRequirementMissed = missed != 0;
    if (n_layers > 4096)
        return std::nullopt; // sanity bound

    for (std::uint64_t i = 0; i < n_layers; ++i) {
        LayerSchedule ls;
        ConvSpec &c = ls.layer;
        std::uint64_t in_c, out_c, kernel, stride, pad, in_h, in_w,
            groups, tile_m, tile_n, regs, tlp, sm;
        std::uint64_t algo = std::uint64_t(ConvAlgo::Im2col);
        std::uint64_t quantized = 0;
        if (!r.str(c.name) || !r.u64(in_c) || !r.u64(out_c) ||
            !r.u64(kernel) || !r.u64(stride) || !r.u64(pad) ||
            !r.u64(in_h) || !r.u64(in_w) || !r.u64(groups) ||
            !r.u64(tile_m) || !r.u64(tile_n) || !r.u64(regs) ||
            !r.u64(tlp) || !r.u64(sm) ||
            (v2 && !r.u64(algo)) || (v3 && !r.u64(quantized)) ||
            !r.f64(ls.kernel.skernel) ||
            !r.f64(ls.kernel.predictedTimeS) || !r.f64(ls.timeS) ||
            !r.f64(ls.util)) {
            return std::nullopt;
        }
        // The flag is strictly boolean on the wire; anything else
        // marks a corrupt or hostile file.
        if (quantized > 1)
            return std::nullopt;
        ls.kernel.quantized = quantized != 0;
        // Geometry must satisfy every ConvSpec/ConvGeom contract the
        // models assert on (divisible groups, kernel fitting in the
        // padded input) before any of them runs.
        if (in_c == 0 || in_c > kDimCap || out_c == 0 ||
            out_c > kDimCap || kernel == 0 || kernel > kDimCap ||
            stride == 0 || stride > kDimCap || pad > kDimCap ||
            in_h == 0 || in_h > kDimCap || in_w == 0 ||
            in_w > kDimCap || groups == 0 || groups > kDimCap) {
            return std::nullopt;
        }
        if (in_c % groups != 0 || out_c % groups != 0)
            return std::nullopt;
        if (in_h + 2 * pad < kernel || in_w + 2 * pad < kernel)
            return std::nullopt;
        c.inC = in_c;
        c.outC = out_c;
        c.kernel = kernel;
        c.stride = stride;
        c.pad = pad;
        c.inH = in_h;
        c.inW = in_w;
        c.groups = groups;

        // The tile must exist in this build's catalogue.
        bool found = false;
        for (const TileConfig &t : tileCatalogue()) {
            if (t.m == tile_m && t.n == tile_n) {
                ls.kernel.config.tile = t;
                found = true;
                break;
            }
        }
        if (!found)
            return std::nullopt;
        // Resource-model outputs: the runtime scheduler checks optSM
        // against the target GPU's SM count; here we reject the
        // values no GPU could produce.
        if (regs == 0 || regs > kDimCap || tlp == 0 ||
            tlp > kDimCap || sm == 0 || sm > kDimCap) {
            return std::nullopt;
        }
        if (!std::isfinite(ls.kernel.skernel) ||
            !std::isfinite(ls.kernel.predictedTimeS) ||
            !std::isfinite(ls.timeS) || !std::isfinite(ls.util)) {
            return std::nullopt;
        }
        ls.kernel.config.regsPerThread = regs;
        ls.kernel.optTLP = tlp;
        ls.kernel.optSM = sm;
        // The algorithm must be a known encoding AND eligible for
        // this layer's geometry: a hostile or stale file must not
        // drive winograd onto a 5x5 layer (the executor would abort).
        if (algo > std::uint64_t(ConvAlgo::Winograd))
            return std::nullopt;
        ls.kernel.algo = ConvAlgo(std::uint8_t(algo));
        if (!c.algoEligible(ls.kernel.algo))
            return std::nullopt;
        ls.gemm = ls.kernel.algo == ConvAlgo::Winograd
                      ? c.winogradGemmShape(plan.batch)
                      : c.gemmShape(plan.batch);
        plan.layers.push_back(std::move(ls));
    }
    if (!r.done())
        return std::nullopt;
    return plan;
}

bool
savePlan(const CompiledPlan &plan, const std::string &path)
{
    const auto bytes = serializePlan(plan);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.write(reinterpret_cast<const char *>(bytes.data()),
            std::streamsize(bytes.size()));
    return static_cast<bool>(f);
}

PCNN_BINARY_READER
std::optional<CompiledPlan>
loadPlan(const std::string &path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f)
        return std::nullopt;
    const std::streamoff end = f.tellg();
    if (end < 0)
        return std::nullopt;
    const auto size = std::size_t(end);
    f.seekg(0);
    std::vector<std::uint8_t> bytes(size);
    f.read(reinterpret_cast<char *>(bytes.data()),
           std::streamsize(size));
    if (!f)
        return std::nullopt;
    return deserializePlan(bytes);
}

} // namespace pcnn
