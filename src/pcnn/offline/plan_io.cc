#include "pcnn/offline/plan_io.hh"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/logging.hh"
#include "common/tags.hh"

namespace pcnn {

namespace {

// Format history: "PCNNPLN1" (PR 2) has no version byte and no
// per-layer algorithm; "PCNNPLN2" is followed by an explicit format
// version byte, and each layer record carries its conv algorithm.
// Version 3 keeps the V2 magic (the version byte discriminates) and
// appends a per-layer int8 `quantized` flag after the algorithm.
// Version 4 appends an optional compiled-graph schedule section
// (DESIGN.md §5j) after the layer records: a presence flag, then the
// GraphSchedule header (batch / arenaFloats / tiledOps / counts),
// the ops and the values. Old plans keep loading (algorithm defaults
// to im2col, quantized to false, schedule to nullopt).
constexpr char kMagicV1[8] = {'P', 'C', 'N', 'N', 'P', 'L', 'N', '1'};
constexpr char kMagicV2[8] = {'P', 'C', 'N', 'N', 'P', 'L', 'N', '2'};

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

void
putStr(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putU64(out, std::uint64_t(v));
}

class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &bytes)
        : data(bytes)
    {
    }

    bool
    u64(std::uint64_t &v)
    {
        if (pos + 8 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data[pos + std::size_t(i)]) << (8 * i);
        pos += 8;
        return true;
    }

    bool
    f64(double &v)
    {
        std::uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, 8);
        return true;
    }

    bool
    i64(std::int64_t &v)
    {
        std::uint64_t bits;
        if (!u64(bits))
            return false;
        v = std::int64_t(bits);
        return true;
    }

    bool
    str(std::string &s)
    {
        // `pos + len` can wrap for a hostile 64-bit length, so the
        // bound is phrased against the bytes actually remaining.
        std::uint64_t len;
        if (!u64(len) || len > data.size() - pos)
            return fail();
        s.assign(data.begin() + std::ptrdiff_t(pos),
                 data.begin() + std::ptrdiff_t(pos + len));
        pos += len;
        return true;
    }

    bool done() const { return ok && pos == data.size(); }

    bool fail()
    {
        ok = false;
        return false;
    }

  private:
    const std::vector<std::uint8_t> &data;
    std::size_t pos = 0;
    bool ok = true;
};

/** Append the v4 schedule section for `s`. */
void
putSchedule(std::vector<std::uint8_t> &out, const GraphSchedule &s)
{
    putU64(out, s.batch);
    putU64(out, s.arenaFloats);
    putU64(out, s.tiledOps);
    putU64(out, s.ops.size());
    putU64(out, s.values.size());
    for (const GraphOp &op : s.ops) {
        putU64(out, std::uint64_t(op.exec));
        putU64(out, op.layer);
        putI64(out, op.input);
        putI64(out, op.output);
        putU64(out, op.chanOff);
        putU64(out, op.chanCount);
        putU64(out, op.tiled ? 1 : 0);
        putStr(out, op.layerKind);
        putStr(out, op.layerName);
    }
    for (const GraphValue &v : s.values) {
        putU64(out, v.c);
        putU64(out, v.h);
        putU64(out, v.w);
        putU64(out, v.perItem ? 1 : 0);
        putU64(out, v.isOutput ? 1 : 0);
        putU64(out, v.offset);
        putU64(out, v.extent);
        putI64(out, v.def);
        putI64(out, v.lastUse);
    }
}

/**
 * Parse the v4 schedule section into `s`. Counts are bounded before
 * any container grows, every enum/flag/id is range-checked as it is
 * read, and the assembled schedule must pass the full structural
 * validator (validateGraphSchedule) before the caller sees it — a
 * hostile section (truncated op list, out-of-range arena offsets,
 * lifetimes edited to alias two live values, an arena smaller than
 * the highest offset + extent) returns false, never a crash.
 */
PCNN_BINARY_READER
bool
readSchedule(Reader &r, GraphSchedule &s)
{
    constexpr std::uint64_t kCountCap = 4096;
    constexpr std::int64_t kIdCap = std::int64_t(kCountCap);
    std::uint64_t batch = 0, arena = 0, tiled_ops = 0, n_ops = 0,
                  n_values = 0;
    if (!r.u64(batch) || !r.u64(arena) || !r.u64(tiled_ops) ||
        !r.u64(n_ops) || !r.u64(n_values))
        return false;
    if (n_ops == 0 || n_ops > kCountCap || n_values == 0 ||
        n_values > kCountCap || tiled_ops > n_ops)
        return false;
    s.batch = batch;
    s.arenaFloats = arena;
    s.tiledOps = tiled_ops;
    s.ops.resize(n_ops);
    s.values.resize(n_values);
    for (GraphOp &op : s.ops) {
        std::uint64_t exec = 0, layer = 0, chan_off = 0,
                      chan_count = 0, tiled = 0;
        std::int64_t input = 0, output = 0;
        if (!r.u64(exec) || !r.u64(layer) || !r.i64(input) ||
            !r.i64(output) || !r.u64(chan_off) ||
            !r.u64(chan_count) || !r.u64(tiled) ||
            !r.str(op.layerKind) || !r.str(op.layerName))
            return false;
        if (exec > std::uint64_t(GraphOpExec::CopyWindow) ||
            tiled > 1)
            return false;
        if (input < kGraphInputValue || input >= kIdCap ||
            output < 0 || output >= kIdCap)
            return false;
        op.exec = GraphOpExec(std::uint8_t(exec));
        op.layer = layer;
        op.input = int(input);
        op.output = int(output);
        op.chanOff = chan_off;
        op.chanCount = chan_count;
        op.tiled = tiled != 0;
    }
    for (GraphValue &v : s.values) {
        std::uint64_t c = 0, h = 0, w = 0, per_item = 0,
                      is_output = 0, offset = 0, extent = 0;
        std::int64_t def = 0, last_use = 0;
        if (!r.u64(c) || !r.u64(h) || !r.u64(w) ||
            !r.u64(per_item) || !r.u64(is_output) ||
            !r.u64(offset) || !r.u64(extent) || !r.i64(def) ||
            !r.i64(last_use))
            return false;
        if (per_item > 1 || is_output > 1)
            return false;
        // Lifetimes are op indices; the validator recomputes and
        // compares them, but the range must be sane first.
        if (def < -1 || def >= kIdCap || last_use < -1 ||
            last_use >= kIdCap)
            return false;
        v.c = c;
        v.h = h;
        v.w = w;
        v.perItem = per_item != 0;
        v.isOutput = is_output != 0;
        v.offset = offset;
        v.extent = extent;
        v.def = int(def);
        v.lastUse = int(last_use);
    }
    return validateGraphSchedule(s);
}

} // namespace

std::vector<std::uint8_t>
serializePlan(const CompiledPlan &plan)
{
    return serializePlan(plan, kPlanFormatVersion);
}

std::vector<std::uint8_t>
serializePlan(const CompiledPlan &plan, std::uint8_t version)
{
    pcnn_assert(version >= 1 && version <= kPlanFormatVersion,
                "unsupported plan format version ", version);
    const bool v2 = version >= 2;
    const bool v3 = version >= 3;
    const bool v4 = version >= 4;
    std::vector<std::uint8_t> out;
    // Byte-wise append: vector::insert over a raw range trips a
    // GCC 12 -Wstringop-overflow false positive under sanitizer
    // instrumentation.
    for (char ch : v2 ? kMagicV2 : kMagicV1)
        out.push_back(std::uint8_t(ch));
    if (v2)
        out.push_back(version);
    putStr(out, plan.netName);
    putStr(out, plan.gpuName);
    putU64(out, plan.batch);
    putU64(out, plan.timeRequirementMissed ? 1 : 0);
    putF64(out, plan.time.convS);
    putF64(out, plan.time.fcS);
    putF64(out, plan.time.auxS);
    putF64(out, plan.footprint.weightBytes);
    putF64(out, plan.footprint.activationBytes);
    putF64(out, plan.footprint.workspaceBytes);

    putU64(out, plan.layers.size());
    for (const LayerSchedule &ls : plan.layers) {
        const ConvSpec &c = ls.layer;
        putStr(out, c.name);
        putU64(out, c.inC);
        putU64(out, c.outC);
        putU64(out, c.kernel);
        putU64(out, c.stride);
        putU64(out, c.pad);
        putU64(out, c.inH);
        putU64(out, c.inW);
        putU64(out, c.groups);

        putU64(out, ls.kernel.config.tile.m);
        putU64(out, ls.kernel.config.tile.n);
        putU64(out, ls.kernel.config.regsPerThread);
        putU64(out, ls.kernel.optTLP);
        putU64(out, ls.kernel.optSM);
        if (v2)
            putU64(out, std::uint64_t(ls.kernel.algo));
        if (v3)
            putU64(out, ls.kernel.quantized ? 1 : 0);
        putF64(out, ls.kernel.skernel);
        putF64(out, ls.kernel.predictedTimeS);
        putF64(out, ls.timeS);
        putF64(out, ls.util);
    }
    if (v4) {
        putU64(out, plan.schedule.has_value() ? 1 : 0);
        if (plan.schedule)
            putSchedule(out, *plan.schedule);
    }
    return out;
}

PCNN_BINARY_READER
std::optional<CompiledPlan>
deserializePlan(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8)
        return std::nullopt;
    bool v2 = false;
    if (std::memcmp(bytes.data(), kMagicV2, 8) == 0)
        v2 = true;
    else if (std::memcmp(bytes.data(), kMagicV1, 8) != 0)
        return std::nullopt;
    std::size_t header = 8;
    bool v3 = false;
    bool v4 = false;
    if (v2) {
        // Explicit format-version byte; anything newer than this
        // build understands is rejected rather than misparsed.
        if (bytes.size() < 9 || bytes[8] < 2 ||
            bytes[8] > kPlanFormatVersion)
            return std::nullopt;
        v3 = bytes[8] >= 3;
        v4 = bytes[8] >= 4;
        header = 9;
    }
    const std::vector<std::uint8_t> body(
        bytes.begin() + std::ptrdiff_t(header), bytes.end());
    Reader r(body);

    CompiledPlan plan;
    std::uint64_t missed = 0, n_layers = 0, batch = 0;
    if (!r.str(plan.netName) || !r.str(plan.gpuName) ||
        !r.u64(batch) || !r.u64(missed) || !r.f64(plan.time.convS) ||
        !r.f64(plan.time.fcS) || !r.f64(plan.time.auxS) ||
        !r.f64(plan.footprint.weightBytes) ||
        !r.f64(plan.footprint.activationBytes) ||
        !r.f64(plan.footprint.workspaceBytes) || !r.u64(n_layers)) {
        return std::nullopt;
    }
    // Sanity bounds on everything the rest of the system treats as
    // an invariant: a truncated or hostile plan file must surface as
    // a clean nullopt here, never as an assertion or UB downstream.
    constexpr std::uint64_t kDimCap = 1u << 20;
    const auto finite_nonneg = [](double v) {
        return std::isfinite(v) && v >= 0.0;
    };
    if (batch == 0 || batch > kDimCap)
        return std::nullopt;
    if (!finite_nonneg(plan.time.convS) ||
        !finite_nonneg(plan.time.fcS) ||
        !finite_nonneg(plan.time.auxS) ||
        !finite_nonneg(plan.footprint.weightBytes) ||
        !finite_nonneg(plan.footprint.activationBytes) ||
        !finite_nonneg(plan.footprint.workspaceBytes)) {
        return std::nullopt;
    }
    plan.batch = batch;
    plan.timeRequirementMissed = missed != 0;
    if (n_layers > 4096)
        return std::nullopt; // sanity bound

    for (std::uint64_t i = 0; i < n_layers; ++i) {
        LayerSchedule ls;
        ConvSpec &c = ls.layer;
        std::uint64_t in_c, out_c, kernel, stride, pad, in_h, in_w,
            groups, tile_m, tile_n, regs, tlp, sm;
        std::uint64_t algo = std::uint64_t(ConvAlgo::Im2col);
        std::uint64_t quantized = 0;
        if (!r.str(c.name) || !r.u64(in_c) || !r.u64(out_c) ||
            !r.u64(kernel) || !r.u64(stride) || !r.u64(pad) ||
            !r.u64(in_h) || !r.u64(in_w) || !r.u64(groups) ||
            !r.u64(tile_m) || !r.u64(tile_n) || !r.u64(regs) ||
            !r.u64(tlp) || !r.u64(sm) ||
            (v2 && !r.u64(algo)) || (v3 && !r.u64(quantized)) ||
            !r.f64(ls.kernel.skernel) ||
            !r.f64(ls.kernel.predictedTimeS) || !r.f64(ls.timeS) ||
            !r.f64(ls.util)) {
            return std::nullopt;
        }
        // The flag is strictly boolean on the wire; anything else
        // marks a corrupt or hostile file.
        if (quantized > 1)
            return std::nullopt;
        ls.kernel.quantized = quantized != 0;
        // Geometry must satisfy every ConvSpec/ConvGeom contract the
        // models assert on (divisible groups, kernel fitting in the
        // padded input) before any of them runs.
        if (in_c == 0 || in_c > kDimCap || out_c == 0 ||
            out_c > kDimCap || kernel == 0 || kernel > kDimCap ||
            stride == 0 || stride > kDimCap || pad > kDimCap ||
            in_h == 0 || in_h > kDimCap || in_w == 0 ||
            in_w > kDimCap || groups == 0 || groups > kDimCap) {
            return std::nullopt;
        }
        if (in_c % groups != 0 || out_c % groups != 0)
            return std::nullopt;
        if (in_h + 2 * pad < kernel || in_w + 2 * pad < kernel)
            return std::nullopt;
        c.inC = in_c;
        c.outC = out_c;
        c.kernel = kernel;
        c.stride = stride;
        c.pad = pad;
        c.inH = in_h;
        c.inW = in_w;
        c.groups = groups;

        // The tile must exist in this build's catalogue.
        bool found = false;
        for (const TileConfig &t : tileCatalogue()) {
            if (t.m == tile_m && t.n == tile_n) {
                ls.kernel.config.tile = t;
                found = true;
                break;
            }
        }
        if (!found)
            return std::nullopt;
        // Resource-model outputs: the runtime scheduler checks optSM
        // against the target GPU's SM count; here we reject the
        // values no GPU could produce.
        if (regs == 0 || regs > kDimCap || tlp == 0 ||
            tlp > kDimCap || sm == 0 || sm > kDimCap) {
            return std::nullopt;
        }
        if (!std::isfinite(ls.kernel.skernel) ||
            !std::isfinite(ls.kernel.predictedTimeS) ||
            !std::isfinite(ls.timeS) || !std::isfinite(ls.util)) {
            return std::nullopt;
        }
        ls.kernel.config.regsPerThread = regs;
        ls.kernel.optTLP = tlp;
        ls.kernel.optSM = sm;
        // The algorithm must be a known encoding AND eligible for
        // this layer's geometry: a hostile or stale file must not
        // drive winograd onto a 5x5 layer (the executor would abort).
        if (algo > std::uint64_t(ConvAlgo::Winograd))
            return std::nullopt;
        ls.kernel.algo = ConvAlgo(std::uint8_t(algo));
        if (!c.algoEligible(ls.kernel.algo))
            return std::nullopt;
        ls.gemm = ls.kernel.algo == ConvAlgo::Winograd
                      ? c.winogradGemmShape(plan.batch)
                      : c.gemmShape(plan.batch);
        plan.layers.push_back(std::move(ls));
    }
    if (v4) {
        std::uint64_t has_schedule = 0;
        if (!r.u64(has_schedule) || has_schedule > 1)
            return std::nullopt;
        if (has_schedule != 0) {
            GraphSchedule sched;
            if (!readSchedule(r, sched))
                return std::nullopt;
            // The schedule was compiled at the plan's batch; a
            // mismatch marks a spliced or tampered file.
            if (sched.batch != plan.batch)
                return std::nullopt;
            plan.schedule = std::move(sched);
        }
    }
    if (!r.done())
        return std::nullopt;
    return plan;
}

bool
savePlan(const CompiledPlan &plan, const std::string &path)
{
    const auto bytes = serializePlan(plan);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.write(reinterpret_cast<const char *>(bytes.data()),
            std::streamsize(bytes.size()));
    return static_cast<bool>(f);
}

PCNN_BINARY_READER
std::optional<CompiledPlan>
loadPlan(const std::string &path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f)
        return std::nullopt;
    const std::streamoff end = f.tellg();
    if (end < 0)
        return std::nullopt;
    const auto size = std::size_t(end);
    f.seekg(0);
    std::vector<std::uint8_t> bytes(size);
    f.read(reinterpret_cast<char *>(bytes.data()),
           std::streamsize(size));
    if (!f)
        return std::nullopt;
    return deserializePlan(bytes);
}

} // namespace pcnn
