#include "pcnn/offline/batch_selector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gpu/memory_model.hh"

namespace pcnn {

BatchSelector::BatchSelector(GpuSpec gpu)
    : gpuSpec(gpu), tuner(std::move(gpu))
{
}

std::size_t
BatchSelector::memoryCap(const NetDescriptor &net) const
{
    // P-CNN generates its own kernels: no library workspace beyond
    // the weights and batch activations.
    const double budget = usableBytes(gpuSpec) - weightBytes(net);
    if (budget <= 0.0)
        return 0;
    const double per_image = activationBytes(net, 1);
    const auto cap = std::size_t(budget / per_image);
    return std::min<std::size_t>(std::max<std::size_t>(cap, 1),
                                 maxBatch);
}

std::size_t
BatchSelector::backgroundBatch(const NetDescriptor &net) const
{
    pcnn_assert(!net.convs.empty(), "network without conv layers");
    const ConvSpec &last = net.convs.back();
    const std::size_t cap = memoryCap(net);
    pcnn_assert(cap >= 1, net.name, " does not fit on ", gpuSpec.name);

    // The paper picks the smallest batch whose last-layer Util is 1
    // ("throughput cannot be further improved"). Our energy model
    // also accounts for board base power, which keeps amortizing
    // with batch size, so among the full-Util batches we keep the
    // largest one under the memory cap (see DESIGN.md). Every batch
    // size tunes independently, so the sweep fans out over the
    // thread pool; the selection scan stays sequential in batch
    // order and matches the serial sweep exactly.
    const std::vector<double> utils = lastLayerUtils(last, cap);
    std::size_t best_batch = 1;
    double best_util = 0.0;
    for (std::size_t b = 1; b <= cap; ++b) {
        const double u = utils[b - 1];
        if (u >= best_util - 1e-9) {
            best_util = std::max(best_util, u);
            best_batch = b;
        }
    }
    return best_batch;
}

std::vector<double>
BatchSelector::lastLayerUtils(const ConvSpec &last, std::size_t cap) const
{
    tuner.candidates(); // warm the shared cache outside the fan-out
    std::vector<double> utils(cap, 0.0);
    parallelFor(cap, [&](std::size_t b0, std::size_t b1, std::size_t) {
        for (std::size_t bi = b0; bi < b1; ++bi) {
            const GemmShape gemm = last.gemmShape(bi + 1);
            const TunedKernel k = tuner.tune(gemm);
            const SgemmModel model(gpuSpec, k.config);
            utils[bi] = model.util(gemm);
        }
    });
    return utils;
}

std::size_t
BatchSelector::smallestFullUtilBatch(const NetDescriptor &net) const
{
    pcnn_assert(!net.convs.empty(), "network without conv layers");
    const ConvSpec &last = net.convs.back();
    const std::size_t cap = memoryCap(net);
    const std::vector<double> utils = lastLayerUtils(last, cap);
    for (std::size_t b = 1; b <= cap; ++b)
        if (utils[b - 1] >= 1.0 - 1e-9)
            return b;
    return 0;
}

std::size_t
BatchSelector::initialBatch(const NetDescriptor &net, const AppSpec &app,
                            const UserRequirement &req) const
{
    pcnn_assert(!req.timeInsensitive,
                "initialBatch is for latency-sensitive tasks");
    const double available = app.dataRateHz * req.imperceptibleS;
    const auto batch = std::size_t(std::max(1.0, std::floor(available)));
    const std::size_t cap = memoryCap(net);
    pcnn_assert(cap >= 1, net.name, " does not fit on ", gpuSpec.name);
    return std::min(batch, cap);
}

} // namespace pcnn
