#include "pcnn/offline/time_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "gpu/memory_model.hh"

namespace pcnn {

TimeModel::TimeModel(GpuSpec gpu) : gpuSpec(std::move(gpu)) {}

double
TimeModel::layerTime(const ConvSpec &layer, const TunedKernel &kernel,
                     std::size_t batch,
                     std::size_t positions_per_image) const
{
    pcnn_assert(batch >= 1, "batch must be positive");
    // Perforated execution always takes the im2col route (winograd
    // tiles cannot express scattered positions), so a perforated
    // layer is priced as im2col whatever the plan's algorithm.
    const bool wino = kernel.algo == ConvAlgo::Winograd &&
                      positions_per_image == 0;
    const GemmShape gemm =
        wino ? layer.winogradGemmShape(batch)
             : layer.gemmShape(batch, positions_per_image);
    const double launches = wino ? 16.0 * double(layer.gemmCount())
                                 : double(layer.gemmCount());
    const SgemmModel model(gpuSpec, kernel.config);
    const std::size_t sms =
        kernel.optSM == 0 ? gpuSpec.numSMs : kernel.optSM;
    double t = model.kernelTime(gemm, sms, kernel.optTLP) * launches;
    if (wino)
        t += 4.0 * layer.winogradTransformElems(batch) /
             gpuSpec.bandwidthBytes();
    return t;
}

double
TimeModel::fcTime(const NetDescriptor &net, std::size_t batch) const
{
    double t = 0.0;
    for (const auto &[in, out] : net.fcs) {
        const double flops =
            2.0 * double(in) * double(out) * double(batch);
        const double compute = flops / (gpuSpec.peakFlops() * 0.5);
        const double stream =
            4.0 * double(in) * double(out) / gpuSpec.bandwidthBytes();
        t += std::max(compute, stream) + SgemmModel::launchOverheadS;
    }
    return t;
}

double
TimeModel::auxTime(const NetDescriptor &net, std::size_t batch) const
{
    return 3.0 * activationBytes(net, batch) /
           gpuSpec.bandwidthBytes();
}

} // namespace pcnn
