#include "pcnn/offline/kernel_tuner.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

KernelTuner::KernelTuner(GpuSpec gpu) : gpuSpec(std::move(gpu)) {}

std::size_t
KernelTuner::minReg() const
{
    const std::size_t r =
        gpuSpec.registersPerSM / gpuSpec.maxThreadsPerSM;
    return std::max<std::size_t>(r, 16);
}

std::vector<KernelConfig>
KernelTuner::staircase(const TileConfig &tile) const
{
    std::vector<KernelConfig> out;
    const std::size_t lo = std::min(minReg(), tile.naturalRegs);
    std::size_t last_tlp = 0;
    // Walk register counts downward; a new TLP value opens a new
    // stair, and the first (largest-register) point on each stair is
    // the rightmost point of Fig. 9 — the only one worth scoring.
    for (std::size_t r = tile.naturalRegs; r >= lo; --r) {
        const Occupancy occ = occupancy(gpuSpec, tile, r);
        if (occ.ctasPerSm == 0)
            continue;
        if (occ.ctasPerSm != last_tlp) {
            KernelConfig cfg;
            cfg.tile = tile;
            cfg.regsPerThread = r;
            out.push_back(cfg);
            last_tlp = occ.ctasPerSm;
        }
        if (r == lo)
            break;
    }
    return out;
}

std::vector<KernelConfig>
KernelTuner::candidates() const
{
    if (!candidateCache.empty())
        return candidateCache;
    std::vector<KernelConfig> out;
    for (const TileConfig &tile : tileCatalogue()) {
        auto stair = staircase(tile);
        out.insert(out.end(), stair.begin(), stair.end());
    }
    pcnn_assert(!out.empty(), "no viable kernel candidates on ",
                gpuSpec.name);
    candidateCache = out;
    return out;
}

TunedKernel
KernelTuner::tune(const GemmShape &gemm, TuneObjective objective) const
{
    TunedKernel best;
    bool have_best = false;
    double best_score = 0.0;

    for (const KernelConfig &cfg : candidates()) {
        const SgemmModel model(gpuSpec, cfg);
        const std::size_t tlp = model.occ().ctasPerSm;
        const double time = model.kernelTime(gemm);
        const double sk = model.skernel(gemm, tlp);
        const double score =
            objective == TuneObjective::SkernelMetric ? sk : time;

        // Smaller is better; break ties toward the faster kernel so
        // the Eq. 10 metric stays deterministic across equal scores.
        const bool better =
            !have_best || score < best_score ||
            (score == best_score && time < best.predictedTimeS);
        if (better) {
            best.config = cfg;
            best.optTLP = tlp;
            best.skernel = sk;
            best.predictedTimeS = time;
            best_score = score;
            have_best = true;
        }
    }
    pcnn_assert(have_best, "tuner found no kernel");
    return best;
}

} // namespace pcnn
