#include "pcnn/offline/kernel_tuner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace pcnn {

KernelTuner::KernelTuner(GpuSpec gpu) : gpuSpec(std::move(gpu)) {}

std::size_t
KernelTuner::minReg() const
{
    const std::size_t r =
        gpuSpec.registersPerSM / gpuSpec.maxThreadsPerSM;
    return std::max<std::size_t>(r, 16);
}

std::vector<KernelConfig>
KernelTuner::staircase(const TileConfig &tile) const
{
    std::vector<KernelConfig> out;
    const std::size_t lo = std::min(minReg(), tile.naturalRegs);
    std::size_t last_tlp = 0;
    // Walk register counts downward; a new TLP value opens a new
    // stair, and the first (largest-register) point on each stair is
    // the rightmost point of Fig. 9 — the only one worth scoring.
    for (std::size_t r = tile.naturalRegs; r >= lo; --r) {
        const Occupancy occ = occupancy(gpuSpec, tile, r);
        if (occ.ctasPerSm == 0)
            continue;
        if (occ.ctasPerSm != last_tlp) {
            KernelConfig cfg;
            cfg.tile = tile;
            cfg.regsPerThread = r;
            out.push_back(cfg);
            last_tlp = occ.ctasPerSm;
        }
        if (r == lo)
            break;
    }
    return out;
}

const std::vector<KernelConfig> &
KernelTuner::candidates() const
{
    // Build-once cache: call_once publishes the vector, after which
    // it is immutable and references can escape without a lock (a
    // guarded field could not be returned by reference at all).
    std::call_once(cacheOnce, [this] {
        std::vector<KernelConfig> out;
        for (const TileConfig &tile : tileCatalogue()) {
            auto stair = staircase(tile);
            out.insert(out.end(), stair.begin(), stair.end());
        }
        pcnn_assert(!out.empty(), "no viable kernel candidates on ",
                    gpuSpec.name);
        candidateCache = std::move(out);
    });
    return candidateCache;
}

TunedKernel
KernelTuner::tune(const GemmShape &gemm, TuneObjective objective) const
{
    const std::vector<KernelConfig> &cands = candidates();

    // Score every candidate independently (the tile x register sweep
    // is embarrassingly parallel), then reduce sequentially in
    // catalogue order so tie-breaking matches the serial sweep.
    struct Scored
    {
        std::size_t tlp = 0;
        double time = 0.0;
        double sk = 0.0;
        double score = 0.0;
    };
    std::vector<Scored> scored(cands.size());
    parallelFor(cands.size(), [&](std::size_t c0, std::size_t c1,
                                  std::size_t) {
        for (std::size_t idx = c0; idx < c1; ++idx) {
            const SgemmModel model(gpuSpec, cands[idx]);
            Scored &s = scored[idx];
            s.tlp = model.occ().ctasPerSm;
            s.time = model.kernelTime(gemm);
            s.sk = model.skernel(gemm, s.tlp);
            s.score = objective == TuneObjective::SkernelMetric
                          ? s.sk
                          : s.time;
        }
    });

    TunedKernel best;
    bool have_best = false;
    double best_score = 0.0;
    for (std::size_t idx = 0; idx < cands.size(); ++idx) {
        const Scored &s = scored[idx];
        // Smaller is better; break ties toward the faster kernel so
        // the Eq. 10 metric stays deterministic across equal scores.
        const bool better =
            !have_best || s.score < best_score ||
            (s.score == best_score && s.time < best.predictedTimeS);
        if (better) {
            best.config = cands[idx];
            best.optTLP = s.tlp;
            best.skernel = s.sk;
            best.predictedTimeS = s.time;
            best_score = s.score;
            have_best = true;
        }
    }
    pcnn_assert(have_best, "tuner found no kernel");
    return best;
}

double
KernelTuner::layerPredictedTime(const ConvSpec &layer,
                                const TunedKernel &kernel,
                                std::size_t batch) const
{
    const SgemmModel model(gpuSpec, kernel.config);
    if (kernel.algo == ConvAlgo::Winograd) {
        const GemmShape gemm = layer.winogradGemmShape(batch);
        return model.kernelTime(gemm) * 16.0 *
                   double(layer.gemmCount()) +
               4.0 * layer.winogradTransformElems(batch) /
                   gpuSpec.bandwidthBytes();
    }
    const GemmShape gemm = layer.gemmShape(batch);
    return model.kernelTime(gemm) * double(layer.gemmCount());
}

TunedKernel
KernelTuner::tuneLayer(const ConvSpec &layer, std::size_t batch,
                       TuneObjective objective) const
{
    // Exact route first: the 1x1 shortcut shares the im2col GEMM
    // shape (it is that GEMM minus the expansion pass), so the same
    // tile tuning covers both.
    TunedKernel best = tune(layer.gemmShape(batch), objective);
    best.algo = layer.algoEligible(ConvAlgo::Direct1x1)
                    ? ConvAlgo::Direct1x1
                    : ConvAlgo::Im2col;
    if (!layer.algoEligible(ConvAlgo::Winograd))
        return best;

    // Winograd lowers to 16 shallower GEMMs per group; its tile
    // choice is tuned on that shape, then the two algorithms compete
    // on predicted whole-layer time (transform overhead included).
    // Ties break toward the exact im2col route.
    TunedKernel wino = tune(layer.winogradGemmShape(batch), objective);
    wino.algo = ConvAlgo::Winograd;
    return layerPredictedTime(layer, wino, batch) <
                   layerPredictedTime(layer, best, batch)
               ? wino
               : best;
}

} // namespace pcnn
