#include "pcnn/runtime/executor.hh"

#include "common/logging.hh"
#include "nn/fusion.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

Executor::Executor(Network &network, CompiledPlan plan, GpuSpec gpu,
                   TunerConfig tuner_cfg)
    : net(network), compiled(std::move(plan)), gpuSpec(gpu),
      tunerCfg(tuner_cfg), scheduler(std::move(gpu))
{
    pcnn_assert(net.convLayers().size() == compiled.layers.size(),
                "plan does not match the network");
    // Pin each conv layer to the plan's tuned algorithm; setAlgo
    // rejects an algorithm/geometry mismatch loudly (stale plan).
    // Plan-v3 precision selections ride along the same pinning.
    for (std::size_t i = 0; i < compiled.layers.size(); ++i) {
        net.convLayers()[i]->setAlgo(compiled.layers[i].kernel.algo);
        net.convLayers()[i]->setQuantized(
            compiled.layers[i].kernel.quantized);
    }
    // Plan-v4 schedules adopt after the pins above so the validation
    // inside adoption sees the network exactly as the plan configured
    // it. With the graph path off (or a pre-v4 plan) the network
    // compiles its own schedule lazily — or runs the legacy chain.
    if (compiled.schedule && graphEnabled())
        net.adoptGraphSchedule(*compiled.schedule);
    // Before tuning: a single exact level that always calibrates fine.
    TuningEntry exact;
    exact.positions.assign(compiled.layers.size(), 0);
    for (std::size_t i = 0; i < compiled.layers.size(); ++i)
        exact.positions[i] = net.convLayers()[i]->fullPositions();
    exact.predictedTimeS = compiled.latencyS();
    exact.entropy = 0.0;
    table.push(exact);
    calibrator.emplace(table, tunerCfg.entropyThreshold);
}

void
Executor::tune(const Tensor &tuning_inputs)
{
    const AccuracyTuner tuner(gpuSpec, tunerCfg);
    table = tuner.tuneNetwork(net, compiled, tuning_inputs);
    calibrator.emplace(table, tunerCfg.entropyThreshold);
    applyLevel(calibrator->currentLevel());
}

std::size_t
Executor::currentLevel() const
{
    return calibrator->currentLevel();
}

void
Executor::applyLevel(std::size_t level)
{
    const TuningEntry &e = table.entry(level);
    const auto &convs = net.convLayers();
    for (std::size_t i = 0; i < convs.size(); ++i) {
        convs[i]->setComputedPositions(e.positions[i]);
        // Entries with no precision axis (legacy tables, the pre-tune
        // exact level) leave the plan/profile quantization alone.
        if (!e.quant.empty())
            convs[i]->setQuantized(e.quant[i] != 0);
    }
}

InferenceResult
Executor::infer(const Tensor &batch)
{
    const std::size_t level = calibrator->currentLevel();
    applyLevel(level);

    InferenceResult r;
    r.tuningLevel = level;
    r.probs = softmax(net.forward(batch, false));
    r.predictions = argmaxRows(r.probs);
    r.entropy = batchEntropy(r.probs);

    // Simulated GPU cost of exactly this execution. The per-layer
    // achieved position counts come from the layers themselves (the
    // sampling grid may round the request).
    std::vector<std::size_t> positions(compiled.layers.size());
    for (std::size_t i = 0; i < positions.size(); ++i)
        positions[i] = net.convLayers()[i]->computedPositions();
    const SimResult sim =
        scheduler.execute(compiled, pcnnPolicy(), &positions);
    r.simLatencyS = sim.timeS;
    r.energyJ = sim.energy.total();

    r.recalibrated = calibrator->observe(r.entropy);
    return r;
}

} // namespace pcnn
