#include "pcnn/runtime/histogram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

double
percentileOfSorted(const std::vector<double> &sorted, double p)
{
    pcnn_assert(!sorted.empty(), "percentile of empty sample");
    pcnn_assert(p >= 0.0 && p <= 1.0, "percentile p out of [0,1]");
    const double idx = p * double(sorted.size() - 1);
    const std::size_t lo = std::size_t(idx);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double t = idx - double(lo);
    return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

LatencySummary
summarizeLatencies(std::vector<double> samples)
{
    LatencySummary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.meanS = sum / double(s.count);
    s.minS = samples.front();
    s.maxS = samples.back();
    s.p50S = percentileOfSorted(samples, 0.50);
    s.p95S = percentileOfSorted(samples, 0.95);
    s.p99S = percentileOfSorted(samples, 0.99);
    s.p999S = percentileOfSorted(samples, 0.999);
    return s;
}

void
BatchSizeHistogram::record(std::size_t batch)
{
    pcnn_assert(batch >= 1, "batch size must be >= 1");
    // pcnn-analyze: allow(hot-path-alloc): grow-only bucket
    // array: grows to the largest batch seen, then stays put.
    if (counts.size() <= batch)
        counts.resize(batch + 1, 0);
    ++counts[batch];
}

std::size_t
BatchSizeHistogram::batches() const
{
    std::size_t n = 0;
    for (std::size_t c : counts)
        n += c;
    return n;
}

std::size_t
BatchSizeHistogram::images() const
{
    std::size_t n = 0;
    for (std::size_t b = 1; b < counts.size(); ++b)
        n += b * counts[b];
    return n;
}

double
BatchSizeHistogram::meanBatch() const
{
    const std::size_t n = batches();
    return n == 0 ? 0.0 : double(images()) / double(n);
}

} // namespace pcnn
