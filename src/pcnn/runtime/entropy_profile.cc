#include "pcnn/runtime/entropy_profile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "tensor/tensor_ops.hh"
#include "train/loss.hh"

namespace pcnn {

EntropyProfile::EntropyProfile(std::vector<Point> points)
    : pts(std::move(points))
{
    pcnn_assert(pts.size() >= 2, "profile needs at least two points");
    std::sort(pts.begin(), pts.end(),
              [](const Point &a, const Point &b) {
                  return a.keep < b.keep;
              });
}

namespace {

double
interpolate(const std::vector<EntropyProfile::Point> &pts, double keep,
            double EntropyProfile::Point::*field)
{
    if (keep <= pts.front().keep)
        return pts.front().*field;
    if (keep >= pts.back().keep)
        return pts.back().*field;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (keep <= pts[i].keep) {
            const double span = pts[i].keep - pts[i - 1].keep;
            const double t =
                span > 0.0 ? (keep - pts[i - 1].keep) / span : 1.0;
            return pts[i - 1].*field +
                   t * (pts[i].*field - pts[i - 1].*field);
        }
    }
    return pts.back().*field;
}

} // namespace

double
EntropyProfile::entropyAt(double keep) const
{
    return interpolate(pts, keep, &Point::entropy);
}

double
EntropyProfile::accuracyAt(double keep) const
{
    return interpolate(pts, keep, &Point::accuracy);
}

EntropyProfile
EntropyProfile::calibrate(Network &net, const Dataset &data,
                          std::size_t steps)
{
    pcnn_assert(steps >= 2, "need at least two calibration steps");
    pcnn_assert(data.size() > 0, "empty calibration dataset");

    std::vector<Point> points;
    const auto &convs = net.convLayers();

    for (std::size_t s = 0; s < steps; ++s) {
        const double keep = 1.0 - double(s) / double(steps); // (0, 1]
        double kept_flops = 0.0, total_flops = 0.0;
        for (ConvLayer *c : convs) {
            const std::size_t full = c->fullPositions();
            c->setComputedPositions(std::max<std::size_t>(
                1, std::size_t(std::lround(double(full) * keep))));
            const double f = c->spec().flopsPerImage();
            total_flops += f;
            kept_flops += f * double(c->computedPositions()) /
                          double(full);
        }

        const Tensor x = data.batch(0, data.size());
        const Tensor logits = net.forward(x, false);
        const Tensor probs = softmax(logits);

        Point p;
        p.keep = total_flops > 0.0 ? kept_flops / total_flops : keep;
        p.entropy = batchEntropy(probs);
        p.accuracy = accuracy(logits, data.labels());
        points.push_back(p);
    }
    net.clearPerforation();
    return EntropyProfile(std::move(points));
}

EntropyProfile
EntropyProfile::representative()
{
    // Shipped from a MiniNet-M calibration on the synthetic task
    // (difficulty 0.5, 8 classes): entropy climbs and accuracy falls
    // smoothly as convolution outputs are perforated away.
    return EntropyProfile({
        {1.00, 0.45, 0.93},
        {0.85, 0.50, 0.92},
        {0.70, 0.58, 0.90},
        {0.55, 0.70, 0.86},
        {0.40, 0.88, 0.80},
        {0.30, 1.05, 0.73},
        {0.20, 1.30, 0.62},
        {0.12, 1.60, 0.48},
    });
}

} // namespace pcnn
