#include "pcnn/runtime/kernel_scheduler.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"
#include "pcnn/offline/resource_model.hh"

namespace pcnn {

ExecPolicy
pcnnPolicy()
{
    return ExecPolicy{SchedKind::PrioritySM, true, true};
}

ExecPolicy
baselinePolicy()
{
    return ExecPolicy{SchedKind::RoundRobin, false, false};
}

RuntimeKernelScheduler::RuntimeKernelScheduler(GpuSpec gpu)
    : gpuSpec(gpu), gpuSim(std::move(gpu))
{
}

SimResult
RuntimeKernelScheduler::execute(
    const CompiledPlan &plan, const ExecPolicy &policy,
    const std::vector<std::size_t> *positions) const
{
    PCNN_CHECK(!positions || positions->size() == plan.layers.size(),
               "perforation vector mismatches plan layers");

    std::vector<std::pair<KernelDesc, LaunchConfig>> seq;

    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        const LayerSchedule &ls = plan.layers[i];
        // Resource-model outputs must be in range for this GPU; a
        // stale or corrupt plan fails loudly instead of driving the
        // CTA simulator into nonsense placements.
        PCNN_CHECK_GE(ls.kernel.optTLP, 1u, "plan layer ",
                      ls.layer.name, ": optTLP out of range");
        PCNN_CHECK(ls.kernel.optSM >= 1 &&
                       ls.kernel.optSM <= gpuSpec.numSMs,
                   "plan layer ", ls.layer.name, ": optSM ",
                   ls.kernel.optSM, " outside [1, ", gpuSpec.numSMs,
                   "] on ", gpuSpec.name);
        const std::size_t pos = positions ? (*positions)[i] : 0;
        // Perforation forces the im2col lowering (scattered output
        // positions); a full-grid winograd layer launches its 16
        // per-transform-point tile-GEMMs instead.
        const bool wino =
            ls.kernel.algo == ConvAlgo::Winograd && pos == 0;
        const GemmShape gemm =
            wino ? ls.layer.winogradGemmShape(plan.batch)
                 : ls.layer.gemmShape(plan.batch, pos);
        const SgemmModel model(gpuSpec, ls.kernel.config);

        KernelDesc kd;
        kd.name = ls.layer.name;
        kd.gridSize = model.gridSize(gemm);
        kd.ctaWorkFlops = model.ctaWorkFlops(gemm);
        kd.blockSize = ls.kernel.config.tile.blockSize;
        kd.issueDensity = model.timingDensity();
        kd.bytesPerFlop = model.trafficBytesPerFlop();
        kd.launches =
            wino ? 16 * ls.layer.gemmCount() : ls.layer.gemmCount();

        LaunchConfig lc;
        lc.scheduler = policy.scheduler;
        lc.tlpLimit = ls.kernel.optTLP;
        lc.powerGateIdle = policy.powerGateIdle;
        if (policy.fixedSmAllocation > 0 &&
            policy.scheduler == SchedKind::PrioritySM) {
            lc.smsAllowed = std::min(policy.fixedSmAllocation,
                                     gpuSpec.numSMs);
        } else if (policy.useOptSm &&
                   policy.scheduler == SchedKind::PrioritySM) {
            // Re-derive optSM when perforation shrank the grid.
            lc.smsAllowed =
                pos == 0 ? ls.kernel.optSM
                         : optimalSms(kd.gridSize, ls.kernel.optTLP,
                                      gpuSpec.numSMs);
        } else {
            lc.smsAllowed = 0;
        }
        seq.emplace_back(std::move(kd), lc);
    }

    SimResult result = gpuSim.runSequence(seq);

    // Fully connected + element-wise phases: memory-bound intervals.
    // Their FLOPs are small; with gating only a couple of SMs stay
    // powered to stream them.
    const double fc_aux = plan.time.fcS + plan.time.auxS;
    const std::size_t powered =
        policy.powerGateIdle ? std::min<std::size_t>(2, gpuSpec.numSMs)
                             : gpuSpec.numSMs;
    result.accumulate(gpuSim.fixedInterval(fc_aux, powered));
    return result;
}

} // namespace pcnn
