/**
 * @file
 * Request-stream serving simulation.
 *
 * The paper evaluates one request at a time; a deployed service sees
 * a *stream*: requests arrive stochastically, a batching policy
 * trades waiting time for throughput, and user satisfaction is felt
 * per request (including the queueing delay). This simulator plays a
 * Poisson arrival stream against a batching policy, costs every
 * served batch with the CTA-level simulator, and reports latency
 * percentiles, energy, utilization, and stream-level SoC.
 */

#ifndef PCNN_PCNN_RUNTIME_SERVING_SIM_HH
#define PCNN_PCNN_RUNTIME_SERVING_SIM_HH

#include <vector>

#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/histogram.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/satisfaction.hh"

namespace pcnn {

/** Serving/batching policy and workload description. */
struct ServingConfig
{
    double arrivalRateHz = 10.0; ///< Poisson arrival rate
    double durationS = 30.0;     ///< arrival horizon
    std::size_t maxBatch = 1;    ///< accumulate at most this many
    /// flush an incomplete batch this long after its oldest request
    /// (0 = serve immediately with whatever is queued)
    double maxWaitS = 0.0;
    ExecPolicy policy = pcnnPolicy();
    std::uint64_t seed = 1;
};

/** Stream-level outcome. */
struct ServingStats
{
    std::size_t requests = 0;
    std::size_t batches = 0;
    double meanBatch = 0.0;
    double meanLatencyS = 0.0;
    double p50LatencyS = 0.0;
    double p95LatencyS = 0.0;
    double p99LatencyS = 0.0;
    double p999LatencyS = 0.0;
    /// served-batch size distribution (meanBatch is its mean)
    BatchSizeHistogram batchHist;
    double energyJ = 0.0; ///< serving + idle energy over the horizon
    double energyPerImageJ = 0.0;
    double busyFraction = 0.0; ///< GPU-busy share of the horizon
    double meanSocTime = 0.0;  ///< mean per-request SoC_time
    std::size_t satisfactionViolations = 0; ///< SoC_time == 0 count
};

/**
 * Serves a Poisson stream of single-image requests with batch
 * accumulation, costing each batch on the simulated GPU.
 */
class ServingSimulator
{
  public:
    /**
     * @param gpu target architecture
     * @param net network to serve
     */
    ServingSimulator(GpuSpec gpu, NetDescriptor net);

    /**
     * Run one stream.
     * @param cfg workload + batching policy
     * @param req per-request satisfaction requirement
     */
    ServingStats run(const ServingConfig &cfg,
                     const UserRequirement &req) const;

  private:
    GpuSpec gpuSpec;
    NetDescriptor netDesc;
    OfflineCompiler compiler;
    RuntimeKernelScheduler scheduler;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_SERVING_SIM_HH
