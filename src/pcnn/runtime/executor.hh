/**
 * @file
 * End-to-end P-CNN runtime for functional networks.
 *
 * Ties the pieces together for a deployed application: apply the
 * tuning level, run the real (CPU) network for outputs and entropy,
 * charge simulated GPU time/energy for the same work, and let the
 * calibrator react to uncertain outputs.
 */

#ifndef PCNN_PCNN_RUNTIME_EXECUTOR_HH
#define PCNN_PCNN_RUNTIME_EXECUTOR_HH

#include <optional>

#include "nn/network.hh"
#include "pcnn/runtime/accuracy_tuner.hh"
#include "pcnn/runtime/calibration.hh"
#include "pcnn/runtime/kernel_scheduler.hh"

namespace pcnn {

/** Result of one inference request. */
struct InferenceResult
{
    Tensor probs;                        ///< class probabilities
    std::vector<std::size_t> predictions;///< argmax per item
    double entropy = 0.0;                ///< batch mean CNN_entropy
    double simLatencyS = 0.0;            ///< simulated GPU latency
    double energyJ = 0.0;                ///< simulated GPU energy
    std::size_t tuningLevel = 0;         ///< level used for this batch
    bool recalibrated = false;           ///< calibrator stepped back
};

/**
 * The deployed runtime: functional network + compiled plan +
 * simulated GPU + tuning/calibration state.
 */
class Executor
{
  public:
    /**
     * @param net trained network (borrowed; perforation is managed
     *        by the executor from here on)
     * @param plan offline-compiled plan for the target GPU
     * @param gpu the target GPU
     * @param tuner_cfg accuracy-tuning knobs
     */
    Executor(Network &net, CompiledPlan plan, GpuSpec gpu,
             TunerConfig tuner_cfg = {});

    /**
     * Run entropy-based accuracy tuning on unlabeled tuning inputs
     * and arm the calibrator at the selected level.
     */
    void tune(const Tensor &tuning_inputs);

    /**
     * Serve one batch: functional outputs + simulated cost at the
     * current tuning level, then calibrate on the observed entropy.
     */
    InferenceResult infer(const Tensor &batch);

    /** The tuning path (one exact level before tune() is called). */
    const TuningTable &tuningTable() const { return table; }

    /** Current tuning level. */
    std::size_t currentLevel() const;

    /** The compiled plan in force. */
    const CompiledPlan &plan() const { return compiled; }

  private:
    /** Apply a tuning level's positions to the network. */
    void applyLevel(std::size_t level);

    Network &net;
    CompiledPlan compiled;
    GpuSpec gpuSpec;
    TunerConfig tunerCfg;
    RuntimeKernelScheduler scheduler;
    TuningTable table;
    std::optional<Calibrator> calibrator;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_EXECUTOR_HH
