/**
 * @file
 * Run-time calibration (Section IV.C.3).
 *
 * Input data changes at run time; the tuning data may have been
 * easier than the live distribution. The calibrator monitors output
 * uncertainty and, when it exceeds the user threshold, backtracks
 * along the tuning path to a slower but more precise level until the
 * output is trustworthy again.
 */

#ifndef PCNN_PCNN_RUNTIME_CALIBRATION_HH
#define PCNN_PCNN_RUNTIME_CALIBRATION_HH

#include "pcnn/runtime/tuning_table.hh"

namespace pcnn {

/**
 * Stateful monitor over a tuning path.
 */
class Calibrator
{
  public:
    /**
     * @param table the tuning path produced by accuracy tuning
     * @param entropy_threshold the user's uncertainty ceiling
     */
    Calibrator(const TuningTable &table, double entropy_threshold);

    /** Level currently selected (starts at selectLevel(threshold)). */
    std::size_t currentLevel() const { return level; }

    /** Entry of the current level. */
    const TuningEntry &current() const;

    /**
     * Report the measured entropy of the latest output batch.
     * Backtracks one step toward level 0 when the threshold is
     * violated (the paper walks the path until acceptable; repeated
     * violations keep stepping back on subsequent observations).
     *
     * @return true when the level changed
     */
    bool observe(double measured_entropy);

    /** Number of backtracking steps taken so far. */
    std::size_t backtracks() const { return steps; }

  private:
    const TuningTable &table;
    double threshold;
    std::size_t level;
    std::size_t steps = 0;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_CALIBRATION_HH
