/**
 * @file
 * Tuning tables: the accuracy/speed trade-off path (Fig. 12).
 *
 * Each accuracy-tuning iteration produces one entry — a per-layer
 * perforation assignment plus its predicted time and measured (or
 * modeled) output entropy. Calibration backtracks along this path
 * when run-time inputs turn out harder than the tuning data.
 */

#ifndef PCNN_PCNN_RUNTIME_TUNING_TABLE_HH
#define PCNN_PCNN_RUNTIME_TUNING_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pcnn {

/** One tuning level (row of a Fig. 12 tuning table). */
struct TuningEntry
{
    /// computed output positions per conv layer; 0 = full grid
    std::vector<std::size_t> positions;
    /// per-conv-layer int8 flag (1 = quantized); empty = an all-fp32
    /// legacy path, so PR-7-era tables keep loading/pushing unchanged
    std::vector<std::uint8_t> quant;
    double predictedTimeS = 0.0; ///< batch latency at this level
    double entropy = 0.0;        ///< CNN_entropy at this level
    double accuracy = -1.0;      ///< labeled accuracy; -1 if unknown
    double speedup = 1.0;        ///< level-0 time / this time
    /// which layer was perforated further in this iteration (-1 for
    /// the untouched level 0)
    int adjustedLayer = -1;
    /// true when this iteration's step flipped a layer to int8
    /// instead of perforating (precision-vs-perforation walk)
    bool adjustedPrecision = false;
};

/**
 * Ordered tuning path from the exact network (level 0) to the most
 * aggressive approximation explored.
 */
class TuningTable
{
  public:
    /** Append the next level. */
    void push(TuningEntry entry);

    /** Number of levels (>= 1 once tuning ran). */
    std::size_t levels() const { return entries.size(); }

    /** Level accessor. */
    const TuningEntry &entry(std::size_t level) const;

    /** All levels, in tuning order. */
    const std::vector<TuningEntry> &all() const { return entries; }

    /**
     * Fastest level whose entropy stays within the threshold.
     * Level 0 is returned when nothing else qualifies.
     */
    std::size_t selectLevel(double entropy_threshold) const;

    /** Largest speedup among levels within the threshold. */
    double bestSpeedup(double entropy_threshold) const;

  private:
    std::vector<TuningEntry> entries;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_TUNING_TABLE_HH
