/**
 * @file
 * Entropy/accuracy response to perforation.
 *
 * Maps an aggregate perforation level (FLOP-weighted keep fraction)
 * to expected CNN_entropy and accuracy. Profiles are calibrated by
 * actually perforating a trained network on held-out data; the
 * scheduler benches use a calibrated profile to attach accuracy
 * semantics to the shape-only ImageNet networks (see the DESIGN.md
 * substitution table).
 */

#ifndef PCNN_PCNN_RUNTIME_ENTROPY_PROFILE_HH
#define PCNN_PCNN_RUNTIME_ENTROPY_PROFILE_HH

#include <cstddef>
#include <vector>

#include "data/dataset.hh"
#include "nn/network.hh"

namespace pcnn {

/**
 * Piecewise-linear map keep-fraction -> (entropy, accuracy).
 * keep == 1 is the exact network; keep -> 0 degrades smoothly.
 */
class EntropyProfile
{
  public:
    /** One calibration point. */
    struct Point
    {
        double keep = 1.0;     ///< FLOP-weighted kept fraction
        double entropy = 0.0;  ///< measured mean output entropy
        double accuracy = 0.0; ///< measured top-1 accuracy
    };

    /** Build from calibration points (sorted by keep internally). */
    explicit EntropyProfile(std::vector<Point> points);

    /** Interpolated entropy at a keep fraction (clamped to range). */
    double entropyAt(double keep) const;

    /** Interpolated accuracy at a keep fraction. */
    double accuracyAt(double keep) const;

    /** The calibration points, ascending keep. */
    const std::vector<Point> &points() const { return pts; }

    /**
     * Calibrate by sweeping uniform perforation over a trained
     * network on a labeled dataset.
     * @param net trained functional network (perforation is reset
     *        afterwards)
     * @param data held-out labeled data
     * @param steps number of keep fractions sampled in (0, 1]
     */
    static EntropyProfile calibrate(Network &net, const Dataset &data,
                                    std::size_t steps = 8);

    /**
     * A representative profile (shipped numbers from a MiniNet-M
     * calibration run) for contexts that cannot afford training.
     */
    static EntropyProfile representative();

  private:
    std::vector<Point> pts;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_ENTROPY_PROFILE_HH
