/**
 * @file
 * Run-time kernel management (Section IV.C.2).
 *
 * Executes a compiled plan on the CTA-level simulator: for each conv
 * layer it allocates optSM SMs, places optTLP CTAs per SM with the
 * Priority-SM scheduler, and power gates the remaining SMs. Baseline
 * modes (whole-GPU Round-Robin, no gating) are provided for the
 * scheduler comparison of Figs. 13-15.
 */

#ifndef PCNN_PCNN_RUNTIME_KERNEL_SCHEDULER_HH
#define PCNN_PCNN_RUNTIME_KERNEL_SCHEDULER_HH

#include <vector>

#include "gpu/sim/gpu_sim.hh"
#include "pcnn/offline/compiler.hh"

namespace pcnn {

/** Execution policy knobs for one simulated inference. */
struct ExecPolicy
{
    SchedKind scheduler = SchedKind::PrioritySM;
    bool useOptSm = true;      ///< honor per-layer optSM allocations
    bool powerGateIdle = true; ///< gate SMs outside the allocation
    /// when > 0, give every layer exactly this many SMs instead of
    /// its per-layer optSM — the static spatial-multitasking
    /// baseline the paper critiques in Section III.D.2
    std::size_t fixedSmAllocation = 0;
};

/** The P-CNN default policy (PSM + optSM + gating). */
ExecPolicy pcnnPolicy();

/** The hardware baseline policy (RR, whole GPU, no gating). */
ExecPolicy baselinePolicy();

/**
 * Runtime kernel scheduler bound to one GPU.
 */
class RuntimeKernelScheduler
{
  public:
    /** Bind the deployment architecture. */
    explicit RuntimeKernelScheduler(GpuSpec gpu);

    /**
     * Simulate one batch inference of a plan.
     *
     * @param plan compiled plan (kernels, optTLP, optSM per layer)
     * @param policy scheduling policy
     * @param positions optional per-layer perforation (tuning level);
     *        nullptr = exact execution
     * @return aggregated time/energy over conv + fc + aux phases
     */
    SimResult execute(const CompiledPlan &plan, const ExecPolicy &policy,
                      const std::vector<std::size_t> *positions =
                          nullptr) const;

    /** The simulator, for direct experimentation. */
    const GpuSim &sim() const { return gpuSim; }

  private:
    GpuSpec gpuSpec;
    GpuSim gpuSim;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_KERNEL_SCHEDULER_HH
