/**
 * @file
 * Online per-user requirement learning.
 *
 * The paper's Section IV.A closes with "in the future, we can create
 * a more fine-grained time requirement table for each user using
 * machine learning techniques to learn user experience". This module
 * implements that extension: an online estimator that narrows the
 * imperceptible threshold T_i (and the abandonment threshold T_t)
 * from implicit per-request feedback — whether the user seemed
 * satisfied, complained, or abandoned the request.
 */

#ifndef PCNN_PCNN_RUNTIME_REQUIREMENT_LEARNER_HH
#define PCNN_PCNN_RUNTIME_REQUIREMENT_LEARNER_HH

#include <cstddef>

#include "pcnn/task.hh"

namespace pcnn {

/** Implicit feedback signal attached to one served request. */
enum class UserFeedback
{
    Satisfied,  ///< no negative signal at this latency
    Complained, ///< visible dissatisfaction (retry, rating, churn risk)
    Abandoned,  ///< the user gave up before the answer arrived
};

/**
 * Bracket-narrowing estimator of the user's personal thresholds.
 *
 * T_i is maintained as an interval [lo, hi]: a satisfied request at
 * latency L proves T_i >= L (raise lo toward L); a complaint at L
 * proves T_i < L (drop hi toward L). The working threshold is a
 * conservative point inside the bracket. T_t narrows the same way
 * from abandonment events. Updates are exponentially damped so a
 * single noisy signal cannot collapse the estimate.
 */
class RequirementLearner
{
  public:
    /**
     * @param initial the table-derived requirement to start from
     * @param damping fraction of each observation applied (0, 1]
     */
    explicit RequirementLearner(UserRequirement initial,
                                double damping = 0.5);

    /** Current requirement estimate. */
    const UserRequirement &current() const { return req; }

    /** Fold one served request into the estimate. */
    void observe(double latency_s, UserFeedback feedback);

    /** Observations folded so far. */
    std::size_t observations() const { return count; }

    /** Width of the T_i bracket (confidence proxy; shrinks over time). */
    double imperceptibleBracketS() const { return hiTi - loTi; }

  private:
    /** Recompute the working requirement from the brackets. */
    void refresh();

    UserRequirement req;
    double damping;
    double loTi; ///< largest latency proven imperceptible
    double hiTi; ///< smallest latency proven perceptible
    double hiTt; ///< smallest latency proven unusable
    std::size_t count = 0;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_REQUIREMENT_LEARNER_HH
