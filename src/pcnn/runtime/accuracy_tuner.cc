#include "pcnn/runtime/accuracy_tuner.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.hh"
#include "pcnn/offline/resource_model.hh"
#include "tensor/tensor_ops.hh"
#include "train/loss.hh"

namespace pcnn {

AccuracyTuner::AccuracyTuner(GpuSpec gpu, TunerConfig config)
    : gpuSpec(gpu), cfg(config), timeModel(std::move(gpu))
{
    pcnn_assert(cfg.stepFraction > 0.0 && cfg.stepFraction < 1.0,
                "stepFraction must be in (0,1)");
}

double
AccuracyTuner::layerTimeAt(const CompiledPlan &plan, std::size_t layer,
                           std::size_t positions) const
{
    return layerTimeAt(plan, layer, positions, false);
}

double
AccuracyTuner::layerTimeAt(const CompiledPlan &plan, std::size_t layer,
                           std::size_t positions, bool quantized)
    const
{
    const LayerSchedule &ls = plan.layers.at(layer);
    TunedKernel k = ls.kernel;
    // Re-derive optSM for the perforated grid (resource model).
    const GemmShape gemm = ls.layer.gemmShape(plan.batch, positions);
    const SgemmModel model(gpuSpec, k.config);
    k.optSM =
        optimalSms(model.gridSize(gemm), k.optTLP, gpuSpec.numSMs);
    double t = timeModel.layerTime(ls.layer, k, plan.batch, positions);
    if (quantized)
        t /= std::max(cfg.int8Speedup, 1.0);
    return t;
}

double
AccuracyTuner::predictedTime(const CompiledPlan &plan,
                             const std::vector<std::size_t> &positions)
    const
{
    pcnn_assert(positions.size() == plan.layers.size(),
                "position vector mismatches plan layers");
    double conv = 0.0;
    for (std::size_t i = 0; i < plan.layers.size(); ++i)
        conv += layerTimeAt(plan, i, positions[i]);
    return conv + plan.time.fcS + plan.time.auxS;
}

std::size_t
AccuracyTuner::shrink(std::size_t current, std::size_t full,
                      std::size_t tile_n) const
{
    // Keep W'_o H'_o a multiple of the kernel's n to maximize rEC
    // (Section IV.C.1); small networks align to 8 so the path has
    // useful granularity.
    const std::size_t align = full >= 4 * tile_n ? tile_n : 8;
    const auto target = std::size_t(
        std::floor(double(current) * cfg.stepFraction));
    std::size_t aligned = (target / align) * align;
    aligned = std::max(aligned, std::max(cfg.minPositions,
                                         std::size_t(1)));
    return aligned < current ? aligned : 0;
}

namespace {

/** Evaluation hooks shared by the three tuning variants. */
struct TuneOracle
{
    /// measure (entropy, accuracy) at a (positions, quant) assignment;
    /// the quant vector is empty when the precision axis is off
    std::function<std::pair<double, double>(
        const std::vector<std::size_t> &,
        const std::vector<std::uint8_t> &)>
        measure;
    /// true when the stop criterion fires for a committed entry
    std::function<bool(const TuningEntry &, const TuningEntry &level0)>
        stop;
    /// score an adjustment: higher is better (the TE metric)
    std::function<double(double dt, const TuningEntry &prev,
                         double entropy, double accuracy)>
        score;
};

} // namespace

// The greedy loop of Fig. 12, shared across guidance modes. With
// `allow_quant` each iteration considers two kinds of adjustment per
// layer — shrink its grid, or flip it fp32 -> int8 — and commits
// whichever scores best across all layers and both axes.
static TuningTable
greedyTune(const AccuracyTuner &tuner, const CompiledPlan &plan,
           const TunerConfig &cfg,
           const std::vector<std::size_t> &full_positions,
           const std::vector<std::size_t> &tile_n, bool allow_quant,
           const TuneOracle &oracle,
           const std::function<std::size_t(std::size_t, std::size_t,
                                           std::size_t)> &shrink)
{
    const std::size_t n_layers = plan.layers.size();
    std::vector<std::size_t> current = full_positions;
    // Per-layer precision state; stays empty (legacy entries) when
    // the precision axis is off so replay paths are byte-identical.
    std::vector<std::uint8_t> quant(allow_quant ? n_layers : 0, 0);

    // Per-layer conv times, maintained incrementally: a trial only
    // re-prices the layer it perforates.
    std::vector<double> layer_time(n_layers);
    double conv_time = 0.0;
    for (std::size_t i = 0; i < n_layers; ++i) {
        layer_time[i] = tuner.layerTimeAt(plan, i, current[i]);
        conv_time += layer_time[i];
    }
    const double fc_aux = plan.time.fcS + plan.time.auxS;

    TuningTable table;
    TuningEntry level0;
    level0.positions = current;
    level0.quant = quant;
    level0.predictedTimeS = conv_time + fc_aux;
    auto [e0, a0] = oracle.measure(current, quant);
    level0.entropy = e0;
    level0.accuracy = a0;
    level0.speedup = 1.0;
    table.push(level0);

    const std::size_t max_iters =
        cfg.maxIterations ? cfg.maxIterations : 6 * n_layers;

    TuningEntry prev = level0;
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        double best_score = -1.0;
        int best_layer = -1;
        bool best_precision = false;
        double best_layer_time = 0.0;
        TuningEntry best_entry;

        const auto consider = [&](std::size_t i, bool precision,
                                  std::vector<std::size_t> trial_pos,
                                  std::vector<std::uint8_t> trial_q,
                                  double cand_layer_time) {
            const double t =
                conv_time - layer_time[i] + cand_layer_time + fc_aux;
            auto [entropy, acc] =
                oracle.measure(trial_pos, trial_q);
            const double dt = prev.predictedTimeS - t;
            const double score = oracle.score(dt, prev, entropy, acc);
            if (score > best_score) {
                best_score = score;
                best_layer = int(i);
                best_precision = precision;
                best_layer_time = cand_layer_time;
                best_entry.positions = std::move(trial_pos);
                best_entry.quant = std::move(trial_q);
                best_entry.predictedTimeS = t;
                best_entry.entropy = entropy;
                best_entry.accuracy = acc;
            }
        };

        for (std::size_t i = 0; i < n_layers; ++i) {
            const bool is_quant = allow_quant && quant[i] != 0;
            // Walk down the aligned position counts until this
            // layer's time actually drops: alignment plateaus (the
            // grid only changes every tile-n positions) and optSM
            // repacking can make single steps useless or even
            // slightly harmful — committing those would trade
            // accuracy for nothing.
            std::size_t cand =
                shrink(current[i], full_positions[i], tile_n[i]);
            double cand_layer_time =
                cand ? tuner.layerTimeAt(plan, i, cand, is_quant)
                     : 0.0;
            while (cand != 0 &&
                   cand_layer_time >= layer_time[i] - 1e-12) {
                const std::size_t next =
                    shrink(cand, full_positions[i], tile_n[i]);
                if (next == 0) {
                    cand = 0;
                    break;
                }
                cand = next;
                cand_layer_time =
                    tuner.layerTimeAt(plan, i, cand, is_quant);
            }
            if (cand != 0) {
                std::vector<std::size_t> trial = current;
                trial[i] = cand;
                consider(i, false, std::move(trial), quant,
                         cand_layer_time);
            }

            // Precision candidate: flip this layer to int8 at its
            // current grid. One-way — the tuning-table invariant
            // (and the paper's monotone walk) forbids reverting.
            if (allow_quant && quant[i] == 0) {
                const double q_time =
                    tuner.layerTimeAt(plan, i, current[i], true);
                if (q_time < layer_time[i] - 1e-12) {
                    std::vector<std::uint8_t> qtrial = quant;
                    qtrial[i] = 1;
                    consider(i, true, current, std::move(qtrial),
                             q_time);
                }
            }
        }
        if (best_layer < 0)
            break; // nothing left to shrink or quantize

        best_entry.speedup =
            level0.predictedTimeS / best_entry.predictedTimeS;
        best_entry.adjustedLayer = best_layer;
        best_entry.adjustedPrecision = best_precision;
        current = best_entry.positions;
        quant = best_entry.quant;
        conv_time += best_layer_time -
                     layer_time[std::size_t(best_layer)];
        layer_time[std::size_t(best_layer)] = best_layer_time;
        table.push(best_entry);
        prev = table.entry(table.levels() - 1);
        if (oracle.stop(prev, level0))
            break;
    }
    return table;
}

TuningTable
AccuracyTuner::tuneNetwork(Network &net, const CompiledPlan &plan,
                           const Tensor &tuning_inputs) const
{
    const auto &convs = net.convLayers();
    pcnn_assert(convs.size() == plan.layers.size(),
                "plan does not match the functional network");

    std::vector<std::size_t> full(convs.size()), tile_n(convs.size());
    for (std::size_t i = 0; i < convs.size(); ++i) {
        full[i] = convs[i]->fullPositions();
        tile_n[i] = plan.layers[i].kernel.config.tile.n;
    }

    TuneOracle oracle;
    oracle.measure = [&](const std::vector<std::size_t> &pos,
                         const std::vector<std::uint8_t> &q) {
        for (std::size_t i = 0; i < convs.size(); ++i) {
            convs[i]->setComputedPositions(pos[i]);
            if (!q.empty())
                convs[i]->setQuantized(q[i] != 0);
        }
        const Tensor probs = softmax(net.forward(tuning_inputs, false));
        return std::make_pair(batchEntropy(probs), -1.0);
    };
    oracle.stop = [&](const TuningEntry &e, const TuningEntry &) {
        return e.entropy > cfg.entropyThreshold;
    };
    oracle.score = [](double dt, const TuningEntry &prev,
                      double entropy, double) {
        // Eq. 14: time saved per unit of entropy increase. An
        // adjustment that does not raise entropy is a free win.
        const double de = std::max(entropy - prev.entropy, 1e-6);
        return dt / de;
    };

    auto shrink_fn = [this](std::size_t cur, std::size_t full_pos,
                            std::size_t n) {
        return shrink(cur, full_pos, n);
    };
    TuningTable table = greedyTune(*this, plan, cfg, full, tile_n,
                                   cfg.allowQuantize, oracle,
                                   shrink_fn);
    net.clearPerforation();
    if (cfg.allowQuantize)
        net.clearQuantization();
    return table;
}

TuningTable
AccuracyTuner::tuneNetworkByAccuracy(Network &net,
                                     const CompiledPlan &plan,
                                     const Dataset &labeled) const
{
    const auto &convs = net.convLayers();
    pcnn_assert(convs.size() == plan.layers.size(),
                "plan does not match the functional network");

    std::vector<std::size_t> full(convs.size()), tile_n(convs.size());
    for (std::size_t i = 0; i < convs.size(); ++i) {
        full[i] = convs[i]->fullPositions();
        tile_n[i] = plan.layers[i].kernel.config.tile.n;
    }
    const Tensor inputs = labeled.batch(0, labeled.size());

    TuneOracle oracle;
    oracle.measure = [&](const std::vector<std::size_t> &pos,
                         const std::vector<std::uint8_t> &q) {
        for (std::size_t i = 0; i < convs.size(); ++i) {
            convs[i]->setComputedPositions(pos[i]);
            if (!q.empty())
                convs[i]->setQuantized(q[i] != 0);
        }
        const Tensor logits = net.forward(inputs, false);
        const Tensor probs = softmax(logits);
        return std::make_pair(batchEntropy(probs),
                              accuracy(logits, labeled.labels()));
    };
    oracle.stop = [&](const TuningEntry &e, const TuningEntry &l0) {
        return e.accuracy < l0.accuracy - cfg.maxAccuracyDrop;
    };
    oracle.score = [](double dt, const TuningEntry &prev, double,
                      double acc) {
        const double da = std::max(prev.accuracy - acc, 1e-6);
        return dt / da;
    };

    auto shrink_fn = [this](std::size_t cur, std::size_t full_pos,
                            std::size_t n) {
        return shrink(cur, full_pos, n);
    };
    TuningTable table = greedyTune(*this, plan, cfg, full, tile_n,
                                   cfg.allowQuantize, oracle,
                                   shrink_fn);
    net.clearPerforation();
    if (cfg.allowQuantize)
        net.clearQuantization();
    return table;
}

TuningTable
AccuracyTuner::tuneModeled(const CompiledPlan &plan,
                           const EntropyProfile &profile) const
{
    const std::size_t n_layers = plan.layers.size();
    std::vector<std::size_t> full(n_layers), tile_n(n_layers);
    std::vector<double> layer_flops(n_layers);
    double total_flops = 0.0;
    for (std::size_t i = 0; i < n_layers; ++i) {
        full[i] = plan.layers[i].layer.outH() *
                  plan.layers[i].layer.outW();
        tile_n[i] = plan.layers[i].kernel.config.tile.n;
        layer_flops[i] = plan.layers[i].layer.flopsPerImage();
        total_flops += layer_flops[i];
    }

    TuneOracle oracle;
    oracle.measure = [&](const std::vector<std::size_t> &pos,
                         const std::vector<std::uint8_t> &) {
        double kept = 0.0;
        for (std::size_t i = 0; i < n_layers; ++i)
            kept += layer_flops[i] * double(pos[i]) / double(full[i]);
        const double keep = total_flops > 0.0 ? kept / total_flops
                                              : 1.0;
        return std::make_pair(profile.entropyAt(keep),
                              profile.accuracyAt(keep));
    };
    oracle.stop = [&](const TuningEntry &e, const TuningEntry &) {
        return e.entropy > cfg.entropyThreshold;
    };
    oracle.score = [](double dt, const TuningEntry &prev,
                      double entropy, double) {
        const double de = std::max(entropy - prev.entropy, 1e-6);
        return dt / de;
    };

    auto shrink_fn = [this](std::size_t cur, std::size_t full_pos,
                            std::size_t n) {
        return shrink(cur, full_pos, n);
    };
    // Modeled profiles map a FLOP keep-fraction to entropy; they
    // carry no information about int8 error, so the precision axis
    // stays off here regardless of cfg.allowQuantize.
    return greedyTune(*this, plan, cfg, full, tile_n, false, oracle,
                      shrink_fn);
}

} // namespace pcnn
