/**
 * @file
 * Run-time accuracy tuning (Section IV.C.1, Fig. 12).
 *
 * Greedy per-layer perforation: each iteration tentatively shrinks
 * every conv layer's computed output grid, scores the adjustment with
 * the TE metric (Eq. 14: time saved per unit of entropy increase),
 * commits the best layer, and records a tuning-table entry. The
 * entropy-guided variant is unsupervised (the paper's contribution);
 * the accuracy-guided variant needs labeled data and exists as the
 * Fig. 16 comparator.
 */

#ifndef PCNN_PCNN_RUNTIME_ACCURACY_TUNER_HH
#define PCNN_PCNN_RUNTIME_ACCURACY_TUNER_HH

#include "data/dataset.hh"
#include "nn/network.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/entropy_profile.hh"
#include "pcnn/runtime/tuning_table.hh"

namespace pcnn {

/** Tuner knobs. */
struct TunerConfig
{
    /// stop once output entropy exceeds this (entropy-guided mode)
    double entropyThreshold = 1.2;
    /// stop once accuracy drops this much below the exact network
    /// (accuracy-guided mode)
    double maxAccuracyDrop = 0.10;
    /// greedy iterations; 0 = automatic (6 adjustments per conv
    /// layer, so deep networks tune as far as shallow ones)
    std::size_t maxIterations = 0;
    /// per-adjustment shrink factor of one layer's position count
    double stepFraction = 0.8;
    /// never perforate a layer below this many positions
    std::size_t minPositions = 4;
    /// let a greedy step flip one layer fp32 -> int8 instead of
    /// perforating it (the precision axis of the trade-off walk);
    /// off by default so the paper-fidelity path is untouched
    bool allowQuantize = false;
    /// Eq.-12 pricing of an int8 layer: fp32 layer time divided by
    /// this factor. The default matches the measured batch-1 qgemm
    /// speedup on large-K conv shapes (BENCH_pr8.json).
    double int8Speedup = 2.0;
};

/**
 * The accuracy tuner, bound to one GPU (for the time model) and one
 * compiled plan (for the per-layer kernels).
 */
class AccuracyTuner
{
  public:
    /** @param gpu deployment GPU @param cfg tuning knobs */
    AccuracyTuner(GpuSpec gpu, TunerConfig cfg);

    /**
     * Entropy-guided tuning of a trained functional network. Entropy
     * is measured by running the network on unlabeled tuning inputs;
     * time comes from the plan's time model with re-derived optSM.
     * The network is left at level 0 (unperforated) on return.
     */
    TuningTable tuneNetwork(Network &net, const CompiledPlan &plan,
                            const Tensor &tuning_inputs) const;

    /**
     * Accuracy-guided comparator (supervised): same greedy loop, but
     * adjustments are scored and stopped by labeled accuracy.
     */
    TuningTable tuneNetworkByAccuracy(Network &net,
                                      const CompiledPlan &plan,
                                      const Dataset &labeled) const;

    /**
     * Profile-driven tuning for shape-only networks: entropy and
     * accuracy come from a calibrated EntropyProfile evaluated at the
     * FLOP-weighted keep fraction.
     */
    TuningTable tuneModeled(const CompiledPlan &plan,
                            const EntropyProfile &profile) const;

    /**
     * Predicted batch latency of a plan at a per-layer position
     * assignment (0 = full), re-deriving optSM per layer (the paper's
     * "new tuning table ... using our resource model").
     */
    double predictedTime(const CompiledPlan &plan,
                         const std::vector<std::size_t> &positions)
        const;

    /**
     * Predicted time of a single conv layer at a position count
     * (0 = full), with re-derived optSM. The greedy loop uses this
     * incrementally: a trial only re-prices the layer it touches.
     */
    double layerTimeAt(const CompiledPlan &plan, std::size_t layer,
                       std::size_t positions) const;

    /**
     * Same, with the precision axis: `quantized` prices the layer on
     * the int8 route (fp32 time / int8Speedup, clamped to >= 1x so a
     * misconfigured factor can never make "faster" kernels slower).
     */
    double layerTimeAt(const CompiledPlan &plan, std::size_t layer,
                       std::size_t positions, bool quantized) const;

  private:
    /** Next smaller aligned position count; 0 when already minimal. */
    std::size_t shrink(std::size_t current, std::size_t full,
                       std::size_t tile_n) const;

    GpuSpec gpuSpec;
    TunerConfig cfg;
    TimeModel timeModel;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_ACCURACY_TUNER_HH
