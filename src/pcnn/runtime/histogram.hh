/**
 * @file
 * Latency-percentile and batch-size histogram helpers shared by the
 * analytical serving simulator (ServingSimulator) and the concurrent
 * serving engine (ServeEngine/ServeMetrics), so both report tails
 * with the same interpolation rule and the two can be cross-checked
 * number for number.
 */

#ifndef PCNN_PCNN_RUNTIME_HISTOGRAM_HH
#define PCNN_PCNN_RUNTIME_HISTOGRAM_HH

#include <cstddef>
#include <vector>

namespace pcnn {

/**
 * Linear-interpolated percentile of an ascending-sorted sample
 * (the "exclusive" variant NumPy calls 'linear'): p in [0, 1].
 * @pre sorted is non-empty and ascending
 */
double percentileOfSorted(const std::vector<double> &sorted, double p);

/** Tail summary of a latency sample, in seconds. */
struct LatencySummary
{
    std::size_t count = 0;
    double meanS = 0.0;
    double minS = 0.0;
    double maxS = 0.0;
    double p50S = 0.0;
    double p95S = 0.0;
    double p99S = 0.0;
    double p999S = 0.0;
};

/**
 * Summarize a latency sample (seconds). Sorts its by-value argument;
 * an empty sample yields the all-zero summary.
 */
LatencySummary summarizeLatencies(std::vector<double> samples);

/**
 * Served-batch size distribution: counts[b] is the number of batches
 * served with exactly b requests (index 0 is never used).
 */
struct BatchSizeHistogram
{
    std::vector<std::size_t> counts;

    /** Count one served batch of the given size (>= 1). */
    void record(std::size_t batch);

    /** Total batches recorded. */
    std::size_t batches() const;

    /** Total requests across all recorded batches. */
    std::size_t images() const;

    /** Mean served batch size (0 when empty). */
    double meanBatch() const;
};

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_HISTOGRAM_HH
