/**
 * @file
 * SoC_time slack accounting for multi-tenant serving (DESIGN.md §5k).
 *
 * The paper's task classes (Table II) give background work its whole
 * runtime story: background requests score SoC_time = 1 at any
 * latency, so their slack is the resource the scheduler may spend to
 * protect the latency-bearing classes. This header quantifies that
 * spend as an *occupancy budget*: the longest a background batch may
 * hold a replica such that an interactive request arriving the
 * moment the batch starts still completes inside its imperceptible
 * region (Fig. 3) — and, tighter, close to the latency it would see
 * with no background traffic at all.
 */

#ifndef PCNN_PCNN_RUNTIME_SLACK_HH
#define PCNN_PCNN_RUNTIME_SLACK_HH

#include "pcnn/task.hh"

namespace pcnn {

/** Background-admission policy knobs (DESIGN.md §5k). */
struct SlackConfig
{
    /// share of the Fig. 3 SoC_time slack background work may spend;
    /// the rest absorbs queueing ahead of the arriving request and
    /// estimator error
    double socFraction = 0.5;
    /// tail-protection cap: background occupancy may not exceed this
    /// multiple of the latency-class EWMA service estimate, so the
    /// head-of-line blocking a background batch can add to an
    /// interactive response stays proportional to one service time
    double occupancyFactor = 2.0;
    /// occupancy floor in seconds: background always gets at least
    /// this much batch grain (and never less than one request), so a
    /// hyper-tight interactive estimate cannot starve throughput
    double minOccupancyS = 0.0;
};

/**
 * SoC_time slack of a latency-bearing requirement given the EWMA
 * service estimate for its class (Fig. 3): the wait a response can
 * absorb before leaving the imperceptible region. Non-negative;
 * +infinity for time-insensitive requirements.
 */
double socTimeSlackS(const UserRequirement &req, double est_service_s);

/**
 * Occupancy budget for one background batch: how long it may hold a
 * replica given the tightest latency-bearing requirement currently
 * active and that class's EWMA service estimate.
 *
 *   budget = min(socFraction * socTimeSlackS(req, est),
 *                max(occupancyFactor * est, minOccupancyS))
 *
 * The first term spends the paper's slack; the second keeps the p99
 * inflation of the protected class proportional to its own service
 * time. +infinity when `req` is time-insensitive (no latency-bearing
 * traffic to protect).
 */
double backgroundOccupancyBudgetS(const UserRequirement &req,
                                  double est_service_s,
                                  const SlackConfig &cfg);

} // namespace pcnn

#endif // PCNN_PCNN_RUNTIME_SLACK_HH
