#include "pcnn/runtime/calibration.hh"

#include "common/logging.hh"

namespace pcnn {

Calibrator::Calibrator(const TuningTable &t, double entropy_threshold)
    : table(t), threshold(entropy_threshold)
{
    pcnn_assert(table.levels() >= 1, "calibrator needs a tuning path");
    level = table.selectLevel(threshold);
}

const TuningEntry &
Calibrator::current() const
{
    return table.entry(level);
}

bool
Calibrator::observe(double measured_entropy)
{
    if (measured_entropy <= threshold || level == 0)
        return false;
    // Step back along the tuning path toward the exact network.
    --level;
    ++steps;
    return true;
}

} // namespace pcnn
