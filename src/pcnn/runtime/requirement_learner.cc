#include "pcnn/runtime/requirement_learner.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcnn {

RequirementLearner::RequirementLearner(UserRequirement initial,
                                       double damp)
    : req(initial), damping(damp)
{
    pcnn_assert(damping > 0.0 && damping <= 1.0,
                "damping must be in (0, 1]");
    pcnn_assert(!initial.timeInsensitive,
                "nothing to learn for a background task");
    // Start with a generous bracket around the table value.
    loTi = initial.imperceptibleS * 0.25;
    hiTi = initial.imperceptibleS * 4.0;
    hiTt = std::max(initial.tolerableS, hiTi);
    refresh();
}

void
RequirementLearner::refresh()
{
    // Work at the conservative end of the bracket: never promise the
    // user more patience than has been demonstrated.
    req.imperceptibleS = loTi + 0.25 * (hiTi - loTi);
    req.tolerableS = std::max(hiTt, req.imperceptibleS);
}

void
RequirementLearner::observe(double latency_s, UserFeedback feedback)
{
    pcnn_assert(latency_s >= 0.0, "negative latency");
    ++count;
    switch (feedback) {
      case UserFeedback::Satisfied:
        // The user was fine at this latency: T_i is at least ~L.
        if (latency_s > loTi) {
            loTi += damping * (std::min(latency_s, hiTi) - loTi);
        }
        break;
      case UserFeedback::Complained:
        // The user noticed: T_i is below L.
        if (latency_s < hiTi)
            hiTi -= damping * (hiTi - std::max(latency_s, loTi));
        break;
      case UserFeedback::Abandoned:
        // The user walked away: T_t is below L, and so is T_i.
        if (latency_s < hiTt)
            hiTt -= damping * (hiTt - latency_s);
        if (latency_s < hiTi)
            hiTi -= damping * (hiTi - std::max(latency_s, loTi));
        break;
    }
    loTi = std::min(loTi, hiTi);
    refresh();
}

} // namespace pcnn
