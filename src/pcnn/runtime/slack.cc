#include "pcnn/runtime/slack.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace pcnn {

double
socTimeSlackS(const UserRequirement &req, double est_service_s)
{
    if (req.timeInsensitive)
        return std::numeric_limits<double>::infinity();
    pcnn_assert(est_service_s >= 0.0,
                "service estimate must be non-negative");
    return std::max(0.0, req.imperceptibleS - est_service_s);
}

double
backgroundOccupancyBudgetS(const UserRequirement &req,
                           double est_service_s,
                           const SlackConfig &cfg)
{
    if (req.timeInsensitive)
        return std::numeric_limits<double>::infinity();
    const double soc_term =
        cfg.socFraction * socTimeSlackS(req, est_service_s);
    const double tail_term = std::max(
        cfg.occupancyFactor * est_service_s, cfg.minOccupancyS);
    return std::min(soc_term, tail_term);
}

} // namespace pcnn
