#include "pcnn/runtime/serving_sim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>

#include "common/logging.hh"
#include "common/random.hh"
#include "gpu/sim/gpu_sim.hh"

namespace pcnn {

ServingSimulator::ServingSimulator(GpuSpec gpu, NetDescriptor net)
    : gpuSpec(gpu), netDesc(std::move(net)), compiler(gpu),
      scheduler(std::move(gpu))
{
}

ServingStats
ServingSimulator::run(const ServingConfig &cfg,
                      const UserRequirement &req) const
{
    pcnn_assert(cfg.arrivalRateHz > 0.0 && cfg.durationS > 0.0,
                "serving needs a positive rate and duration");
    pcnn_assert(cfg.maxBatch >= 1, "maxBatch must be >= 1");

    // Sample the arrival stream.
    Rng rng(cfg.seed);
    std::vector<double> arrivals;
    double t = 0.0;
    while (true) {
        // Exponential inter-arrival gaps.
        t += -std::log(1.0 - rng.uniform()) / cfg.arrivalRateHz;
        if (t > cfg.durationS)
            break;
        arrivals.push_back(t);
    }

    // Batch execution costs, cached per batch size for this policy.
    std::vector<std::optional<SimResult>> cache(cfg.maxBatch + 1);
    auto cost = [&](std::size_t batch) -> const SimResult & {
        pcnn_assert(batch >= 1 && batch <= cfg.maxBatch,
                    "batch out of range");
        if (!cache[batch]) {
            const CompiledPlan plan =
                compiler.compileAtBatch(netDesc, batch);
            cache[batch] = scheduler.execute(plan, cfg.policy);
        }
        return *cache[batch];
    };

    ServingStats stats;
    std::vector<double> latencies;
    std::deque<double> queue; // arrival times of waiting requests
    std::size_t next_arrival = 0;
    double now = 0.0;
    double busy = 0.0;
    double serve_energy = 0.0;
    double soc_time_sum = 0.0;

    auto admit_until = [&](double deadline) {
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival] <= deadline) {
            queue.push_back(arrivals[next_arrival]);
            ++next_arrival;
        }
    };

    while (next_arrival < arrivals.size() || !queue.empty()) {
        if (queue.empty()) {
            // Jump to the next arrival.
            now = std::max(now, arrivals[next_arrival]);
            admit_until(now);
            continue;
        }

        // Wait for more requests if the policy allows and the batch
        // is not full yet.
        const double oldest = queue.front();
        const double flush_at = oldest + cfg.maxWaitS;
        while (queue.size() < cfg.maxBatch &&
               next_arrival < arrivals.size() &&
               arrivals[next_arrival] <=
                   std::max(now, flush_at)) {
            queue.push_back(arrivals[next_arrival]);
            ++next_arrival;
        }
        if (queue.size() < cfg.maxBatch)
            now = std::max(now, flush_at);

        const std::size_t batch =
            std::min<std::size_t>(queue.size(), cfg.maxBatch);
        // Service cannot start before the newest batched request has
        // actually arrived (the wait loop may admit arrivals that
        // lie between `now` and the flush deadline).
        now = std::max(now, queue[batch - 1]);
        const SimResult &exec = cost(batch);
        const double done = now + exec.timeS;

        for (std::size_t i = 0; i < batch; ++i) {
            const double latency = done - queue.front();
            queue.pop_front();
            latencies.push_back(latency);
            const double st = socTime(latency, req);
            soc_time_sum += st;
            stats.satisfactionViolations += st <= 0.0;
        }
        busy += exec.timeS;
        serve_energy += exec.energy.total();
        stats.batchHist.record(batch);
        now = done;
        admit_until(now);
    }

    stats.requests = latencies.size();
    pcnn_assert(stats.requests == arrivals.size(),
                "serving lost requests");
    if (stats.requests == 0)
        return stats;
    stats.batches = stats.batchHist.batches();
    stats.meanBatch = stats.batchHist.meanBatch();

    const LatencySummary lat = summarizeLatencies(latencies);
    stats.meanLatencyS = lat.meanS;
    stats.p50LatencyS = lat.p50S;
    stats.p95LatencyS = lat.p95S;
    stats.p99LatencyS = lat.p99S;
    stats.p999LatencyS = lat.p999S;

    // Energy over the whole horizon: serving plus gated idle.
    const double horizon = std::max(now, cfg.durationS);
    const GpuSim sim(gpuSpec);
    const double idle_energy =
        sim.fixedInterval(std::max(0.0, horizon - busy), 0)
            .energy.total();
    stats.energyJ = serve_energy + idle_energy;
    stats.energyPerImageJ = stats.energyJ / double(stats.requests);
    stats.busyFraction = busy / horizon;
    stats.meanSocTime = soc_time_sum / double(stats.requests);
    return stats;
}

} // namespace pcnn
