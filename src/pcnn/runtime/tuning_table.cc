#include "pcnn/runtime/tuning_table.hh"

#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"

namespace pcnn {

void
TuningTable::push(TuningEntry entry)
{
    PCNN_CHECK(std::isfinite(entry.predictedTimeS) &&
                   entry.predictedTimeS > 0.0,
               "tuning entry with non-positive predicted time ",
               entry.predictedTimeS);
    PCNN_CHECK_GE(entry.speedup, 1.0,
                  "tuning entry slower than the exact level");
    if (!entries.empty()) {
        PCNN_CHECK_EQ(entry.positions.size(),
                      entries.front().positions.size(),
                      "tuning entry layer count changed mid-path");
        // The greedy loop only commits strictly faster assignments,
        // so the path walks monotonically down in predicted time;
        // calibration backtracking relies on this ordering.
        PCNN_CHECK(entry.predictedTimeS <=
                       entries.back().predictedTimeS * (1.0 + 1e-9),
                   "tuning path time must be non-increasing: level ",
                   entries.size(), " has ", entry.predictedTimeS,
                   " after ", entries.back().predictedTimeS);
        for (std::size_t i = 0; i < entry.positions.size(); ++i) {
            PCNN_CHECK_LE(entry.positions[i],
                          entries.back().positions[i],
                          "tuning path un-perforated layer ", i,
                          " at level ", entries.size());
        }
        // Precision walks the same one-way path as perforation: a
        // layer flipped to int8 stays int8 at every later level, so
        // calibration backtracking only ever *removes* approximation.
        if (!entry.quant.empty() && !entries.back().quant.empty()) {
            PCNN_CHECK_EQ(entry.quant.size(),
                          entries.back().quant.size(),
                          "tuning entry quant layer count changed "
                          "mid-path");
            for (std::size_t i = 0; i < entry.quant.size(); ++i) {
                PCNN_CHECK_GE(int(entry.quant[i]),
                              int(entries.back().quant[i]),
                              "tuning path de-quantized layer ", i,
                              " at level ", entries.size());
            }
        }
    }
    entries.push_back(std::move(entry));
}

const TuningEntry &
TuningTable::entry(std::size_t level) const
{
    PCNN_CHECK_LT(level, entries.size(), "tuning level out of range");
    return entries[level];
}

std::size_t
TuningTable::selectLevel(double entropy_threshold) const
{
    pcnn_assert(!entries.empty(), "empty tuning table");
    std::size_t best = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].entropy <= entropy_threshold &&
            entries[i].predictedTimeS <
                entries[best].predictedTimeS) {
            best = i;
        }
    }
    // When even level 0 violates the threshold there is nothing a
    // slower kernel can do; stay exact.
    if (entries[best].entropy > entropy_threshold)
        return 0;
    return best;
}

double
TuningTable::bestSpeedup(double entropy_threshold) const
{
    return entry(selectLevel(entropy_threshold)).speedup;
}

} // namespace pcnn
