#include "pcnn/runtime/tuning_table.hh"

#include "common/logging.hh"

namespace pcnn {

void
TuningTable::push(TuningEntry entry)
{
    if (!entries.empty()) {
        pcnn_assert(entry.positions.size() ==
                        entries.front().positions.size(),
                    "tuning entry layer count changed mid-path");
    }
    entries.push_back(std::move(entry));
}

const TuningEntry &
TuningTable::entry(std::size_t level) const
{
    pcnn_assert(level < entries.size(), "tuning level ", level,
                " out of ", entries.size());
    return entries[level];
}

std::size_t
TuningTable::selectLevel(double entropy_threshold) const
{
    pcnn_assert(!entries.empty(), "empty tuning table");
    std::size_t best = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].entropy <= entropy_threshold &&
            entries[i].predictedTimeS <
                entries[best].predictedTimeS) {
            best = i;
        }
    }
    // When even level 0 violates the threshold there is nothing a
    // slower kernel can do; stay exact.
    if (entries[best].entropy > entropy_threshold)
        return 0;
    return best;
}

double
TuningTable::bestSpeedup(double entropy_threshold) const
{
    return entry(selectLevel(entropy_threshold)).speedup;
}

} // namespace pcnn
