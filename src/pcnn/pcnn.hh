/**
 * @file
 * Umbrella header: the public API of the P-CNN library.
 *
 * Typical flow (see examples/quickstart.cc):
 *   1. Describe the deployment: a NetDescriptor (model zoo or your
 *      own), a GpuSpec (presets or custom), an AppSpec.
 *   2. OfflineCompiler::compile -> CompiledPlan (tuned kernels,
 *      batch, optSM/optTLP per layer).
 *   3. For a functional network: Executor (tune + infer + calibrate).
 *      For shape-only studies: RuntimeKernelScheduler + AccuracyTuner
 *      + the scheduler zoo.
 */

#ifndef PCNN_PCNN_PCNN_HH
#define PCNN_PCNN_PCNN_HH

#include "common/table.hh"
#include "data/synthetic.hh"
#include "gpu/gpu_spec.hh"
#include "gpu/kernel_model.hh"
#include "gpu/memory_model.hh"
#include "gpu/sim/gpu_sim.hh"
#include "libs/dl_library.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/accuracy_tuner.hh"
#include "pcnn/runtime/calibration.hh"
#include "pcnn/runtime/executor.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/satisfaction.hh"
#include "pcnn/schedulers/scheduler.hh"
#include "pcnn/task.hh"
#include "train/trainer.hh"

#endif // PCNN_PCNN_PCNN_HH
