#include "pcnn/task.hh"

#include <limits>

#include "common/logging.hh"

namespace pcnn {

std::string
taskClassName(TaskClass cls)
{
    switch (cls) {
      case TaskClass::Interactive:
        return "interactive";
      case TaskClass::RealTime:
        return "real-time";
      case TaskClass::Background:
        return "background";
    }
    pcnn_panic("unknown TaskClass");
}

UserRequirement
inferRequirement(const AppSpec &app)
{
    UserRequirement req;
    switch (app.taskClass) {
      case TaskClass::Interactive:
        // HCI thresholds: 100 ms feels instant, 3 s causes abandonment.
        req.imperceptibleS = 0.1;
        req.tolerableS = 3.0;
        break;
      case TaskClass::RealTime:
        // The deadline is the frame period; no tolerable region.
        pcnn_assert(app.dataRateHz > 0.0,
                    "real-time task needs a frame rate");
        req.imperceptibleS = 1.0 / app.dataRateHz;
        req.tolerableS = req.imperceptibleS;
        break;
      case TaskClass::Background:
        req.timeInsensitive = true;
        req.imperceptibleS = std::numeric_limits<double>::infinity();
        req.tolerableS = std::numeric_limits<double>::infinity();
        break;
    }
    // Entertainment-grade apps tolerate noticeably uncertain outputs;
    // safety/security apps do not. Both thresholds sit slightly
    // inside what the end-user would truly accept — the paper's
    // P-CNN is deliberately conservative, which is why the Ideal
    // oracle can still beat it (Section V.C).
    req.entropyThreshold = app.accuracySensitive ? 0.55 : 0.75;
    return req;
}

UserRequirement
classRequirement(TaskClass cls)
{
    AppSpec app;
    app.taskClass = cls;
    app.dataRateHz = cls == TaskClass::RealTime ? 60.0 : 1.0;
    return inferRequirement(app);
}

AppSpec
ageDetectionApp()
{
    AppSpec app;
    app.name = "age detection";
    app.taskClass = TaskClass::Interactive;
    app.dataRateHz = 1.0; // one selfie per request
    app.accuracySensitive = false;
    return app;
}

AppSpec
videoSurveillanceApp()
{
    AppSpec app;
    app.name = "video surveillance";
    app.taskClass = TaskClass::RealTime;
    app.dataRateHz = 60.0; // 60 FPS camera
    app.accuracySensitive = true;
    return app;
}

AppSpec
imageTaggingApp()
{
    AppSpec app;
    app.name = "image tagging";
    app.taskClass = TaskClass::Background;
    app.dataRateHz = 100.0; // a photo roll to churn through
    app.accuracySensitive = false;
    return app;
}

} // namespace pcnn
