/**
 * @file
 * The Satisfaction-of-CNN (SoC) metric.
 *
 * Implements Section V.A: SoC = SoC_time * SoC_accuracy / Energy.
 * SoC_time follows the Fig. 3 curve (imperceptible / tolerable /
 * unusable); SoC_accuracy is driven by output entropy against the
 * user's threshold.
 */

#ifndef PCNN_PCNN_SATISFACTION_HH
#define PCNN_PCNN_SATISFACTION_HH

#include "pcnn/task.hh"

namespace pcnn {

/**
 * SoC_time of a response latency under a requirement (Fig. 3):
 * 1 in the imperceptible region, linear decay to 0 across the
 * tolerable region, 0 when unusable. Real-time tasks have no
 * tolerable region; background tasks always score 1.
 */
double socTime(double latency_s, const UserRequirement &req);

/**
 * SoC_accuracy: 1 while entropy is under the user threshold,
 * threshold/entropy beyond it.
 */
double socAccuracy(double entropy, const UserRequirement &req);

/**
 * Eq. 15. Energy is per processed image (joules); a zero SoC_time
 * (deadline violated / abandoned) makes the whole score zero.
 */
double soc(double latency_s, double entropy, double energy_per_image_j,
           const UserRequirement &req);

} // namespace pcnn

#endif // PCNN_PCNN_SATISFACTION_HH
