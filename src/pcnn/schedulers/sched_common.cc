#include "pcnn/schedulers/sched_common.hh"

namespace pcnn {
namespace sched {

ScheduleOutcome
simulatePlan(const ScheduleContext &ctx, const CompiledPlan &plan,
             const ExecPolicy &policy,
             const std::vector<std::size_t> *positions, double entropy,
             double accuracy)
{
    const RuntimeKernelScheduler rt(ctx.gpu);
    const SimResult sim = rt.execute(plan, policy, positions);

    ScheduleOutcome out;
    out.batch = plan.batch;
    // Response latency includes the time spent *accumulating* the
    // batch: requests arrive at the application's data rate, so a
    // scheduler that batches beyond the live request stream pays for
    // it in responsiveness (this is what sinks the energy-efficient
    // scheduler on latency-sensitive tasks in Figs. 13/15).
    const double fill =
        ctx.app.dataRateHz > 0.0
            ? double(plan.batch - 1) / ctx.app.dataRateHz
            : 0.0;
    out.latencyS = sim.timeS + fill;
    out.energyPerImageJ = sim.energy.total() / double(plan.batch);
    out.entropy = entropy >= 0.0 ? entropy : ctx.profile.entropyAt(1.0);
    out.accuracy =
        accuracy >= 0.0 ? accuracy : ctx.profile.accuracyAt(1.0);
    return out;
}

} // namespace sched
} // namespace pcnn
