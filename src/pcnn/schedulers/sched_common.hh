/**
 * @file
 * Shared plumbing for the scheduler implementations: run a compiled
 * plan on the simulator under a policy and convert the result into a
 * scored ScheduleOutcome.
 */

#ifndef PCNN_PCNN_SCHEDULERS_SCHED_COMMON_HH
#define PCNN_PCNN_SCHEDULERS_SCHED_COMMON_HH

#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {
namespace sched {

/**
 * Simulate a plan and build the raw (pre-score) outcome.
 * @param positions per-layer perforation, nullptr = exact
 * @param entropy output entropy to report (profile keep=1 if < 0)
 */
ScheduleOutcome simulatePlan(const ScheduleContext &ctx,
                             const CompiledPlan &plan,
                             const ExecPolicy &policy,
                             const std::vector<std::size_t> *positions,
                             double entropy = -1.0,
                             double accuracy = -1.0);

} // namespace sched
} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_SCHED_COMMON_HH
