#include "pcnn/schedulers/pcnn_scheduler.hh"

#include "pcnn/runtime/accuracy_tuner.hh"
#include "pcnn/schedulers/sched_common.hh"

namespace pcnn {

ScheduleOutcome
PcnnScheduler::run(const ScheduleContext &ctx) const
{
    const OfflineCompiler compiler(ctx.gpu);
    const CompiledPlan plan = compiler.compile(ctx.net, ctx.app);

    // Entropy-based accuracy tuning against the inferred threshold.
    TunerConfig tcfg;
    tcfg.entropyThreshold = ctx.requirement.entropyThreshold;
    const AccuracyTuner tuner(ctx.gpu, tcfg);
    const TuningTable table = tuner.tuneModeled(plan, ctx.profile);
    const std::size_t level =
        table.selectLevel(ctx.requirement.entropyThreshold);
    const TuningEntry &entry = table.entry(level);

    const std::vector<std::size_t> *positions =
        level == 0 ? nullptr : &entry.positions;
    ScheduleOutcome out = sched::simulatePlan(
        ctx, plan, pcnnPolicy(), positions, entry.entropy,
        entry.accuracy);
    out.scheduler = name();
    out.tuningSpeedup = entry.speedup;
    score(out, ctx);
    return out;
}

} // namespace pcnn
