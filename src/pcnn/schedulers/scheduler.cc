#include "pcnn/schedulers/scheduler.hh"

#include "common/logging.hh"
#include "pcnn/schedulers/energy_efficient.hh"
#include "pcnn/schedulers/ideal.hh"
#include "pcnn/schedulers/pcnn_scheduler.hh"
#include "pcnn/schedulers/perf_preferred.hh"
#include "pcnn/schedulers/qpe.hh"
#include "pcnn/schedulers/qpe_plus.hh"

namespace pcnn {

void
Scheduler::score(ScheduleOutcome &out, const ScheduleContext &ctx)
{
    out.socTimeScore = socTime(out.latencyS, ctx.requirement);
    out.socAccuracyScore = socAccuracy(out.entropy, ctx.requirement);
    out.deadlineMet = out.socTimeScore > 0.0;
    pcnn_assert(out.energyPerImageJ > 0.0,
                "scheduler produced zero energy");
    out.socScore = out.socTimeScore * out.socAccuracyScore /
                   out.energyPerImageJ;
}

ScheduleContext
makeContext(const AppSpec &app, const NetDescriptor &net,
            const GpuSpec &gpu)
{
    ScheduleContext ctx;
    ctx.app = app;
    ctx.requirement = inferRequirement(app);
    ctx.net = net;
    ctx.gpu = gpu;
    return ctx;
}

std::vector<std::unique_ptr<Scheduler>>
allSchedulers()
{
    std::vector<std::unique_ptr<Scheduler>> v;
    v.push_back(std::make_unique<PerfPreferredScheduler>());
    v.push_back(std::make_unique<EnergyEfficientScheduler>());
    v.push_back(std::make_unique<QpeScheduler>());
    v.push_back(std::make_unique<QpePlusScheduler>());
    v.push_back(std::make_unique<PcnnScheduler>());
    v.push_back(std::make_unique<IdealScheduler>());
    return v;
}

} // namespace pcnn
