/**
 * @file
 * QPE+ baseline scheduler.
 */

#ifndef PCNN_PCNN_SCHEDULERS_QPE_PLUS_HH
#define PCNN_PCNN_SCHEDULERS_QPE_PLUS_HH

#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {

/**
 * QPE plus the resource model: identical batch/time planning, but
 * each layer runs on its optSM SMs via the Priority-SM scheduler and
 * the rest are power gated. Equivalent to P-CNN without accuracy
 * tuning (Section V.B).
 */
class QpePlusScheduler : public Scheduler
{
  public:
    std::string name() const override { return "QPE+"; }
    ScheduleOutcome run(const ScheduleContext &ctx) const override;
};

} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_QPE_PLUS_HH
