#include "pcnn/schedulers/qpe_plus.hh"

#include "pcnn/schedulers/sched_common.hh"

namespace pcnn {

ScheduleOutcome
QpePlusScheduler::run(const ScheduleContext &ctx) const
{
    const OfflineCompiler compiler(ctx.gpu);
    const CompiledPlan plan = compiler.compile(ctx.net, ctx.app);
    ScheduleOutcome out =
        sched::simulatePlan(ctx, plan, pcnnPolicy(), nullptr);
    out.scheduler = name();
    score(out, ctx);
    return out;
}

} // namespace pcnn
