/**
 * @file
 * Performance-preferred baseline scheduler.
 */

#ifndef PCNN_PCNN_SCHEDULERS_PERF_PREFERRED_HH
#define PCNN_PCNN_SCHEDULERS_PERF_PREFERRED_HH

#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {

/**
 * Fast response above all: non-batching execution (batch 1) on the
 * whole GPU with the hardware RR scheduler, no power management, no
 * approximation. Runtime is normalized to this scheduler in Fig. 13.
 */
class PerfPreferredScheduler : public Scheduler
{
  public:
    std::string name() const override { return "Perf-preferred"; }
    ScheduleOutcome run(const ScheduleContext &ctx) const override;
};

} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_PERF_PREFERRED_HH
