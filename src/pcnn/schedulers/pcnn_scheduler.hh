/**
 * @file
 * The P-CNN scheduler: the paper's contribution.
 */

#ifndef PCNN_PCNN_SCHEDULERS_PCNN_SCHEDULER_HH
#define PCNN_PCNN_SCHEDULERS_PCNN_SCHEDULER_HH

#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {

/**
 * Full P-CNN: offline compilation (tuned kernels, batch selection,
 * time/resource models), entropy-based accuracy tuning to the user's
 * uncertainty threshold, Priority-SM execution on optSM SMs with
 * power gating, and calibration semantics via the tuning path.
 */
class PcnnScheduler : public Scheduler
{
  public:
    std::string name() const override { return "P-CNN"; }
    ScheduleOutcome run(const ScheduleContext &ctx) const override;
};

} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_PCNN_SCHEDULER_HH
