#include "pcnn/schedulers/qpe.hh"

#include "pcnn/schedulers/sched_common.hh"

namespace pcnn {

ScheduleOutcome
QpeScheduler::run(const ScheduleContext &ctx) const
{
    const OfflineCompiler compiler(ctx.gpu);
    const CompiledPlan plan = compiler.compile(ctx.net, ctx.app);
    ScheduleOutcome out =
        sched::simulatePlan(ctx, plan, baselinePolicy(), nullptr);
    out.scheduler = name();
    score(out, ctx);
    return out;
}

} // namespace pcnn
