/**
 * @file
 * Ideal (oracle) scheduler.
 */

#ifndef PCNN_PCNN_SCHEDULERS_IDEAL_HH
#define PCNN_PCNN_SCHEDULERS_IDEAL_HH

#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {

/**
 * The oracle of Section V.B: it knows the end-user's true
 * requirements and the true accuracy of every tuning point, so it
 * profiles the whole tuning path and keeps the point with the
 * maximum SoC. Unlike P-CNN it is not bound by the conservative
 * entropy threshold — if the true accuracy of an aggressive point is
 * still acceptable, the oracle takes it.
 */
class IdealScheduler : public Scheduler
{
  public:
    std::string name() const override { return "Ideal"; }
    ScheduleOutcome run(const ScheduleContext &ctx) const override;

    /** True-accuracy drop the end-user genuinely accepts. */
    static constexpr double acceptableAccuracyDrop = 0.10;
};

} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_IDEAL_HH
