/**
 * @file
 * Energy-efficient baseline scheduler.
 */

#ifndef PCNN_PCNN_SCHEDULERS_ENERGY_EFFICIENT_HH
#define PCNN_PCNN_SCHEDULERS_ENERGY_EFFICIENT_HH

#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {

/**
 * Energy above all: reuses the training-stage batching method (large
 * batch) to amortize weight traffic and maximize throughput, with no
 * time model at all — so latency-sensitive tasks routinely blow
 * their deadlines (the 'x' marks in Fig. 15). Energy is normalized
 * to this scheduler in Fig. 14.
 */
class EnergyEfficientScheduler : public Scheduler
{
  public:
    std::string name() const override { return "Energy-efficient"; }
    ScheduleOutcome run(const ScheduleContext &ctx) const override;

    /** The training-stage batch size it copies. */
    static constexpr std::size_t trainingBatch = 256;
};

} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_ENERGY_EFFICIENT_HH
