/**
 * @file
 * Run-time scheduler zoo for the Figs. 13-15 comparison.
 *
 * Five baselines plus P-CNN (Section V.B): Performance-preferred,
 * Energy-efficient, QPE, QPE+, Ideal. Every scheduler plans a batch,
 * executes on the CTA-level simulator, and is scored with the SoC
 * metric; they differ in which of {time model, resource model,
 * accuracy tuning, oracle knowledge} they are allowed to use.
 */

#ifndef PCNN_PCNN_SCHEDULERS_SCHEDULER_HH
#define PCNN_PCNN_SCHEDULERS_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/entropy_profile.hh"
#include "pcnn/satisfaction.hh"

namespace pcnn {

/** What one scheduler achieved on one (app, net, gpu) triple. */
struct ScheduleOutcome
{
    std::string scheduler;
    std::size_t batch = 1;
    double latencyS = 0.0;        ///< per-request response time
    double energyPerImageJ = 0.0; ///< joules per processed image
    double entropy = 0.0;         ///< output CNN_entropy
    double accuracy = -1.0;       ///< true accuracy (profile)
    double tuningSpeedup = 1.0;   ///< from accuracy tuning
    bool deadlineMet = true;      ///< SoC_time > 0
    double socTimeScore = 0.0;
    double socAccuracyScore = 0.0;
    double socScore = 0.0;        ///< Eq. 15
};

/** Shared context handed to every scheduler. */
struct ScheduleContext
{
    AppSpec app;
    UserRequirement requirement;
    NetDescriptor net;
    GpuSpec gpu;
    EntropyProfile profile = EntropyProfile::representative();
};

/**
 * A run-time scheduling policy under evaluation.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /** Plan and simulate the application; score with SoC. */
    virtual ScheduleOutcome run(const ScheduleContext &ctx) const = 0;

    /** Fill the SoC fields of an outcome from its raw measurements. */
    static void score(ScheduleOutcome &out, const ScheduleContext &ctx);
};

/** Build the evaluation context for one (app, net, gpu) triple. */
ScheduleContext makeContext(const AppSpec &app, const NetDescriptor &net,
                            const GpuSpec &gpu);

/**
 * The six schedulers in figure order: Performance-preferred,
 * Energy-efficient, QPE, QPE+, P-CNN, Ideal.
 */
std::vector<std::unique_ptr<Scheduler>> allSchedulers();

} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_SCHEDULER_HH
