#include "pcnn/schedulers/ideal.hh"

#include <algorithm>
#include <limits>

#include "pcnn/offline/batch_selector.hh"
#include "pcnn/runtime/accuracy_tuner.hh"
#include "pcnn/schedulers/sched_common.hh"

namespace pcnn {

namespace {

/** Best SoC over every tuning level of one candidate plan. */
ScheduleOutcome
bestOverTuningPath(const ScheduleContext &ctx, const CompiledPlan &plan,
                   const std::string &name)
{
    // Profile the full tuning path (no entropy stopping criterion —
    // the oracle explores everything and judges by true accuracy).
    TunerConfig tcfg;
    tcfg.entropyThreshold = std::numeric_limits<double>::infinity();
    const AccuracyTuner tuner(ctx.gpu, tcfg);
    const TuningTable table = tuner.tuneModeled(plan, ctx.profile);

    const double acc0 = ctx.profile.accuracyAt(1.0);
    ScheduleOutcome best;
    bool have_best = false;

    for (std::size_t level = 0; level < table.levels(); ++level) {
        const TuningEntry &entry = table.entry(level);
        if (entry.accuracy <
            acc0 - IdealScheduler::acceptableAccuracyDrop) {
            continue; // the user would actually notice
        }

        const std::vector<std::size_t> *positions =
            level == 0 ? nullptr : &entry.positions;
        // The oracle knows the outputs are trustworthy, so its
        // accuracy satisfaction is never docked by a pessimistic
        // entropy reading: report entropy clamped to the threshold.
        const double oracle_entropy =
            std::min(entry.entropy, ctx.requirement.entropyThreshold);
        ScheduleOutcome out = sched::simulatePlan(
            ctx, plan, pcnnPolicy(), positions, oracle_entropy,
            entry.accuracy);
        out.scheduler = name;
        out.tuningSpeedup = entry.speedup;
        Scheduler::score(out, ctx);
        if (!have_best || out.socScore > best.socScore) {
            best = out;
            have_best = true;
        }
    }
    return best;
}

} // namespace

ScheduleOutcome
IdealScheduler::run(const ScheduleContext &ctx) const
{
    const OfflineCompiler compiler(ctx.gpu);

    // The oracle profiles every knob, including the batch size: the
    // requirement-driven plan plus a throughput-maximizing big-batch
    // plan (which the latency penalty of batch accumulation prunes
    // automatically for latency-sensitive tasks).
    std::vector<CompiledPlan> plans;
    plans.push_back(compiler.compile(ctx.net, ctx.app));
    const BatchSelector batches(ctx.gpu);
    const std::size_t big = std::min<std::size_t>(
        256, std::max<std::size_t>(batches.memoryCap(ctx.net), 1));
    if (big != plans.front().batch)
        plans.push_back(compiler.compileAtBatch(ctx.net, big));

    ScheduleOutcome best;
    bool have_best = false;
    for (const CompiledPlan &plan : plans) {
        const ScheduleOutcome out =
            bestOverTuningPath(ctx, plan, name());
        if (!have_best || out.socScore > best.socScore) {
            best = out;
            have_best = true;
        }
    }
    return best;
}

} // namespace pcnn
