/**
 * @file
 * QoS-per-energy (QPE) baseline scheduler.
 */

#ifndef PCNN_PCNN_SCHEDULERS_QPE_HH
#define PCNN_PCNN_SCHEDULERS_QPE_HH

#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {

/**
 * QPE (after Zhu et al., HPCA'15): minimize energy subject to the
 * response-time requirement. It owns a time model — the batch size
 * comes from the offline compiler's global decision loop — but it
 * has no resource model: every kernel occupies the whole GPU under
 * the RR scheduler and nothing is power gated.
 */
class QpeScheduler : public Scheduler
{
  public:
    std::string name() const override { return "QPE"; }
    ScheduleOutcome run(const ScheduleContext &ctx) const override;
};

} // namespace pcnn

#endif // PCNN_PCNN_SCHEDULERS_QPE_HH
