#include "pcnn/schedulers/energy_efficient.hh"

#include <algorithm>

#include "pcnn/offline/batch_selector.hh"
#include "pcnn/schedulers/sched_common.hh"

namespace pcnn {

ScheduleOutcome
EnergyEfficientScheduler::run(const ScheduleContext &ctx) const
{
    const BatchSelector batches(ctx.gpu);
    const std::size_t batch =
        std::min<std::size_t>(trainingBatch,
                              std::max<std::size_t>(
                                  batches.memoryCap(ctx.net), 1));
    const OfflineCompiler compiler(ctx.gpu);
    const CompiledPlan plan = compiler.compileAtBatch(ctx.net, batch);
    ScheduleOutcome out =
        sched::simulatePlan(ctx, plan, baselinePolicy(), nullptr);
    out.scheduler = name();
    score(out, ctx);
    return out;
}

} // namespace pcnn
