#include "pcnn/schedulers/perf_preferred.hh"

#include "pcnn/schedulers/sched_common.hh"

namespace pcnn {

ScheduleOutcome
PerfPreferredScheduler::run(const ScheduleContext &ctx) const
{
    const OfflineCompiler compiler(ctx.gpu);
    const CompiledPlan plan = compiler.compileAtBatch(ctx.net, 1);
    ScheduleOutcome out =
        sched::simulatePlan(ctx, plan, baselinePolicy(), nullptr);
    out.scheduler = name();
    score(out, ctx);
    return out;
}

} // namespace pcnn
