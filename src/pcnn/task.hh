/**
 * @file
 * Task classes and end-user requirement inference.
 *
 * The paper classifies CNN applications into interactive, real-time
 * and background tasks (Section II.B) and infers the time/accuracy
 * requirements from the application specification via a look-up table
 * (Section IV.A) instead of asking the user on every request.
 */

#ifndef PCNN_PCNN_TASK_HH
#define PCNN_PCNN_TASK_HH

#include <cstddef>
#include <string>

namespace pcnn {

/** The three task classes of Section II.B. */
enum class TaskClass { Interactive, RealTime, Background };

/** Display name of a task class. */
std::string taskClassName(TaskClass cls);

/**
 * Application specification as submitted to P-CNN's user-input
 * module: what the app is, how fast input arrives, and how sensitive
 * it is to wrong answers.
 */
struct AppSpec
{
    std::string name;
    TaskClass taskClass = TaskClass::Interactive;
    /// input generation rate (images per second); bounds the batch a
    /// latency-sensitive task can accumulate
    double dataRateHz = 1.0;
    /// true for tasks where wrong answers are costly (surveillance)
    bool accuracySensitive = false;
};

/**
 * Inferred end-user requirements (the look-up table of Section IV.A,
 * populated from the HCI literature the paper cites: 100 ms
 * imperceptible threshold, 3 s abandonment threshold).
 */
struct UserRequirement
{
    /// end of the imperceptible region T_i (seconds); for real-time
    /// tasks this is the hard deadline
    double imperceptibleS = 0.1;
    /// end of the tolerable region T_t (seconds); == imperceptibleS
    /// for real-time tasks, infinite for background tasks
    double tolerableS = 3.0;
    /// CNN_entropy ceiling the user accepts
    double entropyThreshold = 1.0;
    /// true when there is no latency requirement at all
    bool timeInsensitive = false;
};

/**
 * Infer the requirement for an application (Section IV.A).
 *
 * Interactive tasks get the 100 ms / 3 s HCI thresholds; real-time
 * tasks get a frame-period deadline derived from the input rate;
 * background tasks are time-insensitive. Accuracy-sensitive apps get
 * a strict entropy ceiling, entertainment apps a loose one.
 */
UserRequirement inferRequirement(const AppSpec &app);

/**
 * Default requirement for a bare task class (multi-tenant serving,
 * DESIGN.md §5k): the Section IV.A look-up applied to a class with
 * no further application detail. Interactive gets the 100 ms / 3 s
 * HCI thresholds, real-time a 60 FPS frame deadline, background is
 * time-insensitive.
 */
UserRequirement classRequirement(TaskClass cls);

/** The paper's three evaluation applications (Section V.C). */
AppSpec ageDetectionApp();    ///< interactive
AppSpec videoSurveillanceApp(); ///< real-time, 60 FPS
AppSpec imageTaggingApp();    ///< background

} // namespace pcnn

#endif // PCNN_PCNN_TASK_HH
