#include "pcnn/satisfaction.hh"

#include "common/logging.hh"

namespace pcnn {

double
socTime(double latency_s, const UserRequirement &req)
{
    pcnn_assert(latency_s >= 0.0, "negative latency");
    if (req.timeInsensitive)
        return 1.0;
    if (latency_s <= req.imperceptibleS)
        return 1.0;
    if (latency_s >= req.tolerableS)
        return 0.0;
    // Linear decay across the tolerable region (Fig. 3).
    return 1.0 - (latency_s - req.imperceptibleS) /
                     (req.tolerableS - req.imperceptibleS);
}

double
socAccuracy(double entropy, const UserRequirement &req)
{
    pcnn_assert(entropy >= 0.0, "negative entropy");
    pcnn_assert(req.entropyThreshold > 0.0,
                "entropy threshold must be positive");
    if (entropy <= req.entropyThreshold)
        return 1.0;
    return req.entropyThreshold / entropy;
}

double
soc(double latency_s, double entropy, double energy_per_image_j,
    const UserRequirement &req)
{
    pcnn_assert(energy_per_image_j > 0.0,
                "SoC needs positive per-image energy");
    return socTime(latency_s, req) * socAccuracy(entropy, req) /
           energy_per_image_j;
}

} // namespace pcnn
