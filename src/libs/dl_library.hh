/**
 * @file
 * Simulated deep-learning library interface.
 *
 * The paper characterizes cuBLAS (via Caffe), cuDNN, and Nervana on
 * real hardware (Section III). Without GPUs, we model each library as
 * a *kernel-selection policy*: which SGEMM tile it launches per
 * architecture, whether it batches the GEMM N dimension or loops per
 * image, its minimum batch granularity, and its device-memory
 * workspace policy (which produces the Table III out-of-memory
 * failures). Latency estimates feed Tables III-V and Figs. 4-5.
 */

#ifndef PCNN_LIBS_DL_LIBRARY_HH
#define PCNN_LIBS_DL_LIBRARY_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel_model.hh"
#include "gpu/memory_model.hh"
#include "nn/model_zoo.hh"

namespace pcnn {

/** Execution plan of one conv layer under one library. */
struct LayerPlan
{
    ConvSpec layer;
    KernelConfig kernel;
    GemmShape gemm;          ///< shape of one launch
    std::size_t launches = 1;///< sequential launches (groups x images)
};

/** Latency estimate of one whole-network inference pass. */
struct LatencyEstimate
{
    bool oom = false; ///< the deployment does not fit device memory
    MemoryFootprint footprint;
    double convTimeS = 0.0; ///< conv layers (incl. explicit im2col)
    double fcTimeS = 0.0;   ///< fully connected tail
    double auxTimeS = 0.0;  ///< pooling / activation / concat traffic
    std::size_t batch = 1;  ///< effective batch actually used

    /** End-to-end latency of the batch; 0 when oom. */
    double totalS() const
    {
        return oom ? 0.0 : convTimeS + fcTimeS + auxTimeS;
    }

    /** Images per second; 0 when oom. */
    double throughput() const
    {
        const double t = totalS();
        return t > 0.0 ? double(batch) / t : 0.0;
    }
};

/**
 * Base class of the simulated vendor libraries. Subclasses provide
 * the selection policy; the base class turns policies into plans,
 * footprints, and latency estimates via the analytical models.
 */
class DlLibrary
{
  public:
    virtual ~DlLibrary() = default;

    /** Library name as used in the paper's tables. */
    virtual std::string name() const = 0;

    /** Smallest batch the library supports (Nervana: 32). */
    virtual std::size_t minBatch() const { return 1; }

    /**
     * True for Caffe-style execution: one GEMM per image (the batch
     * never enters the GEMM's N dimension). This is why cuBLAS
     * batching helps so little in Table III.
     */
    virtual bool perImageGemm() const { return false; }

    /** True when im2col is materialized in global memory (cuBLAS). */
    virtual bool materializesIm2col() const { return false; }

    /** The kernel this library launches for a layer on a GPU. */
    virtual KernelConfig selectKernel(const GpuSpec &gpu,
                                      const ConvSpec &layer,
                                      std::size_t batch) const = 0;

    /** Library workspace bytes for a deployment. */
    virtual double workspaceBytes(const NetDescriptor &net,
                                  std::size_t batch) const = 0;

    /** Requested batch rounded up to the library's granularity. */
    std::size_t effectiveBatch(std::size_t requested) const;

    /** Plan one conv layer (kernel, GEMM shape, launch count). */
    LayerPlan planLayer(const GpuSpec &gpu, const ConvSpec &layer,
                        std::size_t batch) const;

    /** Full memory footprint of a deployment. */
    MemoryFootprint footprint(const NetDescriptor &net,
                              std::size_t batch) const;

    /**
     * Analytical end-to-end latency of one batch on a GPU, including
     * conv kernels, the bandwidth-bound fc tail, element-wise layer
     * traffic, and OOM detection.
     */
    LatencyEstimate estimateLatency(const GpuSpec &gpu,
                                    const NetDescriptor &net,
                                    std::size_t batch) const;

    /** Time of a single conv layer at a batch size (for Fig. 5). */
    double layerTime(const GpuSpec &gpu, const ConvSpec &layer,
                     std::size_t batch) const;

    /**
     * Fixed host-side cost of one framework forward() invocation
     * (allocation, layer dispatch, transfers). Paid once per batch,
     * so batching amortizes it — part of the Fig. 4 gap between
     * batched and non-batched throughput.
     */
    static constexpr double hostOverheadS = 1e-3;
};

/** All three simulated libraries in Table III column order. */
std::vector<std::unique_ptr<DlLibrary>> allLibraries();

/** Construct one library by its table name; fatal if unknown. */
std::unique_ptr<DlLibrary> libraryByName(const std::string &name);

} // namespace pcnn

#endif // PCNN_LIBS_DL_LIBRARY_HH
