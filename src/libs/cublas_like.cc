#include "libs/cublas_like.hh"

namespace pcnn {

KernelConfig
CublasLike::selectKernel(const GpuSpec &gpu, const ConvSpec &layer,
                         std::size_t batch) const
{
    (void)layer;
    (void)batch;
    KernelConfig cfg;
    // Kepler SMX (192 cores/SM) ships the 64x64 kernel, Maxwell-class
    // parts the 128x64 kernel — the characterized pairs in Table IV.
    cfg.tile = gpu.coresPerSM >= 192 ? tileByName(64, 64)
                                     : tileByName(128, 64);
    cfg.regsPerThread = 0; // natural register demand, no spilling
    return cfg;
}

double
CublasLike::workspaceBytes(const NetDescriptor &net,
                           std::size_t batch) const
{
    (void)batch;
    // One shared column buffer, sized for the largest layer of one
    // image and reused across layers and images.
    return maxSingleImageColBytes(net);
}

} // namespace pcnn
