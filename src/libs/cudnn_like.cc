#include "libs/cudnn_like.hh"

namespace pcnn {

KernelConfig
CudnnLike::selectKernel(const GpuSpec &gpu, const ConvSpec &layer,
                        std::size_t batch) const
{
    (void)layer;
    (void)batch;
    KernelConfig cfg;
    cfg.tile = gpu.coresPerSM >= 192 ? tileByName(64, 64)
                                     : tileByName(32, 32);
    cfg.regsPerThread = 0;
    return cfg;
}

double
CudnnLike::workspaceBytes(const NetDescriptor &net,
                          std::size_t batch) const
{
    return sumCappedBatchedColBytes(net, batch, layerWorkspaceCap);
}

} // namespace pcnn
