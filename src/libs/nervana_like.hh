/**
 * @file
 * Nervana (neon) library model.
 */

#ifndef PCNN_LIBS_NERVANA_LIKE_HH
#define PCNN_LIBS_NERVANA_LIKE_HH

#include "libs/dl_library.hh"

namespace pcnn {

/**
 * Nervana's hand-written SASS kernels: the fastest library in the
 * paper's characterization. Batched GEMM with the large-tile family
 * (128x128 / 128x64 / 128x32, Section IV.B.2), assembly-level
 * instruction scheduling (lower loop overhead, vectorized shared
 * memory access), but a hard batch granularity of 32 and extra
 * padding/transpose buffers that cost device memory.
 */
class NervanaLike : public DlLibrary
{
  public:
    std::string name() const override { return "Nervana"; }
    std::size_t minBatch() const override { return 32; }
    KernelConfig selectKernel(const GpuSpec &gpu, const ConvSpec &layer,
                              std::size_t batch) const override;
    double workspaceBytes(const NetDescriptor &net,
                          std::size_t batch) const override;

    /** Loop overhead of the assembly inner loop, per K-tile. */
    static constexpr double asmOtherInsts = 2.0;

    /** Shared-memory instruction scale of the assembly kernels. */
    static constexpr double asmLdsFactor = 0.5;

    /** Workspace as a fraction of batch activations. */
    static constexpr double workspaceFraction = 0.25;
};

} // namespace pcnn

#endif // PCNN_LIBS_NERVANA_LIKE_HH
