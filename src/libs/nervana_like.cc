#include "libs/nervana_like.hh"

namespace pcnn {

KernelConfig
NervanaLike::selectKernel(const GpuSpec &gpu, const ConvSpec &layer,
                          std::size_t batch) const
{
    (void)gpu;
    const GemmShape g = layer.gemmShape(effectiveBatch(batch));

    KernelConfig cfg;
    // Pick the widest tile the batched N dimension can fill.
    if (g.n >= 128)
        cfg.tile = tileByName(128, 128);
    else if (g.n >= 64)
        cfg.tile = tileByName(128, 64);
    else
        cfg.tile = tileByName(128, 32);

    // Assembly-tuned inner loop.
    cfg.tile.otherInstsPerKtile = asmOtherInsts;
    cfg.tile.ldsFactor = asmLdsFactor;
    cfg.regsPerThread = 0;
    return cfg;
}

double
NervanaLike::workspaceBytes(const NetDescriptor &net,
                            std::size_t batch) const
{
    return workspaceFraction *
           activationBytes(net, effectiveBatch(batch));
}

} // namespace pcnn
