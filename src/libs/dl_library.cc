#include "libs/dl_library.hh"

#include <algorithm>

#include "common/logging.hh"
#include "libs/cublas_like.hh"
#include "libs/cudnn_like.hh"
#include "libs/nervana_like.hh"

namespace pcnn {

std::size_t
DlLibrary::effectiveBatch(std::size_t requested) const
{
    const std::size_t gran = minBatch();
    pcnn_assert(gran >= 1, "library granularity must be positive");
    if (requested == 0)
        requested = 1;
    return ((requested + gran - 1) / gran) * gran;
}

LayerPlan
DlLibrary::planLayer(const GpuSpec &gpu, const ConvSpec &layer,
                     std::size_t batch) const
{
    const std::size_t eff = effectiveBatch(batch);
    LayerPlan plan;
    plan.layer = layer;
    plan.kernel = selectKernel(gpu, layer, eff);
    if (perImageGemm()) {
        plan.gemm = layer.gemmShape(1);
        plan.launches = layer.gemmCount() * eff;
    } else {
        plan.gemm = layer.gemmShape(eff);
        plan.launches = layer.gemmCount();
    }
    return plan;
}

MemoryFootprint
DlLibrary::footprint(const NetDescriptor &net, std::size_t batch) const
{
    const std::size_t eff = effectiveBatch(batch);
    MemoryFootprint fp;
    fp.weightBytes = weightBytes(net);
    fp.activationBytes = activationBytes(net, eff);
    fp.workspaceBytes = workspaceBytes(net, eff);
    return fp;
}

double
DlLibrary::layerTime(const GpuSpec &gpu, const ConvSpec &layer,
                     std::size_t batch) const
{
    const LayerPlan plan = planLayer(gpu, layer, batch);
    const SgemmModel model(gpu, plan.kernel);
    double t = model.kernelTime(plan.gemm) * double(plan.launches);
    if (materializesIm2col()) {
        // Explicit im2col writes then reads the lowered matrix.
        const double bytes =
            2.0 * 4.0 * double(plan.gemm.k) * double(plan.gemm.n);
        t += (bytes / gpu.bandwidthBytes() +
              SgemmModel::launchOverheadS) *
             double(plan.launches);
    }
    return t;
}

LatencyEstimate
DlLibrary::estimateLatency(const GpuSpec &gpu, const NetDescriptor &net,
                           std::size_t batch) const
{
    LatencyEstimate est;
    est.batch = effectiveBatch(batch);
    est.footprint = footprint(net, est.batch);
    if (!fits(gpu, est.footprint)) {
        est.oom = true;
        return est;
    }

    for (const ConvSpec &layer : net.convs)
        est.convTimeS += layerTime(gpu, layer, est.batch);

    // Fully connected tail: compute-bound at large batch, bound by
    // streaming the weight matrix at small batch.
    for (const auto &[in, out] : net.fcs) {
        const double flops = 2.0 * double(in) * double(out) *
                             double(est.batch);
        const double compute = flops / (gpu.peakFlops() * 0.5);
        const double weight_stream =
            4.0 * double(in) * double(out) / gpu.bandwidthBytes();
        est.fcTimeS += std::max(compute, weight_stream) +
                       SgemmModel::launchOverheadS;
    }

    // Element-wise layers (pool / relu / lrn / concat): roughly three
    // streaming passes over the conv activations, plus the fixed
    // host-side cost of the forward() invocation.
    const double act_bytes = activationBytes(net, est.batch);
    est.auxTimeS = 3.0 * act_bytes / gpu.bandwidthBytes() +
                   hostOverheadS;
    return est;
}

std::vector<std::unique_ptr<DlLibrary>>
allLibraries()
{
    std::vector<std::unique_ptr<DlLibrary>> v;
    v.push_back(std::make_unique<CublasLike>());
    v.push_back(std::make_unique<CudnnLike>());
    v.push_back(std::make_unique<NervanaLike>());
    return v;
}

std::unique_ptr<DlLibrary>
libraryByName(const std::string &name)
{
    for (auto &lib : allLibraries())
        if (lib->name() == name)
            return std::move(lib);
    pcnn_fatal("unknown library: ", name);
}

} // namespace pcnn
