/**
 * @file
 * cuDNN library model.
 */

#ifndef PCNN_LIBS_CUDNN_LIKE_HH
#define PCNN_LIBS_CUDNN_LIKE_HH

#include "libs/dl_library.hh"

namespace pcnn {

/**
 * cuDNN: batched implicit-GEMM convolution. The whole batch extends
 * the GEMM N dimension, raising occupancy; the price is a small tile
 * with low register count on Maxwell-class parts (32x32 @ 48 regs in
 * Table IV), which lowers computation density (Fig. 6) and makes the
 * kernel bandwidth-hungry — the reason cuDNN trails cuBLAS on TX1 in
 * Fig. 5. Each conv layer owns a bounded workspace (framework
 * integration), so deep networks pay a per-layer memory tax.
 */
class CudnnLike : public DlLibrary
{
  public:
    std::string name() const override { return "cuDNN"; }
    KernelConfig selectKernel(const GpuSpec &gpu, const ConvSpec &layer,
                              std::size_t batch) const override;
    double workspaceBytes(const NetDescriptor &net,
                          std::size_t batch) const override;

    /** Per-layer workspace cap (bytes). */
    static constexpr double layerWorkspaceCap = 40.0 * 1024 * 1024;
};

} // namespace pcnn

#endif // PCNN_LIBS_CUDNN_LIKE_HH
