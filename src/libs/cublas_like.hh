/**
 * @file
 * cuBLAS-as-used-by-Caffe library model.
 */

#ifndef PCNN_LIBS_CUBLAS_LIKE_HH
#define PCNN_LIBS_CUBLAS_LIKE_HH

#include "libs/dl_library.hh"

namespace pcnn {

/**
 * Caffe's cuBLAS path: explicit im2col into a single shared column
 * buffer, then one SGEMM *per image* (the batch loop lives in the
 * framework, so batching barely raises GridSize — Section III.B).
 * Tile choice per Table IV: 64x64 @ 79 regs on Kepler, 128x64 @ 120
 * regs on Maxwell-class parts.
 */
class CublasLike : public DlLibrary
{
  public:
    std::string name() const override { return "cuBLAS"; }
    bool perImageGemm() const override { return true; }
    bool materializesIm2col() const override { return true; }
    KernelConfig selectKernel(const GpuSpec &gpu, const ConvSpec &layer,
                              std::size_t batch) const override;
    double workspaceBytes(const NetDescriptor &net,
                          std::size_t batch) const override;
};

} // namespace pcnn

#endif // PCNN_LIBS_CUBLAS_LIKE_HH
