/**
 * @file
 * Mini-batch trainer and evaluator for functional networks.
 */

#ifndef PCNN_TRAIN_TRAINER_HH
#define PCNN_TRAIN_TRAINER_HH

#include <vector>

#include "data/dataset.hh"
#include "nn/network.hh"
#include "train/sgd.hh"

namespace pcnn {

/** Trainer configuration. */
struct TrainConfig
{
    std::size_t epochs = 6;
    std::size_t batchSize = 32;
    SgdConfig sgd;
    /// multiply the learning rate by this factor after each epoch
    double lrDecay = 0.85;
    std::uint64_t shuffleSeed = 7;
};

/** Quality of a network on a dataset. */
struct EvalResult
{
    double accuracy = 0.0;    ///< top-1 accuracy
    double meanEntropy = 0.0; ///< mean output entropy (CNN_entropy)
    double loss = 0.0;        ///< mean cross-entropy
};

/** Per-epoch training trace. */
struct EpochStats
{
    double trainLoss = 0.0;
    double trainAccuracy = 0.0;
};

/**
 * Drives SGD training of a Network on a Dataset and evaluates
 * accuracy / entropy / loss. Perforation is cleared for training and
 * restored semantics are the caller's concern.
 */
class Trainer
{
  public:
    /** Bind a network (borrowed, not owned) and a configuration. */
    Trainer(Network &net, TrainConfig cfg);

    /**
     * Train for cfg.epochs over `train_set`.
     * @return per-epoch loss/accuracy trace
     */
    std::vector<EpochStats> fit(Dataset &train_set);

    /** Evaluate on a dataset with the network's current settings. */
    EvalResult evaluate(const Dataset &test_set,
                        std::size_t batch_size = 64);

  private:
    Network &net;
    TrainConfig cfg;
    SgdOptimizer opt;
};

} // namespace pcnn

#endif // PCNN_TRAIN_TRAINER_HH
