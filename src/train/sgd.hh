/**
 * @file
 * Stochastic gradient descent with momentum and weight decay.
 */

#ifndef PCNN_TRAIN_SGD_HH
#define PCNN_TRAIN_SGD_HH

#include <vector>

#include "nn/layer.hh"

namespace pcnn {

/** SGD hyper-parameters. */
struct SgdConfig
{
    double learningRate = 0.05;
    double momentum = 0.9;
    double weightDecay = 1e-4;
};

/**
 * Classic momentum SGD: v = mu*v - lr*(g + wd*w); w += v.
 *
 * Velocity buffers are keyed by Param pointer and created lazily, so
 * one optimizer instance can drive a whole network.
 */
class SgdOptimizer
{
  public:
    /** Construct with hyper-parameters. */
    explicit SgdOptimizer(SgdConfig cfg);

    /** Apply one update to every parameter; gradients are consumed. */
    void step(const std::vector<Param *> &params);

    /** Scale the learning rate (for decay schedules). */
    void scaleLearningRate(double factor);

    /** Current learning rate. */
    double learningRate() const { return cfg.learningRate; }

  private:
    SgdConfig cfg;
    std::vector<Param *> known;
    std::vector<std::vector<float>> velocity;
};

} // namespace pcnn

#endif // PCNN_TRAIN_SGD_HH
