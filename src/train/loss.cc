#include "train/loss.hh"

#include <cmath>

#include "common/logging.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {

double
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<std::size_t> &labels,
                    Tensor *dlogits)
{
    const Shape &s = logits.shape();
    pcnn_assert(s.h == 1 && s.w == 1, "loss expects [n,k,1,1] logits");
    pcnn_assert(labels.size() == s.n, "labels/batch size mismatch: ",
                labels.size(), " vs ", s.n);

    const Tensor probs = softmax(logits);
    const std::size_t k = s.c;
    double loss = 0.0;
    for (std::size_t i = 0; i < s.n; ++i) {
        pcnn_assert(labels[i] < k, "label ", labels[i], " out of ", k,
                    " classes");
        const double p =
            std::max(1e-12, double(probs.data()[i * k + labels[i]]));
        loss -= std::log(p);
    }
    loss /= double(s.n);

    if (dlogits) {
        dlogits->resize(s);
        const float inv_n = 1.0f / float(s.n);
        for (std::size_t i = 0; i < s.n; ++i) {
            for (std::size_t j = 0; j < k; ++j) {
                const float target = j == labels[i] ? 1.0f : 0.0f;
                dlogits->data()[i * k + j] =
                    (probs.data()[i * k + j] - target) * inv_n;
            }
        }
    }
    return loss;
}

double
accuracy(const Tensor &logits, const std::vector<std::size_t> &labels)
{
    const auto pred = argmaxRows(logits);
    pcnn_assert(pred.size() == labels.size(), "labels/batch mismatch");
    std::size_t hits = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
        hits += pred[i] == labels[i];
    return pred.empty() ? 0.0 : double(hits) / double(pred.size());
}

} // namespace pcnn
