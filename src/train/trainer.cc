#include "train/trainer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tensor/tensor_ops.hh"
#include "train/loss.hh"

namespace pcnn {

Trainer::Trainer(Network &network, TrainConfig config)
    : net(network), cfg(config), opt(config.sgd)
{
    pcnn_assert(cfg.epochs > 0 && cfg.batchSize > 0,
                "trainer needs positive epochs and batch size");
}

std::vector<EpochStats>
Trainer::fit(Dataset &train_set)
{
    pcnn_assert(train_set.size() >= cfg.batchSize,
                "training set smaller than one batch");
    net.clearPerforation();

    Rng shuffle_rng(cfg.shuffleSeed);
    std::vector<EpochStats> history;
    Tensor dlogits;

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        train_set.shuffle(shuffle_rng);
        double loss_sum = 0.0, acc_sum = 0.0;
        std::size_t batches = 0;

        for (std::size_t first = 0;
             first + cfg.batchSize <= train_set.size();
             first += cfg.batchSize) {
            const Tensor x = train_set.batch(first, cfg.batchSize);
            const auto labels =
                train_set.batchLabels(first, cfg.batchSize);

            net.zeroGrads();
            const Tensor logits = net.forward(x, true);
            loss_sum += softmaxCrossEntropy(logits, labels, &dlogits);
            acc_sum += accuracy(logits, labels);
            net.backward(dlogits);
            opt.step(net.params());
            ++batches;
        }

        EpochStats s;
        s.trainLoss = loss_sum / double(batches);
        s.trainAccuracy = acc_sum / double(batches);
        history.push_back(s);
        opt.scaleLearningRate(cfg.lrDecay);
    }
    return history;
}

EvalResult
Trainer::evaluate(const Dataset &test_set, std::size_t batch_size)
{
    pcnn_assert(test_set.size() > 0, "empty evaluation set");
    EvalResult r;
    std::size_t seen = 0;
    while (seen < test_set.size()) {
        const std::size_t n =
            std::min(batch_size, test_set.size() - seen);
        const Tensor x = test_set.batch(seen, n);
        const auto labels = test_set.batchLabels(seen, n);
        const Tensor logits = net.forward(x, false);
        const Tensor probs = softmax(logits);

        r.loss += softmaxCrossEntropy(logits, labels) * double(n);
        r.accuracy += accuracy(logits, labels) * double(n);
        r.meanEntropy += batchEntropy(probs) * double(n);
        seen += n;
    }
    r.loss /= double(seen);
    r.accuracy /= double(seen);
    r.meanEntropy /= double(seen);
    return r;
}

} // namespace pcnn
