#include "train/sgd.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/parallel.hh"

namespace pcnn {

SgdOptimizer::SgdOptimizer(SgdConfig config) : cfg(config)
{
    pcnn_assert(cfg.learningRate > 0.0, "learning rate must be positive");
    pcnn_assert(cfg.momentum >= 0.0 && cfg.momentum < 1.0,
                "momentum must be in [0,1)");
}

void
SgdOptimizer::step(const std::vector<Param *> &params)
{
    for (Param *p : params) {
        // Fail before touching the values: markUpdated() after the
        // in-place update would fire too, but only after the shared
        // storage other replicas are reading was already corrupted.
        PCNN_CHECK(!p->isShared(),
                   "SGD step on a parameter shared across serving "
                   "replicas (DESIGN.md §5f): train on the prototype "
                   "before cloneSharingWeights, never after");
        auto it = std::find(known.begin(), known.end(), p);
        std::size_t idx;
        if (it == known.end()) {
            known.push_back(p);
            velocity.emplace_back(p->value.size(), 0.0f);
            idx = known.size() - 1;
        } else {
            idx = std::size_t(it - known.begin());
        }
        pcnn_assert(velocity[idx].size() == p->value.size(),
                    "parameter resized under the optimizer");

        auto &vel = velocity[idx];
        const float lr = float(cfg.learningRate);
        const float mu = float(cfg.momentum);
        const float wd = float(cfg.weightDecay);
        // Elementwise and pure per index: any static partition of the
        // update is bitwise identical to the serial loop.
        parallelFor(vel.size(), [&](std::size_t i0, std::size_t i1,
                                    std::size_t) {
            for (std::size_t i = i0; i < i1; ++i) {
                const float g = p->grad[i] + wd * p->value[i];
                vel[i] = mu * vel[i] - lr * g;
                p->value[i] += vel[i];
            }
        });
        // The step mutated the parameter: stale-out any packed-panel
        // caches derived from it.
        p->markUpdated();
    }
}

void
SgdOptimizer::scaleLearningRate(double factor)
{
    pcnn_assert(factor > 0.0, "lr scale must be positive");
    cfg.learningRate *= factor;
}

} // namespace pcnn
