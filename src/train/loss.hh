/**
 * @file
 * Softmax cross-entropy loss.
 */

#ifndef PCNN_TRAIN_LOSS_HH
#define PCNN_TRAIN_LOSS_HH

#include <cstddef>
#include <vector>

#include "tensor/tensor.hh"

namespace pcnn {

/**
 * Mean softmax cross-entropy over a batch.
 *
 * @param logits classifier outputs [n, k, 1, 1]
 * @param labels one class index per batch item
 * @param dlogits if non-null, receives dLoss/dLogits (already
 *        averaged over the batch), shaped like logits
 * @return mean negative log-likelihood
 */
double softmaxCrossEntropy(const Tensor &logits,
                           const std::vector<std::size_t> &labels,
                           Tensor *dlogits = nullptr);

/** Fraction of batch items whose argmax(logits) equals the label. */
double accuracy(const Tensor &logits,
                const std::vector<std::size_t> &labels);

} // namespace pcnn

#endif // PCNN_TRAIN_LOSS_HH
